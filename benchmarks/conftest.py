"""Shared benchmark infrastructure.

Every benchmark regenerates one experiment of the paper (a figure panel,
the §VI-B accuracy table, a Theorem 1 check, or an ablation) and

* saves the full table/panel to ``benchmarks/results/<name>.txt`` (and CSV
  where applicable), so the artefacts survive pytest's output capture;
* times a representative kernel with the ``benchmark`` fixture.

Grid sizes default to a CI-friendly subset; set ``REPRO_FULL=1`` to run
the paper's complete grids (50/300/1000 tasks, all processor counts, all
three failure probabilities — minutes, not hours).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Full paper grid when set; CI-sized grid otherwise.
FULL = os.environ.get("REPRO_FULL", "") not in ("", "0")


def grid_kwargs():
    """shrink() arguments for figure specs, honouring REPRO_FULL."""
    if FULL:
        return {}
    return {
        "sizes": [50, 300],
        "pfails": [0.01, 0.001],
        "ccr_points": 5,
        "processors_per_size": 2,
    }


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_artifact(name: str, text: str) -> Path:
    """Persist a rendered table/panel under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text)
    return path


#: Repo root — the machine-readable ``BENCH_*.json`` summaries live
#: here (not under benchmarks/results/) so the cross-PR perf trajectory
#: is one flat, discoverable set of files at the top of the tree.
ROOT_DIR = Path(__file__).resolve().parent.parent


def save_json(name: str, payload) -> Path:
    """Persist a machine-readable benchmark summary (``BENCH_*.json``).

    These files are the cross-PR perf trajectory: every run overwrites
    ``<repo root>/<name>`` with one flat JSON object (wall times,
    cells/sec, cache hit rates, speedups) that tooling can diff between
    commits.
    """
    import json

    path = ROOT_DIR / name
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
