"""P2: evaluator runtime scaling with DAG size.

Backs the §VI-B speed claims: times each estimator on CKPTALL segment
DAGs of growing GENOME instances.  Artefact:
``benchmarks/results/eval_scaling.txt``.
"""

import time

import pytest

from repro.api import run_strategies
from repro.generators import genome
from repro.makespan.api import EVALUATORS
from repro.util.tables import format_table

from benchmarks.conftest import FULL, save_artifact

SIZES = (50, 300, 1000) if FULL else (50, 300)
METHODS = ("pathapprox", "normal", "dodin")


@pytest.fixture(scope="module")
def eval_scaling_rows():
    rows = []
    dags = {}
    for n in SIZES:
        out = run_strategies(genome(n, seed=1), 10, pfail=0.001, ccr=0.01, seed=2)
        dags[n] = out.dag_all
        row = [n, out.dag_all.n]
        for method in METHODS:
            fn = EVALUATORS[method]
            t0 = time.perf_counter()
            fn(out.dag_all)
            row.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        EVALUATORS["montecarlo"](out.dag_all, trials=10_000, seed=3)
        row.append(time.perf_counter() - t0)
        rows.append(row)
    text = format_table(
        ["n tasks", "segments", *METHODS, "montecarlo[10k]"],
        rows,
        title="Evaluator runtime (seconds) on CKPTALL segment DAGs",
    )
    save_artifact("eval_scaling.txt", text + "\n")
    return rows, dags


def bench_pathapprox_largest(benchmark, eval_scaling_rows):
    """Times PATHAPPROX on the largest DAG in the sweep."""
    rows, dags = eval_scaling_rows
    dag = dags[max(dags)]
    benchmark(EVALUATORS["pathapprox"], dag)


def bench_normal_largest(benchmark, eval_scaling_rows):
    """Times NORMAL (Sculli) on the largest DAG in the sweep."""
    _, dags = eval_scaling_rows
    benchmark(EVALUATORS["normal"], dags[max(dags)])


def bench_dodin_largest(benchmark, eval_scaling_rows):
    """Times DODIN on the largest DAG in the sweep."""
    _, dags = eval_scaling_rows
    benchmark(EVALUATORS["dodin"], dags[max(dags)])


def bench_montecarlo_10k_largest(benchmark, eval_scaling_rows):
    """Times 10k-trial Monte Carlo on the largest DAG in the sweep."""
    _, dags = eval_scaling_rows
    benchmark(EVALUATORS["montecarlo"], dags[max(dags)], trials=10_000, seed=3)
