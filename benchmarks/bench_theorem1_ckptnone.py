"""§V / Theorem 1: the CKPTNONE estimator vs the restart-model simulation.

The paper concedes its CKPTNONE formula "is likely to be inaccurate" but
uses it for lack of a better approximation (the exact quantity is
#P-complete).  This bench quantifies the claim: at low failure rates the
first-order estimate matches the simulated restart model tightly; as
``p·λ·W_par`` grows, the estimate (which truncates at one failure)
increasingly undershoots the compounding restarts.  Artefact:
``benchmarks/results/theorem1.txt``.
"""

import pytest

from repro.generators import genome
from repro.makespan.ckptnone import (
    ckptnone_expected_makespan,
    failure_free_makespan,
)
from repro.platform import Platform, lambda_from_pfail
from repro.scheduling.allocate import schedule_workflow
from repro.simulation import simulate_ckptnone
from repro.util.tables import format_table

from benchmarks.conftest import FULL, save_artifact

TRIALS = 100_000 if FULL else 20_000


@pytest.fixture(scope="module")
def theorem1_rows():
    wf = genome(300 if FULL else 50, seed=2017)
    sched, _ = schedule_workflow(wf, 10, seed=1)
    rows = []
    for pfail in (1e-5, 1e-4, 1e-3, 1e-2):
        lam = lambda_from_pfail(pfail, wf.mean_weight)
        plat = Platform(10, failure_rate=lam)
        est = ckptnone_expected_makespan(wf, sched, plat)
        sim = simulate_ckptnone(wf, sched, plat, trials=TRIALS, seed=3)
        rows.append(
            [
                pfail,
                failure_free_makespan(wf, sched),
                est,
                sim.mean,
                est / sim.mean - 1.0,
            ]
        )
    text = format_table(
        ["pfail", "W_par", "theorem1", "restart sim", "rel err"],
        rows,
        title="Theorem 1 estimate vs restart-model simulation (CKPTNONE)",
    )
    save_artifact("theorem1.txt", text + "\n")
    return rows


def bench_theorem1_vs_restart_model(benchmark, theorem1_rows):
    """Validates the error trend; times the Theorem 1 estimator itself."""
    errors = [abs(r[4]) for r in theorem1_rows]
    # tight at the lowest rate, degrading monotonically-ish with pfail
    assert errors[0] < 0.01
    assert errors[-1] > errors[0]
    # the estimator always undershoots the compounding restart model
    assert all(r[2] <= r[3] * 1.01 for r in theorem1_rows)

    wf = genome(50, seed=2017)
    sched, _ = schedule_workflow(wf, 10, seed=1)
    lam = lambda_from_pfail(1e-3, wf.mean_weight)
    plat = Platform(10, failure_rate=lam)
    benchmark(ckptnone_expected_makespan, wf, sched, plat)
