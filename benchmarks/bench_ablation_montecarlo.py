"""A3: Monte Carlo ablation — antithetic variates and batch size.

The Monte Carlo evaluator is the reproduction's ground truth, so its
throughput and variance matter.  This ablation measures (a) the variance
reduction from antithetic sampling and (b) the throughput effect of the
vectorisation batch size.  Artefact:
``benchmarks/results/ablation_montecarlo.txt``.
"""

import time

import numpy as np
import pytest

from repro.api import run_strategies
from repro.generators import generate
from repro.makespan.montecarlo import sample_makespans
from repro.util.tables import format_table

from benchmarks.conftest import FULL, save_artifact

NTASKS = 300 if FULL else 50
TRIALS = 100_000 if FULL else 40_000


@pytest.fixture(scope="module")
def mc_dag():
    out = run_strategies(
        generate("montage", NTASKS, seed=3), 10, pfail=0.01, ccr=0.1, seed=4
    )
    return out.dag_all


@pytest.fixture(scope="module")
def mc_rows(mc_dag):
    rows = []
    for antithetic in (False, True):
        t0 = time.perf_counter()
        samples = sample_makespans(mc_dag, TRIALS, seed=5, antithetic=antithetic)
        dt = time.perf_counter() - t0
        pairs = (samples[0::2] + samples[1::2]) / 2.0
        rows.append(
            [
                "antithetic" if antithetic else "plain",
                float(samples.mean()),
                float(pairs.std(ddof=1) / np.sqrt(pairs.size)),
                dt,
            ]
        )
    text = format_table(
        ["sampling", "mean", "stderr (paired)", "seconds"],
        rows,
        title=f"Ablation A3: Monte Carlo sampling ({TRIALS} trials)",
    )
    save_artifact("ablation_montecarlo.txt", text + "\n")
    return rows


def bench_montecarlo_antithetic(benchmark, mc_rows, mc_dag):
    """Checks the variance reduction; times antithetic sampling."""
    plain, anti = mc_rows
    assert anti[2] <= plain[2] * 1.05  # stderr not worse
    assert abs(anti[1] - plain[1]) / plain[1] < 0.02  # same estimate
    benchmark(sample_makespans, mc_dag, 10_000, 6, True)


def bench_montecarlo_batched_kernel(benchmark, mc_dag):
    """Times the plain vectorised sampler (the shared longest-path kernel)."""
    benchmark(sample_makespans, mc_dag, 10_000, 7)
