"""Batched vs per-cell evaluation benchmark (the makespan hot path).

Profiling (PR 1) showed PathApprox evaluation is ~95% of per-cell sweep
cost.  This benchmark isolates the batched evaluation core's win: the
same grid is run through :func:`repro.engine.run_sweep` three times —
``batch_eval=False`` (the per-cell reference path: one evaluator call
per cell, 2-state laws rebuilt per path occurrence),
``fused_eval=False`` (one batched dispatch per strategy and structure
group) and the default fused path (every evaluation of a grid group —
both strategies, all chunks, all structure groups — pooled through one
multi-template dispatch).  Records are asserted bit-identical; the
machine-readable summary lands in ``BENCH_eval.json`` at the repo root
with ``cells_per_s`` / ``wall_s`` / ``speedup`` keys per grid and
overall, plus the fused dispatch telemetry (``dispatches``,
``dispatch_jobs_mean``, ``pool_width_mean``).

Grids: the 84-cell MONTAGE grid of ``bench_sweep_engine.py`` and a
40-cell GENOME-50 grid.  ``REPRO_BENCH_SMOKE=1`` shrinks both to a few
cells (the CI bench-smoke job uses this to validate the JSON shape
without paying the full wall time).  Run directly::

    PYTHONPATH=src:. python benchmarks/bench_eval_batch.py
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Tuple

from repro.engine import CellResult, SweepSpec, run_sweep
from repro.experiments.figures import log_grid
from repro.makespan import native as native_kernels
from repro.makespan import profile as kernel_profile

from benchmarks.conftest import save_artifact, save_json

#: Tiny grids for the CI smoke job (JSON shape, not timings).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def montage_spec() -> SweepSpec:
    return SweepSpec(
        family="montage",
        sizes=(50,),
        processors={50: (3,) if SMOKE else (3, 5, 7, 10)},
        pfails=(0.01,) if SMOKE else (0.01, 0.001, 0.0001),
        ccrs=log_grid(1e-3, 1e0, 3 if SMOKE else 7),
        seed=2017,
        seed_policy="stable",
        name="bench-eval-montage",
    )


def genome_spec() -> SweepSpec:
    return SweepSpec(
        family="genome",
        sizes=(50,),
        processors={50: (5,) if SMOKE else (5, 10)},
        pfails=(0.01,) if SMOKE else (0.01, 0.001),
        ccrs=log_grid(1e-3, 1e0, 3 if SMOKE else 10),
        seed=2017,
        seed_policy="stable",
        name="bench-eval-genome",
    )


def run_grid(spec: SweepSpec) -> Tuple[Dict[str, float], List[CellResult]]:
    """Time per-cell vs per-group vs fused evaluation of one grid.

    All paths are asserted bit-identical; the timed default is the
    fused dispatcher with whatever kernel backend is live (native when
    a compiler is present).  A fourth timed pass re-runs the fused
    path with the native kernels disabled, so the artifact carries the
    native-vs-python column with parity asserted.  A separate
    (untimed) profiled pass collects the dispatch telemetry — dispatch
    count, mean template jobs per dispatch, mean pooled wavefront
    width, native-vs-fallback rows — so the JSON artifact pins the
    dispatch shape, not just the wall time.
    """
    t0 = time.perf_counter()
    per_cell = run_sweep(spec, jobs=1, batch_eval=False)
    wall_per_cell = time.perf_counter() - t0
    t0 = time.perf_counter()
    grouped = run_sweep(spec, jobs=1, fused_eval=False)
    wall_grouped = time.perf_counter() - t0
    t0 = time.perf_counter()
    batched = run_sweep(spec, jobs=1)
    wall_batched = time.perf_counter() - t0
    was_enabled = native_kernels.enabled()
    native_kernels.set_enabled(False)
    try:
        t0 = time.perf_counter()
        no_native = run_sweep(spec, jobs=1)
        wall_no_native = time.perf_counter() - t0
    finally:
        native_kernels.set_enabled(was_enabled)
    assert batched == per_cell, (
        f"{spec.name}: fused records diverge from the per-cell path"
    )
    assert grouped == per_cell, (
        f"{spec.name}: per-group records diverge from the per-cell path"
    )
    assert no_native == per_cell, (
        f"{spec.name}: native-disabled records diverge from the "
        "per-cell path"
    )
    prof = kernel_profile.enable()
    try:
        run_sweep(spec, jobs=1)
        snap = prof.snapshot()
    finally:
        kernel_profile.disable()
    cells = len(batched)
    return (
        {
            "cells": cells,
            "wall_s": wall_batched,
            "per_cell_wall_s": wall_per_cell,
            "per_group_wall_s": wall_grouped,
            "no_native_wall_s": wall_no_native,
            "cells_per_s": cells / wall_batched,
            "per_cell_cells_per_s": cells / wall_per_cell,
            "no_native_cells_per_s": cells / wall_no_native,
            "speedup": wall_per_cell / wall_batched,
            "fused_speedup": wall_grouped / wall_batched,
            "native_speedup": wall_no_native / wall_batched,
            "dispatches": snap["dispatches"],
            "dispatch_jobs_mean": snap["dispatch_jobs_mean"],
            "pool_width_mean": snap["pool_width_mean"],
            "native_rows": snap["native_rows"],
            "native_ratio": snap["native_ratio"],
        },
        batched,
    )


def compare() -> Tuple[str, List[CellResult]]:
    grids = {"montage": montage_spec(), "genome": genome_spec()}
    kernel_status = native_kernels.status()
    summary: Dict[str, object] = {
        "benchmark": "eval_batch",
        "smoke": SMOKE,
        # Which kernel backend produced the committed numbers (the
        # timed default passes): "native" or "python".
        "kernel_backend": kernel_status["backend"],
        "grids": {},
    }
    lines = [
        "fused vs per-group vs per-cell evaluation "
        "(jobs=1, bit-identical records)"
    ]
    montage_cells: List[CellResult] = []
    total_cells = 0
    total_batched = 0.0
    total_per_cell = 0.0
    for name, spec in grids.items():
        stats, records = run_grid(spec)
        summary["grids"][name] = stats  # type: ignore[index]
        total_cells += stats["cells"]
        total_batched += stats["wall_s"]
        total_per_cell += stats["per_cell_wall_s"]
        if name == "montage":
            montage_cells = records
        lines.append(
            f"  {name:<8} {stats['cells']:>4} cells  "
            f"per-cell {stats['per_cell_wall_s']:7.2f}s "
            f"({stats['per_cell_cells_per_s']:6.2f} cells/s)  "
            f"fused {stats['wall_s']:7.2f}s "
            f"({stats['cells_per_s']:6.2f} cells/s)  "
            f"speedup {stats['speedup']:.2f}x  "
            f"native {stats['native_speedup']:.2f}x  "
            f"dispatches {stats['dispatches']} "
            f"(pool width {stats['pool_width_mean']:.1f})"
        )
    # Top-level trajectory keys (the montage grid is the acceptance
    # reference; overall aggregates cover both grids).
    summary["cells"] = total_cells
    summary["wall_s"] = total_batched
    summary["per_cell_wall_s"] = total_per_cell
    summary["cells_per_s"] = total_cells / total_batched
    summary["per_cell_cells_per_s"] = total_cells / total_per_cell
    summary["speedup"] = total_per_cell / total_batched
    save_json("BENCH_eval.json", summary)
    return "\n".join(lines), montage_cells


def bench_eval_batch(benchmark):
    """Times the batched montage sweep; validates parity along the way."""
    report, cells = compare()
    save_artifact("eval_batch.txt", report + "\n")
    spec = montage_spec()
    result = benchmark(lambda: run_sweep(spec, jobs=1, batch_eval=True))
    assert result == cells


if __name__ == "__main__":
    print(compare()[0])
