"""Batched vs per-cell Monte Carlo evaluation (the content-seed payoff).

Monte Carlo was the one evaluator locked out of the batched evaluation
core: its positional sampling seeds forced the per-cell path.  With the
content eval-seed policy each cell's stream is derived from what the
cell *is* (:func:`repro.engine.sweep.cell_eval_seed`), and
:func:`repro.makespan.montecarlo.montecarlo_batch` prices a whole
structure group in one call — per-cell generators feed one stacked
``(cells, batch, n)`` trial tensor whose longest-path propagation runs
through the shared kernel once per node instead of once per node *per
cell*.  Samples are bit-identical to the per-cell path, so the speedup
is pure overhead amortisation.

The grid is a MONTAGE Monte Carlo grid under ``eval_seed_policy=
"content"``; both paths are timed via :func:`repro.engine.run_sweep`
(``batch_eval`` on/off), records asserted bit-identical, and the
machine-readable summary lands in ``BENCH_mc.json`` at the repo root
with ``cells_per_s`` / ``wall_s`` / ``speedup`` keys.
``REPRO_BENCH_SMOKE=1`` shrinks the grid for the CI smoke job.  Run
directly::

    PYTHONPATH=src:. python benchmarks/bench_mc_batch.py
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Tuple

from repro.engine import CellResult, SweepSpec, run_sweep
from repro.experiments.figures import log_grid

from benchmarks.conftest import save_artifact, save_json

#: Tiny grid for the CI smoke job (JSON shape, not timings).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Trials per cell — large enough that Monte Carlo evaluation (not the
#: shared plan/DAG construction) dominates the sweep, which is also the
#: regime where the per-cell kernel's strided column accesses fall out
#: of cache and the batched transposed propagation wins hardest.
TRIALS = 64 if SMOKE else 8192


def montage_spec() -> SweepSpec:
    return SweepSpec(
        family="montage",
        sizes=(50,),
        processors={50: (3,) if SMOKE else (3, 5, 7, 10)},
        pfails=(0.01,) if SMOKE else (0.01, 0.001, 0.0001),
        ccrs=log_grid(1e-3, 1e0, 3 if SMOKE else 7),
        seed=2017,
        method="montecarlo",
        seed_policy="stable",
        eval_seed_policy="content",
        evaluator_options={"trials": TRIALS},
        name="bench-mc-montage",
    )


def run_grid(spec: SweepSpec) -> Tuple[Dict[str, float], List[CellResult]]:
    """Time per-cell vs batched Monte Carlo on one grid; assert parity."""
    t0 = time.perf_counter()
    per_cell = run_sweep(spec, jobs=1, batch_eval=False)
    wall_per_cell = time.perf_counter() - t0
    t0 = time.perf_counter()
    batched = run_sweep(spec, jobs=1, batch_eval=True)
    wall_batched = time.perf_counter() - t0
    assert batched == per_cell, (
        f"{spec.name}: batched Monte Carlo records diverge from the "
        "per-cell path"
    )
    cells = len(batched)
    return (
        {
            "cells": cells,
            "trials": TRIALS,
            "wall_s": wall_batched,
            "per_cell_wall_s": wall_per_cell,
            "cells_per_s": cells / wall_batched,
            "per_cell_cells_per_s": cells / wall_per_cell,
            "speedup": wall_per_cell / wall_batched,
        },
        batched,
    )


def compare() -> Tuple[str, List[CellResult]]:
    spec = montage_spec()
    stats, records = run_grid(spec)
    summary: Dict[str, object] = {
        "benchmark": "mc_batch",
        "smoke": SMOKE,
        "grids": {"montage": stats},
        # Top-level trajectory keys (single grid: same numbers).
        "cells": stats["cells"],
        "trials": TRIALS,
        "wall_s": stats["wall_s"],
        "per_cell_wall_s": stats["per_cell_wall_s"],
        "cells_per_s": stats["cells_per_s"],
        "per_cell_cells_per_s": stats["per_cell_cells_per_s"],
        "speedup": stats["speedup"],
    }
    save_json("BENCH_mc.json", summary)
    lines = [
        "batched vs per-cell Monte Carlo (content eval seeds, jobs=1, "
        "bit-identical records)",
        f"  montage  {stats['cells']:>4} cells x {TRIALS} trials  "
        f"per-cell {stats['per_cell_wall_s']:7.2f}s "
        f"({stats['per_cell_cells_per_s']:6.2f} cells/s)  "
        f"batched {stats['wall_s']:7.2f}s "
        f"({stats['cells_per_s']:6.2f} cells/s)  "
        f"speedup {stats['speedup']:.2f}x",
    ]
    return "\n".join(lines), records


def bench_mc_batch(benchmark):
    """Times the batched montage MC sweep; validates parity on the way."""
    report, cells = compare()
    save_artifact("mc_batch.txt", report + "\n")
    spec = montage_spec()
    result = benchmark(lambda: run_sweep(spec, jobs=1, batch_eval=True))
    assert result == cells


if __name__ == "__main__":
    print(compare()[0])
