"""A4: publication-aware refinement of CKPTSOME (library extension).

Algorithm 2 optimises each superchain in isolation; a coalesced segment
publishes its data only at its final checkpoint, which can stall other
processors.  :func:`repro.checkpoint.refine.refine_plan` greedily splits
such segments when it provably lowers the global expected makespan.

This ablation measures the refinement on the paper's three families
(where the improved ``mspgify`` structure already leaves little on the
table) and on the adversarial blocking scenario from the test suite
(where it recovers ~30% — the upper end of what superchain-local
optimisation can lose).  Artefact: ``benchmarks/results/ablation_refine.txt``.
"""

import pytest

from repro.api import run_strategies
from repro.checkpoint.refine import refine_plan
from repro.generators import generate
from repro.makespan.pathapprox import pathapprox
from repro.makespan.segment_dag import build_segment_dag
from repro.util.tables import format_table

from benchmarks.conftest import FULL, save_artifact
from tests.test_refine import blocking_workflow, build_plan

NTASKS = 300 if FULL else 50


@pytest.fixture(scope="module")
def refine_rows():
    rows = []
    for family in ("genome", "montage", "ligo"):
        out = run_strategies(
            generate(family, NTASKS, seed=9), 5, pfail=0.001, ccr=0.1, seed=10
        )
        before = pathapprox(
            build_segment_dag(out.workflow, out.schedule, out.plan_some, out.platform)
        )
        refined, after, applied = refine_plan(
            out.plan_some, out.workflow, out.schedule, out.platform
        )
        rows.append(
            [family, before, after, 100 * (1 - after / before), applied]
        )
    # adversarial scenario
    wf, sched, plat = blocking_workflow()
    plan = build_plan(wf, sched, plat)
    before = pathapprox(build_segment_dag(wf, sched, plan, plat))
    _, after, applied = refine_plan(plan, wf, sched, plat)
    rows.append(["blocking*", before, after, 100 * (1 - after / before), applied])
    text = format_table(
        ["workload", "EM before", "EM after", "gain %", "splits"],
        rows,
        title="Ablation A4: publication-aware refinement (*adversarial case)",
    )
    save_artifact("ablation_refine.txt", text + "\n")
    return rows


def bench_refine_plan(benchmark, refine_rows):
    """Validates the refinement gains; times one refinement pass."""
    for workload, before, after, gain, applied in refine_rows:
        assert after <= before * (1 + 1e-9), workload
    blocking = refine_rows[-1]
    assert blocking[3] > 20.0  # the adversarial case recovers >20%

    wf, sched, plat = blocking_workflow()
    plan = build_plan(wf, sched, plat)
    benchmark(refine_plan, plan, wf, sched, plat)
