"""§VI-B: accuracy and runtime of the four expected-makespan estimators.

Reproduces the paper's estimator comparison (extended-version table):
MONTECARLO (ground truth, 300k trials — 30k in the CI-sized run) against
DODIN, NORMAL and PATHAPPROX on CKPTALL segment DAGs of the three
families.  The paper's conclusion, asserted here: PATHAPPROX is the most
accurate non-sampling estimator and orders of magnitude faster than
Monte Carlo.  Artefact: ``benchmarks/results/accuracy.txt``.
"""

import pytest

from repro.experiments.accuracy import render_accuracy, run_accuracy

from benchmarks.conftest import FULL, save_artifact

MC_TRIALS = 300_000 if FULL else 30_000
NTASKS = 300 if FULL else 50


@pytest.fixture(scope="module")
def accuracy_rows():
    rows = run_accuracy(
        families=("genome", "montage", "ligo"),
        ntasks=NTASKS,
        processors=10,
        pfails=(0.01, 0.001),
        ccr=0.01,
        mc_trials=MC_TRIALS,
        seed=2017,
    )
    save_artifact(
        "accuracy.txt", render_accuracy(rows, title="§VI-B estimator accuracy") + "\n"
    )
    return rows


def bench_accuracy_table(benchmark, accuracy_rows):
    """Validates the accuracy table; times one PATHAPPROX evaluation."""
    by_method = {}
    for r in accuracy_rows:
        key = "montecarlo" if r.method.startswith("montecarlo") else r.method
        by_method.setdefault(key, []).append(r)

    # PATHAPPROX: within 1% of the Monte Carlo ground truth everywhere.
    for r in by_method["pathapprox"]:
        assert abs(r.relative_error) < 0.01, (r.family, r.pfail, r.relative_error)
    # ... and the most accurate of the three non-sampling estimators.
    def worst(method):
        return max(abs(r.relative_error) for r in by_method[method])

    assert worst("pathapprox") <= worst("normal") + 1e-9
    assert worst("pathapprox") <= worst("dodin") + 1e-9
    # ... and much faster than the Monte Carlo reference.
    mc_time = sum(r.runtime_seconds for r in by_method["montecarlo"])
    pa_time = sum(r.runtime_seconds for r in by_method["pathapprox"])
    assert pa_time < mc_time

    # Timed kernel: PATHAPPROX on one CKPTALL genome DAG.
    from repro.api import run_strategies
    from repro.generators import genome
    from repro.makespan.pathapprox import pathapprox

    out = run_strategies(genome(NTASKS, seed=1), 10, pfail=0.001, ccr=0.01, seed=2)
    benchmark(pathapprox, out.dag_all)


def bench_accuracy_montecarlo_reference(benchmark):
    """Times the Monte Carlo reference on the same DAG (for the speedup
    figure quoted in EXPERIMENTS.md)."""
    from repro.api import run_strategies
    from repro.generators import genome
    from repro.makespan.montecarlo import montecarlo

    out = run_strategies(genome(NTASKS, seed=1), 10, pfail=0.001, ccr=0.01, seed=2)
    benchmark(montecarlo, out.dag_all, trials=10_000, seed=3)
