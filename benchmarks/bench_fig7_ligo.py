"""Figure 7: LIGO — relative expected makespan vs CCR.

Regenerates the paper's Figure 7 grid (LIGO Inspiral workflows, CCR swept
over ``[1e-3, 1e0]``).  LIGO is the footnote-2 family: the generated DAGs
are not M-SPGs, so CKPTSOME runs on the ``mspgify``-completed structure
while the baselines price the original data dependencies — occasional
sub-1 ratio points at isolated CCRs are the artefact the paper's
footnote 3 describes.  Artefacts in ``benchmarks/results/fig7.{txt,csv}``.
"""

import pytest

from benchmarks._figure_common import (
    assert_paper_shape,
    representative_cell,
    run_and_save,
)


@pytest.fixture(scope="module")
def fig7_cells():
    return run_and_save("fig7")


def bench_fig7_ligo_grid(benchmark, fig7_cells):
    """Times one representative LIGO cell; validates the saved grid."""
    assert_paper_shape(fig7_cells)
    cell = benchmark(representative_cell("fig7"))
    assert cell.em_some > 0
