"""A1: linearization ablation — random topological sort vs min-live-volume.

The paper's future work (§VIII) suggests replacing the arbitrary
topological sort of ``OnOneProcessor`` with an order that reduces the
live output volume, hoping to cut the checkpointing cost placed by
Algorithm 2.  This ablation runs both linearisers (and the deterministic
Kahn order) across the three families and reports the CKPTSOME expected
makespan and total checkpointed I/O.  Artefact:
``benchmarks/results/ablation_linearize.txt``.
"""

import pytest

from repro.api import run_strategies
from repro.generators import generate
from repro.util.tables import format_table

from benchmarks.conftest import FULL, save_artifact

NTASKS = 300 if FULL else 50
FAMILIES = ("genome", "montage", "ligo")
METHODS = ("random", "deterministic", "minlive")


@pytest.fixture(scope="module")
def linearize_rows():
    rows = []
    for family in FAMILIES:
        wf = generate(family, NTASKS, seed=5)
        for method in METHODS:
            out = run_strategies(
                wf, 10, pfail=0.001, ccr=0.1, seed=6, linearizer=method
            )
            rows.append(
                [
                    family,
                    method,
                    out.em_some,
                    out.plan_some.total_io_seconds,
                    out.plan_some.n_segments,
                ]
            )
    text = format_table(
        ["family", "linearizer", "EM(some)", "ckpt I/O s", "#segments"],
        rows,
        title="Ablation A1: superchain linearization heuristics",
    )
    save_artifact("ablation_linearize.txt", text + "\n")
    return rows


def bench_linearize_ablation(benchmark, linearize_rows):
    """Sanity-checks the ablation table; times a minlive linearisation."""
    by_family = {}
    for family, method, em, io, _ in linearize_rows:
        by_family.setdefault(family, {})[method] = (em, io)
    for family, res in by_family.items():
        # minlive must not be catastrophically worse than random
        assert res["minlive"][0] <= res["random"][0] * 1.10, family

    from repro.generators import generate
    from repro.scheduling.linearize import linearize

    wf = generate("montage", NTASKS, seed=5)
    benchmark(linearize, wf.task_ids, wf, "minlive", 7)
