"""P1: Algorithm 2 is O(n²) — empirical scaling of the checkpoint DP.

Times the full per-superchain pipeline (cost-table construction +
dynamic program) on synthetic chains of growing length and records the
scaling exponent.  Artefact: ``benchmarks/results/dp_scaling.txt``.
"""

import math
import time

import pytest

from repro.checkpoint.dp import optimal_checkpoint_positions
from repro.checkpoint.segments import SuperchainCostModel
from repro.platform import Platform
from repro.scheduling.schedule import Superchain
from repro.util.tables import format_table

from benchmarks.conftest import FULL, save_artifact
from tests.conftest import make_chain

SIZES = (25, 50, 100, 200, 400) if FULL else (25, 50, 100, 200)


def chain_model(n: int) -> SuperchainCostModel:
    wf = make_chain(n, weight=10.0, size=2e6)
    sc = Superchain(0, 0, tuple(wf.task_ids))
    return SuperchainCostModel(
        wf, sc, Platform(1, failure_rate=1e-4, bandwidth=1e6)
    )


@pytest.fixture(scope="module")
def dp_scaling_rows():
    rows = []
    for n in SIZES:
        model = chain_model(n)
        t0 = time.perf_counter()
        positions, value = optimal_checkpoint_positions(model)
        dt = time.perf_counter() - t0
        rows.append([n, dt, len(positions), value])
    text = format_table(
        ["n", "seconds", "#ckpts", "ETime"],
        rows,
        title="Algorithm 2 scaling (cost table + DP, superchain = chain)",
    )
    # empirical exponent between the two largest sizes
    (n1, t1), (n2, t2) = [(r[0], r[1]) for r in rows[-2:]]
    exponent = math.log(t2 / t1) / math.log(n2 / n1)
    text += f"\nempirical exponent (last two sizes): {exponent:.2f}\n"
    save_artifact("dp_scaling.txt", text)
    return rows, exponent


def bench_dp_checkpoint_placement(benchmark, dp_scaling_rows):
    """Times Algorithm 2 on a 100-task superchain; checks ~quadratic growth."""
    rows, exponent = dp_scaling_rows
    # allow generous slack: constant factors and cache effects at small n
    assert exponent < 3.2
    model = chain_model(100)
    benchmark(optimal_checkpoint_positions, model)
