"""Kernel-layer microbenchmark: scalar vs batched vs plan-replayed.

Times the three distribution primitives (convolve / max / truncate) as
per-row scalar loops against their single-call
:class:`~repro.makespan.batch.BatchDistribution` counterparts, in both
truncation modes (``adaptive`` — the ragged bit-exactness reference —
and ``rect`` — fixed-width binning), and the PATHAPPROX fold as the
per-cell scalar reference against the compiled fold-plan replay
(:func:`~repro.makespan.pathapprox.pathapprox_batch`) on a real MONTAGE
structure group.  All comparisons assert bit-identical results before
any timing is reported.

A native-vs-python pass times each scalar primitive with the compiled
kernels (:mod:`repro.makespan.native`) enabled and disabled — parity
asserted — and lands as the ``native`` block of the JSON summary.  One
profiled replay pass collects the kernel counters, so the summary
carries the **scalar-fallback ratio** (share of batched rows finalised
through the scalar kernel — the number the rect mode exists to drive
down) and the fold executor's pool-singleton ratio.  The
machine-readable summary lands in ``BENCH_kernel.json`` at the repo
root; ``REPRO_BENCH_SMOKE=1`` shrinks sizes for the CI bench-smoke job.
Run directly::

    PYTHONPATH=src:. python benchmarks/bench_kernels.py
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.engine import Pipeline
from repro.makespan import profile as kernel_profile
from repro.makespan.batch import BatchDistribution, rows_of
from repro.makespan.distribution import (
    MODE_ADAPTIVE,
    MODE_RECT,
    DiscreteDistribution,
)
from repro.makespan.paramdag import ParamDAG
from repro.makespan.pathapprox import (
    pathapprox,
    pathapprox_batch,
    pathapprox_fused,
)
from repro.util.rng import stable_seed

from benchmarks.conftest import save_artifact, save_json

#: Tiny sizes for the CI smoke job (JSON shape, not timings).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

N_CELLS = 8 if SMOKE else 64
N_ATOMS = 16 if SMOKE else 64
#: Truncation budget below the operand width, so every op truncates.
BUDGET = max(4, N_ATOMS // 2)
REPEATS = 2 if SMOKE else 20


def random_batch(seed: int, n_cells: int, n_atoms: int) -> BatchDistribution:
    rng = np.random.default_rng(seed)
    return BatchDistribution.stack(
        [
            DiscreteDistribution(
                rng.uniform(0.0, 100.0, n_atoms),
                rng.uniform(0.05, 1.0, n_atoms),
            )
            for _ in range(n_cells)
        ]
    )


def _best(fn: Callable[[], object], repeats: int) -> Tuple[float, object]:
    """Minimum wall time over ``repeats`` runs, plus the last result."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _assert_rows_equal(
    scalar: List[DiscreteDistribution], batched, label: str
) -> None:
    rows = rows_of(batched) if not isinstance(batched, list) else batched
    assert len(rows) == len(scalar), label
    for s, b in zip(scalar, rows):
        assert np.array_equal(s.values, b.values), label
        assert np.array_equal(s.probs, b.probs), label


def bench_primitives() -> Dict[str, Dict[str, Dict[str, float]]]:
    """Scalar-loop vs batched-call timings for each primitive × mode."""
    a = random_batch(1, N_CELLS, N_ATOMS)
    b = random_batch(2, N_CELLS, N_ATOMS)
    a_rows, b_rows = a.rows(), b.rows()
    ops: Dict[str, Tuple[Callable, Callable]] = {
        "convolve": (
            lambda mode: [
                x.convolve(y, BUDGET, mode) for x, y in zip(a_rows, b_rows)
            ],
            lambda mode: a.convolve(b, BUDGET, mode),
        ),
        "max": (
            lambda mode: [
                x.max_with(y, BUDGET, mode) for x, y in zip(a_rows, b_rows)
            ],
            lambda mode: a.max_with(b, BUDGET, mode),
        ),
        "truncate": (
            lambda mode: [x.truncate(BUDGET, mode) for x in a_rows],
            lambda mode: a.truncate(BUDGET, mode),
        ),
    }
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name, (scalar_fn, batch_fn) in ops.items():
        out[name] = {}
        for mode in (MODE_ADAPTIVE, MODE_RECT):
            scalar_wall, scalar_res = _best(lambda: scalar_fn(mode), REPEATS)
            batch_wall, batch_res = _best(lambda: batch_fn(mode), REPEATS)
            _assert_rows_equal(scalar_res, batch_res, f"{name}/{mode}")
            out[name][mode] = {
                "scalar_wall_s": scalar_wall,
                "batched_wall_s": batch_wall,
                "speedup": scalar_wall / batch_wall,
                "rows_per_s": N_CELLS / batch_wall,
            }
    return out


def fold_templates() -> List[ParamDAG]:
    """Structure groups of a real MONTAGE-50 grid, largest first.

    Both checkpoint strategies contribute DAGs (CKPTSOME and CKPTALL
    structures differ), so the returned templates are exactly the
    multi-template job-list a fused sweep dispatch would pool.
    """
    pipe = Pipeline()
    family, size, procs = "montage", 50, 5
    wf = pipe.prepare(family, size, stable_seed(2017, family, size))
    tree = pipe.mspg_tree(wf)
    schedule = pipe.schedule_for(
        wf, procs, seed=stable_seed(2017, family, size, procs), tree=tree
    )
    pfails = (0.01,) if SMOKE else (0.01, 0.001)
    ccrs = (1e-2,) if SMOKE else (1e-3, 1e-2, 1e-1, 1e0)
    dags = []
    for pfail in pfails:
        for ccr in ccrs:
            platform = pipe.platform_for(wf, procs, pfail, 100e6)
            scaled = pipe.scale(wf, platform, ccr)
            plan_some, plan_all = pipe.plans(scaled, schedule, platform, True)
            dags.append(pipe.segment_dag(scaled, schedule, plan_some, platform))
            dags.append(pipe.segment_dag(scaled, schedule, plan_all, platform))
    groups: Dict[object, List[int]] = {}
    for i, dag in enumerate(dags):
        groups.setdefault(ParamDAG.structure_key(dag), []).append(i)
    ordered = sorted(groups.values(), key=len, reverse=True)
    return [
        ParamDAG.from_dags([dags[i] for i in indices]) for indices in ordered
    ]


def fold_template() -> ParamDAG:
    """Largest structure group of the MONTAGE-50 grid."""
    return fold_templates()[0]


def bench_fold(template: ParamDAG) -> Dict[str, Dict[str, float]]:
    """Per-cell scalar fold vs compiled plan replay, both modes."""
    out: Dict[str, Dict[str, float]] = {}
    for mode in (MODE_ADAPTIVE, MODE_RECT):
        t0 = time.perf_counter()
        scalar = np.array(
            [
                pathapprox(template.cell(c), truncate_mode=mode)
                for c in range(template.n_cells)
            ]
        )
        scalar_wall = time.perf_counter() - t0
        # min over repeats: the first replay also pays plan compilation,
        # later ones replay cached plans (the steady-state sweep cost).
        plan_wall, replayed = _best(
            lambda: pathapprox_batch(template, truncate_mode=mode),
            2 if SMOKE else 3,
        )
        assert np.array_equal(scalar, replayed), f"fold/{mode}"
        out[mode] = {
            "cells": template.n_cells,
            "scalar_wall_s": scalar_wall,
            "plan_wall_s": plan_wall,
            "speedup": scalar_wall / plan_wall,
            "cells_per_s": template.n_cells / plan_wall,
        }
    return out


def bench_fused(templates: List[ParamDAG]) -> Dict[str, float]:
    """Sequential per-template replay vs one fused multi-template pass.

    The fused work-list pools every template's wavefronts through
    shared :func:`~repro.makespan.foldplan.execute_plans` passes;
    results are asserted bit-identical per template before timing.
    """
    jobs = [(tpl, {}, None) for tpl in templates]
    seq_wall, seq_res = _best(
        lambda: [pathapprox_batch(tpl) for tpl in templates],
        2 if SMOKE else 3,
    )
    fused_wall, fused_res = _best(
        lambda: pathapprox_fused(jobs), 2 if SMOKE else 3
    )
    for seq, fused in zip(seq_res, fused_res):
        assert np.array_equal(seq, fused), "fused multi-template parity"
    cells = sum(tpl.n_cells for tpl in templates)
    return {
        "templates": len(templates),
        "cells": cells,
        "sequential_wall_s": seq_wall,
        "fused_wall_s": fused_wall,
        "speedup": seq_wall / fused_wall,
        "cells_per_s": cells / fused_wall,
    }


def bench_native() -> Dict[str, object]:
    """Compiled vs pure-python scalar kernels, bit-parity asserted.

    Times the per-row scalar loop for each primitive twice — native
    kernels enabled and disabled — asserting the results identical
    before reporting.  When no compiler is available both passes run
    the python reference and the block records ``available: false``
    (speedups ~1.0), so the JSON shape is stable either way.
    """
    from repro.makespan import native

    a_rows = random_batch(1, N_CELLS, N_ATOMS).rows()
    b_rows = random_batch(2, N_CELLS, N_ATOMS).rows()
    ops: Dict[str, Callable[[], List[DiscreteDistribution]]] = {
        "convolve": lambda: [
            x.convolve(y, BUDGET, MODE_ADAPTIVE)
            for x, y in zip(a_rows, b_rows)
        ],
        "max": lambda: [
            x.max_with(y, BUDGET, MODE_ADAPTIVE)
            for x, y in zip(a_rows, b_rows)
        ],
        "truncate": lambda: [x.truncate(BUDGET, MODE_ADAPTIVE) for x in a_rows],
        "rect_bin": lambda: [x.truncate(BUDGET, MODE_RECT) for x in a_rows],
    }
    was_enabled = native.enabled()
    status = native.status()
    out_ops: Dict[str, Dict[str, float]] = {}
    try:
        for name, fn in ops.items():
            native.set_enabled(True)
            native_wall, native_res = _best(fn, REPEATS)
            native.set_enabled(False)
            python_wall, python_res = _best(fn, REPEATS)
            _assert_rows_equal(python_res, native_res, f"native/{name}")
            out_ops[name] = {
                "python_wall_s": python_wall,
                "native_wall_s": native_wall,
                "speedup": python_wall / native_wall,
            }
    finally:
        native.set_enabled(was_enabled)
    return {
        "available": status["available"],
        "backend": status["backend"],
        "compiler": status["compiler"],
        "ops": out_ops,
    }


def profiled_ratios(template: ParamDAG) -> Dict[str, object]:
    """One profiled pass: batched primitives + plan replay, both modes."""
    a = random_batch(1, N_CELLS, N_ATOMS)
    b = random_batch(2, N_CELLS, N_ATOMS)
    prof = kernel_profile.enable()
    try:
        for mode in (MODE_ADAPTIVE, MODE_RECT):
            a.convolve(b, BUDGET, mode)
            a.max_with(b, BUDGET, mode)
            a.truncate(BUDGET, mode)
            pathapprox_batch(template, truncate_mode=mode)
        snap = prof.snapshot()
    finally:
        kernel_profile.disable()
    return snap


def compare() -> str:
    primitives = bench_primitives()
    native = bench_native()
    templates = fold_templates()
    template = templates[0]
    fold = bench_fold(template)
    fused = bench_fused(templates)
    snap = profiled_ratios(template)

    lines = [
        f"kernel microbenchmark — {N_CELLS} cells x {N_ATOMS} atoms, "
        f"budget {BUDGET}"
    ]
    for name, modes in primitives.items():
        for mode, stats in modes.items():
            lines.append(
                f"  {name:<9} {mode:<8} scalar {stats['scalar_wall_s']*1e3:8.2f}ms  "
                f"batched {stats['batched_wall_s']*1e3:8.2f}ms  "
                f"speedup {stats['speedup']:5.2f}x"
            )
    lines.append(
        f"  native kernels: {native['backend']}"
        + (f" ({native['compiler']})" if native["compiler"] else "")
    )
    for name, stats in native["ops"].items():
        lines.append(
            f"  {name:<9} native   python {stats['python_wall_s']*1e3:8.2f}ms  "
            f"native  {stats['native_wall_s']*1e3:8.2f}ms  "
            f"speedup {stats['speedup']:5.2f}x"
        )
    for mode, stats in fold.items():
        lines.append(
            f"  fold      {mode:<8} scalar {stats['scalar_wall_s']:7.2f}s   "
            f"plan    {stats['plan_wall_s']:7.2f}s   "
            f"speedup {stats['speedup']:5.2f}x  "
            f"({stats['cells_per_s']:.2f} cells/s, {stats['cells']} cells)"
        )
    lines.append(
        f"  fused     {fused['templates']} templates "
        f"({fused['cells']} cells)  "
        f"sequential {fused['sequential_wall_s']:7.2f}s  "
        f"fused {fused['fused_wall_s']:7.2f}s  "
        f"speedup {fused['speedup']:5.2f}x"
    )
    ratio = snap["scalar_fallback_ratio"]
    pooled = snap["pool_singleton_ratio"]
    lines.append(f"  scalar-fallback ratio {ratio:.4f}" if ratio is not None else "")
    if pooled is not None:
        lines.append(f"  pool singleton ratio  {pooled:.4f}")

    summary = {
        "benchmark": "kernels",
        "smoke": SMOKE,
        "n_cells": N_CELLS,
        "n_atoms": N_ATOMS,
        "budget": BUDGET,
        "ops": primitives,
        "native": native,
        "fold": fold,
        "fused": fused,
        "scalar_fallback_ratio": ratio,
        "pool_singleton_ratio": pooled,
        "profile_ops": snap["ops"],
    }
    save_json("BENCH_kernel.json", summary)
    return "\n".join(line for line in lines if line)


def bench_kernels(benchmark):
    """Times the batched convolve kernel; validates parity along the way."""
    report = compare()
    save_artifact("kernels.txt", report + "\n")
    a = random_batch(1, N_CELLS, N_ATOMS)
    b = random_batch(2, N_CELLS, N_ATOMS)
    benchmark(lambda: a.convolve(b, BUDGET, MODE_ADAPTIVE))


if __name__ == "__main__":
    print(compare())
