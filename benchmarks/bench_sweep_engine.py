"""Sweep-engine micro-benchmark: staged artifact cache vs legacy loop.

Runs the same MONTAGE (pfail × CCR) grid two ways:

* **legacy**: one full per-cell pipeline per grid point (regenerate,
  ``mspgify``, ``allocate``, plan, evaluate — the shape of the seed's
  serial loops via :func:`repro.experiments.figures.run_cell`);
* **engine**: :func:`repro.engine.run_sweep` with the shared artifact
  cache (tree/schedule computed once per (workflow, processors) pair)
  and batched evaluation (one DAG template per structure group), serial
  and with a process pool.

Both produce bit-identical records (asserted); the rendered table is
saved under ``benchmarks/results/sweep_engine.txt`` and the
machine-readable summary in ``BENCH_sweep.json`` at the repo root (see
``bench_eval_batch.py`` for the batched-vs-per-cell evaluation split).
Run directly for a quick table::

    PYTHONPATH=src:. python benchmarks/bench_sweep_engine.py
"""

from __future__ import annotations

import time
from typing import List, Tuple

from repro.engine import (
    COMPUTE_ONLY_STAGES,
    CellResult,
    Pipeline,
    SweepSpec,
    run_sweep,
)
from repro.experiments.figures import log_grid, run_cell

from benchmarks.conftest import FULL, save_artifact, save_json


def montage_spec() -> SweepSpec:
    return SweepSpec(
        family="montage",
        sizes=(50, 300) if FULL else (50,),
        processors={50: (3, 5, 7, 10), 300: (18, 35)},
        pfails=(0.01, 0.001, 0.0001),
        ccrs=log_grid(1e-3, 1e0, 7),
        seed=2017,
        seed_policy="stable",
        name="bench-sweep",
    )


def time_backends(
    spec: SweepSpec, reference: List[CellResult]
) -> List[Tuple[str, float]]:
    """Wall time of the same grid through each pluggable backend.

    Parity is asserted on every row — the backend column is only worth
    tracking if every backend still produces the reference records.
    """
    from repro.engine.backends import RemoteWorkerBackend
    from repro.engine.backends.worker import WorkerLoop

    rows: List[Tuple[str, float]] = []
    for name, kwargs in (
        ("serial", {}),
        ("process", {"jobs": 4}),
        ("subprocess", {"jobs": 4}),
    ):
        t0 = time.perf_counter()
        records = run_sweep(spec, backend=name, **kwargs)
        rows.append((name, time.perf_counter() - t0))
        assert records == reference, f"{name} backend records diverge"
    backend = RemoteWorkerBackend(lease_timeout=120.0)
    loops = [
        WorkerLoop(
            backend.coordinator_url,
            worker_id=f"bench-w{i}",
            poll_interval=0.02,
        ).start()
        for i in range(2)
    ]
    try:
        t0 = time.perf_counter()
        records = run_sweep(spec, backend=backend)
        rows.append(("remote", time.perf_counter() - t0))
        assert records == reference, "remote backend records diverge"
    finally:
        for loop in loops:
            loop.stop()
        backend.close()
    return rows


def run_legacy(spec: SweepSpec) -> List[CellResult]:
    """The seed's shape: a fresh end-to-end pipeline per grid cell."""
    return [
        run_cell(spec.family, n, p, pfail, ccr, seed=spec.seed)
        for n in spec.sizes
        for p in spec.processors[n]
        for pfail in spec.pfails
        for ccr in spec.ccrs
    ]


def compare() -> Tuple[str, List[CellResult]]:
    spec = montage_spec()
    timings = []
    t0 = time.perf_counter()
    legacy = run_legacy(spec)
    timings.append(("legacy per-cell loop", time.perf_counter() - t0))
    pipe = Pipeline()
    t0 = time.perf_counter()
    cached = run_sweep(spec, jobs=1, pipeline=pipe)
    timings.append(("engine cached, jobs=1", time.perf_counter() - t0))
    t0 = time.perf_counter()
    parallel = run_sweep(spec, jobs=4)
    timings.append(("engine cached, jobs=4", time.perf_counter() - t0))
    assert cached == legacy, "engine records diverge from the legacy loop"
    assert parallel == cached, "parallel records diverge from serial"
    backend_rows = time_backends(spec, cached)
    base = timings[0][1]
    lines = [f"sweep engine benchmark — {len(cached)} MONTAGE cells"]
    for name, seconds in timings:
        lines.append(f"  {name:<24} {seconds:8.3f}s  ({base / seconds:5.2f}x)")
    lines.append("  execution backends (same grid, parity asserted):")
    for name, seconds in backend_rows:
        label = f"backend={name}"
        lines.append(f"  {label:<24} {seconds:8.3f}s  ({base / seconds:5.2f}x)")

    # Machine-readable perf trajectory (tracked across PRs).  The hit
    # rate covers stored stages only: plan/build_dag/evaluate are
    # compute-only (keys unique per cell), so their per-cell tallies
    # would dilute it to meaninglessness.
    stage_stats = pipe.cache.stats()
    summary = {
        "benchmark": "sweep_engine",
        "cells": len(cached),
        "legacy_wall_s": timings[0][1],
        "engine_jobs1_wall_s": timings[1][1],
        "engine_jobs4_wall_s": timings[2][1],
        "legacy_cells_per_s": len(cached) / timings[0][1],
        "engine_jobs1_cells_per_s": len(cached) / timings[1][1],
        "engine_jobs4_cells_per_s": len(cached) / timings[2][1],
        "backends": {
            name: {
                "wall_s": seconds,
                "cells_per_s": len(cached) / seconds,
            }
            for name, seconds in backend_rows
        },
        "cache_hit_rate": pipe.cache.hit_rate(),
        "cache_compute_only_stages": list(COMPUTE_ONLY_STAGES),
        "cache_stage_stats": {
            stage: {"hits": s.hits, "misses": s.misses}
            for stage, s in stage_stats.items()
        },
    }
    save_json("BENCH_sweep.json", summary)
    return "\n".join(lines), cached


def bench_sweep_engine(benchmark):
    """Times the cached serial sweep; validates parity along the way."""
    report, cells = compare()
    save_artifact("sweep_engine.txt", report + "\n")
    spec = montage_spec()
    result = benchmark(lambda: run_sweep(spec, jobs=1))
    assert result == cells


if __name__ == "__main__":
    print(compare()[0])
