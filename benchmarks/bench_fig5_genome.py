"""Figure 5: GENOME — relative expected makespan vs CCR.

Regenerates the paper's Figure 5 grid (GENOME workflows, CCR swept over
``[1e-4, 1e-2]``): the relative expected makespan of CKPTALL and CKPTNONE
over CKPTSOME, per workflow size, failure probability and processor
count.  Artefacts land in ``benchmarks/results/fig5.{txt,csv}``; set
``REPRO_FULL=1`` for the complete published grid.

The timed kernel is one full experiment cell (generate → mspgify →
schedule → both checkpoint plans → three expected makespans).
"""

import pytest

from benchmarks._figure_common import (
    assert_paper_shape,
    representative_cell,
    run_and_save,
)


@pytest.fixture(scope="module")
def fig5_cells():
    return run_and_save("fig5")


def bench_fig5_genome_grid(benchmark, fig5_cells):
    """Times one representative GENOME cell; validates the saved grid."""
    assert_paper_shape(fig5_cells)
    cell = benchmark(representative_cell("fig5"))
    assert cell.em_some > 0
