"""Evaluation-service benchmark: store hits and request coalescing.

Runs the same GENOME request mix three ways:

* **naive**: one fresh end-to-end pipeline per request, no store — the
  shape of a client looping over ``run_cell`` (what every caller paid
  before the service existed);
* **coalesced (cold)**: one :class:`repro.service.BatchScheduler` batch
  over an empty store — requests grouped by (workflow, processors) so
  the M-SPG tree and schedule are built once per pair;
* **warm**: the same batch again over the now-populated store — every
  request is a durable-store hit, no computation at all.

All three produce bit-identical records (asserted).  The table lands in
``benchmarks/results/service.txt`` and the machine-readable trajectory
in ``BENCH_service.json`` at the repo root.  Run directly::

    python benchmarks/bench_service.py
"""

from __future__ import annotations

import time
from typing import List, Tuple

from repro.experiments.figures import log_grid, run_cell
from repro.service import BatchScheduler, EvalRequest, ResultStore

from benchmarks.conftest import FULL, save_artifact, save_json


def request_mix() -> List[EvalRequest]:
    """A service-shaped request pile: several (pfail, CCR) cells per
    (workflow, processors) pair, interleaved across pairs the way
    independent clients would submit them."""
    sizes_procs = (
        [(50, 3), (50, 5), (50, 7), (300, 18)] if FULL else [(50, 3), (50, 5)]
    )
    pfails = (0.01, 0.001)
    ccrs = log_grid(1e-3, 1e0, 7 if FULL else 5)
    return [
        EvalRequest(
            family="genome",
            ntasks=n,
            processors=p,
            pfail=pfail,
            ccr=ccr,
            seed=2017,
        )
        for pfail in pfails
        for ccr in ccrs
        for n, p in sizes_procs
    ]


def run_naive(requests: List[EvalRequest]) -> List:
    """One fresh pipeline per request: no store, no coalescing."""
    return [
        run_cell(r.family, r.ntasks, r.processors, r.pfail, r.ccr, seed=r.seed)
        for r in requests
    ]


def compare() -> Tuple[str, List]:
    requests = request_mix()

    t0 = time.perf_counter()
    naive = run_naive(requests)
    naive_s = time.perf_counter() - t0

    store = ResultStore(":memory:")
    scheduler = BatchScheduler(store)
    t0 = time.perf_counter()
    cold = scheduler.evaluate_many(requests)
    cold_s = time.perf_counter() - t0
    assert not any(o.cached for o in cold), "cold run must compute"

    t0 = time.perf_counter()
    warm = scheduler.evaluate_many(requests)
    warm_s = time.perf_counter() - t0
    assert all(o.cached for o in warm), "warm run must be all store hits"

    records = [o.record for o in cold]
    assert records == naive, "service records diverge from run_cell"
    assert [o.record for o in warm] == records, "store hits diverge"

    n = len(requests)
    store_stats = store.stats()
    lines = [
        f"evaluation service benchmark — {n} GENOME requests",
        f"  naive per-request loop    {naive_s:8.3f}s  "
        f"({n / naive_s:7.1f} cells/s)",
        f"  coalesced batch (cold)    {cold_s:8.3f}s  "
        f"({n / cold_s:7.1f} cells/s, {naive_s / cold_s:5.2f}x, "
        f"{scheduler.stats.batches} batches)",
        f"  store hits (warm)         {warm_s:8.3f}s  "
        f"({n / warm_s:7.1f} cells/s, {cold_s / warm_s:5.0f}x vs cold)",
        f"  store: {store_stats.entries} entries, "
        f"session hit rate {store_stats.hit_rate:.2f}",
    ]

    summary = {
        "benchmark": "service",
        "cells": n,
        "naive_wall_s": naive_s,
        "cold_wall_s": cold_s,
        "warm_wall_s": warm_s,
        "naive_cells_per_s": n / naive_s,
        "cold_cells_per_s": n / cold_s,
        "warm_cells_per_s": n / warm_s,
        "coalesce_speedup_vs_naive": naive_s / cold_s,
        "warm_speedup_vs_cold": cold_s / warm_s,
        "batches": scheduler.stats.batches,
        "store_hit_rate": store_stats.hit_rate,
        "store_entries": store_stats.entries,
    }
    save_json("BENCH_service.json", summary)
    store.close()
    return "\n".join(lines), records


def bench_service(benchmark):
    """Times the warm (all store hits) path; validates parity en route."""
    report, records = compare()
    save_artifact("service.txt", report + "\n")
    store = ResultStore(":memory:")
    scheduler = BatchScheduler(store)
    requests = request_mix()
    scheduler.evaluate_many(requests)  # populate

    def warm():
        return scheduler.evaluate_many(requests)

    outcomes = benchmark(warm)
    assert [o.record for o in outcomes] == records
    store.close()


if __name__ == "__main__":
    print(compare()[0])
