"""A2: PATHAPPROX ablation — recursive common-task factoring vs naive
path independence, and sensitivity to the path budget ``k``.

The naive CDF-product estimator counts shared heavy spines once per
candidate path; on fork-join workflows that inflates the estimate by
O(σ_spine·√log k).  This ablation quantifies the effect against a Monte
Carlo reference.  Artefact: ``benchmarks/results/ablation_pathapprox.txt``.
"""

import pytest

from repro.api import run_strategies
from repro.generators import generate
from repro.makespan.montecarlo import montecarlo
from repro.makespan.pathapprox import pathapprox
from repro.util.tables import format_table

from benchmarks.conftest import FULL, save_artifact

NTASKS = 300 if FULL else 50
FAMILIES = ("genome", "montage", "ligo", "sipht")
K_GRID = (1, 5, 20, 50)


@pytest.fixture(scope="module")
def pathapprox_rows():
    rows = []
    for family in FAMILIES:
        out = run_strategies(
            generate(family, NTASKS, seed=7), 10, pfail=0.01, ccr=0.01, seed=8
        )
        dag = out.dag_some
        ref = montecarlo(dag, trials=100_000 if FULL else 40_000, seed=9)
        for k in K_GRID:
            fact = pathapprox(dag, k=k, factor_common=True)
            naive = pathapprox(dag, k=k, factor_common=False)
            rows.append(
                [
                    family,
                    k,
                    ref,
                    fact,
                    100 * (fact / ref - 1),
                    naive,
                    100 * (naive / ref - 1),
                ]
            )
    text = format_table(
        ["family", "k", "MC ref", "factored", "err %", "naive", "err %"],
        rows,
        title="Ablation A2: PATHAPPROX common-task factoring",
    )
    save_artifact("ablation_pathapprox.txt", text + "\n")
    return rows


def bench_pathapprox_factoring(benchmark, pathapprox_rows):
    """Validates that factoring dominates the naive fold; times k=20."""
    # At the default k=20, factored error must beat naive error per family.
    at_default = [r for r in pathapprox_rows if r[1] == 20]
    for family, k, ref, fact, fact_err, naive, naive_err in at_default:
        assert abs(fact_err) <= abs(naive_err) + 0.1, family
        assert abs(fact_err) < 1.5, family

    out = run_strategies(
        generate("montage", NTASKS, seed=7), 10, pfail=0.01, ccr=0.01, seed=8
    )
    benchmark(pathapprox, out.dag_some, 20)
