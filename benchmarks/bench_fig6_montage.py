"""Figure 6: MONTAGE — relative expected makespan vs CCR.

Regenerates the paper's Figure 6 grid (MONTAGE workflows, CCR swept over
``[1e-3, 1e0]``).  MONTAGE exercises the transitive-skip-edge demotion
and the shared-corrections-file deduplication on top of the common
pipeline.  Artefacts in ``benchmarks/results/fig6.{txt,csv}``.
"""

import pytest

from benchmarks._figure_common import (
    assert_paper_shape,
    representative_cell,
    run_and_save,
)


@pytest.fixture(scope="module")
def fig6_cells():
    return run_and_save("fig6")


def bench_fig6_montage_grid(benchmark, fig6_cells):
    """Times one representative MONTAGE cell; validates the saved grid."""
    assert_paper_shape(fig6_cells)
    cell = benchmark(representative_cell("fig6"))
    assert cell.em_some > 0
