"""Shared driver for the three figure benchmarks (Figures 5, 6, 7).

Each figure bench runs the (possibly shrunk) grid once, saves the
rendered table + ASCII panels + CSV under ``benchmarks/results/``,
asserts the paper's qualitative claims on the produced cells, and times
one representative cell evaluation as the benchmark kernel.
"""

from __future__ import annotations

from typing import List

from repro.experiments.claims import check_all_claims, render_claims
from repro.experiments.figures import PAPER_FIGURES, run_cell, run_figure
from repro.experiments.results import (
    CellResult,
    render_cells_table,
    render_figure,
    results_to_csv,
)

from benchmarks.conftest import grid_kwargs, save_artifact


def run_and_save(name: str) -> List[CellResult]:
    spec = PAPER_FIGURES[name].shrink(**grid_kwargs())
    cells = run_figure(spec)
    table = render_cells_table(cells, title=f"{name} ({spec.family})")
    panels = render_figure(cells, title=f"{name} ({spec.family})")
    claims = render_claims(check_all_claims(cells))
    save_artifact(
        f"{name}.txt", table + "\n\n" + panels + "\n\n" + claims + "\n"
    )
    results_to_csv(cells, save_artifact(f"{name}.csv", ""))
    return cells


def assert_paper_shape(cells: List[CellResult]) -> None:
    """The §VI-C observations (claims C1-C6), asserted on the run grid."""
    results = check_all_claims(cells)
    broken = [r for r in results if not r.holds]
    assert not broken, "\n" + render_claims(broken)


def representative_cell(name: str):
    """One mid-grid cell, used as the timed kernel."""
    spec = PAPER_FIGURES[name]
    ccr = spec.ccrs[len(spec.ccrs) // 2]
    return lambda: run_cell(
        spec.family, 50, spec.processors[50][1], 0.001, ccr, seed=spec.seed
    )
