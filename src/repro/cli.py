"""Command-line interface (``repro-workflows`` / ``python -m repro.cli``).

Sub-commands::

    generate   emit a synthetic workflow (DAX or JSON by extension)
    evaluate   run the full strategy comparison on one configuration
    sweep      run a parameter grid through the staged pipeline engine
               (artifact cache + optional --jobs process-pool fan-out;
               records to JSONL/CSV)
    figure     regenerate a paper figure grid (CSV + ASCII panels)
    accuracy   run the §VI-B estimator accuracy study
    simulate   replay one failure-injected execution with an event log
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-workflows",
        description=(
            "Checkpointing Workflows for Fail-Stop Errors (CLUSTER 2017) — "
            "reproduction toolkit"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic workflow")
    gen.add_argument("--family", required=True)
    gen.add_argument("--ntasks", type=int, default=50)
    gen.add_argument("--seed", type=int, default=2017)
    gen.add_argument(
        "--out", type=Path, required=True, help=".dax/.xml or .json output path"
    )

    ev = sub.add_parser("evaluate", help="compare CKPTSOME/ALL/NONE on one cell")
    ev.add_argument("--family", required=True)
    ev.add_argument("--ntasks", type=int, default=50)
    ev.add_argument("--processors", type=int, default=10)
    ev.add_argument("--pfail", type=float, default=1e-3)
    ev.add_argument("--ccr", type=float, default=0.01)
    ev.add_argument("--seed", type=int, default=2017)
    ev.add_argument("--method", default="pathapprox")

    sw = sub.add_parser(
        "sweep",
        help="run a parameter grid through the staged pipeline engine",
        description=(
            "Run a (sizes × processors × pfail × CCR) grid through "
            "repro.engine: the M-SPG tree and schedule are computed once "
            "per (workflow, processors) pair and reused across the "
            "pfail/CCR axes; --jobs N fans the grid out over a process "
            "pool (records are identical for any N)."
        ),
    )
    sw.add_argument("--family", required=True)
    sw.add_argument("--sizes", type=int, nargs="+", default=[50])
    sw.add_argument(
        "--processors",
        type=int,
        nargs="+",
        default=[5],
        help="processor counts, swept for every size",
    )
    sw.add_argument("--pfails", type=float, nargs="+", default=[0.01, 0.001])
    sw.add_argument(
        "--ccrs", type=float, nargs="+", default=None,
        help="explicit CCR values (default: a log grid, see --ccr-grid)",
    )
    sw.add_argument(
        "--ccr-grid",
        type=float,
        nargs=3,
        metavar=("LO", "HI", "POINTS"),
        default=None,
        help="log-spaced CCR grid (default 1e-3 1.0 5)",
    )
    sw.add_argument("--seed", type=int, default=2017)
    sw.add_argument("--method", default="pathapprox")
    sw.add_argument(
        "--seed-policy",
        choices=["spawn", "stable"],
        default="spawn",
        help=(
            "'spawn' derives per-cell seeds via SeedSequence spawning; "
            "'stable' reproduces the historical figure-grid hashing"
        ),
    )
    sw.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (1 = in-process serial, 0 = all cores)",
    )
    sw.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write records to this path (.jsonl or .csv by extension)",
    )
    sw.add_argument("--quiet", action="store_true")

    fig = sub.add_parser("figure", help="regenerate a paper figure grid")
    fig.add_argument("name", choices=["fig5", "fig6", "fig7"])
    fig.add_argument("--sizes", type=int, nargs="*", default=None)
    fig.add_argument("--pfails", type=float, nargs="*", default=None)
    fig.add_argument("--ccr-points", type=int, default=None)
    fig.add_argument("--processors-per-size", type=int, default=None)
    fig.add_argument("--csv", type=Path, default=None)
    fig.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="engine worker processes (1 = serial; identical records)",
    )
    fig.add_argument("--quiet", action="store_true")

    acc = sub.add_parser("accuracy", help="run the §VI-B accuracy study")
    acc.add_argument("--families", nargs="*", default=["genome", "montage", "ligo"])
    acc.add_argument("--ntasks", type=int, default=50)
    acc.add_argument("--processors", type=int, default=10)
    acc.add_argument("--pfails", type=float, nargs="*", default=[0.01, 0.001])
    acc.add_argument("--ccr", type=float, default=0.01)
    acc.add_argument("--mc-trials", type=int, default=100_000)
    acc.add_argument("--seed", type=int, default=2017)

    sim = sub.add_parser("simulate", help="replay one failure-injected run")
    sim.add_argument("--family", required=True)
    sim.add_argument("--ntasks", type=int, default=50)
    sim.add_argument("--processors", type=int, default=5)
    sim.add_argument("--pfail", type=float, default=1e-2)
    sim.add_argument("--ccr", type=float, default=0.01)
    sim.add_argument("--seed", type=int, default=2017)
    sim.add_argument("--strategy", choices=["ckpt_some", "ckpt_all"], default="ckpt_some")
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.generators import generate, write_dax
    from repro.generators.serialization import save_workflow

    wf = generate(args.family, args.ntasks, args.seed)
    suffix = args.out.suffix.lower()
    if suffix in (".dax", ".xml"):
        write_dax(wf, args.out)
    elif suffix == ".json":
        save_workflow(wf, args.out)
    else:
        print(f"unsupported output extension {suffix!r}", file=sys.stderr)
        return 2
    print(f"wrote {wf!r} to {args.out}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.api import run_strategies
    from repro.generators import generate

    wf = generate(args.family, args.ntasks, args.seed)
    outcome = run_strategies(
        wf,
        args.processors,
        pfail=args.pfail,
        ccr=args.ccr,
        seed=args.seed,
        method=args.method,
    )
    print(outcome.summary())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.engine.records import records_to_csv, records_to_jsonl
    from repro.engine.sweep import SweepSpec, run_sweep
    from repro.errors import ExperimentError
    from repro.experiments.figures import log_grid
    from repro.experiments.results import render_cells_table

    if args.out is not None:
        if args.out.suffix.lower() not in (".jsonl", ".csv"):
            print(
                f"unsupported records extension {args.out.suffix!r} "
                "(use .jsonl or .csv)",
                file=sys.stderr,
            )
            return 2
        if not args.out.parent.is_dir():
            print(
                f"output directory {str(args.out.parent)!r} does not exist",
                file=sys.stderr,
            )
            return 2
    if args.ccrs is not None and args.ccr_grid is not None:
        print("--ccrs and --ccr-grid are mutually exclusive", file=sys.stderr)
        return 2
    try:
        if args.ccrs is not None:
            ccrs = tuple(args.ccrs)
        else:
            lo, hi, points = args.ccr_grid or (1e-3, 1.0, 5)
            ccrs = log_grid(lo, hi, int(points))
        spec = SweepSpec(
            family=args.family,
            sizes=tuple(args.sizes),
            processors={n: tuple(args.processors) for n in args.sizes},
            pfails=tuple(args.pfails),
            ccrs=ccrs,
            seed=args.seed,
            method=args.method,
            seed_policy=args.seed_policy,
            name=f"sweep[{args.family}]",
        )
    except ExperimentError as exc:
        print(f"invalid sweep grid: {exc}", file=sys.stderr)
        return 2
    progress = None if args.quiet else (lambda msg: print("  " + msg))
    records = run_sweep(spec, jobs=args.jobs, progress=progress)
    print()
    print(render_cells_table(records, title=f"sweep ({args.family})"))
    if args.out is not None:
        if args.out.suffix.lower() == ".jsonl":
            records_to_jsonl(records, args.out)
        else:
            records_to_csv(records, args.out)
        print(f"\nwrote {len(records)} records to {args.out}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments import (
        PAPER_FIGURES,
        render_figure,
        results_to_csv,
        run_figure,
    )
    from repro.experiments.results import render_cells_table

    spec = PAPER_FIGURES[args.name].shrink(
        sizes=args.sizes,
        pfails=args.pfails,
        ccr_points=args.ccr_points,
        processors_per_size=args.processors_per_size,
    )
    progress = None if args.quiet else (lambda msg: print("  " + msg))
    cells = run_figure(spec, progress=progress, jobs=args.jobs)
    print()
    print(render_cells_table(cells, title=f"{args.name} ({spec.family})"))
    print()
    print(render_figure(cells, title=args.name))
    if args.csv is not None:
        results_to_csv(cells, args.csv)
        print(f"\nwrote {len(cells)} cells to {args.csv}")
    return 0


def _cmd_accuracy(args: argparse.Namespace) -> int:
    from repro.experiments.accuracy import render_accuracy, run_accuracy

    rows = run_accuracy(
        families=args.families,
        ntasks=args.ntasks,
        processors=args.processors,
        pfails=args.pfails,
        ccr=args.ccr,
        mc_trials=args.mc_trials,
        seed=args.seed,
    )
    print(render_accuracy(rows, title="§VI-B estimator accuracy"))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.checkpoint.strategies import plan_for_strategy
    from repro.experiments.ccr import scale_to_ccr
    from repro.generators import generate
    from repro.mspg.transform import mspgify
    from repro.platform import Platform, lambda_from_pfail
    from repro.scheduling.allocate import allocate
    from repro.simulation import replay_plan

    wf = generate(args.family, args.ntasks, args.seed)
    lam = lambda_from_pfail(args.pfail, wf.mean_weight)
    platform = Platform(args.processors, failure_rate=lam)
    wf = scale_to_ccr(wf, platform, args.ccr)
    tree = mspgify(wf).tree
    schedule = allocate(wf, tree, args.processors, seed=args.seed)
    plan = plan_for_strategy(args.strategy, wf, schedule, platform)
    trace = replay_plan(wf, schedule, plan, platform, seed=args.seed)
    print(
        f"{args.strategy} on {wf.name}: makespan={trace.makespan:.1f}s, "
        f"{trace.n_failures} failures, {trace.wasted_seconds:.1f}s wasted"
    )
    for line in trace.gantt_lines():
        print(line)
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "evaluate": _cmd_evaluate,
    "sweep": _cmd_sweep,
    "figure": _cmd_figure,
    "accuracy": _cmd_accuracy,
    "simulate": _cmd_simulate,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
