"""Command-line interface (``repro`` / ``python -m repro.cli``).

Sub-commands::

    generate   emit a synthetic workflow (DAX or JSON by extension)
    evaluate   run the full strategy comparison on one configuration
               (a synthetic --family or an external --dax workflow)
    methods    list the registered expected-makespan evaluators
    kernels    show which distribution-kernel backend (compiled native
               vs pure-python reference) serves each primitive
    sweep      run a parameter grid through the staged pipeline engine
               (artifact cache + optional --jobs process-pool fan-out;
               records to JSONL/CSV; --no-batch-eval forces the
               per-cell reference path, --no-fused-eval the per-group
               dispatch; --dax sweeps an external workflow file
               instead of a synthetic family)
    figure     regenerate a paper figure grid (CSV + ASCII panels)
    accuracy   run the §VI-B estimator accuracy study
    simulate   replay one failure-injected execution with an event log
    serve      run the persistent evaluation service (HTTP + SQLite);
               --backend remote turns it into the coordinator of a
               worker fleet
    submit     submit one cell to a running service (or --local store);
               --dax registers + submits an external workflow
    worker     run a fleet worker: poll a coordinator for leased work
               units (`repro worker URL`) or listen for recruitment
               (`repro worker --listen PORT`)
    store      export/import a service result store as JSONL (offline
               cache interchange between machines)
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path
from typing import List, Optional

from repro import __version__
from repro.util.validation import ccr_error, pfail_error, seed_error

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    """argparse type: strictly positive integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _seed_value(text: str) -> int:
    """argparse type: non-negative root seed (SeedSequence-compatible)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    msg = seed_error(value)
    if msg is not None:
        raise argparse.ArgumentTypeError(msg)
    return value


def _pfail_value(text: str) -> float:
    """argparse type: failure probability in [0, 1)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number") from None
    msg = pfail_error(value)
    if msg is not None:
        raise argparse.ArgumentTypeError(msg)
    return value


def _ccr_value(text: str) -> float:
    """argparse type: non-negative CCR target."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number") from None
    msg = ccr_error(value)
    if msg is not None:
        raise argparse.ArgumentTypeError(msg)
    return value


def _jobs_count(text: str) -> int:
    """argparse type: worker count (0 = all cores, else >= 1)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"--jobs must be >= 0, got {value} (0 = one worker per core)"
        )
    return value


def _family_or_dax(args: argparse.Namespace, command: str) -> Optional[str]:
    """Enforce "exactly one of --family / --dax"; returns an error line.

    (Returned, not printed, so callers control the stream and exit
    code — every caller maps a message to exit 2.)
    """
    if args.family is None and args.dax is None:
        return f"repro {command}: one of --family or --dax is required"
    if args.family is not None and args.dax is not None:
        return f"repro {command}: --family and --dax are mutually exclusive"
    if args.dax is not None and getattr(args, "ntasks", None) is not None:
        return (
            f"repro {command}: --ntasks cannot be combined with --dax "
            "(the workflow file fixes its own task count)"
        )
    return None


def _unknown_family_message(family: str) -> str:
    """One-line exit-2 message for an unregistered workflow family."""
    from repro.generators import FAMILIES

    return (
        f"unknown workflow family {family!r}; registered families: "
        f"{', '.join(sorted(FAMILIES))} (or pass an external workflow "
        "file with --dax)"
    )


def _check_family(family: str) -> Optional[str]:
    """The unknown-family message, or ``None`` when registered."""
    from repro.generators import FAMILIES

    if family.lower() not in FAMILIES:
        return _unknown_family_message(family)
    return None


def _load_dax_source(path: Path):
    """Load a workflow file as a :class:`~repro.workloads.FileSource`.

    Raises :class:`~repro.errors.SerializationError` (bad suffix,
    unparseable/inconsistent document) and
    :class:`~repro.errors.WorkflowError` (empty workflow) — callers map
    both to exit 2 with the error's one-line message.
    """
    from repro.workloads import load_source

    return load_source(path)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Checkpointing Workflows for Fail-Stop Errors (CLUSTER 2017) — "
            "reproduction toolkit"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic workflow")
    gen.add_argument("--family", required=True)
    gen.add_argument("--ntasks", type=_positive_int, default=50)
    gen.add_argument("--seed", type=_seed_value, default=2017)
    gen.add_argument(
        "--out", type=Path, required=True, help=".dax/.xml or .json output path"
    )

    ev = sub.add_parser("evaluate", help="compare CKPTSOME/ALL/NONE on one cell")
    ev.add_argument("--family", default=None, help="synthetic workflow family")
    ev.add_argument(
        "--dax",
        type=Path,
        default=None,
        help="external workflow file (.dax/.xml or .json) instead of --family",
    )
    ev.add_argument(
        "--ntasks",
        type=_positive_int,
        default=None,
        help="requested task count for --family (default 50); "
        "incompatible with --dax (the file fixes its own task count)",
    )
    ev.add_argument("--processors", type=_positive_int, default=10)
    ev.add_argument("--pfail", type=_pfail_value, default=1e-3)
    ev.add_argument("--ccr", type=_ccr_value, default=0.01)
    ev.add_argument("--seed", type=_seed_value, default=2017)
    ev.add_argument("--method", default="pathapprox")
    ev.add_argument(
        "--eval-seed-policy",
        choices=["positional", "content"],
        default="positional",
        help=(
            "'content' pins stochastic sampling (Monte Carlo) to the "
            "content-derived cell_eval_seed stream; 'positional' keeps "
            "the historical fresh-entropy draw"
        ),
    )

    met = sub.add_parser(
        "methods",
        help="list registered expected-makespan evaluators",
        description=(
            "List every evaluator in the makespan registry with its "
            "declared keyword options and capabilities (deterministic "
            "vs stochastic, batched grid evaluation)."
        ),
    )
    met.add_argument(
        "--json", action="store_true", help="emit the registry as JSON"
    )

    sw = sub.add_parser(
        "sweep",
        help="run a parameter grid through the staged pipeline engine",
        description=(
            "Run a (sizes × processors × pfail × CCR) grid through "
            "repro.engine: the M-SPG tree and schedule are computed once "
            "per (workflow, processors) pair and reused across the "
            "pfail/CCR axes; --jobs N fans the grid out over an "
            "execution backend (--backend; a process pool by default), "
            "and records are identical for any N and any backend."
        ),
    )
    sw.add_argument("--family", default=None, help="synthetic workflow family")
    sw.add_argument(
        "--dax",
        type=Path,
        default=None,
        help=(
            "sweep an external workflow file (.dax/.xml or .json) instead "
            "of a synthetic --family; the grid's single size is the "
            "file's task count"
        ),
    )
    sw.add_argument("--sizes", type=_positive_int, nargs="+", default=None)
    sw.add_argument(
        "--processors",
        type=_positive_int,
        nargs="+",
        default=[5],
        help="processor counts, swept for every size",
    )
    sw.add_argument("--pfails", type=_pfail_value, nargs="+", default=[0.01, 0.001])
    sw.add_argument(
        "--ccrs", type=_ccr_value, nargs="+", default=None,
        help="explicit CCR values (default: a log grid, see --ccr-grid)",
    )
    sw.add_argument(
        "--ccr-grid",
        type=float,
        nargs=3,
        metavar=("LO", "HI", "POINTS"),
        default=None,
        help="log-spaced CCR grid (default 1e-3 1.0 5)",
    )
    sw.add_argument("--seed", type=_seed_value, default=2017)
    sw.add_argument("--method", default="pathapprox")
    sw.add_argument(
        "--seed-policy",
        choices=["spawn", "stable"],
        default="spawn",
        help=(
            "'spawn' derives per-cell seeds via SeedSequence spawning; "
            "'stable' reproduces the historical figure-grid hashing"
        ),
    )
    sw.add_argument(
        "--eval-seed-policy",
        choices=["positional", "content"],
        default="positional",
        help=(
            "'positional' derives stochastic sampling seeds from each "
            "cell's grid position (the historical records); 'content' "
            "derives them from cell content (position-independent — "
            "such Monte Carlo records can be coalesced, stored and "
            "backfilled by the service)"
        ),
    )
    sw.add_argument(
        "--jobs",
        type=_jobs_count,
        default=1,
        help="worker processes (1 = in-process serial, 0 = all cores)",
    )
    sw.add_argument(
        "--backend",
        choices=["serial", "process", "subprocess", "remote"],
        default=None,
        help=(
            "execution backend for the fan-out: 'process' (the --jobs "
            "default), 'serial' (one-at-a-time reference), 'subprocess' "
            "(a fresh interpreter per chunk — native crashes cost one "
            "chunk), or 'remote' (fan out to a `repro worker` fleet; "
            "the coordinator URL is printed at startup).  Records are "
            "bit-identical on every backend"
        ),
    )
    sw.add_argument(
        "--workers",
        nargs="+",
        default=[],
        metavar="URL",
        help=(
            "attachable worker URLs to recruit (--backend remote; "
            "start them with `repro worker --listen PORT`)"
        ),
    )
    sw.add_argument(
        "--lease-timeout",
        type=float,
        default=30.0,
        help=(
            "seconds a remote worker owns a leased chunk before it is "
            "presumed dead and the chunk requeued (--backend remote)"
        ),
    )
    sw.add_argument(
        "--worker-grace",
        type=float,
        default=60.0,
        help=(
            "seconds the remote backend waits with no live worker "
            "before finishing the sweep serially in-process "
            "(--backend remote)"
        ),
    )
    sw.add_argument(
        "--no-batch-eval",
        action="store_true",
        help=(
            "price cells one at a time (reference scalar path) instead "
            "of batching each grid group through one DAG template; "
            "records are bit-identical either way"
        ),
    )
    sw.add_argument(
        "--no-fused-eval",
        action="store_true",
        help=(
            "dispatch one evaluation per strategy and structure group "
            "instead of fusing all of a grid group's evaluations into "
            "one multi-template dispatch; records are bit-identical "
            "either way"
        ),
    )
    sw.add_argument(
        "--truncate-mode",
        choices=["adaptive", "rect"],
        default=None,
        help=(
            "kernel truncation mode for pathapprox: 'adaptive' "
            "(default, the bit-exact reference) or 'rect' (fixed-width "
            "binning; every support stays at exactly max_atoms points, "
            "so the batched kernels never drop to the ragged scalar "
            "fallback).  Rect records are a different numerical "
            "approximation and are fingerprinted separately"
        ),
    )
    sw.add_argument(
        "--profile",
        action="store_true",
        help=(
            "collect kernel-level op counters (convolve/max/truncate "
            "calls, batched rows, scalar-fallback ratio, evaluation "
            "dispatches, pooled wavefront width, native-vs-fallback "
            "rows, per-op wall time) and print the table after the "
            "sweep; with --jobs N the workers profile themselves and "
            "the counters are merged"
        ),
    )
    sw.add_argument(
        "--no-native",
        action="store_true",
        help=(
            "disable the compiled distribution kernels and run the "
            "pure-python reference path (bit-identical records, "
            "slower); equivalent to REPRO_NATIVE=0"
        ),
    )
    sw.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write records to this path (.jsonl or .csv by extension)",
    )
    sw.add_argument("--quiet", action="store_true")

    fig = sub.add_parser("figure", help="regenerate a paper figure grid")
    fig.add_argument("name", choices=["fig5", "fig6", "fig7"])
    fig.add_argument("--sizes", type=_positive_int, nargs="*", default=None)
    fig.add_argument("--pfails", type=_pfail_value, nargs="*", default=None)
    fig.add_argument("--ccr-points", type=_positive_int, default=None)
    fig.add_argument("--processors-per-size", type=_positive_int, default=None)
    fig.add_argument("--csv", type=Path, default=None)
    fig.add_argument(
        "--jobs",
        type=_jobs_count,
        default=1,
        help="engine worker processes (1 = serial, 0 = all cores; "
        "identical records)",
    )
    fig.add_argument("--quiet", action="store_true")

    acc = sub.add_parser("accuracy", help="run the §VI-B accuracy study")
    acc.add_argument("--families", nargs="*", default=["genome", "montage", "ligo"])
    acc.add_argument("--ntasks", type=_positive_int, default=50)
    acc.add_argument("--processors", type=_positive_int, default=10)
    acc.add_argument("--pfails", type=_pfail_value, nargs="*", default=[0.01, 0.001])
    acc.add_argument("--ccr", type=_ccr_value, default=0.01)
    acc.add_argument("--mc-trials", type=_positive_int, default=100_000)
    acc.add_argument("--seed", type=_seed_value, default=2017)

    sim = sub.add_parser("simulate", help="replay one failure-injected run")
    sim.add_argument("--family", required=True)
    sim.add_argument("--ntasks", type=_positive_int, default=50)
    sim.add_argument("--processors", type=_positive_int, default=5)
    sim.add_argument("--pfail", type=_pfail_value, default=1e-2)
    sim.add_argument("--ccr", type=_ccr_value, default=0.01)
    sim.add_argument("--seed", type=_seed_value, default=2017)
    sim.add_argument("--strategy", choices=["ckpt_some", "ckpt_all"], default="ckpt_some")

    srv = sub.add_parser(
        "serve",
        help="run the persistent evaluation service",
        description=(
            "Start the HTTP evaluation service: POST /evaluate and /sweep "
            "requests are deduped, answered from the durable SQLite store "
            "where possible, and the misses are coalesced into sweep "
            "batches grouped by (workflow, processors) before hitting the "
            "pipeline engine."
        ),
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument(
        "--port",
        type=int,
        default=8765,
        help="listen port (0 = ephemeral, printed at startup)",
    )
    srv.add_argument(
        "--store",
        type=Path,
        default=Path("repro-service.db"),
        help="SQLite result store path (default ./repro-service.db)",
    )
    srv.add_argument(
        "--jobs",
        type=_jobs_count,
        default=1,
        help="worker processes for coalesced batches (0 = all cores)",
    )
    srv.add_argument(
        "--backend",
        choices=["serial", "process", "subprocess", "remote"],
        default=None,
        help=(
            "execution backend for dispatched batches; 'remote' turns "
            "the service into the coordinator of a `repro worker` "
            "fleet (its /work/* endpoints are always mounted, but only "
            "'remote' enqueues work on them)"
        ),
    )
    srv.add_argument(
        "--workers",
        nargs="+",
        default=[],
        metavar="URL",
        help=(
            "attachable worker URLs to recruit at startup (--backend "
            "remote; start them with `repro worker --listen PORT`)"
        ),
    )
    srv.add_argument(
        "--lease-timeout",
        type=float,
        default=30.0,
        help=(
            "seconds a remote worker owns a leased work unit before it "
            "is presumed dead and the unit requeued"
        ),
    )
    srv.add_argument(
        "--worker-grace",
        type=float,
        default=60.0,
        help=(
            "seconds a dispatched batch may sit with no live remote "
            "worker before it falls back to in-process execution"
        ),
    )
    srv.add_argument(
        "--linger",
        type=float,
        default=0.05,
        help="seconds the scheduler waits to coalesce concurrent requests",
    )
    srv.add_argument(
        "--no-batch-eval",
        action="store_true",
        help=(
            "evaluate coalesced batches cell by cell (reference scalar "
            "path) instead of the batched template entry point"
        ),
    )
    srv.add_argument(
        "--no-fused-eval",
        action="store_true",
        help=(
            "dispatch coalesced specs per strategy and structure group "
            "instead of fusing each batch into one multi-template "
            "dispatch per method"
        ),
    )
    srv.add_argument(
        "--eval-seed-policy",
        choices=["positional", "content"],
        default="positional",
        help=(
            "default eval-seed policy applied to /evaluate and /sweep "
            "payloads that do not name one ('content' lets Monte Carlo "
            "requests coalesce and hit the durable store)"
        ),
    )
    srv.add_argument(
        "--profile",
        action="store_true",
        help=(
            "collect kernel-level op counters for the service's batches "
            "and expose them as 'kernel_profile' in GET /status; with "
            "--jobs N the workers profile themselves and the counters "
            "are merged"
        ),
    )
    srv.add_argument(
        "--no-native",
        action="store_true",
        help=(
            "disable the compiled distribution kernels and serve from "
            "the pure-python reference path (bit-identical records, "
            "slower); equivalent to REPRO_NATIVE=0; GET /status "
            "reports the live backend"
        ),
    )

    sub_ = sub.add_parser(
        "submit",
        help="submit one cell to a running service",
        description=(
            "Submit one evaluation cell to a service started with "
            "'repro serve' (or, with --local, evaluate against a local "
            "store without a server)."
        ),
    )
    sub_.add_argument("--family", default=None, help="synthetic workflow family")
    sub_.add_argument(
        "--dax",
        type=Path,
        default=None,
        help=(
            "submit an external workflow file (.dax/.xml or .json): "
            "registered with the service (POST /register) and addressed "
            "by its canonical content hash"
        ),
    )
    sub_.add_argument(
        "--ntasks",
        type=_positive_int,
        default=None,
        help="requested task count for --family (default 50); "
        "incompatible with --dax (the file fixes its own task count)",
    )
    sub_.add_argument("--processors", type=_positive_int, default=10)
    sub_.add_argument("--pfail", type=_pfail_value, default=1e-3)
    sub_.add_argument("--ccr", type=_ccr_value, default=0.01)
    sub_.add_argument("--seed", type=_seed_value, default=2017)
    sub_.add_argument("--method", default="pathapprox")
    sub_.add_argument(
        "--seed-policy",
        choices=["spawn", "stable"],
        default="stable",
        help="seed derivation for the cell (default matches run_cell)",
    )
    sub_.add_argument(
        "--eval-seed-policy",
        choices=["positional", "content"],
        default=None,
        help=(
            "'content' derives stochastic sampling seeds from cell "
            "content, letting Monte Carlo submissions coalesce and be "
            "served from the durable store; omitted, the serving "
            "process's default applies ('repro serve "
            "--eval-seed-policy'; positional for --local)"
        ),
    )
    sub_.add_argument(
        "--mc-trials",
        type=_positive_int,
        default=None,
        help="Monte Carlo trial count (--method montecarlo only)",
    )
    sub_.add_argument(
        "--url",
        default="http://127.0.0.1:8765",
        help="service base URL (see 'repro serve')",
    )
    sub_.add_argument(
        "--local",
        action="store_true",
        help="evaluate without a server, against --store directly",
    )
    sub_.add_argument(
        "--store",
        type=Path,
        default=Path("repro-service.db"),
        help="store path for --local mode (default ./repro-service.db)",
    )
    sub_.add_argument(
        "--jobs",
        type=_jobs_count,
        default=1,
        help="worker processes for --local evaluation (0 = all cores)",
    )
    sub_.add_argument(
        "--json", action="store_true", help="print the raw JSON reply"
    )

    wrk = sub.add_parser(
        "worker",
        help="run a fleet worker for the remote execution backend",
        description=(
            "Run one compute worker of a remote-backend fleet.  With a "
            "coordinator URL (a `repro serve --backend remote` service, "
            "or the coordinator a `repro sweep --backend remote` "
            "prints) the worker registers and polls it for leased work "
            "units.  With --listen PORT it serves a small HTTP "
            "endpoint instead and waits to be recruited (POST /attach, "
            "what --workers does).  Work units are pickled task "
            "payloads: only point workers at coordinators you trust."
        ),
    )
    wrk.add_argument(
        "coordinator",
        nargs="?",
        default=None,
        help="coordinator base URL to poll (e.g. http://127.0.0.1:8765)",
    )
    wrk.add_argument(
        "--listen",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve an attachable worker on PORT (0 = ephemeral, "
            "printed at startup) instead of requiring a coordinator "
            "up front; may be combined with a coordinator URL"
        ),
    )
    wrk.add_argument("--host", default="127.0.0.1")
    wrk.add_argument(
        "--id",
        default=None,
        help="worker id shown in the coordinator's /status "
        "(default: host-pid-suffix)",
    )
    wrk.add_argument(
        "--poll-interval",
        type=float,
        default=0.2,
        help="seconds between lease polls when idle",
    )
    wrk.add_argument("--quiet", action="store_true")

    ker = sub.add_parser(
        "kernels",
        help="show which distribution-kernel backend is live per op",
        description=(
            "Report the compiled-kernel layer's status: whether the "
            "native shared object is built and loaded, which switch "
            "disabled it (flag, REPRO_NATIVE, build failure), and the "
            "backend serving each primitive (convolve / max / truncate "
            "/ rect_bin).  Every op always has a backend — the pure-"
            "python numpy path is the bit-exact reference and the "
            "fallback."
        ),
    )
    ker.add_argument("--json", action="store_true", help="machine-readable output")

    sto = sub.add_parser(
        "store",
        help="export/import a service result store as JSONL",
        description=(
            "Offline interchange for the durable SQLite result store "
            "used by `repro serve` and `repro submit --local`: export "
            "dumps every cached record as JSON Lines, import ingests a "
            "dump into another store (existing entries are kept; every "
            "line's fingerprint is re-verified).  First step toward "
            "cross-machine cache warming."
        ),
    )
    sto_sub = sto.add_subparsers(dest="store_command", required=True)
    sto_exp = sto_sub.add_parser(
        "export", help="dump a store to JSONL (stdout or --out FILE)"
    )
    sto_exp.add_argument(
        "--store",
        type=Path,
        default=Path("repro-service.db"),
        help="SQLite result store path (default ./repro-service.db)",
    )
    sto_exp.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the JSONL dump here instead of stdout",
    )
    sto_imp = sto_sub.add_parser(
        "import", help="ingest an exported JSONL dump into a store"
    )
    sto_imp.add_argument(
        "source",
        type=Path,
        help="JSONL dump file produced by `repro store export`",
    )
    sto_imp.add_argument(
        "--store",
        type=Path,
        default=Path("repro-service.db"),
        help="SQLite result store path (default ./repro-service.db)",
    )
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.generators import generate, write_dax
    from repro.generators.serialization import save_workflow

    from repro.workloads import SOURCE_SUFFIXES

    message = _check_family(args.family)
    if message is not None:
        print(message, file=sys.stderr)
        return 2
    suffix = args.out.suffix.lower()
    fmt = SOURCE_SUFFIXES.get(suffix)
    if fmt is None:
        # One format registry: the same suffix table the --dax readers
        # use decides what generate can write.
        print(
            f"unsupported output extension {suffix!r} for {args.out}; "
            f"supported formats: {', '.join(sorted(SOURCE_SUFFIXES))} "
            "(.dax/.xml = Pegasus DAX v3, .json = native schema)",
            file=sys.stderr,
        )
        return 2
    wf = generate(args.family, args.ntasks, args.seed)
    if fmt == "dax":
        write_dax(wf, args.out)
    else:
        save_workflow(wf, args.out)
    print(f"wrote {wf!r} to {args.out}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.api import run_strategies
    from repro.errors import SerializationError, WorkflowError
    from repro.generators import generate

    message = _family_or_dax(args, "evaluate")
    if message is not None:
        print(message, file=sys.stderr)
        return 2
    if args.dax is not None:
        try:
            wf = _load_dax_source(args.dax).workflow
        except (SerializationError, WorkflowError, OSError) as exc:
            print(f"cannot load {args.dax}: {exc}", file=sys.stderr)
            return 2
    else:
        message = _check_family(args.family)
        if message is not None:
            print(message, file=sys.stderr)
            return 2
        ntasks = args.ntasks if args.ntasks is not None else 50
        wf = generate(args.family, ntasks, args.seed)
    eval_seed = None
    if args.eval_seed_policy == "content":
        # The one-shot command has no grid, so its workflow seed *is*
        # the root seed; the content contract hashes that directly.
        from repro.engine.sweep import cell_eval_seed

        eval_seed = cell_eval_seed(
            args.seed, args.processors, args.pfail, args.ccr, args.method
        )
    outcome = run_strategies(
        wf,
        args.processors,
        pfail=args.pfail,
        ccr=args.ccr,
        seed=args.seed,
        method=args.method,
        eval_seed=eval_seed,
    )
    print(outcome.summary())
    return 0


def _cmd_methods(args: argparse.Namespace) -> int:
    import json as _json

    from repro.makespan.api import EVALUATORS, get_evaluator
    from repro.util.tables import format_table

    evaluators = [get_evaluator(name) for name in sorted(EVALUATORS)]
    if args.json:
        payload = {
            ev.name: {
                "summary": ev.summary,
                "deterministic": ev.deterministic,
                "supports_batch": ev.supports_batch,
                "options": (
                    "any"
                    if ev.accepts_any_option
                    else [
                        {"name": opt.name, "default": repr(opt.default), "doc": opt.doc}
                        for opt in ev.options
                    ]
                ),
            }
            for ev in evaluators
        }
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0
    rows = []
    for ev in evaluators:
        if ev.accepts_any_option:
            options = "any (**kwargs)"
        else:
            options = ", ".join(opt.describe() for opt in ev.options) or "none"
        rows.append(
            [
                ev.name,
                "deterministic" if ev.deterministic else "stochastic",
                "yes" if ev.supports_batch else "no",
                options,
            ]
        )
    print(
        format_table(
            ["method", "kind", "batch", "options"],
            rows,
            title="registered expected-makespan evaluators",
        )
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.engine.records import records_to_csv, records_to_jsonl
    from repro.engine.sweep import SweepSpec, run_sweep
    from repro.errors import ExperimentError, SerializationError, WorkflowError
    from repro.experiments.figures import log_grid
    from repro.experiments.results import render_cells_table

    if args.no_native:
        from repro.makespan import native

        # Also sets REPRO_NATIVE=0 so --jobs worker processes inherit it.
        native.set_enabled(False)
    message = _family_or_dax(args, "sweep")
    if message is not None:
        print(message, file=sys.stderr)
        return 2
    if args.dax is not None and args.sizes is not None:
        print(
            "repro sweep: --sizes cannot be combined with --dax "
            "(the grid's single size is the workflow file's task count)",
            file=sys.stderr,
        )
        return 2
    if args.family is not None:
        message = _check_family(args.family)
        if message is not None:
            print(message, file=sys.stderr)
            return 2
    if args.out is not None:
        if args.out.suffix.lower() not in (".jsonl", ".csv"):
            print(
                f"unsupported records extension {args.out.suffix!r} "
                "(use .jsonl or .csv)",
                file=sys.stderr,
            )
            return 2
        if not args.out.parent.is_dir():
            print(
                f"output directory {str(args.out.parent)!r} does not exist",
                file=sys.stderr,
            )
            return 2
    if args.ccrs is not None and args.ccr_grid is not None:
        print("--ccrs and --ccr-grid are mutually exclusive", file=sys.stderr)
        return 2
    if args.workers and args.backend != "remote":
        print(
            "repro sweep: --workers requires --backend remote",
            file=sys.stderr,
        )
        return 2
    try:
        if args.ccrs is not None:
            ccrs = tuple(args.ccrs)
        else:
            lo, hi, points = args.ccr_grid or (1e-3, 1.0, 5)
            ccrs = log_grid(lo, hi, int(points))
        if args.dax is not None:
            try:
                source = _load_dax_source(args.dax)
            except (SerializationError, WorkflowError, OSError) as exc:
                print(f"cannot load {args.dax}: {exc}", file=sys.stderr)
                return 2
            spec = SweepSpec.from_source(
                source,
                processors=tuple(args.processors),
                pfails=tuple(args.pfails),
                ccrs=ccrs,
                seed=args.seed,
                method=args.method,
                seed_policy=args.seed_policy,
                eval_seed_policy=args.eval_seed_policy,
            )
        else:
            sizes = tuple(args.sizes) if args.sizes is not None else (50,)
            spec = SweepSpec(
                family=args.family,
                sizes=sizes,
                processors={n: tuple(args.processors) for n in sizes},
                pfails=tuple(args.pfails),
                ccrs=ccrs,
                seed=args.seed,
                method=args.method,
                seed_policy=args.seed_policy,
                eval_seed_policy=args.eval_seed_policy,
                name=f"sweep[{args.family}]",
            )
    except ExperimentError as exc:
        print(f"invalid sweep grid: {exc}", file=sys.stderr)
        return 2
    if args.truncate_mode is not None:
        if args.method != "pathapprox":
            print(
                "--truncate-mode applies to the pathapprox method only "
                f"(got --method {args.method})",
                file=sys.stderr,
            )
            return 2
        spec = dataclasses.replace(
            spec, evaluator_options=(("truncate_mode", args.truncate_mode),)
        )
    progress = None if args.quiet else (lambda msg: print("  " + msg))
    backend = args.backend
    owned_backend = None
    if args.backend == "remote":
        # Built here (not inside run_sweep) so the coordinator URL can
        # be printed before the grid blocks on the fleet.
        from repro.engine.backends import RemoteWorkerBackend

        backend = owned_backend = RemoteWorkerBackend(
            workers=args.workers,
            lease_timeout=args.lease_timeout,
            worker_grace=args.worker_grace,
        )
        print(
            f"remote backend coordinator at {backend.coordinator_url} — "
            f"attach workers with `repro worker {backend.coordinator_url}`"
            + (f" ({len(backend.attached)} recruited)" if backend.attached else "")
        )
    prof = None
    if args.profile:
        from repro.makespan import profile as kernel_profile

        prof = kernel_profile.enable()
    try:
        records = run_sweep(
            spec,
            jobs=args.jobs,
            progress=progress,
            batch_eval=not args.no_batch_eval,
            fused_eval=not args.no_fused_eval,
            backend=backend,
        )
    finally:
        if owned_backend is not None:
            owned_backend.close()
        if prof is not None:
            from repro.makespan import profile as kernel_profile

            kernel_profile.disable()
    print()
    print(render_cells_table(records, title=f"sweep ({spec.family})"))
    if prof is not None:
        print()
        print("kernel profile")
        print(prof.render())
    if args.out is not None:
        if args.out.suffix.lower() == ".jsonl":
            records_to_jsonl(records, args.out)
        else:
            records_to_csv(records, args.out)
        print(f"\nwrote {len(records)} records to {args.out}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments import (
        PAPER_FIGURES,
        render_figure,
        results_to_csv,
        run_figure,
    )
    from repro.experiments.results import render_cells_table

    spec = PAPER_FIGURES[args.name].shrink(
        sizes=args.sizes,
        pfails=args.pfails,
        ccr_points=args.ccr_points,
        processors_per_size=args.processors_per_size,
    )
    progress = None if args.quiet else (lambda msg: print("  " + msg))
    cells = run_figure(spec, progress=progress, jobs=args.jobs)
    print()
    print(render_cells_table(cells, title=f"{args.name} ({spec.family})"))
    print()
    print(render_figure(cells, title=args.name))
    if args.csv is not None:
        results_to_csv(cells, args.csv)
        print(f"\nwrote {len(cells)} cells to {args.csv}")
    return 0


def _cmd_accuracy(args: argparse.Namespace) -> int:
    from repro.experiments.accuracy import render_accuracy, run_accuracy

    rows = run_accuracy(
        families=args.families,
        ntasks=args.ntasks,
        processors=args.processors,
        pfails=args.pfails,
        ccr=args.ccr,
        mc_trials=args.mc_trials,
        seed=args.seed,
    )
    print(render_accuracy(rows, title="§VI-B estimator accuracy"))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.checkpoint.strategies import plan_for_strategy
    from repro.experiments.ccr import scale_to_ccr
    from repro.generators import generate
    from repro.mspg.transform import mspgify
    from repro.platform import Platform, lambda_from_pfail
    from repro.scheduling.allocate import allocate
    from repro.simulation import replay_plan

    wf = generate(args.family, args.ntasks, args.seed)
    lam = lambda_from_pfail(args.pfail, wf.mean_weight)
    platform = Platform(args.processors, failure_rate=lam)
    wf = scale_to_ccr(wf, platform, args.ccr)
    tree = mspgify(wf).tree
    schedule = allocate(wf, tree, args.processors, seed=args.seed)
    plan = plan_for_strategy(args.strategy, wf, schedule, platform)
    trace = replay_plan(wf, schedule, plan, platform, seed=args.seed)
    print(
        f"{args.strategy} on {wf.name}: makespan={trace.makespan:.1f}s, "
        f"{trace.n_failures} failures, {trace.wasted_seconds:.1f}s wasted"
    )
    for line in trace.gantt_lines():
        print(line)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import serve

    if args.no_native:
        from repro.makespan import native

        # Also sets REPRO_NATIVE=0 so --jobs worker processes inherit it.
        native.set_enabled(False)
    if args.workers and args.backend != "remote":
        print(
            "repro serve: --workers requires --backend remote",
            file=sys.stderr,
        )
        return 2
    serve(
        host=args.host,
        port=args.port,
        store=args.store,
        jobs=args.jobs,
        linger=args.linger,
        batch_eval=not args.no_batch_eval,
        fused_eval=not args.no_fused_eval,
        eval_seed_policy=args.eval_seed_policy,
        profile=args.profile,
        backend=args.backend,
        workers=args.workers,
        lease_timeout=args.lease_timeout,
        worker_grace=args.worker_grace,
    )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json as _json

    from repro.engine.records import record_to_dict
    from repro.errors import SerializationError, ServiceError, WorkflowError
    from repro.service.fingerprint import EvalRequest

    message = _family_or_dax(args, "submit")
    if message is not None:
        print(message, file=sys.stderr)
        return 2
    source = None
    if args.dax is not None:
        try:
            source = _load_dax_source(args.dax)
        except (SerializationError, WorkflowError, OSError) as exc:
            print(f"cannot load {args.dax}: {exc}", file=sys.stderr)
            return 2
    elif _check_family(args.family) is not None:
        print(_check_family(args.family), file=sys.stderr)
        return 2
    if args.mc_trials is not None and args.method != "montecarlo":
        print(
            f"repro submit: --mc-trials only applies to --method "
            f"montecarlo (got {args.method!r})",
            file=sys.stderr,
        )
        return 2

    try:
        request = EvalRequest(
            family=args.family or "",
            # The cell's size axis is the file's actual task count for
            # --dax submissions (--ntasks describes synthetic families).
            ntasks=(
                source.workflow.n_tasks
                if source is not None
                else (args.ntasks if args.ntasks is not None else 50)
            ),
            processors=args.processors,
            pfail=args.pfail,
            ccr=args.ccr,
            seed=args.seed,
            method=args.method,
            seed_policy=args.seed_policy,
            eval_seed_policy=(
                args.eval_seed_policy
                if args.eval_seed_policy is not None
                else "positional"
            ),
            evaluator_options=(
                {"trials": args.mc_trials} if args.mc_trials is not None else {}
            ),
            workflow=source.content_hash if source is not None else None,
        )
    except ServiceError as exc:
        print(f"invalid request: {exc}", file=sys.stderr)
        return 2

    try:
        if args.local:
            from repro.service.scheduler import BatchScheduler
            from repro.service.store import ResultStore
            from repro.workloads import SourceRegistry

            registry = SourceRegistry()
            with ResultStore(args.store) as store:
                if source is not None:
                    registry.register(source)
                    # Same durability as POST /register: the source
                    # survives in the store's sources table.
                    store.save_source(source)
                outcome = BatchScheduler(
                    store, jobs=args.jobs, registry=registry
                ).evaluate(request)
            record, cached, fp = outcome.record, outcome.cached, outcome.fingerprint
            wall = None
        else:
            from repro.service.client import ServiceClient
            from repro.service.fingerprint import request_to_dict

            client = ServiceClient(args.url)
            if source is not None:
                client.register(source.workflow, label=source.label)
            payload = request_to_dict(request)
            if args.eval_seed_policy is None:
                # No explicit flag: leave the choice to the server's
                # configured default (repro serve --eval-seed-policy)
                # instead of pinning the client-side fallback.
                del payload["eval_seed_policy"]
            reply = client.evaluate(**payload)
            record, cached, fp = reply.record, reply.cached, reply.fingerprint
            wall = reply.wall_time_s
    except ServiceError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 1

    if args.json:
        payload = {
            "fingerprint": fp,
            "cached": cached,
            "record": record_to_dict(record),
        }
        if wall is not None:
            payload["wall_time_s"] = wall
        print(_json.dumps(payload, sort_keys=True))
        return 0
    source = "store hit" if cached else "computed"
    timing = f" in {wall:.3f}s" if wall is not None else ""
    print(f"{record.family} n={record.ntasks_requested} p={record.processors} "
          f"pfail={record.pfail} ccr={record.ccr:g} [{source}{timing}]")
    print(f"  fingerprint : {fp}")
    print(f"  E[makespan] : some={record.em_some:.6g}s all={record.em_all:.6g}s "
          f"none={record.em_none:.6g}s")
    print(f"  relative    : all/some={record.ratio_all:.4f} "
          f"none/some={record.ratio_none:.4f}")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.engine.backends.worker import WorkerLoop, WorkerServer

    if args.coordinator is None and args.listen is None:
        print(
            "repro worker: pass a coordinator URL to poll, or --listen "
            "PORT to wait for recruitment (or both)",
            file=sys.stderr,
        )
        return 2
    log = None if args.quiet else print
    if args.listen is not None:
        server = WorkerServer(
            host=args.host,
            port=args.listen,
            worker_id=args.id,
            poll_interval=args.poll_interval,
            log=log,
        )
        if log is not None:
            log(
                f"worker {server.worker_id} listening on {server.url} "
                "(recruit with `repro sweep --backend remote --workers "
                f"{server.url}` or POST /attach)"
            )
        if args.coordinator is not None:
            server.attach(args.coordinator)
        try:
            server.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover — interactive only
            server.close()
        return 0
    loop = WorkerLoop(
        args.coordinator,
        worker_id=args.id,
        poll_interval=args.poll_interval,
        log=log,
    )
    if log is not None:
        log(f"worker {loop.worker_id} polling {loop.coordinator}")
    try:
        loop.run()
    except KeyboardInterrupt:  # pragma: no cover — interactive only
        loop.stop()
    return 0


def _cmd_kernels(args: argparse.Namespace) -> int:
    import json as _json

    from repro.makespan import native
    from repro.util.tables import format_table

    status = native.status()
    if args.json:
        print(_json.dumps(status, indent=2, sort_keys=True))
        return 0
    rows = [[op, backend] for op, backend in sorted(status["ops"].items())]
    print(
        format_table(
            ["op", "backend"],
            rows,
            title="distribution kernel backends",
        )
    )
    detail = [f"backend: {status['backend']}"]
    if status["disabled_by"] is not None:
        detail.append(f"disabled by: {status['disabled_by']}")
    if status["build_error"] is not None:
        detail.append(f"build error: {status['build_error']}")
    if status["compiler"] is not None:
        detail.append(f"compiler: {status['compiler']}")
    if status["cached_object"] is not None:
        detail.append(f"object: {status['cached_object']}")
    print("\n".join(detail))
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.errors import ServiceError
    from repro.service.store import ResultStore

    if args.store_command == "export":
        if not args.store.is_file():
            print(f"no store at {args.store}", file=sys.stderr)
            return 2
        with ResultStore(args.store) as store:
            text = store.export_jsonl(args.out)
        entries = sum(1 for line in text.splitlines() if line.strip())
        if args.out is not None:
            print(f"exported {entries} entries to {args.out}")
        else:
            sys.stdout.write(text)
        return 0
    # import
    if not args.source.is_file():
        print(f"no dump at {args.source}", file=sys.stderr)
        return 2
    with ResultStore(args.store) as store:
        try:
            added = store.import_jsonl(args.source)
        except (ServiceError, ValueError, KeyError) as exc:
            print(f"import failed: {exc}", file=sys.stderr)
            return 2
    print(f"imported {added} new entries into {args.store}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "evaluate": _cmd_evaluate,
    "methods": _cmd_methods,
    "kernels": _cmd_kernels,
    "sweep": _cmd_sweep,
    "figure": _cmd_figure,
    "accuracy": _cmd_accuracy,
    "simulate": _cmd_simulate,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "worker": _cmd_worker,
    "store": _cmd_store,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
