"""Pegasus DAX (v3) workflow I/O.

The Pegasus Workflow Generator emits DAX XML documents; production runs of
the paper's workflow families are described in the same format.  This
module reads/writes the subset of DAX v3 that carries the information the
algorithms need:

* ``<job id= name= runtime=>`` — tasks and their weights;
* ``<uses file= link="input|output" size=>`` — file-grained data flow;
* ``<child ref=><parent ref=>`` — control edges (only those not already
  implied by the data flow are preserved as control edges).

Writing then reading a workflow is an exact round trip of tasks, weights,
files, producers, consumers and control edges (asserted in tests), so
workflows generated elsewhere (including by the real PWG) can be dropped
into the harness.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Dict, Set, Tuple, Union

from repro.errors import SerializationError, WorkflowError
from repro.mspg.graph import Workflow

__all__ = ["read_dax", "write_dax"]

_NS = "http://pegasus.isi.edu/schema/DAX"


def write_dax(workflow: Workflow, path: Union[str, Path]) -> None:
    """Write a workflow as a DAX v3 XML document."""
    root = ET.Element(
        "adag",
        {
            "xmlns": _NS,
            "version": "3.6",
            "name": workflow.name,
            "jobCount": str(workflow.n_tasks),
            "fileCount": str(len(workflow.file_names)),
        },
    )
    for task in workflow.tasks():
        job = ET.SubElement(
            root,
            "job",
            {
                "id": task.id,
                "name": task.category or task.id,
                "runtime": repr(task.weight),
            },
        )
        for fname in sorted(workflow.inputs(task.id)):
            ET.SubElement(
                job,
                "uses",
                {
                    "file": fname,
                    "link": "input",
                    "size": repr(workflow.file_size(fname)),
                },
            )
        for fname in sorted(workflow.outputs(task.id)):
            ET.SubElement(
                job,
                "uses",
                {
                    "file": fname,
                    "link": "output",
                    "size": repr(workflow.file_size(fname)),
                },
            )
    # Control edges that carry no data need explicit parent/child entries.
    children: Dict[str, Set[str]] = {}
    for u, v in workflow.control_edges():
        children.setdefault(v, set()).add(u)
    for child in sorted(children):
        elem = ET.SubElement(root, "child", {"ref": child})
        for parent in sorted(children[child]):
            ET.SubElement(elem, "parent", {"ref": parent})

    tree = ET.ElementTree(root)
    ET.indent(tree)
    tree.write(str(path), xml_declaration=True, encoding="unicode")


def read_dax(path: Union[str, Path]) -> Workflow:
    """Read a DAX v3 XML document into a :class:`Workflow`.

    Files referenced without a size attribute default to 0 bytes; jobs
    without a runtime attribute default to weight 0 (as the real DAX
    schema allows both omissions).  The namespace is taken from the
    document's root element, so namespace-less documents and documents
    under a non-Pegasus namespace URI parse the same as canonical ones.
    Structural inconsistencies — duplicate job ids, dangling
    ``<child>``/``<parent>`` references, inconsistent file sizes, cycles
    — all raise :class:`~repro.errors.SerializationError`.
    """
    try:
        root = ET.parse(str(path)).getroot()
    except ET.ParseError as exc:
        raise SerializationError(f"cannot parse DAX file {path}: {exc}") from exc

    # Real-world DAX documents come namespace-less, under the canonical
    # Pegasus URI, or under site-local variants of it — key element
    # lookups off whatever namespace the root actually declares.
    ns = root.tag[1 : root.tag.index("}")] if root.tag.startswith("{") else None

    def tag(name: str) -> str:
        return f"{{{ns}}}{name}" if ns is not None else name

    wf = Workflow(root.get("name", Path(str(path)).stem))

    file_sizes: Dict[str, float] = {}
    producers: Dict[str, str] = {}
    consumers: Dict[str, Set[str]] = {}
    for job in root.iter(tag("job")):
        tid = job.get("id")
        if tid is None:
            raise SerializationError(f"job without id in {path}")
        try:
            weight = float(job.get("runtime", "0"))
        except ValueError:
            raise SerializationError(
                f"job {tid!r} has non-numeric runtime "
                f"{job.get('runtime')!r} in {path}"
            ) from None
        category = job.get("name", "")
        try:
            wf.add_task(tid, weight, category=category)
        except WorkflowError as exc:
            # Duplicate job ids, bad weights, ... — surface as a clean
            # serialisation failure naming the document.
            raise SerializationError(f"bad job in {path}: {exc}") from None
        for uses in job.iter(tag("uses")):
            fname = uses.get("file")
            if fname is None:
                raise SerializationError(f"uses without file in job {tid!r}")
            try:
                size = float(uses.get("size", "0"))
            except ValueError:
                raise SerializationError(
                    f"file {fname!r} has non-numeric size "
                    f"{uses.get('size')!r} in {path}"
                ) from None
            prev = file_sizes.get(fname)
            if prev is not None and prev != size:
                raise SerializationError(
                    f"file {fname!r} has inconsistent sizes {prev} and {size}"
                )
            file_sizes[fname] = size
            link = uses.get("link", "input")
            if link == "output":
                if fname in producers and producers[fname] != tid:
                    raise SerializationError(
                        f"file {fname!r} produced by both {producers[fname]!r} "
                        f"and {tid!r}"
                    )
                producers[fname] = tid
            else:
                consumers.setdefault(fname, set()).add(tid)

    try:
        for fname, size in file_sizes.items():
            wf.add_file(fname, size, producer=producers.get(fname))
        for fname, tids in consumers.items():
            for tid in sorted(tids):
                wf.add_input(tid, fname)
    except WorkflowError as exc:
        raise SerializationError(f"bad data flow in {path}: {exc}") from None

    for child in root.iter(tag("child")):
        ref = child.get("ref")
        if ref is None:
            raise SerializationError(f"child without ref in {path}")
        if ref not in wf:
            raise SerializationError(
                f"child ref {ref!r} names no job in {path}"
            )
        for parent in child.iter(tag("parent")):
            pref = parent.get("ref")
            if pref is None:
                raise SerializationError(f"parent without ref in {path}")
            if pref not in wf:
                raise SerializationError(
                    f"parent ref {pref!r} (child {ref!r}) names no job "
                    f"in {path}"
                )
            try:
                if ref not in wf.succs(pref):
                    wf.add_control_edge(pref, ref)
            except WorkflowError as exc:
                raise SerializationError(
                    f"bad dependency in {path}: {exc}"
                ) from None

    try:
        wf.validate()
    except WorkflowError as exc:
        raise SerializationError(f"inconsistent workflow in {path}: {exc}") from None
    return wf
