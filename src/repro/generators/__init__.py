"""Pegasus-style synthetic workflow generators and workflow I/O.

The paper's experiments (§VI-A) use the Pegasus Workflow Generator (PWG),
which emits realistic synthetic instances of production scientific
workflows.  PWG itself is a Java tool that is not redistributable here, so
this package re-implements the three families the paper evaluates —
MONTAGE (astronomy mosaics), GENOME (USC Epigenomics), LIGO (Inspiral
gravitational-wave analysis) — plus two extra families supported by PWG
(CYBERSHAKE, SIPHT) and a random M-SPG generator used for property-based
testing.

Each generator reproduces the published level structure of its application
(Bharathi et al., "Characterization of Scientific Workflows", WORKS 2008)
and draws task runtimes and file sizes from per-task-type distributions in
the ranges published by Juve et al. ("Characterizing and profiling
scientific workflows", FGCS 2013).  Absolute file sizes are immaterial for
the paper's experiments: the harness always rescales them to hit a target
CCR, exactly as the paper does.

All generators take a requested task count and a seed, and return a
:class:`repro.mspg.graph.Workflow`; the realised task count may deviate by
a few tasks from the request because counts must satisfy structural
constraints (PWG behaves the same way).
"""

from repro.generators.base import FAMILIES, generate
from repro.generators.montage import montage
from repro.generators.genome import genome
from repro.generators.ligo import ligo
from repro.generators.cybershake import cybershake
from repro.generators.sipht import sipht
from repro.generators.random_mspg import random_mspg, workflow_from_tree
from repro.generators.dax import read_dax, write_dax
from repro.generators.serialization import workflow_from_json, workflow_to_json

__all__ = [
    "FAMILIES",
    "generate",
    "montage",
    "genome",
    "ligo",
    "cybershake",
    "sipht",
    "random_mspg",
    "workflow_from_tree",
    "read_dax",
    "write_dax",
    "workflow_from_json",
    "workflow_to_json",
]
