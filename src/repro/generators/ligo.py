"""LIGO Inspiral workflow generator (gravitational-wave search).

The Inspiral analysis matches detector data against banks of waveform
templates in two stages (Bharathi et al. 2008):

```
 TmpltBank_i (a, parallel)       generate a template bank per data block
 Inspiral1_i (a, 1-1)            first matched-filter pass
 Thinca1_g   (⌈a/s1⌉)            coincidence analysis over groups of s1
 TrigBank_j  (m, fan-out)        convert triggers back to template banks
 Inspiral2_j (m, 1-1)            second matched-filter pass
 Thinca2_h   (⌈m/s2⌉)            final coincidence over groups of s2
```

The two coincidence stages use *different, non-aligned group sizes*
(``s1 = 5``, ``s2 = 4``), so the workflow is **not** an M-SPG: the
Inspiral→Thinca levels are incomplete bipartite graphs.  This reproduces
exactly the situation of the paper's footnote 2, which resolves it by
adding "dummy dependencies carrying empty files" — our
:func:`repro.mspg.transform.mspgify`.

``Inspiral`` tasks dominate runtime (hundreds of seconds); all files are
sub-megabyte, giving LIGO the highest CCR sensitivity of the families.
"""

from __future__ import annotations

from typing import List

from repro.errors import WorkflowError
from repro.generators.base import GeneratorContext, TaskType
from repro.mspg.graph import Workflow
from repro.util.rng import SeedLike

__all__ = ["ligo"]

MB = 1e6

TMPLTBANK = TaskType("TmpltBank", 18.14, 3.0, 0.92 * MB, 0.1 * MB)
INSPIRAL1 = TaskType("Inspiral1", 460.21, 80.0, 0.30 * MB, 0.05 * MB)
THINCA1 = TaskType("Thinca1", 5.37, 1.0, 0.033 * MB, 0.005 * MB)
TRIGBANK = TaskType("TrigBank", 5.11, 1.0, 0.64 * MB, 0.1 * MB)
INSPIRAL2 = TaskType("Inspiral2", 460.21, 80.0, 0.30 * MB, 0.05 * MB)
THINCA2 = TaskType("Thinca2", 5.37, 1.0, 0.033 * MB, 0.005 * MB)

DATA_BLOCK_BYTES = 0.75 * MB

GROUP1 = 5
GROUP2 = 4


def _shape(ntasks: int) -> int:
    """First-stage width ``a`` so that the total is ≈ ``ntasks``.

    total = 2a + ⌈a/5⌉ + 2m + ⌈m/4⌉ with m = a  ⇒  total ≈ 4.45·a.
    """
    if ntasks < 10:
        raise WorkflowError(f"ligo needs ntasks >= 10, got {ntasks}")
    return max(2, round(ntasks / 4.45))


def ligo(ntasks: int = 50, seed: SeedLike = None) -> Workflow:
    """Generate a LIGO Inspiral workflow with approximately ``ntasks`` tasks."""
    a = _shape(ntasks)
    ctx = GeneratorContext(f"ligo-{ntasks}", seed)
    wf = ctx.workflow

    # Stage 1: TmpltBank -> Inspiral1 -> Thinca1 (groups of GROUP1).
    inspiral1_out: List[str] = []
    inspirals1: List[str] = []
    for i in range(a):
        bank = ctx.add_task(TMPLTBANK)
        block = ctx.add_workflow_input(f"block_{i:05d}.gwf", DATA_BLOCK_BYTES)
        ctx.connect(block, bank)
        bank_file = ctx.add_output(bank, TMPLTBANK, "bank")
        insp = ctx.add_task(INSPIRAL1)
        ctx.connect(bank_file, insp)
        inspirals1.append(insp)
        inspiral1_out.append(ctx.add_output(insp, INSPIRAL1, "trig"))

    thinca1_out: List[str] = []
    for g in range(0, a, GROUP1):
        thinca = ctx.add_task(THINCA1)
        for f in inspiral1_out[g : g + GROUP1]:
            ctx.connect(f, thinca)
        thinca1_out.append(ctx.add_output(thinca, THINCA1, "coinc"))

    # Stage 2: TrigBank -> Inspiral2 -> Thinca2 (groups of GROUP2, not
    # aligned with stage-1 groups).
    m = a
    inspiral2_out: List[str] = []
    for j in range(m):
        trig = ctx.add_task(TRIGBANK)
        ctx.connect(thinca1_out[(j // GROUP1) % len(thinca1_out)], trig)
        trig_file = ctx.add_output(trig, TRIGBANK, "tbank")
        insp = ctx.add_task(INSPIRAL2)
        ctx.connect(trig_file, insp)
        inspiral2_out.append(ctx.add_output(insp, INSPIRAL2, "trig"))

    for h in range(0, m, GROUP2):
        thinca = ctx.add_task(THINCA2)
        for f in inspiral2_out[h : h + GROUP2]:
            ctx.connect(f, thinca)
        ctx.add_output(thinca, THINCA2, "coinc")

    wf.validate()
    return wf
