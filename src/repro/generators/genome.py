"""GENOME workflow generator (USC Epigenomics mapping pipeline).

The Epigenomics workflow maps sequencer reads onto a reference genome.
Its structure (Bharathi et al. 2008) is a set of independent *lanes*, each
a fork-join over ``k`` read chunks, followed by a global merge chain:

```
 per lane l = 1..L:
   fastQSplit_l (1)                       split the lane's read file
   per chunk j = 1..k:
     filterContams -> sol2sanger -> fastq2bfq -> map   (4-task chain)
   mapMerge_l (1)                         merge the lane's alignments
 mapMergeGlobal (1)                       merge all lanes
 maqIndex (1)                             index the merged alignments
 pileup (1)                               produce the final pileup
```

This graph is an exact M-SPG (parallel lanes of fork-joins composed
serially with the final chain), which makes GENOME the family for which
`mspgify` is the identity — a useful contrast with MONTAGE/LIGO in tests.

The ``map`` step dominates runtime, giving GENOME the highest
compute-to-data ratio of the three paper families; the paper accordingly
sweeps its CCR over a 100× lower range (Fig. 5 vs Figs. 6-7).
"""

from __future__ import annotations

from typing import List

from repro.errors import WorkflowError
from repro.generators.base import GeneratorContext, TaskType
from repro.mspg.graph import Workflow
from repro.util.rng import SeedLike

__all__ = ["genome"]

MB = 1e6

FASTQSPLIT = TaskType("fastQSplit", 34.3, 5.0, 0.0, 0.0)  # chunk size explicit
FILTER = TaskType("filterContams", 2.47, 0.50, 19.0 * MB, 2.0 * MB)
SOL2SANGER = TaskType("sol2sanger", 0.48, 0.10, 18.0 * MB, 2.0 * MB)
FASTQ2BFQ = TaskType("fastq2bfq", 1.40, 0.30, 9.0 * MB, 1.0 * MB)
MAP = TaskType("map", 201.89, 40.0, 3.0 * MB, 0.5 * MB)
MAPMERGE = TaskType("mapMerge", 11.01, 3.0, 0.0, 0.0)  # size explicit
MAQINDEX = TaskType("maqIndex", 43.0, 8.0, 105.0 * MB, 10.0 * MB)
PILEUP = TaskType("pileup", 55.95, 10.0, 42.0 * MB, 5.0 * MB)

LANE_FASTQ_BYTES = 420.0 * MB
CHUNK_BYTES = 20.0 * MB
MERGED_PER_CHUNK_BYTES = 2.8 * MB


def _shape(ntasks: int) -> List[int]:
    """Chunk count per lane so that ``Σ(4·k_l + 2) + 3 ≈ ntasks``."""
    if ntasks < 13:
        raise WorkflowError(f"genome needs ntasks >= 13, got {ntasks}")
    # Lanes grow slowly with size: 2 lanes at ~50 tasks, 7 at ~1000.
    lanes = max(1, min(8, round((ntasks / 50) ** 0.5) + 1))
    per_lane_budget = (ntasks - 3) / lanes
    k = max(1, round((per_lane_budget - 2) / 4))
    chunks = [k] * lanes
    # Distribute the remaining task budget one chunk (4 tasks) at a time.
    remainder = ntasks - (3 + lanes * (4 * k + 2))
    i = 0
    while remainder >= 4:
        chunks[i % lanes] += 1
        remainder -= 4
        i += 1
    return chunks


def genome(ntasks: int = 50, seed: SeedLike = None) -> Workflow:
    """Generate a GENOME (Epigenomics) workflow with ~``ntasks`` tasks."""
    chunks = _shape(ntasks)
    ctx = GeneratorContext(f"genome-{ntasks}", seed)
    wf = ctx.workflow

    global_merge = ctx.add_task(MAPMERGE)
    for lane, k in enumerate(chunks):
        split = ctx.add_task(FASTQSPLIT)
        lane_fastq = ctx.add_workflow_input(
            f"lane_{lane:02d}.fastq", LANE_FASTQ_BYTES
        )
        ctx.connect(lane_fastq, split)
        lane_merge = ctx.add_task(MAPMERGE)
        for j in range(k):
            chunk = ctx.add_output(split, FASTQSPLIT, f"chunk{j:04d}", size=CHUNK_BYTES)
            filt = ctx.add_task(FILTER)
            ctx.connect(chunk, filt)
            filtered = ctx.add_output(filt, FILTER)
            sol = ctx.add_task(SOL2SANGER)
            ctx.connect(filtered, sol)
            sanger = ctx.add_output(sol, SOL2SANGER)
            bfq = ctx.add_task(FASTQ2BFQ)
            ctx.connect(sanger, bfq)
            bfq_file = ctx.add_output(bfq, FASTQ2BFQ)
            mapper = ctx.add_task(MAP)
            ctx.connect(bfq_file, mapper)
            mapped = ctx.add_output(mapper, MAP)
            ctx.connect(mapped, lane_merge)
        merged = ctx.add_output(
            lane_merge, MAPMERGE, "merged", size=MERGED_PER_CHUNK_BYTES * k
        )
        ctx.connect(merged, global_merge)

    total_chunks = sum(chunks)
    all_merged = ctx.add_output(
        global_merge, MAPMERGE, "all", size=MERGED_PER_CHUNK_BYTES * total_chunks
    )
    index = ctx.add_task(MAQINDEX)
    ctx.connect(all_merged, index)
    indexed = ctx.add_output(index, MAQINDEX, "idx")
    pile = ctx.add_task(PILEUP)
    ctx.connect(indexed, pile)
    ctx.add_output(pile, PILEUP, "pileup")

    wf.validate()
    return wf
