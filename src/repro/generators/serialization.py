"""Native JSON (de)serialisation of workflows.

A lossless, human-inspectable alternative to DAX for storing generated
instances alongside experiment results.  The schema is a direct dump of
the :class:`~repro.mspg.graph.Workflow` registries.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.errors import SerializationError
from repro.mspg.graph import Workflow

__all__ = ["workflow_to_json", "workflow_from_json", "save_workflow", "load_workflow"]

_SCHEMA = "repro-workflow-v1"


def workflow_to_json(workflow: Workflow) -> Dict[str, Any]:
    """Serialise a workflow to a JSON-compatible dict."""
    return {
        "schema": _SCHEMA,
        "name": workflow.name,
        "tasks": [
            {"id": t.id, "weight": t.weight, "category": t.category}
            for t in workflow.tasks()
        ],
        "files": [
            {
                "name": f,
                "size": workflow.file_size(f),
                "producer": workflow.producer(f),
                "consumers": sorted(workflow.consumers(f)),
            }
            for f in workflow.file_names
        ],
        "control_edges": [list(e) for e in workflow.control_edges()],
    }


def workflow_from_json(data: Dict[str, Any]) -> Workflow:
    """Deserialise a workflow from :func:`workflow_to_json` output."""
    if data.get("schema") != _SCHEMA:
        raise SerializationError(
            f"unexpected schema {data.get('schema')!r}; expected {_SCHEMA!r}"
        )
    wf = Workflow(data.get("name", "workflow"))
    for t in data["tasks"]:
        wf.add_task(t["id"], t["weight"], category=t.get("category", ""))
    for f in data["files"]:
        wf.add_file(f["name"], f["size"], producer=f.get("producer"))
        for consumer in f.get("consumers", []):
            wf.add_input(consumer, f["name"])
    for u, v in data.get("control_edges", []):
        wf.add_control_edge(u, v)
    wf.validate()
    return wf


def save_workflow(workflow: Workflow, path: Union[str, Path]) -> None:
    """Write a workflow to a JSON file."""
    Path(path).write_text(json.dumps(workflow_to_json(workflow), indent=1))


def load_workflow(path: Union[str, Path]) -> Workflow:
    """Read a workflow from a JSON file."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"cannot parse {path}: {exc}") from exc
    return workflow_from_json(data)
