"""Random M-SPG workflows for property-based testing and ablations.

:func:`random_tree` samples an expression tree directly from the M-SPG
grammar (§II-A), guaranteeing that the result is an M-SPG by construction;
:func:`workflow_from_tree` materialises any tree into a
:class:`~repro.mspg.graph.Workflow` with sampled weights and file sizes.
Together they give an unbounded supply of valid inputs whose structure is
known exactly — the backbone of the recognition round-trip property tests.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import WorkflowError
from repro.mspg.expr import (
    EMPTY,
    MSPG,
    TaskNode,
    parallel,
    series,
    tree_edges,
    tree_tasks,
)
from repro.mspg.graph import Workflow
from repro.util.rng import SeedLike, as_rng

__all__ = ["random_tree", "workflow_from_tree", "random_mspg"]


def random_tree(
    ntasks: int,
    rng: np.random.Generator,
    max_branch: int = 5,
    _mode: str = "series",
) -> MSPG:
    """Sample an M-SPG expression tree with exactly ``ntasks`` atoms.

    The sampler alternates series/parallel levels (matching the canonical
    form) and splits the task budget uniformly among 2..``max_branch``
    children, bottoming out at atoms.
    """
    if ntasks < 0:
        raise WorkflowError(f"ntasks must be >= 0, got {ntasks}")
    if ntasks == 0:
        return EMPTY

    counter = [0]

    def atom() -> MSPG:
        counter[0] += 1
        return TaskNode(f"t{counter[0]:05d}")

    def build(budget: int, mode: str) -> MSPG:
        if budget == 1 or (budget <= 2 and rng.random() < 0.3):
            if budget == 1:
                return atom()
        # Split the budget among k >= 2 children (or bail to an atom chain).
        k = int(rng.integers(2, min(max_branch, budget) + 1))
        if k < 2:
            return atom()
        # Random composition of the budget into k positive parts.
        cuts = sorted(rng.choice(np.arange(1, budget), size=k - 1, replace=False))
        parts = np.diff([0, *cuts, budget])
        next_mode = "parallel" if mode == "series" else "series"
        children = []
        for part in parts:
            if part == 1 or rng.random() < 0.25:
                # A chain of atoms keeps trees from being pure alternation.
                if mode == "series":
                    children.extend(atom() for _ in range(int(part)))
                    continue
            children.append(build(int(part), next_mode))
        combine = series if mode == "series" else parallel
        return combine(*children)

    return build(ntasks, _mode)


def workflow_from_tree(
    tree: MSPG,
    seed: SeedLike = None,
    name: str = "random-mspg",
    weight_sampler: Optional[Callable[[np.random.Generator], float]] = None,
    size_sampler: Optional[Callable[[np.random.Generator], float]] = None,
    shared_output_prob: float = 0.3,
) -> Workflow:
    """Materialise an expression tree into a workflow.

    Structural edges get files; with probability ``shared_output_prob`` a
    task's out-edges share a single output file (exercising the
    deduplicated checkpoint cost of §VI-A).  Sources read a workflow input
    and sinks produce a final output, so every task touches stable storage
    at least at the workflow boundary.
    """
    rng = as_rng(seed)
    if weight_sampler is None:
        weight_sampler = lambda r: float(r.lognormal(mean=1.5, sigma=0.8))
    if size_sampler is None:
        size_sampler = lambda r: float(r.lognormal(mean=13.0, sigma=1.0))

    wf = Workflow(name)
    tasks = list(tree_tasks(tree))
    for tid in tasks:
        wf.add_task(tid, weight_sampler(rng))

    edges = sorted(tree_edges(tree))
    by_src: Dict[str, List[str]] = {}
    for u, v in edges:
        by_src.setdefault(u, []).append(v)

    out_degree_zero = set(tasks)
    in_degree_zero = set(tasks)
    for u, targets in by_src.items():
        out_degree_zero.discard(u)
        for v in targets:
            in_degree_zero.discard(v)
        if len(targets) > 1 and rng.random() < shared_output_prob:
            fname = f"{u}.shared"
            wf.add_file(fname, size_sampler(rng), producer=u)
            for v in targets:
                wf.add_input(v, fname)
        else:
            for v in targets:
                fname = f"{u}.to.{v}"
                wf.add_file(fname, size_sampler(rng), producer=u)
                wf.add_input(v, fname)

    for tid in sorted(in_degree_zero):
        fname = f"input.{tid}"
        wf.add_file(fname, size_sampler(rng), producer=None)
        wf.add_input(tid, fname)
    for tid in sorted(out_degree_zero):
        wf.add_file(f"{tid}.final", size_sampler(rng), producer=tid)

    wf.validate()
    return wf


def random_mspg(ntasks: int = 50, seed: SeedLike = None) -> Workflow:
    """Generate a random M-SPG workflow with exactly ``ntasks`` tasks."""
    rng = as_rng(seed)
    tree = random_tree(ntasks, rng)
    return workflow_from_tree(tree, seed=rng, name=f"random-{ntasks}")
