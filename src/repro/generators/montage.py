"""MONTAGE workflow generator (astronomy image mosaics).

Montage assembles a sky mosaic from ``a`` input images.  The level
structure (Bharathi et al. 2008) is:

```
 mProjectPP (a, parallel)      re-project each input image
 mDiffFit   (d, parallel)      fit the overlap of two projected images
 mConcatFit (1)                concatenate all fit planes
 mBgModel   (1)                model background corrections
 mBackground(a, parallel)      apply corrections to each projected image
 mImgtbl    (1)                build the image metadata table
 mAdd       (1)                co-add the corrected images into the mosaic
 mShrink    (s, parallel)      shrink mosaic tiles
 mJPEG      (1)                render the preview image
```

Two structural features exercise interesting code paths:

* ``mDiffFit`` consumes *two specific* ``mProjectPP`` outputs (overlapping
  neighbours), so the projection→diff level is an **incomplete bipartite**
  graph: exactly the structure `mspgify` completes with dummy edges
  (paper footnote 2).
* ``mBackground`` re-reads the projected image, a **transitive skip
  dependency** (`mProjectPP → mBackground` is implied through
  ``mDiffFit → mConcatFit → mBgModel``), which `mspgify` demotes to
  data-only.
* ``mBgModel`` produces a *single* corrections file consumed by every
  ``mBackground`` task — the shared-file case whose checkpoint must be
  saved once (§VI-A).

Runtime and size scales follow the published Montage profile
(mConcatFit/mBgModel/mAdd are the heavy serial stages; the parallel stages
are sub-second to a few seconds).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import WorkflowError
from repro.generators.base import GeneratorContext, TaskType
from repro.mspg.graph import Workflow
from repro.util.rng import SeedLike

__all__ = ["montage"]

MB = 1e6

PROJECT = TaskType("mProjectPP", 1.73, 0.30, 4.1 * MB, 0.4 * MB)
DIFFFIT = TaskType("mDiffFit", 0.66, 0.15, 0.8 * MB, 0.2 * MB)
CONCATFIT = TaskType("mConcatFit", 143.0, 20.0, 0.05 * MB, 0.01 * MB)
BGMODEL = TaskType("mBgModel", 384.0, 50.0, 0.012 * MB, 0.002 * MB)
BACKGROUND = TaskType("mBackground", 1.72, 0.30, 4.1 * MB, 0.4 * MB)
IMGTBL = TaskType("mImgtbl", 2.55, 0.40, 0.1 * MB, 0.02 * MB)
ADD = TaskType("mAdd", 282.0, 40.0, 0.0, 0.0)  # mosaic size set explicitly
SHRINK = TaskType("mShrink", 66.0, 10.0, 1.3 * MB, 0.3 * MB)
JPEG = TaskType("mJPEG", 0.70, 0.10, 0.2 * MB, 0.05 * MB)

RAW_IMAGE_BYTES = 2.1 * MB
MOSAIC_BYTES_PER_IMAGE = 1.8 * MB

#: Structural overhead: singleton tasks (mConcatFit, mBgModel, mImgtbl,
#: mAdd, mJPEG).
_SINGLETONS = 5


def _layer_sizes(ntasks: int) -> Tuple[int, int, int]:
    """Pick (a, d, s): projection count, diff count, shrink-tile count.

    Chain-overlap model: consecutive images always overlap (``a - 1``
    mandatory pairs); remaining budget goes to second-neighbour overlaps,
    capped at ``a - 2``.  One shrink tile per ~5 images.
    """
    if ntasks < 10:
        raise WorkflowError(f"montage needs ntasks >= 10, got {ntasks}")
    # total = a (proj) + d (diff) + a (background) + s (shrink) + singletons
    # with d ≈ 2a - 3 and s ≈ a/5:  total ≈ 4.2 a + 2.
    a = max(2, round((ntasks - _SINGLETONS) / 4.2))
    s = max(1, a // 5)
    d = ntasks - (2 * a + s + _SINGLETONS)
    d = max(a - 1, min(d, 2 * a - 3 if a >= 3 else a - 1))
    return a, d, s


def montage(ntasks: int = 50, seed: SeedLike = None) -> Workflow:
    """Generate a MONTAGE workflow with approximately ``ntasks`` tasks."""
    a, d, s = _layer_sizes(ntasks)
    ctx = GeneratorContext(f"montage-{ntasks}", seed)
    wf = ctx.workflow

    projects: List[str] = []
    projected: List[str] = []
    for i in range(a):
        t = ctx.add_task(PROJECT)
        raw = ctx.add_workflow_input(f"raw_{i:05d}.fits", RAW_IMAGE_BYTES)
        ctx.connect(raw, t)
        projects.append(t)
        projected.append(ctx.add_output(t, PROJECT, "proj"))

    # Overlap pairs: first-neighbours, then second-neighbours.
    pairs: List[Tuple[int, int]] = [(i, i + 1) for i in range(a - 1)]
    pairs += [(i, i + 2) for i in range(min(d - (a - 1), max(0, a - 2)))]
    pairs = pairs[:d]

    concat = ctx.add_task(CONCATFIT)
    for (i, j) in pairs:
        t = ctx.add_task(DIFFFIT)
        ctx.connect(projected[i], t)
        ctx.connect(projected[j], t)
        fit = ctx.add_output(t, DIFFFIT, "fit")
        ctx.connect(fit, concat)
    fits_table = ctx.add_output(concat, CONCATFIT, "tbl")

    bgmodel = ctx.add_task(BGMODEL)
    ctx.connect(fits_table, bgmodel)
    # One corrections file shared by every mBackground task (dedup case).
    corrections = ctx.add_output(bgmodel, BGMODEL, "corr")

    imgtbl = ctx.add_task(IMGTBL)
    add = ctx.add_task(ADD)
    for i in range(a):
        t = ctx.add_task(BACKGROUND)
        ctx.connect(corrections, t)
        ctx.connect(projected[i], t)  # transitive skip dependency
        corrected = ctx.add_output(t, BACKGROUND, "corr_img")
        ctx.connect(corrected, imgtbl)
        ctx.connect(corrected, add)
    table = ctx.add_output(imgtbl, IMGTBL, "imgtbl")
    ctx.connect(table, add)

    mosaic = ctx.add_output(add, ADD, "mosaic", size=MOSAIC_BYTES_PER_IMAGE * a)
    jpeg = ctx.add_task(JPEG)
    for j in range(s):
        t = ctx.add_task(SHRINK)
        ctx.connect(mosaic, t)
        shrunk = ctx.add_output(t, SHRINK, "shrunk")
        ctx.connect(shrunk, jpeg)
    ctx.add_output(jpeg, JPEG, "jpg")

    wf.validate()
    return wf
