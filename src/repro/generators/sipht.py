"""SIPHT workflow generator (bacterial sRNA prediction).

Extension family (supported by the Pegasus generator; not part of the
paper's figures).  Structure (Bharathi et al. 2008, simplified to its
level skeleton):

```
 Patser_i (p, parallel)       transcription-factor binding site scans
 PatserConcat (1)             concatenation of all Patser outputs
 Transterm, Findterm,
 RNAMotif, Blast (4, parallel)  candidate-terminator / homology searches
 SRNA (1)                     joins PatserConcat + the four searches
 FFN_parse, BlastSynteny,
 BlastCandidate, BlastQRNA,
 BlastParalogues (5, parallel)  secondary annotation searches
 SRNAAnnotate (1)             final annotation
```

SIPHT has a wide, shallow shape with several singleton joins; it exercises
the scheduler's handling of alternating chain/parallel segments.
"""

from __future__ import annotations

from repro.errors import WorkflowError
from repro.generators.base import GeneratorContext, TaskType
from repro.mspg.graph import Workflow
from repro.util.rng import SeedLike

__all__ = ["sipht"]

MB = 1e6

PATSER = TaskType("Patser", 0.96, 0.2, 0.003 * MB, 0.001 * MB)
PATSER_CONCAT = TaskType("PatserConcat", 0.03, 0.01, 0.06 * MB, 0.01 * MB)
TRANSTERM = TaskType("Transterm", 32.41, 6.0, 0.02 * MB, 0.005 * MB)
FINDTERM = TaskType("Findterm", 594.94, 80.0, 0.32 * MB, 0.05 * MB)
RNAMOTIF = TaskType("RNAMotif", 25.69, 5.0, 0.018 * MB, 0.004 * MB)
BLAST = TaskType("Blast", 3311.12, 400.0, 0.95 * MB, 0.1 * MB)
SRNA = TaskType("SRNA", 12.44, 2.0, 1.38 * MB, 0.2 * MB)
FFN_PARSE = TaskType("FFN_parse", 0.73, 0.15, 0.46 * MB, 0.05 * MB)
BLAST_SYNTENY = TaskType("BlastSynteny", 3.33, 0.8, 0.01 * MB, 0.002 * MB)
BLAST_CANDIDATE = TaskType("BlastCandidate", 0.6, 0.15, 0.005 * MB, 0.001 * MB)
BLAST_QRNA = TaskType("BlastQRNA", 440.88, 60.0, 0.35 * MB, 0.05 * MB)
BLAST_PARALOGUES = TaskType("BlastParalogues", 0.68, 0.15, 0.005 * MB, 0.001 * MB)
ANNOTATE = TaskType("SRNAAnnotate", 0.14, 0.03, 0.04 * MB, 0.01 * MB)

GENOME_BYTES = 9.5 * MB

#: PatserConcat + {Transterm, Findterm, RNAMotif, Blast} + SRNA + five
#: annotation searches + SRNAAnnotate.
_FIXED = 12


def sipht(ntasks: int = 50, seed: SeedLike = None) -> Workflow:
    """Generate a SIPHT workflow with approximately ``ntasks`` tasks."""
    if ntasks < _FIXED + 2:
        raise WorkflowError(f"sipht needs ntasks >= {_FIXED + 2}, got {ntasks}")
    p = ntasks - _FIXED
    ctx = GeneratorContext(f"sipht-{ntasks}", seed)
    wf = ctx.workflow

    genome_file = ctx.add_workflow_input("genome.ffn", GENOME_BYTES)

    concat = ctx.add_task(PATSER_CONCAT)
    for _ in range(p):
        t = ctx.add_task(PATSER)
        ctx.connect(genome_file, t)
        ctx.connect(ctx.add_output(t, PATSER, "sites"), concat)
    concat_out = ctx.add_output(concat, PATSER_CONCAT, "all_sites")

    srna = ctx.add_task(SRNA)
    ctx.connect(concat_out, srna)
    for ttype in (TRANSTERM, FINDTERM, RNAMOTIF, BLAST):
        t = ctx.add_task(ttype)
        ctx.connect(genome_file, t)
        ctx.connect(ctx.add_output(t, ttype), srna)
    srna_out = ctx.add_output(srna, SRNA, "candidates")

    annotate = ctx.add_task(ANNOTATE)
    for ttype in (
        FFN_PARSE,
        BLAST_SYNTENY,
        BLAST_CANDIDATE,
        BLAST_QRNA,
        BLAST_PARALOGUES,
    ):
        t = ctx.add_task(ttype)
        ctx.connect(srna_out, t)
        ctx.connect(ctx.add_output(t, ttype), annotate)
    ctx.add_output(annotate, ANNOTATE, "annotations")

    wf.validate()
    return wf
