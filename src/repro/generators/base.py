"""Shared infrastructure for the synthetic workflow generators.

Task runtimes and file sizes are modelled as truncated normal variables
(mean, standard deviation, floor), matching the heavy-middle/no-negative
shape of the published workflow profiles.  Each generator declares a table
of :class:`TaskType` entries and uses :class:`GeneratorContext` for id
allocation and sampling, which keeps the family modules declarative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import WorkflowError
from repro.mspg.graph import Workflow
from repro.util.rng import SeedLike, as_rng

__all__ = [
    "TaskType",
    "GeneratorContext",
    "truncated_normal",
    "generate",
    "FAMILIES",
]


def truncated_normal(
    rng: np.random.Generator, mean: float, std: float, floor: float
) -> float:
    """One draw from N(mean, std²) truncated below at ``floor`` (resampled).

    Resampling (rather than clipping) avoids a probability atom at the
    floor; with the tables used here the acceptance probability is > 0.97,
    so the loop is effectively constant-time.  A zero ``std`` returns the
    mean directly.
    """
    if std < 0:
        raise ValueError(f"std must be >= 0, got {std}")
    if mean < floor:
        raise ValueError(f"mean {mean} below floor {floor}")
    if std == 0:
        return mean
    for _ in range(1000):
        x = rng.normal(mean, std)
        if x >= floor:
            return float(x)
    # Pathological (mean many sigmas below floor — excluded by the check
    # above, but kept as a safe fallback for exotic user tables).
    return float(floor)


@dataclass(frozen=True)
class TaskType:
    """Distribution of one task type's runtime and characteristic output.

    ``runtime_mean``/``runtime_std`` are seconds; ``output_mean``/
    ``output_std`` are bytes of the type's characteristic output file.
    """

    name: str
    runtime_mean: float
    runtime_std: float
    output_mean: float
    output_std: float

    RUNTIME_FLOOR: float = 0.01
    SIZE_FLOOR: float = 64.0


class GeneratorContext:
    """Mutable helper threading RNG + workflow through a generator."""

    def __init__(self, name: str, seed: SeedLike) -> None:
        self.rng = as_rng(seed)
        self.workflow = Workflow(name)
        self._counters: Dict[str, int] = {}

    def fresh_id(self, prefix: str) -> str:
        """Sequential ids like ``map_00042`` (stable across runs)."""
        k = self._counters.get(prefix, 0)
        self._counters[prefix] = k + 1
        return f"{prefix}_{k:05d}"

    def add_task(self, ttype: TaskType) -> str:
        """Add a task of ``ttype`` with a sampled runtime; returns its id."""
        tid = self.fresh_id(ttype.name)
        runtime = truncated_normal(
            self.rng, ttype.runtime_mean, ttype.runtime_std, ttype.RUNTIME_FLOOR
        )
        self.workflow.add_task(tid, runtime, category=ttype.name)
        return tid

    def add_output(
        self,
        producer: str,
        ttype: TaskType,
        tag: str = "out",
        size: Optional[float] = None,
    ) -> str:
        """Register an output file of ``producer``; returns the file name."""
        fname = f"{producer}.{tag}"
        if size is None:
            size = truncated_normal(
                self.rng, ttype.output_mean, ttype.output_std, ttype.SIZE_FLOOR
            )
        self.workflow.add_file(fname, size, producer=producer)
        return fname

    def add_workflow_input(self, name: str, size: float) -> str:
        """Register a file available on stable storage before execution."""
        self.workflow.add_file(name, size, producer=None)
        return name

    def connect(self, file_name: str, *consumers: str) -> None:
        """Feed ``file_name`` to every listed consumer task."""
        for c in consumers:
            self.workflow.add_input(c, file_name)


def generate(family: str, ntasks: int, seed: SeedLike = None) -> Workflow:
    """Generate a workflow of the named family with ~``ntasks`` tasks.

    Families: ``montage``, ``genome``, ``ligo``, ``cybershake``, ``sipht``,
    ``random`` (random M-SPG).
    """
    try:
        fn = FAMILIES[family.lower()]
    except KeyError:
        raise WorkflowError(
            f"unknown workflow family {family!r}; choose from {sorted(FAMILIES)}"
        ) from None
    return fn(ntasks, seed)


def _families() -> Dict[str, Callable[[int, SeedLike], Workflow]]:
    # Imported lazily to avoid a circular import at package load.
    from repro.generators.cybershake import cybershake
    from repro.generators.genome import genome
    from repro.generators.ligo import ligo
    from repro.generators.montage import montage
    from repro.generators.random_mspg import random_mspg
    from repro.generators.sipht import sipht

    return {
        "montage": montage,
        "genome": genome,
        "ligo": ligo,
        "cybershake": cybershake,
        "sipht": sipht,
        "random": random_mspg,
    }


class _LazyFamilies(dict):
    """Dict facade that resolves the generator functions on first access."""

    def _ensure(self) -> None:
        if not super().__len__():
            super().update(_families())

    def __getitem__(self, key: str):  # type: ignore[override]
        self._ensure()
        return super().__getitem__(key)

    def __iter__(self):  # type: ignore[override]
        self._ensure()
        return super().__iter__()

    def __len__(self) -> int:  # type: ignore[override]
        self._ensure()
        return super().__len__()

    def __contains__(self, key: object) -> bool:  # type: ignore[override]
        self._ensure()
        return super().__contains__(key)


#: Mapping from family name to generator callable.
FAMILIES: Dict[str, Callable[[int, SeedLike], Workflow]] = _LazyFamilies()
