"""CYBERSHAKE workflow generator (seismic hazard characterisation).

Extension family (not part of the paper's evaluation, but supported by
the Pegasus generator the paper relies on).  Per site:

```
 ExtractSGT_x, ExtractSGT_y (2, parallel)   extract strain Green tensors
 SeismogramSynthesis (m, parallel)          one per rupture variation,
                                            each reads *both* SGTs
 PeakValCalc (m, 1-1)                       peak ground-motion per synth
 ZipSeis (1)                                archive all seismograms
 ZipPSA  (1)                                archive all peak values
```

CyberShake is data-heavy: the two SGT files are hundreds of megabytes and
fan out to every synthesis task, which makes it the stress case for the
shared-file deduplication in the checkpoint cost model.
"""

from __future__ import annotations

from repro.errors import WorkflowError
from repro.generators.base import GeneratorContext, TaskType
from repro.mspg.graph import Workflow
from repro.util.rng import SeedLike

__all__ = ["cybershake"]

MB = 1e6

EXTRACT = TaskType("ExtractSGT", 110.0, 20.0, 240.0 * MB, 30.0 * MB)
SYNTH = TaskType("SeismogramSynthesis", 48.0, 15.0, 0.20 * MB, 0.05 * MB)
PEAKVAL = TaskType("PeakValCalc", 0.60, 0.15, 0.002 * MB, 0.0005 * MB)
ZIPSEIS = TaskType("ZipSeis", 40.0, 8.0, 0.0, 0.0)  # size explicit
ZIPPSA = TaskType("ZipPSA", 38.0, 8.0, 0.0, 0.0)  # size explicit

SGT_INPUT_BYTES = 430.0 * MB


def cybershake(ntasks: int = 50, seed: SeedLike = None) -> Workflow:
    """Generate a CYBERSHAKE workflow with approximately ``ntasks`` tasks."""
    if ntasks < 8:
        raise WorkflowError(f"cybershake needs ntasks >= 8, got {ntasks}")
    m = max(2, (ntasks - 4) // 2)
    ctx = GeneratorContext(f"cybershake-{ntasks}", seed)
    wf = ctx.workflow

    sgt_files = []
    for axis in ("x", "y"):
        t = ctx.add_task(EXTRACT)
        master = ctx.add_workflow_input(f"sgt_master_{axis}.bin", SGT_INPUT_BYTES)
        ctx.connect(master, t)
        sgt_files.append(ctx.add_output(t, EXTRACT, "sgt"))

    zipseis = ctx.add_task(ZIPSEIS)
    zippsa = ctx.add_task(ZIPPSA)
    for j in range(m):
        synth = ctx.add_task(SYNTH)
        for sgt in sgt_files:  # both SGTs feed every synthesis task
            ctx.connect(sgt, synth)
        seis = ctx.add_output(synth, SYNTH, "seis")
        ctx.connect(seis, zipseis)
        peak = ctx.add_task(PEAKVAL)
        ctx.connect(seis, peak)
        pv = ctx.add_output(peak, PEAKVAL, "pv")
        ctx.connect(pv, zippsa)

    ctx.add_output(zipseis, ZIPSEIS, "zip", size=0.22 * MB * m)
    ctx.add_output(zippsa, ZIPPSA, "zip", size=0.003 * MB * m)

    wf.validate()
    return wf
