"""Kernel profiling counters for the distribution algebra.

The makespan kernels — scalar :class:`DiscreteDistribution` operations,
their batched :class:`BatchDistribution` counterparts, and the pooled
fold-plan executor — report op counts, row counts, scalar-fallback rows
and per-op wall time here.  The collector is **off by default** and the
hot-path cost of an inactive hook is a single module-attribute load and
``None`` check (no timestamping, no allocation), so the hooks stay in
production code.

Usage::

    prof = enable()          # fresh collector, hooks start recording
    ...                      # run sweeps / evaluations
    prof.snapshot()          # JSON-friendly summary
    disable()                # detach

The headline derived metric is the **scalar-fallback ratio**: the share
of batched-kernel rows that had to finalise through the scalar kernel
(data-dependent merges, ragged union grids, emptied truncation bins).
It is the number that motivates the rectangular truncate mode, and the
``repro sweep --profile`` / ``/status`` surfaces report it.

The collector is process-local, but no longer parent-only: a
multiprocess sweep enables a private collector in each worker, ships
its :meth:`KernelProfile.snapshot` back with the chunk results, and the
parent folds them in via :meth:`KernelProfile.merge`, so
``repro sweep --profile --jobs N`` reports fleet-wide counters.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

__all__ = [
    "KernelProfile",
    "ACTIVE",
    "enable",
    "disable",
    "active",
    "snapshot",
]

#: Kernel ops counted one row at a time (the scalar reference kernels).
SCALAR_OPS = ("convolve", "max", "truncate")
#: Batched kernel ops; ``rows`` counts cells, ``scalar_rows`` the subset
#: finalised through the scalar kernel (the fallback ratio's numerator).
BATCH_OPS = ("batch_convolve", "batch_max", "batch_truncate")
#: Pooled fold-plan executor; ``rows`` counts tape steps, ``scalar_rows``
#: the steps executed singly (no pooling partner of matching shape).
#: ``pool_exec`` counts wavefront executions (``rows`` = cell-plans per
#: execution — the pooled wavefront width); ``pool_conv_routed`` counts
#: convolve groups routed to the scalar kernel because the pool was too
#: narrow for batching to win (``rows`` = members so routed).
POOL_OPS = ("pool_step", "pool_exec", "pool_conv_routed")

#: Evaluation dispatches (one ``expected_makespans``/``_fused`` call);
#: ``rows`` counts jobs per dispatch, ``scalar_rows`` total cells.
DISPATCH_OPS = ("dispatch",)

#: Compiled-kernel ops (:mod:`repro.makespan.native`); ``rows`` counts
#: distribution rows the native path served.  Each has a paired
#: ``native_miss_*`` op counting rows that fell back to the python
#: reference (native disabled, build failed, or an input the compiled
#: kernel declines — NaN supports, mixed infinities).
NATIVE_OPS = (
    "native_convolve",
    "native_max",
    "native_truncate",
    "native_rect_bin",
)
NATIVE_MISS_OPS = tuple("native_miss_" + op[len("native_"):] for op in NATIVE_OPS)


class KernelProfile:
    """Mutable per-op counters: calls, rows, scalar rows, wall seconds."""

    __slots__ = ("counters", "started_at")

    def __init__(self) -> None:
        self.counters: Dict[str, Dict[str, float]] = {}
        self.started_at = time.perf_counter()

    def record(
        self, op: str, rows: int = 1, scalar_rows: int = 0, wall: float = 0.0
    ) -> None:
        entry = self.counters.get(op)
        if entry is None:
            entry = {"calls": 0, "rows": 0, "scalar_rows": 0, "wall_s": 0.0}
            self.counters[op] = entry
        entry["calls"] += 1
        entry["rows"] += rows
        entry["scalar_rows"] += scalar_rows
        entry["wall_s"] += wall

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------

    def scalar_fallback_ratio(self) -> Optional[float]:
        """Scalar-finalised rows / total rows across batched kernels.

        ``None`` when no batched kernel ran (nothing to fall back from).
        """
        rows = scalar = 0
        for op in BATCH_OPS:
            entry = self.counters.get(op)
            if entry:
                rows += int(entry["rows"])
                scalar += int(entry["scalar_rows"])
        if rows == 0:
            return None
        return scalar / rows

    def pool_singleton_ratio(self) -> Optional[float]:
        """Scalar-executed tape steps / total steps in the fold-plan
        executor (singletons plus scalar-routed adaptive-convolve pool
        members)."""
        entry = self.counters.get("pool_step")
        if not entry or entry["rows"] == 0:
            return None
        return entry["scalar_rows"] / entry["rows"]

    def dispatches(self) -> int:
        """Number of evaluation dispatches issued (fused or per-group)."""
        entry = self.counters.get("dispatch")
        return int(entry["calls"]) if entry else 0

    def dispatch_jobs_mean(self) -> Optional[float]:
        """Mean number of template jobs per evaluation dispatch."""
        entry = self.counters.get("dispatch")
        if not entry or entry["calls"] == 0:
            return None
        return entry["rows"] / entry["calls"]

    def pool_width_mean(self) -> Optional[float]:
        """Mean cell-plans per pooled wavefront execution.

        The width of the work-list each :func:`~repro.makespan.foldplan.
        execute_plans` pass replays — the number the fused dispatcher
        exists to raise (per-group dispatch caps it at the group's cell
        count).
        """
        entry = self.counters.get("pool_exec")
        if not entry or entry["calls"] == 0:
            return None
        return entry["rows"] / entry["calls"]

    def native_rows(self) -> int:
        """Rows served by the compiled kernels."""
        return sum(
            int(self.counters[op]["rows"])
            for op in NATIVE_OPS
            if op in self.counters
        )

    def native_miss_rows(self) -> int:
        """Rows that fell back to the python reference kernels."""
        return sum(
            int(self.counters[op]["rows"])
            for op in NATIVE_MISS_OPS
            if op in self.counters
        )

    def native_ratio(self) -> Optional[float]:
        """Share of native-eligible rows the compiled path absorbed.

        ``None`` when no native-dispatched op ran at all (e.g. a rect-
        mode-only sweep with native disabled records nothing).
        """
        served = self.native_rows()
        missed = self.native_miss_rows()
        if served + missed == 0:
            return None
        return served / (served + missed)

    def merge(self, snap: Dict[str, object]) -> None:
        """Fold a :meth:`snapshot` from another collector into this one.

        Used by the multiprocess sweep: each worker profiles its own
        chunks and ships the snapshot back; the parent merges them so
        ``repro sweep --profile --jobs N`` reports fleet-wide counters.
        Derived ratios are recomputed from the merged counts.
        """
        for op, e in dict(snap.get("ops", {})).items():
            self.record(
                op,
                rows=int(e.get("rows", 0)),
                scalar_rows=int(e.get("scalar_rows", 0)),
                wall=float(e.get("wall_s", 0.0)),
            )
            # record() bumped calls by one; fix up to the true count.
            self.counters[op]["calls"] += int(e.get("calls", 1)) - 1

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly summary (used by ``/status`` and the CLI)."""
        ops = {
            op: {
                "calls": int(e["calls"]),
                "rows": int(e["rows"]),
                "scalar_rows": int(e["scalar_rows"]),
                "wall_s": round(float(e["wall_s"]), 6),
            }
            for op, e in sorted(self.counters.items())
        }
        return {
            "ops": ops,
            "scalar_fallback_ratio": self.scalar_fallback_ratio(),
            "pool_singleton_ratio": self.pool_singleton_ratio(),
            "dispatches": self.dispatches(),
            "dispatch_jobs_mean": self.dispatch_jobs_mean(),
            "pool_width_mean": self.pool_width_mean(),
            "native_rows": self.native_rows(),
            "native_miss_rows": self.native_miss_rows(),
            "native_ratio": self.native_ratio(),
            "elapsed_s": round(time.perf_counter() - self.started_at, 6),
        }

    def render(self) -> str:
        """Human-readable table for ``repro sweep --profile``."""
        lines = [
            f"{'op':<21} {'calls':>9} {'rows':>10} {'scalar':>9} {'wall_s':>9}"
        ]
        for op, e in sorted(self.counters.items()):
            lines.append(
                f"{op:<21} {int(e['calls']):>9} {int(e['rows']):>10} "
                f"{int(e['scalar_rows']):>9} {e['wall_s']:>9.3f}"
            )
        ratio = self.scalar_fallback_ratio()
        lines.append(
            "scalar-fallback ratio: "
            + ("n/a (no batched kernel calls)" if ratio is None else f"{ratio:.4f}")
        )
        pooled = self.pool_singleton_ratio()
        if pooled is not None:
            lines.append(f"pool singleton ratio:  {pooled:.4f}")
        if self.dispatches():
            jobs_mean = self.dispatch_jobs_mean()
            lines.append(
                f"dispatches:            {self.dispatches()} "
                f"(mean {jobs_mean:.1f} jobs each)"
            )
        width = self.pool_width_mean()
        if width is not None:
            lines.append(f"pool width mean:       {width:.2f} cells")
        nratio = self.native_ratio()
        if nratio is not None:
            lines.append(
                f"native kernel rows:    {self.native_rows()} served, "
                f"{self.native_miss_rows()} fallback ({nratio:.4f} native)"
            )
        return "\n".join(lines)


#: The active collector, or ``None``.  Kernels do
#: ``if profile.ACTIVE is not None: ...`` — keep reads going through the
#: module attribute so :func:`enable`/:func:`disable` take effect
#: everywhere at once.
ACTIVE: Optional[KernelProfile] = None


def enable() -> KernelProfile:
    """Install (and return) a fresh collector; prior counts are dropped."""
    global ACTIVE
    ACTIVE = KernelProfile()
    return ACTIVE


def disable() -> None:
    """Detach the collector; hooks return to the no-op fast path."""
    global ACTIVE
    ACTIVE = None


def active() -> Optional[KernelProfile]:
    """The live collector, if profiling is enabled."""
    return ACTIVE


def snapshot() -> Optional[Dict[str, object]]:
    """Snapshot of the live collector, or ``None`` when disabled."""
    return None if ACTIVE is None else ACTIVE.snapshot()
