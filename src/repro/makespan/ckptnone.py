"""CKPTNONE: the Theorem 1 estimator (§V of the paper).

Nothing is checkpointed; on the first failure the whole execution
restarts from scratch.  Computing the true expected makespan of
CKPTNONE is #P-complete (the paper's headline complexity result), so the
paper evaluates the strategy with the first-order estimate

.. math::

   EM(G) = (1 - pλW_{par})·W_{par} + pλW_{par}·\\tfrac{3}{2} W_{par}

where ``W_par`` is the failure-free parallel time of the schedule and
``p`` the number of processors: with probability ``pλW_par`` some
processor fails during the run (expected loss ``W_par/2``) and the run is
re-executed.  The paper notes the formula "is likely to be inaccurate"
but knows no better approximation; our restart-model simulator
(:func:`repro.simulation.batch.simulate_ckptnone`) quantifies exactly how
inaccurate (see ``benchmarks/bench_theorem1_ckptnone.py``).

``W_par`` contains no I/O: CKPTNONE keeps all data in memory, which is
the zero-overhead end of the paper's trade-off space.  Idle processors
cannot lose state, so by default only processors that execute at least
one task count toward ``p`` (set ``count_idle_processors=True`` for the
verbatim formula).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import EvaluationError
from repro.mspg.graph import Workflow
from repro.platform import Platform
from repro.scheduling.schedule import Schedule
from repro.util.toposort import topological_order

__all__ = ["failure_free_makespan", "ckptnone_expected_makespan"]


def failure_free_makespan(workflow: Workflow, schedule: Schedule) -> float:
    """``W_par``: failure-free makespan of the schedule, without any I/O.

    Longest path over the task DAG augmented with each processor's
    serialisation edges (consecutive scheduled tasks).
    """
    succs: Dict[str, List[str]] = {t: list(workflow.succs(t)) for t in workflow.task_ids}
    for proc in range(schedule.n_processors):
        seq = schedule.task_sequence(proc)
        for u, v in zip(seq, seq[1:]):
            succs[u].append(v)
    order = topological_order(workflow.task_ids, succs)
    completion: Dict[str, float] = {}
    preds: Dict[str, List[str]] = {t: [] for t in workflow.task_ids}
    for u, vs in succs.items():
        for v in vs:
            preds[v].append(u)
    makespan = 0.0
    for v in order:
        start = max((completion[u] for u in preds[v]), default=0.0)
        completion[v] = start + workflow.weight(v)
        makespan = max(makespan, completion[v])
    return makespan


def ckptnone_expected_makespan(
    workflow: Workflow,
    schedule: Schedule,
    platform: Platform,
    count_idle_processors: bool = False,
) -> float:
    """Theorem 1's first-order expected makespan of CKPTNONE.

    ``(1 − pλW)·W + pλW·(3/2)W = W·(1 + pλW/2)`` — applied *verbatim*
    even when ``pλW >= 1``, where it is no longer a probability mix: the
    paper uses the formula throughout its grids (it is what pushes the
    CKPTNONE curves out of the plotted range for large failure rates and
    workflows), explicitly conceding it "is likely to be inaccurate".
    The restart-model simulator bounds the true value from above:
    ``W·(e^{pλW} − 1)/(pλW) >= W·(1 + pλW/2)`` for all rates.
    """
    wpar = failure_free_makespan(workflow, schedule)
    p = (
        platform.processors
        if count_idle_processors
        else len(schedule.used_processors())
    )
    if p == 0:
        return 0.0
    q = p * platform.failure_rate * wpar
    return wpar * (1.0 + 0.5 * q)
