"""First-class evaluator protocol and registry for the makespan layer.

Every expected-makespan method is wrapped in an :class:`Evaluator` that
*declares* what the dispatch layer previously had to discover by
introspection:

* an **option schema** — the keyword options the method accepts, with
  defaults and one-line docs (``repro methods`` renders it; the
  dispatcher validates against it at call time);
* **capabilities** — ``deterministic`` (closed-form methods whose result
  is a pure function of the DAG) vs stochastic (Monte Carlo, whose
  result depends on a sampling seed), and ``supports_batch`` (the
  evaluator can price a whole parameterised grid in one call);
* a **batch entry point** — :meth:`Evaluator.evaluate_batch` takes a
  :class:`~repro.makespan.paramdag.ParamDAG` (one DAG template plus
  per-cell 2-state parameter arrays) and returns one expected makespan
  per cell.  The batch contract is strict: results must be
  **bit-identical** to evaluating each materialised cell through
  :meth:`Evaluator.evaluate`.  The default implementation simply loops
  over cells, which satisfies the contract trivially; vectorised
  overrides (PathApprox, Sculli's normal) keep it by construction and
  are pinned by the parity tests.

The registry (:class:`EvaluatorRegistry`) replaces the bare
string→function dict *and* the old ``inspect``-keyed option cache.  The
cache grew without bound and — worse — kept validating against a stale
signature when an entry was monkeypatched mid-process.  Here a plain
callable assigned into the registry is wrapped immediately (its schema
derived from its signature *at assignment time*), and the dispatcher
validates each call against the evaluator's currently declared schema,
so replacing an entry can never leave stale validation behind.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    Mapping,
    MutableMapping,
    Optional,
    Tuple,
)

import numpy as np

from repro.errors import EvaluationError

__all__ = [
    "EvaluatorOption",
    "Evaluator",
    "FunctionEvaluator",
    "EvaluatorRegistry",
]

#: Sentinel for options without a default (caller must pass a value).
_REQUIRED = object()


@dataclass(frozen=True)
class EvaluatorOption:
    """One declared keyword option of an evaluator."""

    name: str
    default: Any = None
    doc: str = ""

    def describe(self) -> str:
        """``name=default`` rendering for tables and error messages."""
        if self.default is _REQUIRED:
            return self.name
        return f"{self.name}={self.default!r}"


class Evaluator:
    """Base class for expected-makespan evaluators.

    Subclasses (or :class:`FunctionEvaluator` instances) provide
    :meth:`evaluate`; everything else — option validation, capability
    flags, the batch entry point — has sensible defaults.  Instances are
    callable so legacy ``EVALUATORS[name](dag, ...)`` call sites keep
    working unchanged.
    """

    #: Registry key (the paper's method name).
    name: str = ""
    #: One-line description for ``repro methods``.
    summary: str = ""
    #: Declared keyword options (the schema the dispatcher validates).
    options: Tuple[EvaluatorOption, ...] = ()
    #: Closed-form (pure function of the DAG) vs sampling-based.
    deterministic: bool = True
    #: Whether :meth:`evaluate_batch` may be used by the engine.  Batch
    #: evaluation reuses one DAG template for many parameter cells, so
    #: it must stay False for methods whose per-cell result depends on
    #: anything outside the template parameters (Monte Carlo: the
    #: sampling seed is derived from the cell's grid position).  The
    #: default is the conservative False — the engine then takes the
    #: per-cell path, which is always correct; evaluators that honour
    #: the batch contract opt in explicitly.
    supports_batch: bool = False
    #: Accepts arbitrary keywords (``**kwargs`` legacy wrappers only).
    accepts_any_option: bool = False

    # ------------------------------------------------------------------

    def evaluate(self, dag, **options: Any) -> float:
        """Expected makespan of one 2-state DAG."""
        raise NotImplementedError

    def evaluate_batch(self, template, **options: Any) -> np.ndarray:
        """Expected makespan of every cell of a parameterised DAG.

        ``template`` is a :class:`~repro.makespan.paramdag.ParamDAG`;
        the result is a float array of length ``template.n_cells``,
        bit-identical to ``[self.evaluate(template.cell(i), **options)]``.
        The default implementation *is* that loop; vectorised overrides
        must preserve it exactly.

        **The per-cell seed convention.**  For stochastic evaluators a
        sequence-valued ``seed`` option means *one seed per cell* (the
        engine threads each sweep cell's ``eval_seed`` this way); the
        per-cell reference above then uses ``seed=seeds[i]`` for cell
        ``i``.  The default loop slices accordingly — and rejects a
        sequence whose length disagrees with the cell count rather than
        letting ``default_rng`` swallow the whole list as one entropy
        pool per cell, which would silently collapse every cell onto a
        single stream.  Vectorised overrides (``montecarlo_batch``)
        follow the same convention.
        """
        seeds = options.get("seed")
        per_cell_seeds = isinstance(seeds, (list, tuple, np.ndarray))
        if per_cell_seeds and len(seeds) != template.n_cells:
            raise EvaluationError(
                f"evaluator {self.name!r} got {len(seeds)} seeds for "
                f"{template.n_cells} cells (pass one seed per cell, or "
                "a scalar)"
            )
        out = []
        for i in range(template.n_cells):
            cell_options = options
            if per_cell_seeds:
                cell_options = {**options, "seed": seeds[i]}
            out.append(self.evaluate(template.cell(i), **cell_options))
        return np.array(out, dtype=float)

    def evaluate_fused(self, jobs) -> list:
        """Price many templates in one dispatch; one value array per job.

        ``jobs`` is a sequence of ``(template, options, seeds)`` triples
        — per-job option dicts (already validated) and an optional
        per-cell seed list following the seed convention of
        :meth:`evaluate_batch` (``None`` for closed-form methods).  The
        fused contract extends the batch contract: each job's values
        must be **bit-identical** to ``self.evaluate_batch(template,
        **options)`` with the job's seeds threaded through the ``seed``
        option.  The default implementation *is* that loop, satisfying
        the contract trivially; evaluators whose batch path runs the
        pooled wavefront executor (PathApprox) override it to pool tape
        steps across every job's templates, which preserves per-row
        bit-identity by the batched-kernel contract.
        """
        out = []
        for template, options, seeds in jobs:
            job_options = dict(options)
            if seeds is not None and "seed" not in job_options:
                job_options["seed"] = seeds
            out.append(self.evaluate_batch(template, **job_options))
        return out

    # ------------------------------------------------------------------

    def option_names(self) -> Tuple[str, ...]:
        """Names of the declared options."""
        return tuple(opt.name for opt in self.options)

    def validate_options(self, options: Mapping[str, Any]) -> None:
        """Reject keywords outside the declared schema.

        Runs at call time against the *current* declaration, so a
        replaced registry entry is validated against its own schema,
        never a cached predecessor's.
        """
        if self.accepts_any_option or not options:
            return
        accepted = set(self.option_names())
        unknown = sorted(set(options) - accepted)
        if unknown:
            raise EvaluationError(
                f"unknown option(s) {', '.join(map(repr, unknown))} for "
                f"method {self.name!r}; accepted options: "
                f"{sorted(accepted) if accepted else 'none'}"
            )

    def __call__(self, dag, **options: Any) -> float:
        return self.evaluate(dag, **options)

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        kind = "deterministic" if self.deterministic else "stochastic"
        return (
            f"<Evaluator {self.name!r} ({kind}, "
            f"batch={'yes' if self.supports_batch else 'no'})>"
        )


def _options_from_signature(fn: Callable[..., float]) -> Tuple[Tuple[EvaluatorOption, ...], bool]:
    """Derive ``(options, accepts_any)`` from a function signature.

    The first parameter is the DAG; ``**kwargs`` means "accepts
    anything" (no schema to validate).  Derivation happens once, when
    the function is wrapped — never cached across reassignments.
    """
    params = list(inspect.signature(fn).parameters.values())
    if any(p.kind is p.VAR_KEYWORD for p in params):
        return (), True
    options = tuple(
        EvaluatorOption(
            name=p.name,
            default=_REQUIRED if p.default is p.empty else p.default,
        )
        for p in params[1:]  # params[0] is the DAG
        if p.kind in (p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY)
    )
    return options, False


class FunctionEvaluator(Evaluator):
    """Adapter turning a plain ``fn(dag, **options) -> float`` into an
    :class:`Evaluator`, with the option schema read off its signature
    at wrap time and an optional vectorised batch implementation."""

    def __init__(
        self,
        fn: Callable[..., float],
        name: Optional[str] = None,
        summary: str = "",
        deterministic: bool = True,
        supports_batch: bool = False,
        batch_fn: Optional[Callable[..., np.ndarray]] = None,
        fused_fn: Optional[Callable[..., list]] = None,
        option_docs: Optional[Mapping[str, str]] = None,
    ) -> None:
        self._fn = fn
        self._batch_fn = batch_fn
        self._fused_fn = fused_fn
        self.name = name if name is not None else getattr(fn, "__name__", "?")
        doc = summary or (inspect.getdoc(fn) or "").split("\n", 1)[0]
        self.summary = doc
        options, accepts_any = _options_from_signature(fn)
        if option_docs:
            options = tuple(
                EvaluatorOption(o.name, o.default, option_docs.get(o.name, o.doc))
                for o in options
            )
        self.options = options
        self.accepts_any_option = accepts_any
        self.deterministic = deterministic
        self.supports_batch = supports_batch

    def evaluate(self, dag, **options: Any) -> float:
        return self._fn(dag, **options)

    def evaluate_batch(self, template, **options: Any) -> np.ndarray:
        if self._batch_fn is not None:
            return self._batch_fn(template, **options)
        return super().evaluate_batch(template, **options)

    def evaluate_fused(self, jobs) -> list:
        if self._fused_fn is not None:
            return self._fused_fn(jobs)
        return super().evaluate_fused(jobs)


class EvaluatorRegistry(MutableMapping):
    """Mutable name→:class:`Evaluator` mapping with a registration API.

    Plain callables assigned via ``registry[name] = fn`` are wrapped in
    a :class:`FunctionEvaluator` *at assignment time* — the schema is
    derived from the new function's signature then and there, so
    monkeypatching an entry mid-process can never validate against a
    stale signature (the failure mode of the old ``inspect`` cache).
    Wrapped plain callables are conservatively marked
    ``supports_batch=False``: the engine falls back to the per-cell
    path for them rather than assuming the batch contract holds.
    """

    def __init__(self) -> None:
        self._evaluators: Dict[str, Evaluator] = {}

    def register(
        self, evaluator: Evaluator, *, replace: bool = False
    ) -> Evaluator:
        """Add an evaluator under its declared name; returns it."""
        if not evaluator.name:
            raise EvaluationError("evaluator has no name to register under")
        if not replace and evaluator.name in self._evaluators:
            raise EvaluationError(
                f"evaluator {evaluator.name!r} is already registered "
                f"(pass replace=True to override)"
            )
        self._evaluators[evaluator.name] = evaluator
        return evaluator

    def get_evaluator(self, method: str) -> Evaluator:
        """The evaluator for ``method``, or a uniform EvaluationError."""
        try:
            return self._evaluators[method]
        except KeyError:
            raise EvaluationError(
                f"unknown evaluation method {method!r}; choose from "
                f"{sorted(self._evaluators)}"
            ) from None

    # -- MutableMapping interface --------------------------------------

    def __getitem__(self, name: str) -> Evaluator:
        return self._evaluators[name]

    def __setitem__(self, name: str, value: Any) -> None:
        if isinstance(value, Evaluator):
            if value.name != name:
                raise EvaluationError(
                    f"evaluator declares name {value.name!r}; cannot "
                    f"register it as {name!r}"
                )
            self._evaluators[name] = value
            return
        if not callable(value):
            raise EvaluationError(
                f"registry values must be Evaluator instances or "
                f"callables, got {type(value).__name__}"
            )
        self._evaluators[name] = FunctionEvaluator(value, name=name)

    def __delitem__(self, name: str) -> None:
        del self._evaluators[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._evaluators)

    def __len__(self) -> int:
        return len(self._evaluators)

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return f"EvaluatorRegistry({sorted(self._evaluators)})"
