"""Monte Carlo expected-makespan estimation (§II-B, §VI-B).

The paper uses 300,000-trial Monte Carlo as ground truth: sample each
task's 2-state duration, compute the longest path, average.  Sampling and
longest-path propagation are fully vectorised; trials are processed in
batches to bound memory (a ``(batch, n)`` float matrix).

:func:`montecarlo_batch` is the batched entry point over a
:class:`~repro.makespan.paramdag.ParamDAG` template: every cell keeps
its own independent sampling stream (one
:class:`numpy.random.Generator` per cell), while the longest-path
propagation runs once per trial block over the stacked
``(cells, batch, n)`` duration tensor.  Because sampling, duration
construction and propagation are element-for-element the operations the
per-cell path performs, the batched result is **bit-identical** to
evaluating each cell through :func:`montecarlo` with its own seed — the
batch contract the engine's batched sweep stage relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import EvaluationError
from repro.makespan.probdag import ProbDAG
from repro.util.rng import SeedLike, as_rng

__all__ = [
    "montecarlo",
    "montecarlo_batch",
    "montecarlo_result",
    "MonteCarloResult",
    "sample_makespans",
]

#: Memory bound for the batched trial tensor: cells are processed in
#: chunks such that one cell chunk's live float blocks (the per-cell
#: uniform draws plus the stacked transposed duration/completion
#: matrices) stay under this many bytes.
MC_BATCH_MAX_BYTES = 256 * 1024 * 1024

#: Trial sub-chunk of the batched longest-path propagation.  Each
#: per-cell ``(sub, n)`` uniform block (and its transpose) stays
#: cache-resident, which is where the batched path's speedup comes
#: from: the per-cell reference kernel's strided column accesses thrash
#: the cache once a cell's ``(trials, n)`` matrix outgrows it, while
#: the transposed batched kernel streams contiguous rows.  Sub-chunking
#: is row-local, so it never changes a sample.
MC_PROPAGATE_SUB = 512


@dataclass(frozen=True)
class MonteCarloResult:
    """Estimate with sampling error.

    ``stderr`` is the standard error of ``mean``; a ~95% confidence
    interval is ``mean ± 1.96·stderr``.  For antithetic runs the
    standard error is computed over the independent sampling *units* —
    pair averages (plus the lone final draw of an odd-trials run) —
    because the raw samples inside a pair are negatively correlated and
    ``sqrt(var/trials)`` over them overstates the error.  ``variance``
    always reports the raw per-sample variance.
    """

    mean: float
    stderr: float
    trials: int
    variance: float

    @property
    def ci95(self) -> Tuple[float, float]:
        """Approximate 95% confidence interval for the expected makespan."""
        delta = 1.96 * self.stderr
        return (self.mean - delta, self.mean + delta)


def sample_makespans(
    dag: ProbDAG,
    trials: int,
    seed: SeedLike = None,
    antithetic: bool = False,
    batch: int = 16384,
) -> np.ndarray:
    """Sample ``trials`` makespans of the 2-state DAG.

    With ``antithetic=True``, trials are drawn in pairs ``(U, 1-U)`` —
    a classical variance-reduction device (each pair is negatively
    correlated through the shared uniforms), benchmarked in
    ``benchmarks/bench_ablation_montecarlo.py``.  Samples ``2k`` and
    ``2k+1`` of the returned array are one pair, for *any*
    ``trials``/``batch`` combination: uniforms are drawn in whole pairs
    per batch (batch sizes are rounded down to even counts), so a pair
    never straddles a batch boundary and no complement is lost to batch
    truncation.  Only an odd ``trials``'s final sample is a lone ``U``
    (its complement would be trial ``trials + 1``).
    """
    if trials < 1:
        raise EvaluationError(f"trials must be >= 1, got {trials}")
    rng = as_rng(seed)
    base = dag.base
    extra = dag.long - base
    p = dag.p
    if antithetic:
        # Whole pairs per batch: an odd batch size would orphan one
        # complement per batch and shift every later pair off its mate.
        batch = max(2, batch - batch % 2)
    out = np.empty(trials)
    done = 0
    while done < trials:
        m = min(batch, trials - done)
        u = _draw_uniforms(rng, m, dag.n, antithetic)
        durations = base + extra * (u < p)
        out[done : done + m] = dag.makespans(durations)
        done += m
    return out


def _draw_uniforms(
    rng: np.random.Generator, m: int, n: int, antithetic: bool
) -> np.ndarray:
    """One ``(m, n)`` uniform block, antithetic pairs adjacent."""
    if not antithetic:
        return rng.random((m, n))
    half = (m + 1) // 2
    u = rng.random((half, n))
    paired = np.empty((2 * half, n))
    paired[0::2] = u
    paired[1::2] = 1.0 - u
    return paired[:m]


def _antithetic_stderr(samples: np.ndarray) -> float:
    """Standard error of the mean of an antithetic sample array.

    The independent units of an antithetic run are the pair averages
    (samples ``2k``/``2k+1`` share their uniforms), plus the lone final
    draw when ``trials`` is odd.  The overall mean weights each pair
    ``2/trials`` and the lone draw ``1/trials``, so::

        Var(mean) = (2/T)^2 · m · Var(pair average)  [+ (1/T)^2 · Var(lone)]

    with ``m = T // 2`` pairs; pair-average variance is estimated from
    the pair averages (ddof=1) and the lone draw's variance from the raw
    samples.  For even ``T`` this reduces to the textbook
    ``sqrt(var(pair averages) / m)``.
    """
    trials = len(samples)
    m = trials // 2
    pair_avg = 0.5 * (samples[0 : 2 * m : 2] + samples[1 : 2 * m : 2])
    var_pairs = float(pair_avg.var(ddof=1)) if m > 1 else 0.0
    var_mean = 4.0 * m * var_pairs / (trials * trials)
    if trials % 2:
        var_raw = float(samples.var(ddof=1)) if trials > 1 else 0.0
        var_mean += var_raw / (trials * trials)
    return sqrt(var_mean)


def montecarlo_result(
    dag: ProbDAG,
    trials: int = 100_000,
    seed: SeedLike = None,
    antithetic: bool = False,
    batch: int = 16384,
) -> MonteCarloResult:
    """Monte Carlo estimate with its standard error.

    Under ``antithetic=True`` the standard error is computed over pair
    averages (see :func:`_antithetic_stderr`): the raw samples inside a
    pair are negatively correlated, so ``sqrt(var/trials)`` over them
    would overstate the error and hide the variance reduction the
    pairing buys.
    """
    samples = sample_makespans(
        dag, trials, seed=seed, antithetic=antithetic, batch=batch
    )
    mean = float(samples.mean())
    var = float(samples.var(ddof=1)) if trials > 1 else 0.0
    if antithetic:
        stderr = _antithetic_stderr(samples)
    else:
        stderr = sqrt(var / trials)
    return MonteCarloResult(
        mean=mean, stderr=stderr, trials=trials, variance=var
    )


def montecarlo(
    dag: ProbDAG,
    trials: int = 100_000,
    seed: SeedLike = None,
    antithetic: bool = False,
    batch: int = 16384,
) -> float:
    """Monte Carlo expected makespan (point estimate)."""
    return montecarlo_result(
        dag, trials=trials, seed=seed, antithetic=antithetic, batch=batch
    ).mean


def _cell_seeds(
    seed: Union[SeedLike, Sequence[SeedLike]], n_cells: int
) -> Optional[List[SeedLike]]:
    """Normalise the batch ``seed`` option to one seed per cell.

    ``None`` → fresh entropy per cell; a scalar int → every cell gets
    its own generator seeded with that value (matching the per-cell
    loop, where each :func:`montecarlo` call constructs a fresh
    ``default_rng(seed)``); a sequence → one seed per cell (the engine
    passes the grid's per-cell ``eval_seed`` streams this way).
    Returns ``None`` for stateful seeds (an already-constructed
    Generator/SeedSequence), where only the sequential per-cell loop
    reproduces the single-stream semantics.
    """
    if isinstance(seed, (np.random.Generator, np.random.SeedSequence)):
        return None
    if isinstance(seed, (list, tuple, np.ndarray)):
        if len(seed) != n_cells:
            raise EvaluationError(
                f"montecarlo batch got {len(seed)} seeds for "
                f"{n_cells} cells (pass one seed per cell, or a scalar)"
            )
        return [None if s is None else int(s) for s in seed]
    return [seed] * n_cells


def _propagate_transposed(
    preds: Sequence[Sequence[int]], dur_T: np.ndarray
) -> np.ndarray:
    """Longest-path propagation over an ``(n, rows)`` duration matrix.

    The transposed twin of :meth:`ProbDAG.makespans`: node ``v``'s
    completions live in the contiguous row ``comp[v]`` instead of a
    strided column, so the per-edge ``maximum``/``add`` passes stream
    sequential memory whatever ``rows`` is — the per-cell kernel's
    column accesses thrash the cache once a ``(trials, n)`` matrix
    outgrows it.  Value-identical to the column kernel: the adds are
    elementwise on the same operands and float ``max`` is exact, so the
    reduction order cannot move a bit.
    """
    n, rows = dur_T.shape
    if n == 0:
        return np.zeros(rows)
    comp = np.empty_like(dur_T)
    makespan = np.zeros(rows)
    for v in range(n):
        ps = preds[v]
        if ps:
            ready = comp[ps[0]]
            if len(ps) > 1:
                ready = comp[ps].max(axis=0)
            np.add(ready, dur_T[v], out=comp[v])
        else:
            comp[v] = dur_T[v]
        np.maximum(makespan, comp[v], out=makespan)
    return makespan


def montecarlo_batch(
    template,
    trials: int = 100_000,
    seed: Union[SeedLike, Sequence[SeedLike]] = None,
    antithetic: bool = False,
    batch: int = 16384,
) -> np.ndarray:
    """Monte Carlo expected makespans of every cell of a parameterised DAG.

    ``template`` is a :class:`~repro.makespan.paramdag.ParamDAG`; the
    result is bit-identical to
    ``[montecarlo(template.cell(i), trials, seeds[i], antithetic, batch)]``
    where ``seeds`` is the per-cell expansion of ``seed`` (see
    :func:`_cell_seeds`): each cell draws from its own generator in the
    exact block sizes of the per-cell path, durations are built with the
    same elementwise expression, and the longest-path propagation —
    run once per trial sub-chunk over all cells' rows stacked in the
    cache-friendly transposed layout (:func:`_propagate_transposed`) —
    performs the same elementwise adds and exact maxima, so batching
    cannot move a single bit.  Cells are processed in chunks sized to
    keep the live blocks under :data:`MC_BATCH_MAX_BYTES`; the per-cell
    trial ``batch`` (which shapes the RNG draws) is never altered.
    """
    if trials < 1:
        raise EvaluationError(f"trials must be >= 1, got {trials}")
    n_cells = template.n_cells
    if n_cells == 0:
        return np.empty(0)
    seeds = _cell_seeds(seed, n_cells)
    if seeds is None:
        # A shared stateful stream is consumed cell by cell in the
        # per-cell path; only that sequential order reproduces it.
        return np.array(
            [
                montecarlo(
                    template.cell(i),
                    trials=trials,
                    seed=seed,
                    antithetic=antithetic,
                    batch=batch,
                )
                for i in range(n_cells)
            ],
            dtype=float,
        )
    n = template.n
    if antithetic:
        batch = max(2, batch - batch % 2)
    sub = MC_PROPAGATE_SUB
    # Live floats per cell: its (m, n) uniform block, its share of the
    # (n, cells·sub) transposed duration + completion matrices, and its
    # (trials,) row of the samples accumulator (which scales with
    # trials, not batch — dominant for small-n/many-trial runs).
    per_cell = (
        (min(batch, trials) + 3 * sub) * max(n, 1) + trials
    ) * 8
    cell_chunk = max(1, int(MC_BATCH_MAX_BYTES // max(per_cell, 1)))
    # Transposed (n, 1) parameter columns, ready to broadcast against
    # each cell's (n, w) transposed uniform sub-block.
    base_T = template.base[:, :, None]
    extra_T = (template.long - template.base)[:, :, None]
    p_T = template.p[:, :, None]
    out = np.empty(n_cells)
    for c0 in range(0, n_cells, cell_chunk):
        c1 = min(c0 + cell_chunk, n_cells)
        cells = c1 - c0
        rngs = [as_rng(seeds[i]) for i in range(c0, c1)]
        samples = np.empty((cells, trials))
        done = 0
        while done < trials:
            m = min(batch, trials - done)
            blocks = [_draw_uniforms(rng, m, n, antithetic) for rng in rngs]
            for t0 in range(0, m, sub):
                t1 = min(t0 + sub, m)
                w = t1 - t0
                dur_T = np.empty((n, cells * w))
                for j, u in enumerate(blocks):
                    # (w, n) row slice → cache-resident transpose; the
                    # duration expression is elementwise, so values
                    # equal the per-cell `base + extra * (u < p)`.
                    dur_T[:, j * w : (j + 1) * w] = base_T[c0 + j] + (
                        extra_T[c0 + j] * (u[t0:t1].T < p_T[c0 + j])
                    )
                ms = _propagate_transposed(template.preds, dur_T)
                samples[:, done + t0 : done + t1] = ms.reshape(cells, w)
            done += m
        for j in range(cells):
            # Row-by-row means: the same contiguous pairwise summation
            # the per-cell path applies to its (trials,) sample vector.
            out[c0 + j] = samples[j].mean()
    return out
