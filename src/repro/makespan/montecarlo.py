"""Monte Carlo expected-makespan estimation (§II-B, §VI-B).

The paper uses 300,000-trial Monte Carlo as ground truth: sample each
task's 2-state duration, compute the longest path, average.  Sampling and
longest-path propagation are fully vectorised; trials are processed in
batches to bound memory (a ``(batch, n)`` float matrix).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt
from typing import Optional, Tuple

import numpy as np

from repro.errors import EvaluationError
from repro.makespan.probdag import ProbDAG
from repro.util.rng import SeedLike, as_rng

__all__ = ["montecarlo", "montecarlo_result", "MonteCarloResult", "sample_makespans"]


@dataclass(frozen=True)
class MonteCarloResult:
    """Estimate with sampling error.

    ``stderr`` is the standard error of ``mean``; a ~95% confidence
    interval is ``mean ± 1.96·stderr``.
    """

    mean: float
    stderr: float
    trials: int
    variance: float

    @property
    def ci95(self) -> Tuple[float, float]:
        """Approximate 95% confidence interval for the expected makespan."""
        delta = 1.96 * self.stderr
        return (self.mean - delta, self.mean + delta)


def sample_makespans(
    dag: ProbDAG,
    trials: int,
    seed: SeedLike = None,
    antithetic: bool = False,
    batch: int = 16384,
) -> np.ndarray:
    """Sample ``trials`` makespans of the 2-state DAG.

    With ``antithetic=True``, trials are drawn in pairs ``(U, 1-U)`` —
    a classical variance-reduction device (each pair is negatively
    correlated through the shared uniforms), benchmarked in
    ``benchmarks/bench_ablation_montecarlo.py``.  Samples ``2k`` and
    ``2k+1`` of the returned array are one pair, for *any*
    ``trials``/``batch`` combination: uniforms are drawn in whole pairs
    per batch (batch sizes are rounded down to even counts), so a pair
    never straddles a batch boundary and no complement is lost to batch
    truncation.  Only an odd ``trials``'s final sample is a lone ``U``
    (its complement would be trial ``trials + 1``).
    """
    if trials < 1:
        raise EvaluationError(f"trials must be >= 1, got {trials}")
    rng = as_rng(seed)
    base = dag.base
    extra = dag.long - base
    p = dag.p
    if antithetic:
        # Whole pairs per batch: an odd batch size would orphan one
        # complement per batch and shift every later pair off its mate.
        batch = max(2, batch - batch % 2)
    out = np.empty(trials)
    done = 0
    while done < trials:
        m = min(batch, trials - done)
        if antithetic:
            half = (m + 1) // 2
            u = rng.random((half, dag.n))
            paired = np.empty((2 * half, dag.n))
            paired[0::2] = u
            paired[1::2] = 1.0 - u
            u = paired[:m]
        else:
            u = rng.random((m, dag.n))
        durations = base + extra * (u < p)
        out[done : done + m] = dag.makespans(durations)
        done += m
    return out


def montecarlo_result(
    dag: ProbDAG,
    trials: int = 100_000,
    seed: SeedLike = None,
    antithetic: bool = False,
    batch: int = 16384,
) -> MonteCarloResult:
    """Monte Carlo estimate with its standard error."""
    samples = sample_makespans(
        dag, trials, seed=seed, antithetic=antithetic, batch=batch
    )
    mean = float(samples.mean())
    var = float(samples.var(ddof=1)) if trials > 1 else 0.0
    return MonteCarloResult(
        mean=mean, stderr=sqrt(var / trials), trials=trials, variance=var
    )


def montecarlo(
    dag: ProbDAG,
    trials: int = 100_000,
    seed: SeedLike = None,
    antithetic: bool = False,
    batch: int = 16384,
) -> float:
    """Monte Carlo expected makespan (point estimate)."""
    return montecarlo_result(
        dag, trials=trials, seed=seed, antithetic=antithetic, batch=batch
    ).mean
