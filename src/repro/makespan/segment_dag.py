"""Coalescing checkpointed segments into a 2-state macro-DAG (§II-C).

Once a checkpoint plan cuts every superchain into segments, each segment
becomes one macro-task of deterministic cost ``X = R + W + C``, and
Equation (1) turns it into a 2-state variable (``X`` w.p. ``1 − λX``,
``1.5·X`` w.p. ``λX``).  The macro-DAG's edges are:

* per-processor serialisation — consecutive segments of each processor's
  execution sequence (this covers both intra-superchain sequencing and
  superchain ordering);
* data dependencies — for every workflow edge whose endpoints live in
  different segments.

Because superchains are always checkpointed (their exit data is on stable
storage before any dependent entry task runs), these edges capture the
full recovery semantics: no macro-task ever re-executes because of a
failure elsewhere — exactly the crossover-freedom argument of §IV-A.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.checkpoint.plan import CheckpointPlan
from repro.errors import EvaluationError
from repro.makespan.probdag import ProbDAG
from repro.mspg.graph import Workflow
from repro.platform import Platform
from repro.scheduling.schedule import Schedule
from repro.util.toposort import topological_order

__all__ = ["build_segment_dag", "segment_name"]


def segment_name(index: int) -> str:
    """Canonical node name of segment ``index`` in the macro-DAG."""
    return f"seg{index:06d}"


def build_segment_dag(
    workflow: Workflow,
    schedule: Schedule,
    plan: CheckpointPlan,
    platform: Platform,
    extra_edges: Sequence[Tuple[str, str]] = (),
    clamp: bool = True,
) -> ProbDAG:
    """Build the 2-state macro-DAG of a checkpointed schedule.

    ``extra_edges`` accepts additional task-level dependencies (e.g. the
    dummy synchronisation edges of ``mspgify`` for the structural-sync
    ablation); they are lifted to segment level like data edges.
    """
    if plan.n_tasks != workflow.n_tasks:
        raise EvaluationError(
            f"plan covers {plan.n_tasks} tasks, workflow has {workflow.n_tasks}"
        )
    nseg = plan.n_segments
    succs: Dict[int, Set[int]] = {i: set() for i in range(nseg)}

    # Per-processor serialisation edges.
    proc_last: Dict[int, int] = {}
    for seg in plan.segments:
        prev = proc_last.get(seg.processor)
        if prev is not None:
            succs[prev].add(seg.index)
        proc_last[seg.processor] = seg.index

    # Data edges (plus any extra task-level edges).
    def lift(u: str, v: str) -> None:
        su = plan.segment_of(u).index
        sv = plan.segment_of(v).index
        if su != sv:
            succs[su].add(sv)

    for u, v in workflow.edges():
        lift(u, v)
    for u, v in extra_edges:
        lift(u, v)

    order = topological_order(list(range(nseg)), succs)

    lam = platform.failure_rate
    dag = ProbDAG()
    preds: Dict[int, List[int]] = {i: [] for i in range(nseg)}
    for u, vs in succs.items():
        for v in vs:
            preds[v].append(u)
    from repro.makespan.two_state import two_state_from_span

    for idx in order:
        seg = plan.segments[idx]
        t = two_state_from_span(segment_name(idx), seg.span, lam, clamp=clamp)
        dag.add_task(t, preds=[segment_name(q) for q in preds[idx]])
    return dag
