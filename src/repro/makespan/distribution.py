"""Discrete distribution algebra for makespan evaluation.

Dodin's method and the path-based approximation manipulate distributions
of sums and maxima of independent 2-state variables.  Exact supports grow
exponentially under convolution, so :class:`DiscreteDistribution` keeps at
most ``max_atoms`` support points, merging excess atoms by cumulative-
probability binning.  Binning preserves the mean *exactly* (each bin's
value is its conditional mean) and distorts the CDF by at most one bin of
probability mass — the property tests pin both facts down.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.errors import EvaluationError

__all__ = ["DiscreteDistribution", "DEFAULT_MAX_ATOMS"]

DEFAULT_MAX_ATOMS = 512


class DiscreteDistribution:
    """A finite discrete distribution with sorted support.

    Immutable; all operators return new instances.  Probabilities are
    renormalised on construction to guard against floating-point drift.
    """

    __slots__ = ("values", "probs")

    def __init__(
        self, values: Iterable[float], probs: Iterable[float], _sorted: bool = False
    ) -> None:
        v = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=float)
        p = np.asarray(list(probs) if not isinstance(probs, np.ndarray) else probs, dtype=float)
        if v.shape != p.shape or v.ndim != 1 or v.size == 0:
            raise EvaluationError(
                f"values/probs must be equal-length 1-D arrays, got "
                f"{v.shape} and {p.shape}"
            )
        if np.any(p < -1e-12):
            raise EvaluationError("negative probability atom")
        if not _sorted:
            order = np.argsort(v, kind="stable")
            v = v[order]
            p = p[order]
        # merge exactly-equal support points
        if v.size > 1 and np.any(np.diff(v) == 0):
            uniq, inverse = np.unique(v, return_inverse=True)
            merged = np.zeros_like(uniq)
            np.add.at(merged, inverse, p)
            v, p = uniq, merged
        total = float(p.sum())
        if not np.isfinite(total) or total <= 0:
            raise EvaluationError(f"probabilities sum to {total}")
        self.values = v
        self.probs = p / total

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def point(cls, value: float) -> "DiscreteDistribution":
        """The Dirac distribution at ``value``."""
        return cls(np.array([value]), np.array([1.0]), _sorted=True)

    @classmethod
    def _wrap(cls, values: np.ndarray, probs: np.ndarray) -> "DiscreteDistribution":
        """Wrap arrays already in canonical form (sorted support, equal
        values merged, probabilities normalised) without re-validating.

        Internal fast path for the batched kernels
        (:mod:`repro.makespan.batch`), which produce canonical rows by
        construction; going through ``__init__`` would re-run the sort/
        merge/normalise pipeline and must yield the identical arrays.
        """
        dist = cls.__new__(cls)
        dist.values = values
        dist.probs = probs
        return dist

    @classmethod
    def two_state(
        cls, base: float, long: float, p: float
    ) -> "DiscreteDistribution":
        """``base`` w.p. ``1-p``, ``long`` w.p. ``p`` (Equation (1))."""
        if p <= 0.0:
            return cls.point(base)
        if p >= 1.0:
            return cls.point(long)
        if long == base:
            return cls.point(base)
        return cls(
            np.array([base, long]), np.array([1.0 - p, p]), _sorted=base <= long
        )

    # ------------------------------------------------------------------ #
    # moments / cdf
    # ------------------------------------------------------------------ #

    @property
    def n_atoms(self) -> int:
        """Number of support points."""
        return int(self.values.size)

    def mean(self) -> float:
        """Expected value."""
        return float(self.values @ self.probs)

    def variance(self) -> float:
        """Variance."""
        m = self.mean()
        return float(((self.values - m) ** 2) @ self.probs)

    def cdf(self, x: float) -> float:
        """``P(X <= x)``."""
        return float(self.probs[: int(np.searchsorted(self.values, x, "right"))].sum())

    def quantile(self, q: float) -> float:
        """Smallest support point with cumulative probability >= ``q``."""
        if not (0.0 <= q <= 1.0):
            raise EvaluationError(f"quantile level {q} outside [0, 1]")
        cum = np.cumsum(self.probs)
        idx = int(np.searchsorted(cum, q, "left"))
        return float(self.values[min(idx, self.values.size - 1)])

    # ------------------------------------------------------------------ #
    # algebra
    # ------------------------------------------------------------------ #

    def shift(self, offset: float) -> "DiscreteDistribution":
        """Distribution of ``X + offset``."""
        return DiscreteDistribution(self.values + offset, self.probs, _sorted=True)

    def convolve(
        self, other: "DiscreteDistribution", max_atoms: int = DEFAULT_MAX_ATOMS
    ) -> "DiscreteDistribution":
        """Distribution of ``X + Y`` for independent ``X``, ``Y``."""
        v = np.add.outer(self.values, other.values).ravel()
        p = np.multiply.outer(self.probs, other.probs).ravel()
        return DiscreteDistribution(v, p).truncate(max_atoms)

    def max_with(
        self, other: "DiscreteDistribution", max_atoms: int = DEFAULT_MAX_ATOMS
    ) -> "DiscreteDistribution":
        """Distribution of ``max(X, Y)`` for independent ``X``, ``Y``.

        The CDF of the max is the product of the CDFs on the union of the
        supports.
        """
        grid = np.union1d(self.values, other.values)
        f1 = np.cumsum(self.probs)[
            np.searchsorted(self.values, grid, "right") - 1
        ]
        # searchsorted-1 is -1 for grid points below the support minimum;
        # CDF there is 0.
        lo1 = np.searchsorted(self.values, grid, "right") == 0
        f1 = np.where(lo1, 0.0, f1)
        f2 = np.cumsum(other.probs)[
            np.searchsorted(other.values, grid, "right") - 1
        ]
        lo2 = np.searchsorted(other.values, grid, "right") == 0
        f2 = np.where(lo2, 0.0, f2)
        f = f1 * f2
        probs = np.diff(np.concatenate(([0.0], f)))
        keep = probs > 0
        if not np.any(keep):  # numerically degenerate; keep the top atom
            keep[-1] = True
            probs[-1] = 1.0
        return DiscreteDistribution(
            grid[keep], probs[keep], _sorted=True
        ).truncate(max_atoms)

    def truncate(self, max_atoms: int = DEFAULT_MAX_ATOMS) -> "DiscreteDistribution":
        """Reduce the support to ``max_atoms`` points, preserving the mean.

        Atoms are grouped into equal-probability bins; each bin is
        replaced by its conditional mean.
        """
        if max_atoms < 1:
            raise EvaluationError(f"max_atoms must be >= 1, got {max_atoms}")
        if self.n_atoms <= max_atoms:
            return self
        cum = np.cumsum(self.probs)
        # bin index of each atom by cumulative probability
        bins = np.minimum(
            (cum - self.probs * 0.5) * max_atoms, max_atoms - 1e-9
        ).astype(int)
        # Guarantee monotone bins (cumulative rounding can repeat).
        bins = np.maximum.accumulate(bins)
        masses = np.zeros(int(bins[-1]) + 1)
        np.add.at(masses, bins, self.probs)
        weighted = np.zeros_like(masses)
        np.add.at(weighted, bins, self.probs * self.values)
        keep = masses > 0
        return DiscreteDistribution(
            weighted[keep] / masses[keep], masses[keep]
        )

    def __repr__(self) -> str:
        return (
            f"DiscreteDistribution(atoms={self.n_atoms}, mean={self.mean():.6g}, "
            f"std={self.variance() ** 0.5:.3g})"
        )
