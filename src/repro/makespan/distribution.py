"""Discrete distribution algebra for makespan evaluation.

Dodin's method and the path-based approximation manipulate distributions
of sums and maxima of independent 2-state variables.  Exact supports grow
exponentially under convolution, so :class:`DiscreteDistribution` keeps at
most ``max_atoms`` support points, merging excess atoms by cumulative-
probability binning.  Binning preserves the mean *exactly* (each bin's
value is its conditional mean) and distorts the CDF by at most one bin of
probability mass — the property tests pin both facts down.

Two truncation modes are supported:

* ``"adaptive"`` (default, the bit-exactness reference): equal
  *probability* bins whose edges depend on the data — accurate, but the
  resulting atom counts are data-dependent, which is what forces the
  batched kernels into ragged per-row fallbacks;
* ``"rect"`` (rectangular, opt-in): equal *value-width* bins over the
  support range, always producing exactly ``max_atoms`` atoms from an
  over-budget support (and padding an under-budget one with zero-mass
  atoms on explicit :meth:`truncate` calls).  Deterministic bin edges,
  exact mean preservation, variance reduced by at most ``width²/4``;
  rows may carry zero-mass duplicate atoms (tolerated everywhere, the
  equal-value merge is skipped by design so widths stay shape-stable).

Kernel calls report to :mod:`repro.makespan.profile` when a collector is
active; the inactive hook is a single attribute load.
"""

from __future__ import annotations

import time
from typing import Iterable, Tuple

import numpy as np

from repro.errors import EvaluationError
from repro.makespan import native as _native
from repro.makespan import profile as _profile

__all__ = [
    "DiscreteDistribution",
    "DEFAULT_MAX_ATOMS",
    "MODE_ADAPTIVE",
    "MODE_RECT",
    "TRUNCATE_MODES",
]

DEFAULT_MAX_ATOMS = 512

#: Data-dependent equal-probability binning (the reference semantics).
MODE_ADAPTIVE = "adaptive"
#: Fixed-width value binning with shape-stable atom counts.
MODE_RECT = "rect"
TRUNCATE_MODES = (MODE_ADAPTIVE, MODE_RECT)


def check_mode(mode: str) -> None:
    """Reject unknown truncation modes with a uniform error."""
    if mode not in TRUNCATE_MODES:
        raise EvaluationError(
            f"unknown truncate mode {mode!r}; choose from {TRUNCATE_MODES}"
        )


def _rect_bin_rows(
    values: np.ndarray, probs: np.ndarray, max_atoms: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Fixed-width binning of sorted, normalised rows to ``max_atoms``.

    The single rectangular kernel, shared by the scalar and batched
    paths (the scalar path feeds one-row views), which makes their
    bit-parity structural rather than coincidental.  Dispatches to the
    compiled kernel when :mod:`repro.makespan.native` is enabled; the
    numpy body below is the bit-exactness reference and the fallback.
    """
    out = _native.rect_bin_rows(values, probs, max_atoms)
    if out is not None:
        return out
    return _rect_bin_rows_py(values, probs, max_atoms)


def _rect_bin_rows_py(
    values: np.ndarray, probs: np.ndarray, max_atoms: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Pure-numpy rectangular binning (the reference implementation).

    Bin edges are deterministic functions of each row's support range:
    ``max_atoms`` equal-width bins spanning ``[values[0], values[-1]]``.
    Massy bins take their conditional mean (so the mean is preserved
    exactly up to summation rounding); empty bins take their centre with
    zero mass — every output row has exactly ``max_atoms`` atoms.
    """
    c = values.shape[0]
    lo = values[:, 0]
    span = values[:, -1] - lo
    # A zero span (all atoms equal) degenerates to a point mass in bin 0.
    safe_span = np.where(span > 0.0, span, 1.0)
    scaled = (values - lo[:, None]) / safe_span[:, None] * max_atoms
    bins = np.minimum(scaled.astype(int), max_atoms - 1)
    # Scatter-add via flattened bincount (much faster than np.add.at);
    # row-major traversal accumulates each bin in the same left-to-right
    # atom order for the scalar and batched callers alike.
    flat = (bins + np.arange(c)[:, None] * max_atoms).ravel()
    size = c * max_atoms
    masses = np.bincount(flat, weights=probs.ravel(), minlength=size).reshape(
        c, max_atoms
    )
    weighted = np.bincount(
        flat, weights=(probs * values).ravel(), minlength=size
    ).reshape(c, max_atoms)
    width = span / max_atoms
    centers = lo[:, None] + (np.arange(max_atoms) + 0.5) * width[:, None]
    has_mass = masses > 0
    out_values = np.where(
        has_mass, weighted / np.where(has_mass, masses, 1.0), centers
    )
    totals = masses.sum(axis=1)
    return out_values, masses / totals[:, None]


class DiscreteDistribution:
    """A finite discrete distribution with sorted support.

    Immutable; all operators return new instances.  Probabilities are
    renormalised on construction to guard against floating-point drift.
    """

    __slots__ = ("values", "probs", "_addrs")

    def __init__(
        self, values: Iterable[float], probs: Iterable[float], _sorted: bool = False
    ) -> None:
        v = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=float)
        p = np.asarray(list(probs) if not isinstance(probs, np.ndarray) else probs, dtype=float)
        if v.shape != p.shape or v.ndim != 1 or v.size == 0:
            raise EvaluationError(
                f"values/probs must be equal-length 1-D arrays, got "
                f"{v.shape} and {p.shape}"
            )
        if np.any(p < -1e-12):
            raise EvaluationError("negative probability atom")
        if not _sorted:
            order = np.argsort(v, kind="stable")
            v = v[order]
            p = p[order]
        # Merge exactly-equal support points.  The support is sorted, so
        # the group index is a cumsum over run starts — same mapping as
        # ``np.unique(..., return_inverse=True)`` without its redundant
        # re-sort.  The ``np.add.at`` scatter is kept deliberately: its
        # strictly sequential accumulation is the bit-exact reference
        # order (a reduceat would sum pairwise and drift in the last
        # bits on long runs).
        if v.size > 1 and (v[1:] == v[:-1]).any():
            starts = np.empty(v.size, dtype=bool)
            starts[0] = True
            starts[1:] = v[1:] != v[:-1]
            inverse = np.cumsum(starts) - 1
            uniq = v[starts]
            merged = np.zeros_like(uniq)
            np.add.at(merged, inverse, p)
            v, p = uniq, merged
        total = float(p.sum())
        if not np.isfinite(total) or total <= 0:
            raise EvaluationError(f"probabilities sum to {total}")
        self.values = v
        self.probs = p / total
        # Lazily-filled (values.ctypes.data, probs.ctypes.data) cache for
        # the native kernels; never pickled (addresses are process-local).
        self._addrs = None

    def __getstate__(self):
        return (self.values, self.probs)

    def __setstate__(self, state):
        self.values, self.probs = state
        self._addrs = None

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def point(cls, value: float) -> "DiscreteDistribution":
        """The Dirac distribution at ``value``."""
        return cls._wrap(np.array([value]), np.array([1.0]))

    @classmethod
    def _wrap(cls, values: np.ndarray, probs: np.ndarray) -> "DiscreteDistribution":
        """Wrap arrays already in canonical form (sorted support, equal
        values merged, probabilities normalised) without re-validating.

        Internal fast path for the batched kernels
        (:mod:`repro.makespan.batch`), which produce canonical rows by
        construction; going through ``__init__`` would re-run the sort/
        merge/normalise pipeline and must yield the identical arrays.
        Rectangular-mode rows relax "merged" to "sorted": they may carry
        zero-mass duplicate atoms, which every consumer tolerates.
        """
        dist = cls.__new__(cls)
        dist.values = values
        dist.probs = probs
        dist._addrs = None
        return dist

    @classmethod
    def two_state(
        cls, base: float, long: float, p: float
    ) -> "DiscreteDistribution":
        """``base`` w.p. ``1-p``, ``long`` w.p. ``p`` (Equation (1))."""
        if p <= 0.0:
            return cls.point(base)
        if p >= 1.0:
            return cls.point(long)
        if long == base:
            return cls.point(base)
        return cls(
            np.array([base, long]), np.array([1.0 - p, p]), _sorted=base <= long
        )

    # ------------------------------------------------------------------ #
    # moments / cdf
    # ------------------------------------------------------------------ #

    @property
    def n_atoms(self) -> int:
        """Number of support points."""
        return int(self.values.size)

    def mean(self) -> float:
        """Expected value."""
        return float(self.values @ self.probs)

    def variance(self) -> float:
        """Variance."""
        m = self.mean()
        return float(((self.values - m) ** 2) @ self.probs)

    def cdf(self, x: float) -> float:
        """``P(X <= x)``."""
        return float(self.probs[: int(np.searchsorted(self.values, x, "right"))].sum())

    def quantile(self, q: float) -> float:
        """Smallest support point with cumulative probability >= ``q``."""
        if not (0.0 <= q <= 1.0):
            raise EvaluationError(f"quantile level {q} outside [0, 1]")
        cum = np.cumsum(self.probs)
        idx = int(np.searchsorted(cum, q, "left"))
        return float(self.values[min(idx, self.values.size - 1)])

    # ------------------------------------------------------------------ #
    # algebra
    # ------------------------------------------------------------------ #

    def shift(self, offset: float) -> "DiscreteDistribution":
        """Distribution of ``X + offset``."""
        return DiscreteDistribution(self.values + offset, self.probs, _sorted=True)

    def convolve(
        self,
        other: "DiscreteDistribution",
        max_atoms: int = DEFAULT_MAX_ATOMS,
        mode: str = MODE_ADAPTIVE,
    ) -> "DiscreteDistribution":
        """Distribution of ``X + Y`` for independent ``X``, ``Y``."""
        prof = _profile.ACTIVE
        if prof is None:
            return self._convolve(other, max_atoms, mode)
        t0 = time.perf_counter()
        out = self._convolve(other, max_atoms, mode)
        prof.record("convolve", 1, 1, time.perf_counter() - t0)
        return out

    def _convolve(
        self, other: "DiscreteDistribution", max_atoms: int, mode: str
    ) -> "DiscreteDistribution":
        if mode == MODE_ADAPTIVE:
            native_out = _native.convolve_dists(self, other, max_atoms)
            if native_out is not None:
                return native_out
        v = np.add.outer(self.values, other.values).ravel()
        p = np.multiply.outer(self.probs, other.probs).ravel()
        if mode == MODE_ADAPTIVE:
            return DiscreteDistribution(v, p)._truncate(max_atoms, mode)
        check_mode(mode)
        order = np.argsort(v, kind="stable")
        v = v[order]
        p = p[order]
        total = float(p.sum())
        if not np.isfinite(total) or total <= 0:
            raise EvaluationError(f"probabilities sum to {total}")
        p = p / total
        if v.size <= max_atoms:
            return DiscreteDistribution._wrap(v, p)
        values, probs = _rect_bin_rows(v[None, :], p[None, :], max_atoms)
        return DiscreteDistribution._wrap(values[0], probs[0])

    def max_with(
        self,
        other: "DiscreteDistribution",
        max_atoms: int = DEFAULT_MAX_ATOMS,
        mode: str = MODE_ADAPTIVE,
    ) -> "DiscreteDistribution":
        """Distribution of ``max(X, Y)`` for independent ``X``, ``Y``.

        The CDF of the max is the product of the CDFs on the union of the
        supports (rectangular mode keeps the *concatenated* supports —
        duplicates carry zero incremental mass — so the output width is
        a shape-stable function of the input widths).
        """
        prof = _profile.ACTIVE
        if prof is None:
            return self._max_with(other, max_atoms, mode)
        t0 = time.perf_counter()
        out = self._max_with(other, max_atoms, mode)
        prof.record("max", 1, 1, time.perf_counter() - t0)
        return out

    def _max_with(
        self, other: "DiscreteDistribution", max_atoms: int, mode: str
    ) -> "DiscreteDistribution":
        if mode == MODE_ADAPTIVE:
            native_out = _native.max_dists(self, other, max_atoms)
            if native_out is not None:
                return native_out
            grid = np.union1d(self.values, other.values)
        else:
            check_mode(mode)
            grid = np.sort(np.concatenate([self.values, other.values]))
        idx1 = np.searchsorted(self.values, grid, "right")
        f1 = np.cumsum(self.probs)[idx1 - 1]
        # searchsorted-1 is -1 for grid points below the support minimum;
        # CDF there is 0.
        f1 = np.where(idx1 == 0, 0.0, f1)
        idx2 = np.searchsorted(other.values, grid, "right")
        f2 = np.cumsum(other.probs)[idx2 - 1]
        f2 = np.where(idx2 == 0, 0.0, f2)
        f = f1 * f2
        probs = np.empty_like(f)
        probs[0] = f[0]
        probs[1:] = f[1:] - f[:-1]
        if mode == MODE_RECT:
            total = float(probs.sum())
            if not np.isfinite(total) or total <= 0:
                raise EvaluationError(f"probabilities sum to {total}")
            probs = probs / total
            if grid.size <= max_atoms:
                return DiscreteDistribution._wrap(grid, probs)
            values, probs = _rect_bin_rows(
                grid[None, :], probs[None, :], max_atoms
            )
            return DiscreteDistribution._wrap(values[0], probs[0])
        keep = probs > 0
        if not np.any(keep):  # numerically degenerate; keep the top atom
            keep[-1] = True
            probs[-1] = 1.0
        # The kept grid is strictly increasing (union grid) and the kept
        # probabilities are positive, so the canonicalising constructor
        # would only renormalise — do exactly that and skip its scans.
        v = grid[keep]
        p = probs[keep]
        total = float(p.sum())
        if not np.isfinite(total) or total <= 0:
            raise EvaluationError(f"probabilities sum to {total}")
        return DiscreteDistribution._wrap(v, p / total)._truncate(max_atoms, mode)

    def truncate(
        self, max_atoms: int = DEFAULT_MAX_ATOMS, mode: str = MODE_ADAPTIVE
    ) -> "DiscreteDistribution":
        """Reduce the support to ``max_atoms`` points, preserving the mean.

        ``"adaptive"`` (default) groups atoms into equal-probability
        bins, each replaced by its conditional mean; at most
        ``max_atoms`` data-dependent atoms come out.  ``"rect"`` bins by
        equal value width and always returns **exactly** ``max_atoms``
        atoms — an under-budget support is padded with zero-mass copies
        of its top atom, which makes the call idempotent at fixed width.
        """
        prof = _profile.ACTIVE
        if prof is None:
            return self._truncate(max_atoms, mode)
        t0 = time.perf_counter()
        out = self._truncate(max_atoms, mode)
        prof.record("truncate", 1, 1, time.perf_counter() - t0)
        return out

    def _truncate(self, max_atoms: int, mode: str) -> "DiscreteDistribution":
        if max_atoms < 1:
            raise EvaluationError(f"max_atoms must be >= 1, got {max_atoms}")
        if mode != MODE_ADAPTIVE:
            check_mode(mode)
            return self._truncate_rect(max_atoms)
        if self.n_atoms <= max_atoms:
            return self
        native_out = _native.truncate_dist(self, max_atoms)
        if native_out is not None:
            return native_out
        cum = np.cumsum(self.probs)
        # bin index of each atom by cumulative probability
        bins = np.minimum(
            (cum - self.probs * 0.5) * max_atoms, max_atoms - 1e-9
        ).astype(int)
        # Guarantee monotone bins (cumulative rounding can repeat).
        bins = np.maximum.accumulate(bins)
        # The sequential ``np.add.at`` scatter is the bit-exact reference
        # accumulation order (reduceat sums pairwise and drifts in the
        # last bits on long runs — pinned by the batch parity tests).
        masses = np.zeros(int(bins[-1]) + 1)
        np.add.at(masses, bins, self.probs)
        weighted = np.zeros_like(masses)
        np.add.at(weighted, bins, self.probs * self.values)
        keep = masses > 0
        v = weighted[keep] / masses[keep]
        p = masses[keep]
        # Conditional means of consecutive bins over a strictly
        # increasing canonical support are strictly increasing (each
        # mean lies between its bin's extremes, and adjacent bins'
        # extremes don't interleave), so the canonicalising re-sort and
        # merge in __init__ are the identity — skip them.  The guard
        # routes any floating-point tie back through the full
        # constructor, which is the reference for that case.
        if v.size > 1 and bool((v[1:] <= v[:-1]).any()):
            return DiscreteDistribution(v, p)
        total = float(p.sum())
        return DiscreteDistribution._wrap(v, p / total)

    def _truncate_rect(self, max_atoms: int) -> "DiscreteDistribution":
        n = self.n_atoms
        if n == max_atoms:
            return self
        if n < max_atoms:
            pad = max_atoms - n
            return DiscreteDistribution._wrap(
                np.concatenate([self.values, np.full(pad, self.values[-1])]),
                np.concatenate([self.probs, np.zeros(pad)]),
            )
        values, probs = _rect_bin_rows(
            self.values[None, :], self.probs[None, :], max_atoms
        )
        return DiscreteDistribution._wrap(values[0], probs[0])

    def __repr__(self) -> str:
        return (
            f"DiscreteDistribution(atoms={self.n_atoms}, mean={self.mean():.6g}, "
            f"std={self.variance() ** 0.5:.3g})"
        )
