"""Runtime loader and dispatch for the compiled distribution kernels.

The hot per-row primitives — adaptive convolve, adaptive max, adaptive
truncate and the rectangular row binning — have a C implementation in
``_native.c`` that replicates the numpy operation order of the python
reference bit for bit.  This module owns the build/load lifecycle and
exposes one thin wrapper per kernel; each wrapper returns the result
arrays on success or ``None`` when the caller must run the python path
(native disabled, build unavailable, or the kernel declined an input it
cannot reproduce exactly — the reference then raises the reference
error).

Build strategy: compiled on first use with the system C compiler into a
shared object cached under ``~/.cache/repro-native`` (override with
``REPRO_NATIVE_CACHE``), keyed by the source hash so stale objects are
never reused, and loaded through :mod:`ctypes`.  No python headers, no
build step at install time — a checkout plus any of ``cc``/``gcc``/
``clang`` is enough, and a missing compiler degrades to the pure-python
kernels with a one-line warning on stderr (never an exception).

Switches, in precedence order:

* :func:`set_enabled` — programmatic/CLI switch (``--no-native``); also
  mirrors into ``REPRO_NATIVE`` so spawned workers inherit it;
* ``REPRO_NATIVE=0`` (or ``false``/``off``/``no``) — environment kill
  switch, honoured before any build is attempted;
* build failure — automatic fallback, reported via :func:`status`.

Profiling: when a :mod:`repro.makespan.profile` collector is active,
each wrapper records ``native_<op>`` rows it served and
``native_miss_<op>`` rows that fell back, so ``--profile`` and
BENCH_kernel.json show exactly how much work the compiled path
absorbed.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.makespan import profile as _profile

__all__ = [
    "available",
    "enabled",
    "set_enabled",
    "status",
    "convolve_adaptive",
    "max_adaptive",
    "truncate_adaptive",
    "rect_bin_rows",
    "convolve_dists",
    "max_dists",
    "truncate_dist",
    "convolve_dists_many",
    "OPS",
]

#: Kernel ops the native library implements (status/`repro kernels`).
OPS = ("convolve", "max", "truncate", "rect_bin")

#: Bump together with REPRO_NATIVE_ABI in ``_native.c``.
_ABI = 1

_SOURCE = Path(__file__).with_name("_native.c")
_OFF_VALUES = ("0", "false", "off", "no")
_F64 = np.dtype(np.float64)

_lib: Optional[ctypes.CDLL] = None
_attempted = False
_build_error: Optional[str] = None
_warned = False
_compiler: Optional[str] = None
_so_path: Optional[Path] = None
_disabled_runtime = False

#: Cached dispatch decision for the hot path.  ``None`` = not yet
#: resolved; resolved on first kernel call (which may trigger the
#: build) and invalidated by :func:`set_enabled`.  The environment is
#: therefore read at first use — flip it mid-process through
#: :func:`set_enabled`, which also mirrors into ``REPRO_NATIVE`` for
#: spawned workers.
_ok: Optional[bool] = None

# Hot function handles, bound once after a successful load.
_c_conv = None
_c_conv_many = None
_c_max = None
_c_trunc = None
_c_rect = None


def _env_off() -> bool:
    return os.environ.get("REPRO_NATIVE", "").strip().lower() in _OFF_VALUES


def _warn_once() -> None:
    global _warned
    if not _warned:
        _warned = True
        print(
            f"repro: native kernels unavailable ({_build_error}); "
            "falling back to the pure-python kernels (bit-identical, slower)",
            file=sys.stderr,
        )


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-native"


def _find_compiler() -> Optional[str]:
    from shutil import which

    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and which(cand):
            return cand
    return None


def _declare(lib: ctypes.CDLL) -> None:
    ll = ctypes.c_longlong
    ptr = ctypes.c_void_p
    lib.repro_native_abi.argtypes = []
    lib.repro_native_abi.restype = ll
    lib.repro_convolve_adaptive.argtypes = [
        ptr, ptr, ll, ptr, ptr, ll, ll, ptr, ptr
    ]
    lib.repro_convolve_adaptive.restype = ll
    lib.repro_convolve_adaptive_many.argtypes = [
        ptr, ll, ll, ll, ll, ptr, ptr, ptr
    ]
    lib.repro_convolve_adaptive_many.restype = ll
    lib.repro_max_adaptive.argtypes = [
        ptr, ptr, ll, ptr, ptr, ll, ll, ptr, ptr
    ]
    lib.repro_max_adaptive.restype = ll
    lib.repro_truncate_adaptive.argtypes = [ptr, ptr, ll, ll, ptr, ptr]
    lib.repro_truncate_adaptive.restype = ll
    lib.repro_rect_bin_rows.argtypes = [ptr, ptr, ll, ll, ll, ptr, ptr]
    lib.repro_rect_bin_rows.restype = ll


def _build_and_load() -> Optional[ctypes.CDLL]:
    """Compile (if not cached) and load the shared object, or explain why
    not in ``_build_error``."""
    global _build_error, _compiler, _so_path
    if not _SOURCE.exists():
        _build_error = f"kernel source missing: {_SOURCE}"
        return None
    source_bytes = _SOURCE.read_bytes()
    tag = hashlib.sha256(source_bytes + b"|abi=%d" % _ABI).hexdigest()[:16]
    cache = _cache_dir()
    so_path = cache / f"_repro_native_{tag}.so"
    if not so_path.exists():
        compiler = _find_compiler()
        if compiler is None:
            _build_error = "no C compiler found (tried $CC, cc, gcc, clang)"
            return None
        try:
            cache.mkdir(parents=True, exist_ok=True)
            # Build to a private temp name, then atomically publish —
            # concurrent workers race benignly to the same final path.
            fd, tmp = tempfile.mkstemp(
                suffix=".so", prefix="_repro_native_", dir=str(cache)
            )
            os.close(fd)
            cmd = [
                compiler, "-O2", "-fPIC", "-shared",
                "-o", tmp, str(_SOURCE), "-lm",
            ]
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=120
            )
            if proc.returncode != 0:
                os.unlink(tmp)
                detail = (proc.stderr or proc.stdout or "").strip()
                detail = detail.splitlines()[0] if detail else "unknown error"
                _build_error = f"{compiler} failed: {detail}"
                return None
            os.replace(tmp, so_path)
        except Exception as exc:  # noqa: BLE001 - any failure means fallback
            _build_error = f"build failed: {exc}"
            return None
        _compiler = compiler
    try:
        lib = ctypes.CDLL(str(so_path))
        _declare(lib)
        abi = int(lib.repro_native_abi())
        if abi != _ABI:
            _build_error = f"ABI mismatch: built {abi}, expected {_ABI}"
            return None
    except Exception as exc:  # noqa: BLE001
        _build_error = f"load failed: {exc}"
        return None
    _so_path = so_path
    return lib


def _get_lib() -> Optional[ctypes.CDLL]:
    global _lib, _attempted
    global _c_conv, _c_conv_many, _c_max, _c_trunc, _c_rect
    if not _attempted:
        _attempted = True
        _lib = _build_and_load()
        if _lib is None:
            _warn_once()
        else:
            _c_conv = _lib.repro_convolve_adaptive
            _c_conv_many = _lib.repro_convolve_adaptive_many
            _c_max = _lib.repro_max_adaptive
            _c_trunc = _lib.repro_truncate_adaptive
            _c_rect = _lib.repro_rect_bin_rows
    return _lib


def available() -> bool:
    """Whether the compiled library can be (or has been) loaded.

    Triggers the one-time build on first call; ignores the enable
    switches so status surfaces can report "available but disabled".
    """
    return _get_lib() is not None


def enabled() -> bool:
    """Whether kernel dispatch will actually use the compiled library."""
    if _disabled_runtime or _env_off():
        return False
    return _get_lib() is not None


def set_enabled(flag: bool) -> None:
    """Programmatic switch (the CLI's ``--no-native``).

    Mirrored into ``REPRO_NATIVE`` so worker processes spawned after the
    call (process pools, subprocess backends) inherit the choice.
    """
    global _disabled_runtime, _ok
    _disabled_runtime = not flag
    _ok = None
    os.environ["REPRO_NATIVE"] = "1" if flag else "0"


def _fast_ok() -> bool:
    """Cached ``enabled()`` for the per-op hot path."""
    global _ok
    ok = _ok
    if ok is None:
        ok = enabled()
        _ok = ok
    return ok


def build_error() -> Optional[str]:
    """The one-line reason the native build is unavailable, if it is."""
    return _build_error


def status() -> Dict[str, object]:
    """JSON-friendly report for ``/status`` and ``repro kernels``."""
    avail = available()
    live = enabled()
    if _disabled_runtime:
        disabled_by: Optional[str] = "flag"
    elif _env_off():
        disabled_by = "env"
    elif not avail:
        disabled_by = "build"
    else:
        disabled_by = None
    return {
        "backend": "native" if live else "python",
        "available": avail,
        "enabled": live,
        "disabled_by": disabled_by,
        "build_error": _build_error,
        "compiler": _compiler,
        "cached_object": str(_so_path) if _so_path else None,
        "abi": _ABI,
        "ops": {op: ("native" if live else "python") for op in OPS},
    }


def _reset_for_tests() -> None:
    """Forget build state so tests can exercise failure paths."""
    global _lib, _attempted, _build_error, _warned, _compiler, _so_path
    global _disabled_runtime, _ok
    global _c_conv, _c_conv_many, _c_max, _c_trunc, _c_rect
    _lib = None
    _attempted = False
    _build_error = None
    _warned = False
    _compiler = None
    _so_path = None
    _disabled_runtime = False
    _ok = None
    _c_conv = _c_conv_many = _c_max = _c_trunc = _c_rect = None


# --------------------------------------------------------------------- #
# kernel wrappers
# --------------------------------------------------------------------- #
#
# Each wrapper returns the output arrays, or None when the python path
# must run.  A None from the *kernel* (status < 0) means the input needs
# reference handling (error raising, NaN ordering, negative bins) — the
# python path then reproduces it exactly.


def _usable_1d(*arrays: np.ndarray) -> bool:
    for arr in arrays:
        if arr.dtype is not _F64 and arr.dtype != _F64:
            return False
        if not arr.flags.c_contiguous:
            return False
    return True


def convolve_adaptive(
    av: np.ndarray, ap: np.ndarray, bv: np.ndarray, bp: np.ndarray,
    max_atoms: int,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Native X + Y (adaptive mode): merged outer sum, truncated."""
    prof = _profile.ACTIVE
    if not _fast_ok() or not _usable_1d(av, ap, bv, bp):
        if prof is not None:
            prof.record("native_miss_convolve", 1, 0, 0.0)
        return None
    na = av.size
    nb = bv.size
    cap = min(na * nb, int(max_atoms))
    out_v = np.empty(cap)
    out_p = np.empty(cap)
    t0 = time.perf_counter() if prof is not None else 0.0
    n = _c_conv(
        av.ctypes.data, ap.ctypes.data, na,
        bv.ctypes.data, bp.ctypes.data, nb,
        int(max_atoms), out_v.ctypes.data, out_p.ctypes.data,
    )
    if n < 0:
        if prof is not None:
            prof.record("native_miss_convolve", 1, 0, 0.0)
        return None
    if prof is not None:
        prof.record("native_convolve", 1, 0, time.perf_counter() - t0)
    return out_v[:n], out_p[:n]


def max_adaptive(
    av: np.ndarray, ap: np.ndarray, bv: np.ndarray, bp: np.ndarray,
    max_atoms: int,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Native max(X, Y) (adaptive mode): CDF product on the union grid."""
    prof = _profile.ACTIVE
    if not _fast_ok() or not _usable_1d(av, ap, bv, bp):
        if prof is not None:
            prof.record("native_miss_max", 1, 0, 0.0)
        return None
    na = av.size
    nb = bv.size
    cap = min(na + nb, int(max_atoms))
    out_v = np.empty(cap)
    out_p = np.empty(cap)
    t0 = time.perf_counter() if prof is not None else 0.0
    n = _c_max(
        av.ctypes.data, ap.ctypes.data, na,
        bv.ctypes.data, bp.ctypes.data, nb,
        int(max_atoms), out_v.ctypes.data, out_p.ctypes.data,
    )
    if n < 0:
        if prof is not None:
            prof.record("native_miss_max", 1, 0, 0.0)
        return None
    if prof is not None:
        prof.record("native_max", 1, 0, time.perf_counter() - t0)
    return out_v[:n], out_p[:n]


def truncate_adaptive(
    v: np.ndarray, p: np.ndarray, max_atoms: int
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Native adaptive truncate of an over-budget canonical support."""
    prof = _profile.ACTIVE
    if not _fast_ok() or not _usable_1d(v, p):
        if prof is not None:
            prof.record("native_miss_truncate", 1, 0, 0.0)
        return None
    out_v = np.empty(int(max_atoms))
    out_p = np.empty(int(max_atoms))
    t0 = time.perf_counter() if prof is not None else 0.0
    n = _c_trunc(
        v.ctypes.data, p.ctypes.data, v.size,
        int(max_atoms), out_v.ctypes.data, out_p.ctypes.data,
    )
    if n < 0:
        if prof is not None:
            prof.record("native_miss_truncate", 1, 0, 0.0)
        return None
    if prof is not None:
        prof.record("native_truncate", 1, 0, time.perf_counter() - t0)
    return out_v[:n], out_p[:n]


def rect_bin_rows(
    values: np.ndarray, probs: np.ndarray, max_atoms: int
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Native fixed-width binning of ``(c, n)`` rows to ``max_atoms``."""
    prof = _profile.ACTIVE
    c = values.shape[0]
    if (
        not _fast_ok()
        or values.dtype != _F64
        or probs.dtype != _F64
        or not values.flags.c_contiguous
        or not probs.flags.c_contiguous
    ):
        if prof is not None:
            prof.record("native_miss_rect_bin", c, 0, 0.0)
        return None
    n = values.shape[1]
    out_v = np.empty((c, int(max_atoms)))
    out_p = np.empty((c, int(max_atoms)))
    t0 = time.perf_counter() if prof is not None else 0.0
    rc = _c_rect(
        values.ctypes.data, probs.ctypes.data, c, n,
        int(max_atoms), out_v.ctypes.data, out_p.ctypes.data,
    )
    if rc < 0:
        if prof is not None:
            prof.record("native_miss_rect_bin", c, 0, 0.0)
        return None
    if prof is not None:
        prof.record("native_rect_bin", c, 0, time.perf_counter() - t0)
    return out_v, out_p


# --------------------------------------------------------------------- #
# distribution-level fast paths
# --------------------------------------------------------------------- #
#
# The scalar dispatch sites pass whole DiscreteDistribution objects so
# the wrappers can reuse the data addresses cached on each instance
# (resolving ``.ctypes.data`` costs ~2us per array on slow-attribute
# interpreters — it would rival the kernel itself on small supports).
# Canonical distributions hold freshly-created contiguous float64
# arrays by construction, so no per-call dtype/layout probing is
# needed; results built here pre-seed their own address cache for free.

_dist_cls = None


def _wrap_dist(v: np.ndarray, p: np.ndarray, addrs) -> object:
    global _dist_cls
    cls = _dist_cls
    if cls is None:
        from repro.makespan.distribution import DiscreteDistribution

        cls = _dist_cls = DiscreteDistribution
    dist = cls._wrap(v, p)
    dist._addrs = addrs
    return dist


def _addrs_of(dist) -> Tuple[int, int]:
    addrs = dist._addrs
    if addrs is None:
        addrs = (dist.values.ctypes.data, dist.probs.ctypes.data)
        dist._addrs = addrs
    return addrs


def convolve_dists(a, b, max_atoms: int):
    """Native ``a + b`` returning a wrapped distribution, or ``None``."""
    prof = _profile.ACTIVE
    if not _fast_ok():
        if prof is not None:
            prof.record("native_miss_convolve", 1, 0, 0.0)
        return None
    na = a.values.size
    nb = b.values.size
    cap = min(na * nb, int(max_atoms))
    out_v = np.empty(cap)
    out_p = np.empty(cap)
    va, pa = _addrs_of(a)
    vb, pb = _addrs_of(b)
    ov = out_v.ctypes.data
    op = out_p.ctypes.data
    t0 = time.perf_counter() if prof is not None else 0.0
    n = _c_conv(va, pa, na, vb, pb, nb, int(max_atoms), ov, op)
    if n < 0:
        if prof is not None:
            prof.record("native_miss_convolve", 1, 0, 0.0)
        return None
    if prof is not None:
        prof.record("native_convolve", 1, 0, time.perf_counter() - t0)
    return _wrap_dist(out_v[:n], out_p[:n], (ov, op))


def max_dists(a, b, max_atoms: int):
    """Native ``max(a, b)`` returning a wrapped distribution, or ``None``."""
    prof = _profile.ACTIVE
    if not _fast_ok():
        if prof is not None:
            prof.record("native_miss_max", 1, 0, 0.0)
        return None
    na = a.values.size
    nb = b.values.size
    cap = min(na + nb, int(max_atoms))
    out_v = np.empty(cap)
    out_p = np.empty(cap)
    va, pa = _addrs_of(a)
    vb, pb = _addrs_of(b)
    ov = out_v.ctypes.data
    op = out_p.ctypes.data
    t0 = time.perf_counter() if prof is not None else 0.0
    n = _c_max(va, pa, na, vb, pb, nb, int(max_atoms), ov, op)
    if n < 0:
        if prof is not None:
            prof.record("native_miss_max", 1, 0, 0.0)
        return None
    if prof is not None:
        prof.record("native_max", 1, 0, time.perf_counter() - t0)
    return _wrap_dist(out_v[:n], out_p[:n], (ov, op))


def truncate_dist(dist, max_atoms: int):
    """Native adaptive truncate returning a wrapped distribution."""
    prof = _profile.ACTIVE
    if not _fast_ok():
        if prof is not None:
            prof.record("native_miss_truncate", 1, 0, 0.0)
        return None
    out_v = np.empty(int(max_atoms))
    out_p = np.empty(int(max_atoms))
    va, pa = _addrs_of(dist)
    ov = out_v.ctypes.data
    op = out_p.ctypes.data
    t0 = time.perf_counter() if prof is not None else 0.0
    n = _c_trunc(va, pa, dist.values.size, int(max_atoms), ov, op)
    if n < 0:
        if prof is not None:
            prof.record("native_miss_truncate", 1, 0, 0.0)
        return None
    if prof is not None:
        prof.record("native_truncate", 1, 0, time.perf_counter() - t0)
    return _wrap_dist(out_v[:n], out_p[:n], (ov, op))


def convolve_dists_many(pairs, max_atoms: int):
    """Pooled native convolve over uniformly-shaped pairs.

    ``pairs`` is a sequence of ``(a, b)`` distributions that all share
    ``a.n_atoms`` / ``b.n_atoms`` (the fold-plan executor groups pools
    by exactly that shape).  One C call prices the whole pool over one
    reused scratch buffer.  Returns a list of wrapped distributions
    (``None`` entries want the python path) or ``None`` when native
    dispatch is off entirely.
    """
    prof = _profile.ACTIVE
    k = len(pairs)
    if not _fast_ok():
        if prof is not None:
            prof.record("native_miss_convolve", k, 0, 0.0)
        return None
    a0, b0 = pairs[0]
    na = a0.values.size
    nb = b0.values.size
    cap = min(na * nb, int(max_atoms))
    flat = []
    for a, b in pairs:
        aa = a._addrs
        if aa is None:
            aa = (a.values.ctypes.data, a.probs.ctypes.data)
            a._addrs = aa
        bb = b._addrs
        if bb is None:
            bb = (b.values.ctypes.data, b.probs.ctypes.data)
            b._addrs = bb
        flat.append(aa[0])
        flat.append(aa[1])
        flat.append(bb[0])
        flat.append(bb[1])
    ptrs = np.array(flat, dtype=np.uint64)
    out_v = np.empty((k, cap))
    out_p = np.empty((k, cap))
    out_n = np.empty(k, dtype=np.int64)
    base_v = out_v.ctypes.data
    base_p = out_p.ctypes.data
    t0 = time.perf_counter() if prof is not None else 0.0
    served = _c_conv_many(
        ptrs.ctypes.data, k, na, nb, int(max_atoms),
        base_v, base_p, out_n.ctypes.data,
    )
    if served < 0:
        if prof is not None:
            prof.record("native_miss_convolve", k, 0, 0.0)
        return None
    if prof is not None:
        wall = time.perf_counter() - t0
        prof.record("native_convolve", int(served), 0, wall)
        if served < k:
            prof.record("native_miss_convolve", k - int(served), 0, 0.0)
    row_bytes = cap * 8
    outs = []
    for i in range(k):
        n = out_n[i]
        if n < 0:
            outs.append(None)
        else:
            outs.append(
                _wrap_dist(
                    out_v[i, :n],
                    out_p[i, :n],
                    (base_v + i * row_bytes, base_p + i * row_bytes),
                )
            )
    return outs
