"""Parameterised 2-state DAG: one structure template, many parameter cells.

Within a sweep group every (pfail, CCR) cell prices a segment DAG with
the *same* node set and edges — the schedule is fixed and the checkpoint
plan usually coincides — while the 2-state parameters vary cell by cell
(pfail moves the failure probability, CCR rescaling moves the spans).
:class:`ParamDAG` captures exactly that factorisation: the structure
(names, predecessor lists) is stored once, and ``base``/``long``/``p``
become ``(n_cells, n)`` arrays with a **leading cell axis**.

Batch-capable evaluators consume the template directly (means/variances
are precomputed as arrays, the per-node 2-state atom laws are built in
one vectorised pass); everything else can materialise any cell as an
ordinary :class:`~repro.makespan.probdag.ProbDAG` via :meth:`cell`,
which reproduces the source DAG of that cell bit for bit.
"""

from __future__ import annotations

from typing import Hashable, List, Sequence, Tuple

import numpy as np

from repro.errors import EvaluationError
from repro.makespan.probdag import ProbDAG

__all__ = ["ParamDAG"]


class ParamDAG:
    """A ProbDAG structure template with per-cell 2-state parameters.

    Construct via :meth:`from_dags` (stack per-cell DAGs that share a
    structure) or :meth:`from_arrays`.  Instances are read-only by
    convention; the structure lists are shared with materialised cells,
    so neither should be mutated.
    """

    __slots__ = (
        "names",
        "preds",
        "succs",
        "base",
        "long",
        "p",
        "_means",
        "_variances",
        "_plan_cache",
    )

    def __init__(
        self,
        names: List[str],
        preds: List[List[int]],
        succs: List[List[int]],
        base: np.ndarray,
        long: np.ndarray,
        p: np.ndarray,
    ) -> None:
        base = np.asarray(base, dtype=float)
        long = np.asarray(long, dtype=float)
        p = np.asarray(p, dtype=float)
        n = len(names)
        if base.ndim != 2 or base.shape[1] != n:
            raise EvaluationError(
                f"parameter arrays must be (n_cells, {n}), got {base.shape}"
            )
        if base.shape != long.shape or base.shape != p.shape:
            raise EvaluationError(
                f"parameter arrays disagree in shape: {base.shape}, "
                f"{long.shape}, {p.shape}"
            )
        self.names = names
        self.preds = preds
        self.succs = succs
        self.base = base
        self.long = long
        self.p = p
        self._means: np.ndarray = None  # type: ignore[assignment]
        self._variances: np.ndarray = None  # type: ignore[assignment]
        self._plan_cache: dict = None  # type: ignore[assignment]

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @staticmethod
    def structure_key(dag: ProbDAG) -> Hashable:
        """Hashable identity of a DAG's structure (names + edges).

        Two DAGs with equal keys can share one template; the engine
        groups a sweep's cells by this key before batching.
        """
        return (
            tuple(dag.names),
            tuple(tuple(ps) for ps in dag.preds),
        )

    @classmethod
    def from_dags(cls, dags: Sequence[ProbDAG]) -> "ParamDAG":
        """Stack per-cell DAGs sharing one structure into a template."""
        dags = list(dags)
        if not dags:
            raise EvaluationError("from_dags needs at least one DAG")
        head = dags[0]
        key = cls.structure_key(head)
        for i, dag in enumerate(dags[1:], start=1):
            if cls.structure_key(dag) != key:
                raise EvaluationError(
                    f"cell {i} has a different DAG structure than cell 0 "
                    f"({dag.n} vs {head.n} nodes); group cells by "
                    f"ParamDAG.structure_key before stacking"
                )
        return cls(
            names=list(head.names),
            preds=[list(ps) for ps in head.preds],
            succs=[list(ss) for ss in head.succs],
            base=np.array([dag.base for dag in dags], dtype=float),
            long=np.array([dag.long for dag in dags], dtype=float),
            p=np.array([dag.p for dag in dags], dtype=float),
        )

    @classmethod
    def from_template(
        cls,
        dag: ProbDAG,
        base: np.ndarray,
        long: np.ndarray,
        p: np.ndarray,
    ) -> "ParamDAG":
        """Template from one DAG's structure plus explicit (C, n) arrays."""
        return cls(
            names=list(dag.names),
            preds=[list(ps) for ps in dag.preds],
            succs=[list(ss) for ss in dag.succs],
            base=base,
            long=long,
            p=p,
        )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of nodes in the shared structure."""
        return len(self.names)

    @property
    def n_cells(self) -> int:
        """Number of parameter cells."""
        return int(self.base.shape[0])

    @property
    def means(self) -> np.ndarray:
        """Per-cell expected durations, shape ``(n_cells, n)``.

        Computed with exactly the scalar
        :attr:`~repro.makespan.two_state.TwoStateTask.mean` formula, so
        every entry is bit-identical to the materialised cell's value.
        """
        if self._means is None:
            self._means = (1.0 - self.p) * self.base + self.p * self.long
        return self._means

    @property
    def variances(self) -> np.ndarray:
        """Per-cell duration variances, shape ``(n_cells, n)``."""
        if self._variances is None:
            d = self.long - self.base
            self._variances = self.p * (1.0 - self.p) * d * d
        return self._variances

    def plan_cache(self) -> dict:
        """Mutable store for compiled evaluation plans, keyed by plan
        signature (see :mod:`repro.makespan.foldplan`).

        Plans depend only on structure and on signatures derived from
        the parameter matrices (path sets, variance orders), both fixed
        for a template's lifetime, so caching them here lets every
        evaluation of the template — and every budget doubling within
        one evaluation — reuse earlier compilations.
        """
        if self._plan_cache is None:
            self._plan_cache = {}
        return self._plan_cache

    def set_plan_cache(self, cache: dict) -> None:
        """Adopt an externally shared plan store.

        Plan signatures embed everything a compiled plan depends on
        (structure-derived path sets, variance orders), so templates
        stacked from DAGs with the same :meth:`structure_key` can share
        one store safely — the fused evaluation dispatcher hands every
        template of a structure the same dict, letting later dispatches
        (more chunks, more specs) reuse earlier compilations instead of
        recompiling per template.
        """
        if self._plan_cache is not None and self._plan_cache is not cache:
            raise EvaluationError(
                "template already has a plan cache; set_plan_cache must "
                "be called before the first evaluation"
            )
        self._plan_cache = cache

    def sinks(self) -> List[int]:
        """Indices of nodes without successors."""
        return [i for i in range(self.n) if not self.succs[i]]

    def sources(self) -> List[int]:
        """Indices of nodes without predecessors."""
        return [i for i in range(self.n) if not self.preds[i]]

    def cell(self, i: int) -> ProbDAG:
        """Materialise cell ``i`` as an ordinary :class:`ProbDAG`.

        Bit-identical to the DAG the cell was stacked from: parameters
        are converted back to Python floats and the structure lists are
        shared (the DAG must be treated as read-only).
        """
        if not (0 <= i < self.n_cells):
            raise EvaluationError(
                f"cell index {i} outside [0, {self.n_cells})"
            )
        dag = ProbDAG.__new__(ProbDAG)
        dag.names = self.names
        dag._index = {name: j for j, name in enumerate(self.names)}
        dag._base = [float(x) for x in self.base[i]]
        dag._long = [float(x) for x in self.long[i]]
        dag._p = [float(x) for x in self.p[i]]
        dag.preds = self.preds
        dag.succs = self.succs
        return dag

    def cells(self) -> List[ProbDAG]:
        """All cells, materialised in order."""
        return [self.cell(i) for i in range(self.n_cells)]

    def __repr__(self) -> str:
        return (
            f"ParamDAG(n={self.n}, cells={self.n_cells}, "
            f"edges={sum(len(ps) for ps in self.preds)})"
        )
