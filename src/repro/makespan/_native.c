/* Native (compiled) kernels for the discrete distribution algebra.
 *
 * Each routine replicates the numpy operation order of its python
 * reference in repro/makespan/distribution.py **bit for bit**:
 *
 *   - sums over probability arrays use numpy's pairwise summation
 *     (block size 128, eight-way unrolled leaves, recursive halving at
 *     multiples of eight) so normalisation totals match np.sum exactly;
 *   - cumulative sums and scatter-adds are strictly sequential in
 *     array order, matching np.cumsum / np.add.at / np.bincount;
 *   - the convolve support sort is reproduced by a k-way heap merge
 *     over the virtual outer-sum rows with a (value, row) lexicographic
 *     comparator, which yields exactly the stable row-major order of
 *     np.argsort(kind="stable") on the ravelled outer sum — equal
 *     values within a row are contiguous in j, and the row index
 *     tie-break reproduces the flat-index tie-break;
 *   - int casts truncate toward zero like ndarray.astype(int).
 *
 * Anything the reference would reject (non-finite totals, negative
 * probability atoms, NaN supports, bins that would make np.bincount
 * raise) returns the FALLBACK status instead of guessing: the caller
 * reruns the python path, which raises the reference error or handles
 * the case in the reference order.  Correctness is therefore pinned by
 * construction — the python path stays the bit-exactness oracle and
 * tests/test_native.py compares against it atom for atom.
 *
 * Built on first use by repro/makespan/native.py with
 * `cc -O2 -fPIC -shared`; no python headers required (pure C + ctypes).
 */

#include <limits.h>
#include <math.h>
#include <stddef.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define REPRO_NATIVE_ABI 1
#define FALLBACK (-1)

/* ------------------------------------------------------------------ */
/* numpy-compatible pairwise summation                                 */
/* ------------------------------------------------------------------ */

#define PW_BLOCKSIZE 128

static double pairwise_sum(const double *a, ptrdiff_t n)
{
    if (n < 8) {
        double res = 0.0;
        for (ptrdiff_t i = 0; i < n; i++)
            res += a[i];
        return res;
    }
    else if (n <= PW_BLOCKSIZE) {
        double r[8], res;
        ptrdiff_t i;
        r[0] = a[0]; r[1] = a[1]; r[2] = a[2]; r[3] = a[3];
        r[4] = a[4]; r[5] = a[5]; r[6] = a[6]; r[7] = a[7];
        for (i = 8; i < n - (n % 8); i += 8) {
            r[0] += a[i + 0]; r[1] += a[i + 1];
            r[2] += a[i + 2]; r[3] += a[i + 3];
            r[4] += a[i + 4]; r[5] += a[i + 5];
            r[6] += a[i + 6]; r[7] += a[i + 7];
        }
        res = ((r[0] + r[1]) + (r[2] + r[3])) +
              ((r[4] + r[5]) + (r[6] + r[7]));
        for (; i < n; i++)
            res += a[i];
        return res;
    }
    else {
        ptrdiff_t n2 = n / 2;
        n2 -= n2 % 8;
        return pairwise_sum(a, n2) + pairwise_sum(a + n2, n - n2);
    }
}

/* ------------------------------------------------------------------ */
/* canonicalising constructor (stable sort + equal-value merge +       */
/* pairwise-total normalise) — the tie path of the adaptive truncate   */
/* ------------------------------------------------------------------ */

/* Stable binary-insertion-friendly sort for the (v, p) atom pairs.
 * Inputs here are "almost sorted" (bin conditional means with a rare
 * floating-point tie), so plain insertion sort is effectively linear.
 * Stability matters: it reproduces np.argsort(kind="stable") so the
 * subsequent sequential merge accumulates in the reference order. */
static long long canonicalize(double *v, double *p, long long n,
                              double *ov, double *op)
{
    long long i, m;
    double total;

    for (i = 0; i < n; i++)
        if (isnan(v[i]))
            return FALLBACK; /* numpy sorts NaN last; don't replicate */
    for (i = 1; i < n; i++) {
        double kv = v[i], kp = p[i];
        long long j = i;
        while (j > 0 && v[j - 1] > kv) {
            v[j] = v[j - 1];
            p[j] = p[j - 1];
            j--;
        }
        v[j] = kv;
        p[j] = kp;
    }
    m = 0;
    for (i = 0; i < n; i++) {
        if (m > 0 && ov[m - 1] == v[i])
            op[m - 1] += p[i]; /* sequential, like np.add.at */
        else {
            ov[m] = v[i];
            op[m] = p[i];
            m++;
        }
    }
    total = pairwise_sum(op, (ptrdiff_t)m);
    if (!isfinite(total) || total <= 0.0)
        return FALLBACK; /* python raises EvaluationError */
    for (i = 0; i < m; i++)
        op[i] /= total;
    return m;
}

/* ------------------------------------------------------------------ */
/* adaptive truncate core                                              */
/* ------------------------------------------------------------------ */

/* Reduce a canonical, normalised support of n > max_atoms points to at
 * most max_atoms equal-probability bins, each replaced by its
 * conditional mean.  Mirrors DiscreteDistribution._truncate (adaptive
 * branch) exactly, including the monotone-bins accumulate, the
 * sequential scatter, and the strictly-increasing guard that routes
 * floating-point ties through the canonicalising constructor. */
static long long truncate_adaptive_core(const double *v, const double *p,
                                        long long n, long long max_atoms,
                                        double *ov, double *op)
{
    long long i, b, k, nbins, status;
    long long *bins;
    double *masses, *weighted, *kv, *kp;
    double cum, m9, total;
    long long bmax;
    int tie;

    bins = (long long *)malloc((size_t)n * sizeof(long long));
    if (bins == NULL)
        return FALLBACK;

    /* bins = min((cumsum(p) - p*0.5) * max_atoms, max_atoms - 1e-9)
     * cast to int (toward zero), then running-max accumulated. */
    cum = 0.0;
    m9 = (double)max_atoms - 1e-9;
    bmax = LLONG_MIN;
    for (i = 0; i < n; i++) {
        double t;
        cum += p[i];
        t = (cum - p[i] * 0.5) * (double)max_atoms;
        if (t > m9)
            t = m9;
        if (!isfinite(t)) {
            free(bins);
            return FALLBACK; /* astype(int) of non-finite is UB here */
        }
        b = (long long)t;
        if (b < bmax)
            b = bmax; /* np.maximum.accumulate */
        else
            bmax = b;
        bins[i] = b;
    }
    /* bins is non-decreasing, so bins[0] is the minimum; a negative
     * bin would wrap in np.add.at — leave that path to the reference. */
    if (bins[0] < 0 || bmax >= max_atoms) {
        free(bins);
        return FALLBACK;
    }
    nbins = bmax + 1;

    masses = (double *)calloc((size_t)(2 * nbins + 2 * max_atoms),
                              sizeof(double));
    if (masses == NULL) {
        free(bins);
        return FALLBACK;
    }
    weighted = masses + nbins;
    kv = weighted + nbins;
    kp = kv + max_atoms;

    /* Sequential scatter — the np.add.at reference order. */
    for (i = 0; i < n; i++) {
        masses[bins[i]] += p[i];
        weighted[bins[i]] += p[i] * v[i];
    }

    k = 0;
    for (b = 0; b < nbins; b++) {
        if (masses[b] > 0.0) {
            kv[k] = weighted[b] / masses[b];
            kp[k] = masses[b];
            k++;
        }
    }
    if (k == 0) {
        free(masses);
        free(bins);
        return FALLBACK; /* python would build an empty dist and raise */
    }

    tie = 0;
    for (i = 1; i < k; i++) {
        if (kv[i] <= kv[i - 1]) { /* NaN compares false, like numpy */
            tie = 1;
            break;
        }
    }
    if (tie) {
        status = canonicalize(kv, kp, k, ov, op);
    }
    else {
        total = pairwise_sum(kp, (ptrdiff_t)k);
        for (i = 0; i < k; i++) {
            ov[i] = kv[i];
            op[i] = kp[i] / total; /* reference divides unguarded */
        }
        status = k;
    }
    free(masses);
    free(bins);
    return status;
}

/* Public entry: truncate an already-canonical distribution.  The
 * python caller handles the n <= max_atoms early return itself. */
long long repro_truncate_adaptive(const double *v, const double *p,
                                  long long n, long long max_atoms,
                                  double *out_v, double *out_p)
{
    if (n <= max_atoms || max_atoms < 1)
        return FALLBACK;
    return truncate_adaptive_core(v, p, n, max_atoms, out_v, out_p);
}

/* ------------------------------------------------------------------ */
/* adaptive convolve                                                   */
/* ------------------------------------------------------------------ */

/* Guard scan over a support: NaN anywhere, or infinities that could
 * produce NaN sums against the other operand, force the fallback. */
static int scan_support(const double *v, long long n,
                        int *has_pinf, int *has_ninf)
{
    long long i;
    *has_pinf = 0;
    *has_ninf = 0;
    for (i = 0; i < n; i++) {
        if (isnan(v[i]))
            return 1;
        if (v[i] == INFINITY)
            *has_pinf = 1;
        else if (v[i] == -INFINITY)
            *has_ninf = 1;
    }
    return 0;
}

/* Stable two-way merge of adjacent sorted runs [lo, mid) and
 * [mid, hi): ties take the left run first, so a bottom-up pass over
 * runs laid out in row order reproduces np.argsort(kind="stable"). */
static void merge_runs(const double *restrict sv, const double *restrict sp,
                       double *restrict dv, double *restrict dp,
                       long long lo, long long mid, long long hi)
{
    long long i = lo, j = mid, k = lo;
    while (i < mid && j < hi) {
        /* Branchless select (ties take the left run: stability).
         * Data-dependent branches mispredict ~50% on random supports;
         * conditional moves keep the pipeline full. */
        long long tl = (sv[i] <= sv[j]);
        double vl = sv[i], vr = sv[j];
        double pl = sp[i], pr = sp[j];
        dv[k] = tl ? vl : vr;
        dp[k] = tl ? pl : pr;
        i += tl;
        j += 1 - tl;
        k++;
    }
    if (i < mid) {
        memcpy(dv + k, sv + i, (size_t)(mid - i) * sizeof(double));
        memcpy(dp + k, sp + i, (size_t)(mid - i) * sizeof(double));
    }
    else if (j < hi) {
        memcpy(dv + k, sv + j, (size_t)(hi - j) * sizeof(double));
        memcpy(dp + k, sp + j, (size_t)(hi - j) * sizeof(double));
    }
}

/* Distribution of X + Y: outer sum of the supports, stable-sorted,
 * equal values merged, normalised, adaptively truncated.  The sort
 * exploits the outer sum's structure: row i of the (materialised,
 * row-major) sum grid enumerates av[i] + bv[j] for ascending j and is
 * already sorted, so a bottom-up stable merge over the nb-long runs
 * (left run wins ties) yields exactly the stable row-major order of
 * np.argsort(kind="stable") on the ravelled grid, with sequential
 * memory access instead of a comparison sort's O(n log n) random
 * probes.  The duplicate merge then accumulates sequentially in
 * sorted order — exactly the np.add.at order of the constructor. */
/* Core convolve over caller-provided scratch (4 * na * nb doubles),
 * so pooled calls reuse one allocation across members. */
static long long convolve_core(const double *av, const double *ap,
                               long long na,
                               const double *bv, const double *bp,
                               long long nb,
                               long long max_atoms,
                               double *out_v, double *out_p,
                               double *buf)
{
    long long i, j, m, total_atoms, width, status;
    double *sv, *sp, *dv, *dp, *mv, *mp;
    double total;
    int a_pinf, a_ninf, b_pinf, b_ninf;

    if (scan_support(av, na, &a_pinf, &a_ninf) ||
        scan_support(bv, nb, &b_pinf, &b_ninf))
        return FALLBACK;
    if ((a_pinf && b_ninf) || (a_ninf && b_pinf))
        return FALLBACK; /* inf + -inf would be NaN */

    total_atoms = na * nb;
    /* Two ping-pong (value, prob) planes for the merge passes. */
    sv = buf;
    sp = buf + total_atoms;
    dv = sp + total_atoms;
    dp = dv + total_atoms;

    for (i = 0; i < na; i++) {
        const double a_val = av[i], a_pr = ap[i];
        double *rv = sv + i * nb, *rp = sp + i * nb;
        for (j = 0; j < nb; j++) {
            double pr = a_pr * bp[j];
            if (pr < -1e-12) {
                /* constructor raises "negative probability atom" */
                return FALLBACK;
            }
            rv[j] = a_val + bv[j];
            rp[j] = pr;
        }
    }

    for (width = nb; width < total_atoms; width *= 2) {
        long long start;
        for (start = 0; start < total_atoms; start += 2 * width) {
            long long mid = start + width;
            long long end = start + 2 * width;
            if (mid > total_atoms)
                mid = total_atoms;
            if (end > total_atoms)
                end = total_atoms;
            if (mid < end && sv[mid - 1] <= sv[mid]) {
                /* already in order (ties stay left-first): copy through */
                memcpy(dv + start, sv + start,
                       (size_t)(end - start) * sizeof(double));
                memcpy(dp + start, sp + start,
                       (size_t)(end - start) * sizeof(double));
            }
            else
                merge_runs(sv, sp, dv, dp, start, mid, end);
        }
        { double *t = sv; sv = dv; dv = t; }
        { double *t = sp; sp = dp; dp = t; }
    }
    mv = sv;
    mp = sp;

    /* Sequential equal-value merge over the sorted grid. */
    m = 0;
    for (i = 0; i < total_atoms; i++) {
        if (m > 0 && mv[m - 1] == mv[i])
            mp[m - 1] += mp[i];
        else {
            mv[m] = mv[i];
            mp[m] = mp[i];
            m++;
        }
    }

    total = pairwise_sum(mp, (ptrdiff_t)m);
    if (!isfinite(total) || total <= 0.0)
        return FALLBACK; /* python raises EvaluationError */
    for (i = 0; i < m; i++)
        mp[i] /= total;

    if (m <= max_atoms) {
        memcpy(out_v, mv, (size_t)m * sizeof(double));
        memcpy(out_p, mp, (size_t)m * sizeof(double));
        status = m;
    }
    else {
        status = truncate_adaptive_core(mv, mp, m, max_atoms,
                                        out_v, out_p);
    }
    return status;
}

long long repro_convolve_adaptive(const double *av, const double *ap,
                                  long long na,
                                  const double *bv, const double *bp,
                                  long long nb,
                                  long long max_atoms,
                                  double *out_v, double *out_p)
{
    double *buf;
    long long status;

    if (na <= 0 || nb <= 0 || max_atoms < 1)
        return FALLBACK;
    buf = (double *)malloc((size_t)(4 * na * nb) * sizeof(double));
    if (buf == NULL)
        return FALLBACK;
    status = convolve_core(av, ap, na, bv, bp, nb, max_atoms,
                           out_v, out_p, buf);
    free(buf);
    return status;
}

/* Pooled convolve: k independent pairs sharing (na, nb, max_atoms) —
 * the shape under which the fold-plan executor groups adaptive
 * convolve pools — in one call over one reused scratch allocation.
 * ``ptrs`` holds k quads (av, ap, bv, bp); outputs land in row i of
 * the (k, cap) out planes with per-member atom counts (or FALLBACK)
 * in out_n.  Returns the number of members served. */
long long repro_convolve_adaptive_many(const unsigned long long *ptrs,
                                       long long k,
                                       long long na, long long nb,
                                       long long max_atoms,
                                       double *out_v, double *out_p,
                                       long long *out_n)
{
    long long i, cap, served;
    double *buf;

    if (k <= 0 || na <= 0 || nb <= 0 || max_atoms < 1)
        return FALLBACK;
    cap = na * nb;
    if (cap > max_atoms)
        cap = max_atoms;
    buf = (double *)malloc((size_t)(4 * na * nb) * sizeof(double));
    if (buf == NULL)
        return FALLBACK;
    served = 0;
    for (i = 0; i < k; i++) {
        const double *av = (const double *)(uintptr_t)ptrs[4 * i + 0];
        const double *ap = (const double *)(uintptr_t)ptrs[4 * i + 1];
        const double *bv = (const double *)(uintptr_t)ptrs[4 * i + 2];
        const double *bp = (const double *)(uintptr_t)ptrs[4 * i + 3];
        long long n = convolve_core(av, ap, na, bv, bp, nb, max_atoms,
                                    out_v + i * cap, out_p + i * cap,
                                    buf);
        out_n[i] = n;
        if (n >= 0)
            served++;
    }
    free(buf);
    return served;
}

/* ------------------------------------------------------------------ */
/* adaptive max                                                        */
/* ------------------------------------------------------------------ */

/* Distribution of max(X, Y): CDF product on the union grid, first
 * difference, positive atoms kept (degenerate case keeps the top atom
 * at mass 1), normalised, adaptively truncated.  The union grid and
 * the searchsorted(..., "right") CDF lookups are realised as one
 * two-pointer merge over the sorted supports. */
long long repro_max_adaptive(const double *av, const double *ap,
                             long long na,
                             const double *bv, const double *bp,
                             long long nb,
                             long long max_atoms,
                             double *out_v, double *out_p)
{
    long long i, j, g, k, status;
    double *cum_a, *cum_b, *grid, *pg;
    double cum, fprev, total;

    if (na <= 0 || nb <= 0 || max_atoms < 1)
        return FALLBACK;
    for (i = 0; i < na; i++)
        if (isnan(av[i]))
            return FALLBACK;
    for (j = 0; j < nb; j++)
        if (isnan(bv[j]))
            return FALLBACK;

    cum_a = (double *)malloc((size_t)(3 * (na + nb)) * sizeof(double));
    if (cum_a == NULL)
        return FALLBACK;
    cum_b = cum_a + na;
    grid = cum_b + nb;
    pg = grid + (na + nb);

    cum = 0.0;
    for (i = 0; i < na; i++) {
        cum += ap[i]; /* np.cumsum order */
        cum_a[i] = cum;
    }
    cum = 0.0;
    for (j = 0; j < nb; j++) {
        cum += bp[j];
        cum_b[j] = cum;
    }

    /* Union walk.  After advancing past every atom <= x, i and j equal
     * np.searchsorted(..., x, "right"), so the CDF reads below match
     * the reference lookups exactly. */
    i = 0;
    j = 0;
    g = 0;
    fprev = 0.0;
    while (i < na || j < nb) {
        double x, f1, f2, f;
        if (i < na && (j >= nb || av[i] <= bv[j]))
            x = av[i];
        else
            x = bv[j];
        while (i < na && av[i] <= x)
            i++;
        while (j < nb && bv[j] <= x)
            j++;
        f1 = (i > 0) ? cum_a[i - 1] : 0.0;
        f2 = (j > 0) ? cum_b[j - 1] : 0.0;
        f = f1 * f2;
        grid[g] = x;
        pg[g] = (g == 0) ? f : f - fprev;
        fprev = f;
        g++;
    }

    /* keep = probs > 0; compact in place (k <= g so the write index
     * never overtakes the read index). */
    k = 0;
    for (i = 0; i < g; i++) {
        if (pg[i] > 0.0) {
            grid[k] = grid[i];
            pg[k] = pg[i];
            k++;
        }
    }
    if (k == 0) { /* numerically degenerate; keep the top atom */
        grid[0] = grid[g - 1];
        pg[0] = 1.0;
        k = 1;
    }

    total = pairwise_sum(pg, (ptrdiff_t)k);
    if (!isfinite(total) || total <= 0.0) {
        free(cum_a);
        return FALLBACK; /* python raises EvaluationError */
    }
    for (i = 0; i < k; i++)
        pg[i] /= total;

    if (k <= max_atoms) {
        memcpy(out_v, grid, (size_t)k * sizeof(double));
        memcpy(out_p, pg, (size_t)k * sizeof(double));
        status = k;
    }
    else {
        status = truncate_adaptive_core(grid, pg, k, max_atoms,
                                        out_v, out_p);
    }
    free(cum_a);
    return status;
}

/* ------------------------------------------------------------------ */
/* rectangular binning                                                 */
/* ------------------------------------------------------------------ */

/* Fixed-width binning of c sorted, normalised rows of n atoms each to
 * exactly max_atoms atoms per row — the shared kernel behind the rect
 * truncation mode.  Mirrors _rect_bin_rows: cast-then-clamp bin
 * indices, row-major sequential scatter (the flattened-bincount
 * order), conditional means for massy bins, centres for empty ones,
 * per-row pairwise totals.  Outputs are (c, max_atoms) row-major. */
long long repro_rect_bin_rows(const double *values, const double *probs,
                              long long c, long long n,
                              long long max_atoms,
                              double *out_v, double *out_p)
{
    long long r, a, b;
    double *masses, *weighted;

    if (c <= 0 || n <= 0 || max_atoms < 1)
        return FALLBACK;
    masses = (double *)malloc((size_t)(2 * max_atoms) * sizeof(double));
    if (masses == NULL)
        return FALLBACK;
    weighted = masses + max_atoms;

    for (r = 0; r < c; r++) {
        const double *V = values + r * n;
        const double *P = probs + r * n;
        double lo = V[0];
        double span = V[n - 1] - lo;
        double safe_span = (span > 0.0) ? span : 1.0;
        double width = span / (double)max_atoms;
        double total;

        memset(masses, 0, (size_t)(2 * max_atoms) * sizeof(double));
        for (a = 0; a < n; a++) {
            double sc = (V[a] - lo) / safe_span * (double)max_atoms;
            long long bi;
            if (!isfinite(sc)) {
                free(masses);
                return FALLBACK; /* astype(int) of non-finite */
            }
            bi = (long long)sc; /* truncate toward zero, like astype */
            if (bi > max_atoms - 1)
                bi = max_atoms - 1;
            if (bi < 0) {
                free(masses);
                return FALLBACK; /* np.bincount raises on negatives */
            }
            masses[bi] += P[a];
            weighted[bi] += P[a] * V[a];
        }
        total = pairwise_sum(masses, (ptrdiff_t)max_atoms);
        for (b = 0; b < max_atoms; b++) {
            double val;
            if (masses[b] > 0.0)
                val = weighted[b] / masses[b];
            else
                val = lo + ((double)b + 0.5) * width;
            out_v[r * max_atoms + b] = val;
            out_p[r * max_atoms + b] = masses[b] / total;
        }
    }
    free(masses);
    return 0;
}

/* ABI version stamp so the loader can reject stale cached objects. */
long long repro_native_abi(void)
{
    return REPRO_NATIVE_ABI;
}
