"""Longest-path approximation (the paper's PATHAPPROX method, §II-B, §VI-B).

The paper adopts the path-based estimator of Casanova, Herrmann & Robert
(P2S2 2016) as its method of choice: fast, and the most accurate of the
non-sampling estimators on workflow-shaped DAGs.  The reconstruction here:

1. enumerate the ``k`` *longest paths by expected duration* (a K-best
   dynamic program over the DAG — distinct paths, not just distinct
   lengths);
2. compute each path's length distribution **exactly**: the sum of the
   path's independent 2-state durations, as a discrete distribution with
   moment-preserving truncation — this is what lets the method stay
   accurate when many tasks fail per run (large ``n·λ·w``), where naive
   0/1-failure enumeration collapses;
3. fold the path-sum maxima **with recursive common-task factoring**: the
   tasks shared by every path in a group are pulled out exactly (the max
   distributes over a common additive term); the group is then split on
   the highest-variance task still shared by *some* paths, and the two
   halves are folded recursively, with independence assumed only across
   the final exclusive remainders.

Step 3 is what keeps the estimator honest on fork-join workflows: a naive
CDF product counts a shared heavy spine's randomness once per path and
overestimates by ``O(σ_spine·√log k)`` (set ``factor_common=False`` to
reproduce the naive estimator — benchmarked in
``benchmarks/bench_ablation_pathapprox.py``).  The remaining error
sources — ignored non-candidate paths (underestimate) and residual
correlation between exclusive parts (overestimate) — are quantified by
the §VI-B accuracy bench.
"""

from __future__ import annotations

import heapq
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import EvaluationError
from repro.makespan.distribution import DEFAULT_MAX_ATOMS, DiscreteDistribution
from repro.makespan.probdag import ProbDAG

__all__ = ["pathapprox", "k_longest_paths"]

#: Starting path budget of the adaptive schedule.
INITIAL_PATHS = 32
#: Relative-change threshold at which the adaptive schedule stops.
ADAPTIVE_RTOL = 2e-4
#: Consecutive sub-tolerance doublings required before stopping.  In the
#: many-near-critical-paths regime the estimate grows like σ·sqrt(ln k),
#: whose per-doubling increments decay very slowly — a single small delta
#: is not yet convergence.
ADAPTIVE_STALLS = 2
#: Above this node count the adaptive loop is replaced by one k = 2n shot.
SINGLE_SHOT_N = 256
#: Kept for the explicit-k API (tests/ablations).
DEFAULT_PATHS = 20


def k_longest_paths(dag: ProbDAG, k: int) -> List[List[int]]:
    """The ``k`` distinct source-to-sink paths of largest expected length.

    K-best DP, vectorised: each node keeps NumPy arrays of its top-``k``
    (expected length, predecessor, predecessor-rank) entries; candidates
    from all predecessors are concatenated and selected with
    ``argpartition`` (``O(E·k)`` instead of ``O(E·k·log k)`` sorting),
    and only the winning entries are ordered.  Reconstruction walks the
    rank pointers back, so paths are distinct by construction.
    """
    if k < 1:
        raise EvaluationError(f"k must be >= 1, got {k}")
    import numpy as np

    n = dag.n
    means = np.array([dag.task(i).mean for i in range(n)])
    # per node: lengths (desc), pred node ids, pred ranks
    best_len: List[np.ndarray] = [None] * n  # type: ignore[list-item]
    best_pred: List[np.ndarray] = [None] * n  # type: ignore[list-item]
    best_rank: List[np.ndarray] = [None] * n  # type: ignore[list-item]
    minus_one = np.array([-1], dtype=np.int64)

    for v in range(n):
        preds = dag.preds[v]
        if not preds:
            best_len[v] = means[v : v + 1].copy()
            best_pred[v] = minus_one
            best_rank[v] = minus_one
            continue
        lengths = np.concatenate([best_len[q] for q in preds]) + means[v]
        pred_ids = np.concatenate(
            [np.full(best_len[q].size, q, dtype=np.int64) for q in preds]
        )
        ranks = np.concatenate(
            [np.arange(best_len[q].size, dtype=np.int64) for q in preds]
        )
        if lengths.size > k:
            top = np.argpartition(-lengths, k - 1)[:k]
        else:
            top = np.arange(lengths.size)
        order = top[np.argsort(-lengths[top], kind="stable")]
        best_len[v] = lengths[order]
        best_pred[v] = pred_ids[order]
        best_rank[v] = ranks[order]

    finals: List[Tuple[float, int, int]] = []
    for s in dag.sinks():
        for rank in range(best_len[s].size):
            finals.append((float(best_len[s][rank]), s, rank))
    finals.sort(key=lambda e: -e[0])

    paths: List[List[int]] = []
    for _, node, rank in finals[:k]:
        path: List[int] = []
        v, r = node, rank
        while v != -1:
            path.append(v)
            v, r = int(best_pred[v][r]), int(best_rank[v][r])
        path.reverse()
        paths.append(path)
    return paths


def _path_sum(
    dag: ProbDAG, nodes: Sequence[int], max_atoms: int
) -> DiscreteDistribution:
    dist = DiscreteDistribution.point(0.0)
    for v in nodes:
        t = dag.task(v)
        dist = dist.convolve(
            DiscreteDistribution.two_state(t.base, t.long, t.p), max_atoms
        )
    return dist


def _fold_factored(
    dag: ProbDAG, paths: List[FrozenSet[int]], max_atoms: int
) -> DiscreteDistribution:
    """max over path sums with recursive common-task factoring.

    Tasks common to every path are additive and leave the max exactly.
    The remaining paths are bisected on the highest-variance task shared
    by a strict subset of them; the two halves share fewer tasks, so
    recursing drives residual correlation down before independence is
    finally assumed at the ``max_with`` folds.
    """
    common = frozenset.intersection(*paths)
    rest = [p - common for p in paths]
    nonempty = [p for p in rest if p]

    if not nonempty:
        folded = DiscreteDistribution.point(0.0)
    elif len(nonempty) == 1:
        folded = _path_sum(dag, sorted(nonempty[0]), max_atoms)
    else:
        variances = {v: dag.task(v).variance for p in nonempty for v in p}
        split = max(variances, key=lambda v: (variances[v], v))
        with_split = [p for p in nonempty if split in p]
        without = [p for p in nonempty if split not in p]
        if not without:
            # split is common to all non-empty remainders; recurse (their
            # intersection is non-empty, so the recursion strips it).
            folded = _fold_factored(dag, with_split, max_atoms)
        else:
            folded = _fold_factored(dag, with_split, max_atoms).max_with(
                _fold_factored(dag, without, max_atoms), max_atoms
            )
    if common:
        folded = folded.convolve(_path_sum(dag, sorted(common), max_atoms), max_atoms)
    return folded


def _estimate_with_k(
    dag: ProbDAG, k: int, max_atoms: int, factor_common: bool
) -> Tuple[float, bool]:
    """Estimate with a fixed budget; also reports path-supply exhaustion."""
    paths = k_longest_paths(dag, k)
    if not paths:
        raise EvaluationError("DAG has no source-to-sink path")
    exhausted = len(paths) < k
    if factor_common:
        return (
            _fold_factored(dag, [frozenset(p) for p in paths], max_atoms).mean(),
            exhausted,
        )
    folded: DiscreteDistribution = None  # type: ignore[assignment]
    for path in paths:
        dist = _path_sum(dag, path, max_atoms)
        folded = dist if folded is None else folded.max_with(dist, max_atoms)
    return folded.mean(), exhausted


def pathapprox(
    dag: ProbDAG,
    k: Optional[int] = None,
    max_atoms: int = DEFAULT_MAX_ATOMS,
    factor_common: bool = True,
    rtol: float = ADAPTIVE_RTOL,
) -> float:
    """Path-based estimate of the expected makespan of a 2-state DAG.

    With ``k=None`` (default) the path budget adapts to the DAG: it
    doubles from :data:`INITIAL_PATHS` until the estimate moves by less
    than ``rtol`` (adding candidate paths only ever raises the estimated
    maximum, so the first stall is convergence).  Wide DAGs with many
    near-critical parallel chains — e.g. a CKPTALL segment graph of a
    1000-task workflow on hundreds of processors — genuinely need
    hundreds of paths; narrow ones stop at the first doubling.  Pass an
    explicit ``k`` to pin the budget (used by the ablation benchmarks).
    """
    if dag.n == 0:
        return 0.0
    if k is not None:
        return _estimate_with_k(dag, k, max_atoms, factor_common)[0]

    if dag.n > SINGLE_SHOT_N:
        # Wide DAGs (hundreds of near-critical parallel chains, e.g.
        # CKPTALL segment graphs) genuinely need O(n) candidate paths:
        # the top of the enumeration is near-duplicates of the heavy
        # chain, and stall-based stopping false-converges during that
        # plateau.  k = 2n is past the plateau on every family we
        # validated against Monte Carlo (the accuracy bench pins this
        # down); paths beyond it are order statistics with strictly
        # smaller means whose marginal effect on the factored max decays
        # like the tail of sqrt(ln k).
        return _estimate_with_k(
            dag, 2 * dag.n, max_atoms, factor_common
        )[0]

    budget = INITIAL_PATHS
    estimate, exhausted = _estimate_with_k(dag, budget, max_atoms, factor_common)
    cap = max(8 * dag.n, 2 * INITIAL_PATHS)
    stalls = 0
    while budget < cap and not exhausted:
        budget *= 2
        refined, exhausted = _estimate_with_k(
            dag, budget, max_atoms, factor_common
        )
        if abs(refined - estimate) <= rtol * max(abs(estimate), 1e-300):
            stalls += 1
            if stalls >= ADAPTIVE_STALLS:
                return refined
        else:
            stalls = 0
        estimate = refined
    return estimate
