"""Longest-path approximation (the paper's PATHAPPROX method, §II-B, §VI-B).

The paper adopts the path-based estimator of Casanova, Herrmann & Robert
(P2S2 2016) as its method of choice: fast, and the most accurate of the
non-sampling estimators on workflow-shaped DAGs.  The reconstruction here:

1. enumerate the ``k`` *longest paths by expected duration* (a K-best
   dynamic program over the DAG — distinct paths, not just distinct
   lengths);
2. compute each path's length distribution **exactly**: the sum of the
   path's independent 2-state durations, as a discrete distribution with
   moment-preserving truncation — this is what lets the method stay
   accurate when many tasks fail per run (large ``n·λ·w``), where naive
   0/1-failure enumeration collapses;
3. fold the path-sum maxima **with recursive common-task factoring**: the
   tasks shared by every path in a group are pulled out exactly (the max
   distributes over a common additive term); the group is then split on
   the highest-variance task still shared by *some* paths, and the two
   halves are folded recursively, with independence assumed only across
   the final exclusive remainders.

Step 3 is what keeps the estimator honest on fork-join workflows: a naive
CDF product counts a shared heavy spine's randomness once per path and
overestimates by ``O(σ_spine·√log k)`` (set ``factor_common=False`` to
reproduce the naive estimator — benchmarked in
``benchmarks/bench_ablation_pathapprox.py``).  The remaining error
sources — ignored non-candidate paths (underestimate) and residual
correlation between exclusive parts (overestimate) — are quantified by
the §VI-B accuracy bench.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EvaluationError
from repro.makespan.distribution import (
    DEFAULT_MAX_ATOMS,
    MODE_ADAPTIVE,
    DiscreteDistribution,
    check_mode,
)
from repro.makespan.probdag import ProbDAG

__all__ = [
    "pathapprox",
    "pathapprox_batch",
    "pathapprox_fused",
    "k_longest_paths",
]

#: Starting path budget of the adaptive schedule.
INITIAL_PATHS = 32
#: Relative-change threshold at which the adaptive schedule stops.
ADAPTIVE_RTOL = 2e-4
#: Consecutive sub-tolerance doublings required before stopping.  In the
#: many-near-critical-paths regime the estimate grows like σ·sqrt(ln k),
#: whose per-doubling increments decay very slowly — a single small delta
#: is not yet convergence.
ADAPTIVE_STALLS = 2
#: Above this node count the adaptive loop is replaced by one k = 2n shot.
SINGLE_SHOT_N = 256
#: Kept for the explicit-k API (tests/ablations).
DEFAULT_PATHS = 20


def k_longest_paths(dag: ProbDAG, k: int) -> List[List[int]]:
    """The ``k`` distinct source-to-sink paths of largest expected length.

    K-best DP, vectorised: each node keeps NumPy arrays of its top-``k``
    (expected length, predecessor, predecessor-rank) entries; candidates
    from all predecessors are concatenated and selected with
    ``argpartition`` (``O(E·k)`` instead of ``O(E·k·log k)`` sorting),
    and only the winning entries are ordered.  Reconstruction walks the
    rank pointers back, so paths are distinct by construction.
    """
    means = np.array([dag.task(i).mean for i in range(dag.n)])
    return _k_best_paths(dag.preds, dag.sinks(), means, k)


def _k_best_paths(
    preds: Sequence[Sequence[int]],
    sinks: Sequence[int],
    means: np.ndarray,
    k: int,
) -> List[List[int]]:
    """K-best DP core over an explicit structure + expected durations.

    Shared by :func:`k_longest_paths` (scalar) and the batched path,
    which feeds one row of the template's precomputed mean matrix.
    """
    if k < 1:
        raise EvaluationError(f"k must be >= 1, got {k}")
    n = len(preds)
    # per node: lengths (desc), pred node ids, pred ranks
    best_len: List[np.ndarray] = [None] * n  # type: ignore[list-item]
    best_pred: List[np.ndarray] = [None] * n  # type: ignore[list-item]
    best_rank: List[np.ndarray] = [None] * n  # type: ignore[list-item]
    minus_one = np.array([-1], dtype=np.int64)

    for v in range(n):
        ps = preds[v]
        if not ps:
            best_len[v] = means[v : v + 1].copy()
            best_pred[v] = minus_one
            best_rank[v] = minus_one
            continue
        lengths = np.concatenate([best_len[q] for q in ps]) + means[v]
        pred_ids = np.concatenate(
            [np.full(best_len[q].size, q, dtype=np.int64) for q in ps]
        )
        ranks = np.concatenate(
            [np.arange(best_len[q].size, dtype=np.int64) for q in ps]
        )
        if lengths.size > k:
            top = np.argpartition(-lengths, k - 1)[:k]
        else:
            top = np.arange(lengths.size)
        order = top[np.argsort(-lengths[top], kind="stable")]
        best_len[v] = lengths[order]
        best_pred[v] = pred_ids[order]
        best_rank[v] = ranks[order]

    finals: List[Tuple[float, int, int]] = []
    for s in sinks:
        for rank in range(best_len[s].size):
            finals.append((float(best_len[s][rank]), s, rank))
    finals.sort(key=lambda e: -e[0])

    paths: List[List[int]] = []
    for _, node, rank in finals[:k]:
        path: List[int] = []
        v, r = node, rank
        while v != -1:
            path.append(v)
            v, r = int(best_pred[v][r]), int(best_rank[v][r])
        path.reverse()
        paths.append(path)
    return paths


def _k_best_paths_cells(
    preds: Sequence[Sequence[int]],
    sinks: Sequence[int],
    means: np.ndarray,
    k: int,
) -> List[List[List[int]]]:
    """:func:`_k_best_paths` for many cells sharing one structure.

    ``means`` has shape ``(cells, n)``; the result holds each cell's
    path list.  The K-best DP runs with a leading cell axis — the entry
    counts kept per node are structure-determined, so every cell's
    arrays stack — and each row's ``argpartition``/stable ``argsort``
    applies the scalar call's algorithm to the scalar call's data, so
    the enumerated paths match the per-cell reference exactly (pinned
    by the evaluator parity tests).
    """
    if k < 1:
        raise EvaluationError(f"k must be >= 1, got {k}")
    c, n = means.shape
    best_len: List[np.ndarray] = [None] * n  # type: ignore[list-item]
    best_pred: List[np.ndarray] = [None] * n  # type: ignore[list-item]
    best_rank: List[np.ndarray] = [None] * n  # type: ignore[list-item]
    minus_one = np.full((c, 1), -1, dtype=np.int64)

    for v in range(n):
        ps = preds[v]
        if not ps:
            best_len[v] = means[:, v : v + 1].copy()
            best_pred[v] = minus_one
            best_rank[v] = minus_one
            continue
        lengths = np.concatenate(
            [best_len[q] for q in ps], axis=1
        ) + means[:, v : v + 1]
        pred_ids = np.concatenate(
            [np.full(best_len[q].shape[1], q, dtype=np.int64) for q in ps]
        )
        ranks = np.concatenate(
            [np.arange(best_len[q].shape[1], dtype=np.int64) for q in ps]
        )
        m = lengths.shape[1]
        if m > k:
            top = np.argpartition(-lengths, k - 1, axis=1)[:, :k]
        else:
            top = np.broadcast_to(np.arange(m), (c, m))
        sel = np.take_along_axis(lengths, top, axis=1)
        suborder = np.argsort(-sel, axis=1, kind="stable")
        chosen = np.take_along_axis(top, suborder, axis=1)
        best_len[v] = np.take_along_axis(sel, suborder, axis=1)
        best_pred[v] = pred_ids[chosen]
        best_rank[v] = ranks[chosen]

    # Reconstruction, vectorised across every cell's top-k entries: the
    # per-node tables pad into (n, cells, kmax) arrays so one fancy
    # index per walk step advances all paths at once; the stable
    # descending argsort over sink entries (sink-major, rank-ascending
    # column order) reproduces the scalar finals sort exactly.
    kmax = max(a.shape[1] for a in best_len)
    pred_tab = np.full((n, c, kmax), -1, dtype=np.int64)
    rank_tab = np.zeros((n, c, kmax), dtype=np.int64)
    for v in range(n):
        wv = best_pred[v].shape[1]
        pred_tab[v, :, :wv] = best_pred[v]
        rank_tab[v, :, :wv] = best_rank[v]
    node_col = np.concatenate(
        [np.full(best_len[s].shape[1], s, dtype=np.int64) for s in sinks]
    )
    rank_col = np.concatenate(
        [np.arange(best_len[s].shape[1], dtype=np.int64) for s in sinks]
    )
    final_len = np.concatenate([best_len[s] for s in sinks], axis=1)
    kk = min(k, final_len.shape[1])
    cols = np.argsort(-final_len, axis=1, kind="stable")[:, :kk]
    v_cur = node_col[cols]
    r_cur = rank_col[cols]
    ci_idx = np.arange(c)[:, None]
    trail: List[np.ndarray] = []
    while True:
        trail.append(v_cur)
        active = v_cur != -1
        if not active.any():
            break
        safe_v = np.where(active, v_cur, 0)
        safe_r = np.where(active, r_cur, 0)
        v_cur = np.where(active, pred_tab[safe_v, ci_idx, safe_r], -1)
        r_cur = rank_tab[safe_v, ci_idx, safe_r]
    arr = np.stack(trail)  # (depth, cells, kk), -1-padded past each end
    lens = (arr != -1).sum(axis=0).tolist()
    seqs = arr.transpose(1, 2, 0).tolist()
    return [
        [seq[d - 1 :: -1] for seq, d in zip(row_seqs, row_lens)]
        for row_seqs, row_lens in zip(seqs, lens)
    ]


def _path_sum(
    dag: ProbDAG, nodes: Sequence[int], max_atoms: int, mode: str = MODE_ADAPTIVE
) -> DiscreteDistribution:
    dist = DiscreteDistribution.point(0.0)
    for v in nodes:
        t = dag.task(v)
        dist = dist.convolve(
            DiscreteDistribution.two_state(t.base, t.long, t.p), max_atoms, mode
        )
    return dist


def _fold_factored(
    dag: ProbDAG,
    paths: List[FrozenSet[int]],
    max_atoms: int,
    mode: str = MODE_ADAPTIVE,
) -> DiscreteDistribution:
    """max over path sums with recursive common-task factoring.

    Tasks common to every path are additive and leave the max exactly.
    The remaining paths are bisected on the highest-variance task shared
    by a strict subset of them; the two halves share fewer tasks, so
    recursing drives residual correlation down before independence is
    finally assumed at the ``max_with`` folds.
    """
    common = frozenset.intersection(*paths)
    rest = [p - common for p in paths]
    nonempty = [p for p in rest if p]

    if not nonempty:
        folded = DiscreteDistribution.point(0.0)
    elif len(nonempty) == 1:
        folded = _path_sum(dag, sorted(nonempty[0]), max_atoms, mode)
    else:
        variances = {v: dag.task(v).variance for p in nonempty for v in p}
        split = max(variances, key=lambda v: (variances[v], v))
        with_split = [p for p in nonempty if split in p]
        without = [p for p in nonempty if split not in p]
        if not without:
            # split is common to all non-empty remainders; recurse (their
            # intersection is non-empty, so the recursion strips it).
            folded = _fold_factored(dag, with_split, max_atoms, mode)
        else:
            folded = _fold_factored(dag, with_split, max_atoms, mode).max_with(
                _fold_factored(dag, without, max_atoms, mode), max_atoms, mode
            )
    if common:
        folded = folded.convolve(
            _path_sum(dag, sorted(common), max_atoms, mode), max_atoms, mode
        )
    return folded


def _estimate_with_k(
    dag: ProbDAG,
    k: int,
    max_atoms: int,
    factor_common: bool,
    mode: str = MODE_ADAPTIVE,
) -> Tuple[float, bool]:
    """Estimate with a fixed budget; also reports path-supply exhaustion."""
    paths = k_longest_paths(dag, k)
    if not paths:
        raise EvaluationError("DAG has no source-to-sink path")
    exhausted = len(paths) < k
    if factor_common:
        return (
            _fold_factored(
                dag, [frozenset(p) for p in paths], max_atoms, mode
            ).mean(),
            exhausted,
        )
    folded: DiscreteDistribution = None  # type: ignore[assignment]
    for path in paths:
        dist = _path_sum(dag, path, max_atoms, mode)
        folded = dist if folded is None else folded.max_with(dist, max_atoms, mode)
    return folded.mean(), exhausted


def _adaptive_estimate(
    n: int,
    k: Optional[int],
    rtol: float,
    estimate_with_k: Callable[[int], Tuple[float, bool]],
) -> float:
    """The adaptive path-budget schedule, shared by the scalar and
    batched paths (one definition keeps their control flow — and hence
    the bit-identity contract — from drifting apart).

    ``estimate_with_k`` returns ``(estimate, exhausted)`` for a budget.
    With ``k=None`` the budget doubles from :data:`INITIAL_PATHS` until
    the estimate stalls; above :data:`SINGLE_SHOT_N` nodes the loop is
    replaced by one ``k = 2n`` shot.
    """
    if k is not None:
        return estimate_with_k(k)[0]

    if n > SINGLE_SHOT_N:
        # Wide DAGs (hundreds of near-critical parallel chains, e.g.
        # CKPTALL segment graphs) genuinely need O(n) candidate paths:
        # the top of the enumeration is near-duplicates of the heavy
        # chain, and stall-based stopping false-converges during that
        # plateau.  k = 2n is past the plateau on every family we
        # validated against Monte Carlo (the accuracy bench pins this
        # down); paths beyond it are order statistics with strictly
        # smaller means whose marginal effect on the factored max decays
        # like the tail of sqrt(ln k).
        return estimate_with_k(2 * n)[0]

    budget = INITIAL_PATHS
    estimate, exhausted = estimate_with_k(budget)
    cap = max(8 * n, 2 * INITIAL_PATHS)
    stalls = 0
    while budget < cap and not exhausted:
        budget *= 2
        refined, exhausted = estimate_with_k(budget)
        if abs(refined - estimate) <= rtol * max(abs(estimate), 1e-300):
            stalls += 1
            if stalls >= ADAPTIVE_STALLS:
                return refined
        else:
            stalls = 0
        estimate = refined
    return estimate


def pathapprox(
    dag: ProbDAG,
    k: Optional[int] = None,
    max_atoms: int = DEFAULT_MAX_ATOMS,
    factor_common: bool = True,
    rtol: float = ADAPTIVE_RTOL,
    truncate_mode: str = MODE_ADAPTIVE,
) -> float:
    """Path-based estimate of the expected makespan of a 2-state DAG.

    With ``k=None`` (default) the path budget adapts to the DAG: it
    doubles from :data:`INITIAL_PATHS` until the estimate moves by less
    than ``rtol`` (adding candidate paths only ever raises the estimated
    maximum, so the first stall is convergence).  Wide DAGs with many
    near-critical parallel chains — e.g. a CKPTALL segment graph of a
    1000-task workflow on hundreds of processors — genuinely need
    hundreds of paths; narrow ones stop at the first doubling.  Pass an
    explicit ``k`` to pin the budget (used by the ablation benchmarks).

    ``truncate_mode`` selects the distribution kernels' truncation
    scheme: ``"adaptive"`` (default, the bit-exactness reference) or
    ``"rect"`` (fixed-width binning, the batched fast path — see
    :mod:`repro.makespan.distribution`).
    """
    check_mode(truncate_mode)
    if dag.n == 0:
        return 0.0
    return _adaptive_estimate(
        dag.n,
        k,
        rtol,
        lambda budget: _estimate_with_k(
            dag, budget, max_atoms, factor_common, truncate_mode
        ),
    )


# --------------------------------------------------------------------- #
# batched evaluation over a parameterised DAG template
# --------------------------------------------------------------------- #


class _CellFold:
    """Per-cell evaluation state for the batched path.

    Runs exactly the scalar algorithm — same path enumeration, same
    variance-keyed fold recursion, same adaptive-k schedule — against
    the template's precomputed parameter rows, with two bit-safe
    accelerations the scalar reference forgoes:

    * the per-node 2-state laws are built once (the scalar path rebuilds
      them at every occurrence along every path);
    * path sums and fold subtrees are memoised by their exact inputs
      (node tuple / set of path sets), so the adaptive schedule's budget
      doublings and the recursion's repeated subproblems reuse results
      instead of recomputing them.  A memo hit returns the identical
      object a recomputation would have produced, so every downstream
      operation sees bit-identical operands.
    """

    __slots__ = (
        "preds",
        "sinks",
        "means",
        "variances",
        "node_dist",
        "max_atoms",
        "mode",
        "_sum_memo",
        "_fold_memo",
    )

    def __init__(
        self,
        preds: Sequence[Sequence[int]],
        sinks: Sequence[int],
        means: np.ndarray,
        variances: np.ndarray,
        node_dist: Sequence[DiscreteDistribution],
        max_atoms: int,
        mode: str = MODE_ADAPTIVE,
    ) -> None:
        self.preds = preds
        self.sinks = sinks
        self.means = means
        self.variances = variances
        self.node_dist = node_dist
        self.max_atoms = max_atoms
        self.mode = mode
        self._sum_memo: Dict[Tuple[int, ...], DiscreteDistribution] = {}
        self._fold_memo: Dict[FrozenSet[FrozenSet[int]], DiscreteDistribution] = {}

    def path_sum(self, nodes: Tuple[int, ...]) -> DiscreteDistribution:
        dist = self._sum_memo.get(nodes)
        if dist is None:
            dist = DiscreteDistribution.point(0.0)
            for v in nodes:
                dist = dist.convolve(self.node_dist[v], self.max_atoms, self.mode)
            self._sum_memo[nodes] = dist
        return dist

    def fold(self, paths: Tuple[FrozenSet[int], ...]) -> DiscreteDistribution:
        # The scalar recursion's result depends only on the *set* of
        # path sets (intersections, the (variance, id)-keyed split and
        # the pairwise folds are all order-independent), so the set is
        # a sound memo key across budget doublings and sibling subtrees.
        key = frozenset(paths)
        folded = self._fold_memo.get(key)
        if folded is not None:
            return folded
        common = frozenset.intersection(*paths)
        rest = [q - common for q in paths]
        nonempty = [q for q in rest if q]
        if not nonempty:
            folded = DiscreteDistribution.point(0.0)
        elif len(nonempty) == 1:
            folded = self.path_sum(tuple(sorted(nonempty[0])))
        else:
            variances = self.variances
            split = max(
                {v for q in nonempty for v in q},
                key=lambda v: (variances[v], v),
            )
            with_split = tuple(q for q in nonempty if split in q)
            without = tuple(q for q in nonempty if split not in q)
            if not without:
                folded = self.fold(with_split)
            else:
                folded = self.fold(with_split).max_with(
                    self.fold(without), self.max_atoms, self.mode
                )
        if common:
            folded = folded.convolve(
                self.path_sum(tuple(sorted(common))), self.max_atoms, self.mode
            )
        self._fold_memo[key] = folded
        return folded

    def estimate_with_k(self, k: int) -> Tuple[float, bool]:
        paths = _k_best_paths(self.preds, self.sinks, self.means, k)
        if not paths:
            raise EvaluationError("DAG has no source-to-sink path")
        exhausted = len(paths) < k
        return (
            self.fold(tuple(frozenset(p) for p in paths)).mean(),
            exhausted,
        )

    def run(self, n: int, k: Optional[int], rtol: float) -> float:
        """The shared adaptive-k schedule over this cell's estimator."""
        return _adaptive_estimate(n, k, rtol, self.estimate_with_k)


def pathapprox_batch(
    template,
    k: Optional[int] = None,
    max_atoms: int = DEFAULT_MAX_ATOMS,
    factor_common: bool = True,
    rtol: float = ADAPTIVE_RTOL,
    truncate_mode: str = MODE_ADAPTIVE,
) -> np.ndarray:
    """Path-based estimates for every cell of a parameterised DAG.

    ``template`` is a :class:`~repro.makespan.paramdag.ParamDAG`; the
    result array is **bit-identical** to evaluating each materialised
    cell with :func:`pathapprox` (pinned by the batch-parity tests).

    The heavy lifting happens in :mod:`repro.makespan.foldplan`: the
    fold recursion is compiled once per (path set, variance order)
    signature into a flat op tape cached on the template, and the tapes
    of all cells are replayed together by a pooled wavefront executor
    that groups same-shaped steps across cells into single batched
    kernel calls.  The adaptive-k schedule runs the batch in lockstep
    with per-cell stall/exhaustion tracking, replicating the scalar
    :func:`_adaptive_estimate` control flow exactly.  (:class:`_CellFold`
    above is the per-cell reference implementation of the same
    algorithm, kept for the kernel benchmarks.)
    """
    check_mode(truncate_mode)
    n_cells = template.n_cells
    if template.n == 0:
        return np.zeros(n_cells)
    if not factor_common:
        # Ablation path (naive CDF-product fold): the fold is ordered by
        # path rank rather than set-driven, so run the scalar reference.
        return np.array(
            [
                pathapprox(
                    template.cell(c),
                    k=k,
                    max_atoms=max_atoms,
                    factor_common=False,
                    rtol=rtol,
                    truncate_mode=truncate_mode,
                )
                for c in range(n_cells)
            ]
        )
    from repro.makespan.foldplan import pathapprox_plan_batch

    return pathapprox_plan_batch(
        template, k=k, max_atoms=max_atoms, rtol=rtol, mode=truncate_mode
    )


def pathapprox_fused(jobs) -> List[np.ndarray]:
    """Path-based estimates for many templates in one fused dispatch.

    ``jobs`` is a sequence of ``(template, options, seeds)`` triples
    (the fused-evaluator convention; PATHAPPROX is deterministic, so
    ``seeds`` is ignored — the engine passes ``None``).  Returns one
    value array per job, each **bit-identical** to
    ``pathapprox_batch(template, **options)``: jobs that the plan
    executor cannot fuse — empty templates and the
    ``factor_common=False`` ablation, which runs the scalar reference —
    are priced through :func:`pathapprox_batch` individually, and the
    rest share one multi-template
    :func:`~repro.makespan.foldplan.pathapprox_plan_fused` execution
    whose wavefront pools tape steps across every job's cells.
    """
    out: List[Optional[np.ndarray]] = [None] * len(jobs)
    fused_indices: List[int] = []
    fused_jobs: List[Tuple] = []
    for i, (template, options, _seeds) in enumerate(jobs):
        opts = dict(options) if options else {}
        check_mode(opts.get("truncate_mode", MODE_ADAPTIVE))
        if template.n == 0 or not opts.get("factor_common", True):
            out[i] = pathapprox_batch(template, **opts)
        else:
            opts.pop("factor_common", None)
            fused_indices.append(i)
            fused_jobs.append((template, opts))
    if fused_jobs:
        from repro.makespan.foldplan import pathapprox_plan_fused

        for i, values in zip(
            fused_indices, pathapprox_plan_fused(fused_jobs)
        ):
            out[i] = values
    return out
