"""Vectorised :class:`DiscreteDistribution` kernels with a leading cell axis.

A sweep group prices the same DAG structure under many parameter cells,
so the distribution algebra gets a batched counterpart:
:class:`BatchDistribution` holds ``n_cells`` independent distributions
as ``(n_cells, n_atoms)`` arrays and implements convolution, maximum and
moment-preserving truncation over the whole stack at once — one NumPy
pass instead of ``n_cells`` Python-level kernel calls.

**The bit-identity contract.**  Every batched operation produces, for
each row, *exactly* the atoms the scalar
:class:`~repro.makespan.distribution.DiscreteDistribution` operation
would produce for that cell — same values, same probabilities, bit for
bit.  This is what lets the engine's batched evaluation path guarantee
records identical to the per-cell path.  The contract is kept two ways:

* on the vectorised fast path, every per-row reduction (stable argsort,
  cumulative sums, row sums of equal length, scatter-adds in row-major
  order) performs the same floating-point operations in the same order
  as its scalar counterpart;
* wherever a result is *data-dependently ragged* — equal support points
  merging in some rows but not others, truncation bins emptying, a max
  grid collapsing — the affected operation falls back to the scalar
  kernel row by row, which satisfies the contract trivially.

Because raggedness is inherent (atom counts are data), batched
operations return either a :class:`BatchDistribution` (uniform widths,
vectorised path) or a plain ``list`` of scalar distributions (ragged);
:func:`rows_of` normalises both forms for callers.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from repro.errors import EvaluationError
from repro.makespan.distribution import DEFAULT_MAX_ATOMS, DiscreteDistribution

__all__ = ["BatchDistribution", "BatchRows", "rows_of", "two_state_rows"]

#: Result type of batched operations: uniform stack or ragged rows.
BatchRows = Union["BatchDistribution", List[DiscreteDistribution]]


def rows_of(batch: BatchRows) -> List[DiscreteDistribution]:
    """Per-cell distributions of either result form, in cell order."""
    if isinstance(batch, BatchDistribution):
        return batch.rows()
    return list(batch)


def _restack(rows: Sequence[DiscreteDistribution]) -> BatchRows:
    """Stack rows back into a batch when their widths agree."""
    width = rows[0].n_atoms
    if all(r.n_atoms == width for r in rows):
        return BatchDistribution(
            np.array([r.values for r in rows]),
            np.array([r.probs for r in rows]),
            _canonical=True,
        )
    return list(rows)


def two_state_rows(
    base: np.ndarray, long: np.ndarray, p: np.ndarray
) -> List[DiscreteDistribution]:
    """Per-cell 2-state laws for one node, built in one vectorised pass.

    Equivalent to ``[DiscreteDistribution.two_state(base[c], long[c],
    p[c]) for c in cells]`` atom for atom.  Degenerate cells (``p <= 0``,
    ``p >= 1`` or ``long == base`` — single-atom laws) are built through
    the scalar constructor; the generic 2-atom cells share one batched
    construction.
    """
    base = np.asarray(base, dtype=float)
    long = np.asarray(long, dtype=float)
    p = np.asarray(p, dtype=float)
    degenerate = (p <= 0.0) | (p >= 1.0) | (long == base)
    rows: List[DiscreteDistribution] = [None] * base.size  # type: ignore[list-item]
    if not degenerate.all():
        ok = ~degenerate
        batch = BatchDistribution.two_state(base[ok], long[ok], p[ok])
        for slot, row in zip(np.flatnonzero(ok), batch.rows()):
            rows[slot] = row
    for c in np.flatnonzero(degenerate):
        rows[c] = DiscreteDistribution.two_state(
            float(base[c]), float(long[c]), float(p[c])
        )
    return rows


class BatchDistribution:
    """``n_cells`` independent finite distributions, one per row.

    Rows are canonical (sorted support, equal values merged,
    probabilities normalised) — exactly the invariant of the scalar
    class, enforced per row.  Instances are immutable; all operators
    return new objects (or ragged row lists, see the module docstring).
    """

    __slots__ = ("values", "probs")

    def __init__(
        self, values: np.ndarray, probs: np.ndarray, _canonical: bool = False
    ) -> None:
        values = np.asarray(values, dtype=float)
        probs = np.asarray(probs, dtype=float)
        if values.ndim != 2 or values.shape != probs.shape or values.size == 0:
            raise EvaluationError(
                f"values/probs must be equal-shape (n_cells, n_atoms) "
                f"arrays, got {values.shape} and {probs.shape}"
            )
        if _canonical:
            self.values = values
            self.probs = probs
            return
        # Canonicalise per row through the scalar constructor (the
        # reference semantics); uniform widths are re-stacked.
        rows = [
            DiscreteDistribution(values[i], probs[i])
            for i in range(values.shape[0])
        ]
        width = rows[0].n_atoms
        if any(r.n_atoms != width for r in rows):
            raise EvaluationError(
                "rows canonicalise to different atom counts; build ragged "
                "batches with BatchDistribution.stack or keep them as lists"
            )
        self.values = np.array([r.values for r in rows])
        self.probs = np.array([r.probs for r in rows])

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def stack(cls, dists: Sequence[DiscreteDistribution]) -> "BatchDistribution":
        """Stack scalar distributions of equal atom count into a batch."""
        dists = list(dists)
        if not dists:
            raise EvaluationError("stack needs at least one distribution")
        width = dists[0].n_atoms
        if any(d.n_atoms != width for d in dists):
            raise EvaluationError(
                f"cannot stack distributions with differing atom counts "
                f"{sorted({d.n_atoms for d in dists})}"
            )
        return cls(
            np.array([d.values for d in dists]),
            np.array([d.probs for d in dists]),
            _canonical=True,
        )

    @classmethod
    def point(cls, value: float, n_cells: int) -> "BatchDistribution":
        """``n_cells`` copies of the Dirac distribution at ``value``."""
        if n_cells < 1:
            raise EvaluationError(f"n_cells must be >= 1, got {n_cells}")
        return cls(
            np.full((n_cells, 1), float(value)),
            np.ones((n_cells, 1)),
            _canonical=True,
        )

    @classmethod
    def two_state(
        cls, base: np.ndarray, long: np.ndarray, p: np.ndarray
    ) -> "BatchDistribution":
        """Per-cell 2-state laws (Equation (1)); generic cells only.

        Every cell must satisfy ``0 < p < 1`` and ``long > base`` (the
        uniform 2-atom case); route mixed batches through
        :func:`two_state_rows`, which handles degenerate cells.
        """
        base = np.asarray(base, dtype=float)
        long = np.asarray(long, dtype=float)
        p = np.asarray(p, dtype=float)
        if np.any((p <= 0.0) | (p >= 1.0) | (long <= base)):
            raise EvaluationError(
                "batched two_state requires 0 < p < 1 and long > base in "
                "every cell; use two_state_rows for degenerate cells"
            )
        values = np.stack([base, long], axis=1)
        probs = np.stack([1.0 - p, p], axis=1)
        # Same normalisation as the scalar path: a length-2 sum is the
        # sequential (1-p) + p in both layouts.
        totals = probs.sum(axis=1)
        return cls(values, probs / totals[:, None], _canonical=True)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def n_cells(self) -> int:
        """Number of stacked distributions."""
        return int(self.values.shape[0])

    @property
    def n_atoms(self) -> int:
        """Shared number of support points per row."""
        return int(self.values.shape[1])

    def row(self, i: int) -> DiscreteDistribution:
        """Cell ``i`` as a scalar distribution (shares the row arrays)."""
        return DiscreteDistribution._wrap(self.values[i], self.probs[i])

    def rows(self) -> List[DiscreteDistribution]:
        """All cells as scalar distributions, in order."""
        return [self.row(i) for i in range(self.n_cells)]

    def mean(self) -> np.ndarray:
        """Per-cell expected values.

        Computed row by row with the scalar ``values @ probs`` dot so
        each entry is bit-identical to ``self.row(i).mean()`` (a fused
        batched reduction could associate the sum differently).
        """
        return np.array(
            [float(self.values[i] @ self.probs[i]) for i in range(self.n_cells)]
        )

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------

    def shift(self, offset) -> "BatchDistribution":
        """Per-cell distribution of ``X + offset`` (scalar or per-cell)."""
        offset = np.asarray(offset, dtype=float)
        if offset.ndim == 1:
            offset = offset[:, None]
        return BatchDistribution(
            self.values + offset, self.probs, _canonical=True
        )

    def convolve(
        self, other: "BatchDistribution", max_atoms: int = DEFAULT_MAX_ATOMS
    ) -> BatchRows:
        """Per-cell ``X + Y`` for independent stacks, vectorised.

        The outer sums/products and the per-row stable sort run over the
        whole batch at once; rows whose support develops equal values
        (a data-dependent merge) finalise through the scalar kernel.
        """
        self._check_cells(other)
        c = self.n_cells
        values = (self.values[:, :, None] + other.values[:, None, :]).reshape(c, -1)
        probs = (self.probs[:, :, None] * other.probs[:, None, :]).reshape(c, -1)
        return _canonical_rows(values, probs, max_atoms)

    def max_with(
        self, other: "BatchDistribution", max_atoms: int = DEFAULT_MAX_ATOMS
    ) -> BatchRows:
        """Per-cell ``max(X, Y)`` for independent stacks.

        The CDF-product runs vectorised when every row's support union
        has the same width (the common case for smoothly varying
        parameter cells); rows are finalised scalar otherwise.  The
        vectorised CDF lookup materialises an
        ``(n_cells, n_atoms, grid)`` comparison tensor — fine for the
        kernel sizes truncation enforces, not for unbounded supports.
        """
        self._check_cells(other)
        c, a1 = self.values.shape
        a2 = other.values.shape[1]
        both = np.sort(np.concatenate([self.values, other.values], axis=1), axis=1)
        first = np.ones((c, a1 + a2), dtype=bool)
        first[:, 1:] = np.diff(both, axis=1) != 0
        counts = first.sum(axis=1)
        if not (counts == counts[0]).all():
            return _restack(
                [
                    self.row(i).max_with(other.row(i), max_atoms)
                    for i in range(c)
                ]
            )
        # Uniform union grid: extract per-row unique values.
        grid = both[first].reshape(c, int(counts[0]))
        # searchsorted(values, grid, "right") per row as comparison counts.
        idx1 = (self.values[:, :, None] <= grid[:, None, :]).sum(axis=1)
        idx2 = (other.values[:, :, None] <= grid[:, None, :]).sum(axis=1)
        f1 = np.take_along_axis(
            np.cumsum(self.probs, axis=1), np.maximum(idx1 - 1, 0), axis=1
        )
        f1 = np.where(idx1 == 0, 0.0, f1)
        f2 = np.take_along_axis(
            np.cumsum(other.probs, axis=1), np.maximum(idx2 - 1, 0), axis=1
        )
        f2 = np.where(idx2 == 0, 0.0, f2)
        f = f1 * f2
        probs = np.diff(np.concatenate([np.zeros((c, 1)), f], axis=1), axis=1)
        keep = probs > 0
        kept = keep.sum(axis=1)
        if (kept == 0).any() or not (kept == kept[0]).all():
            # Degenerate or ragged keep patterns: scalar per row.
            return _restack(
                [
                    self.row(i).max_with(other.row(i), max_atoms)
                    for i in range(c)
                ]
            )
        values = grid[keep].reshape(c, int(kept[0]))
        probs = probs[keep].reshape(c, int(kept[0]))
        return _canonical_rows(values, probs, max_atoms, _sorted=True)

    def truncate(self, max_atoms: int = DEFAULT_MAX_ATOMS) -> BatchRows:
        """Per-cell moment-preserving truncation to ``max_atoms`` points.

        Vectorises the cumulative-probability binning (bins, scatter-add
        masses and weighted sums) across rows; scalar semantics per row,
        including the equal-probability-bin conditional means.
        """
        if max_atoms < 1:
            raise EvaluationError(f"max_atoms must be >= 1, got {max_atoms}")
        if self.n_atoms <= max_atoms:
            return self
        cum = np.cumsum(self.probs, axis=1)
        bins = np.minimum(
            (cum - self.probs * 0.5) * max_atoms, max_atoms - 1e-9
        ).astype(int)
        bins = np.maximum.accumulate(bins, axis=1)
        c = self.n_cells
        cell_idx = np.arange(c)[:, None]
        masses = np.zeros((c, max_atoms))
        np.add.at(masses, (cell_idx, bins), self.probs)
        weighted = np.zeros((c, max_atoms))
        np.add.at(weighted, (cell_idx, bins), self.probs * self.values)
        # The scalar kernel sizes its bin arrays as bins[-1] + 1 and
        # drops empty bins; the keep mask does both at once here.
        rows = []
        for i in range(c):
            keep = masses[i] > 0
            rows.append(
                DiscreteDistribution(weighted[i][keep] / masses[i][keep], masses[i][keep])
            )
        return _restack(rows)

    def _check_cells(self, other: "BatchDistribution") -> None:
        if self.n_cells != other.n_cells:
            raise EvaluationError(
                f"batch cell counts disagree: {self.n_cells} vs {other.n_cells}"
            )

    def __repr__(self) -> str:
        return (
            f"BatchDistribution(cells={self.n_cells}, atoms={self.n_atoms})"
        )


def _canonical_rows(
    values: np.ndarray,
    probs: np.ndarray,
    max_atoms: int,
    _sorted: bool = False,
) -> BatchRows:
    """Sort + merge + normalise + truncate rows, vectorised where uniform.

    Mirrors ``DiscreteDistribution.__init__`` followed by ``truncate``
    for every row.  Rows needing a data-dependent merge (equal support
    points) or failing validation finalise through the scalar
    constructor so errors and atom layouts match it exactly.
    """
    c = values.shape[0]
    if not _sorted:
        order = np.argsort(values, axis=1, kind="stable")
        values = np.take_along_axis(values, order, axis=1)
        probs = np.take_along_axis(probs, order, axis=1)
    needs_merge = (
        values.shape[1] > 1 and bool((np.diff(values, axis=1) == 0).any())
    )
    totals = probs.sum(axis=1)
    healthy = bool(np.all(np.isfinite(totals) & (totals > 0)))
    if needs_merge or not healthy:
        return _restack(
            [
                DiscreteDistribution(values[i], probs[i], _sorted=True).truncate(
                    max_atoms
                )
                for i in range(c)
            ]
        )
    batch = BatchDistribution(
        values, probs / totals[:, None], _canonical=True
    )
    return batch.truncate(max_atoms)
