"""Vectorised :class:`DiscreteDistribution` kernels with a leading cell axis.

A sweep group prices the same DAG structure under many parameter cells,
so the distribution algebra gets a batched counterpart:
:class:`BatchDistribution` holds ``n_cells`` independent distributions
as ``(n_cells, n_atoms)`` arrays and implements convolution, maximum and
moment-preserving truncation over the whole stack at once — one NumPy
pass instead of ``n_cells`` Python-level kernel calls.

**The bit-identity contract.**  Every batched operation produces, for
each row, *exactly* the atoms the scalar
:class:`~repro.makespan.distribution.DiscreteDistribution` operation
would produce for that cell — same values, same probabilities, bit for
bit.  This is what lets the engine's batched evaluation path guarantee
records identical to the per-cell path.  The contract is kept two ways:

* on the vectorised fast path, every per-row reduction (stable argsort,
  cumulative sums, row sums of equal length, scatter-adds in row-major
  order) performs the same floating-point operations in the same order
  as its scalar counterpart;
* wherever a result is *data-dependently ragged* — equal support points
  merging in some rows but not others, truncation bins emptying, a max
  grid collapsing — the **affected rows** (and only those) fall back to
  the scalar kernel, which satisfies the contract trivially.  Rows that
  agree on an intermediate width are re-grouped and finished vectorised.

Because raggedness is inherent in the default (``"adaptive"``) truncate
mode, batched operations return either a :class:`BatchDistribution`
(uniform widths, vectorised path) or a plain ``list`` of scalar
distributions (ragged); :func:`rows_of` normalises both forms for
callers.  The rectangular mode (``mode="rect"``) sidesteps raggedness
altogether: atom counts become shape-stable functions of the input
widths (no equal-value merges, no dropped zero-mass atoms, fixed-width
binning), so rectangular results are always a
:class:`BatchDistribution` and never touch the scalar kernel.

Kernel calls report rows processed / rows finalised scalar to
:mod:`repro.makespan.profile` when a collector is active — the
scalar-fallback ratio that motivates the rectangular mode.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import EvaluationError
from repro.makespan import profile as _profile
from repro.makespan.distribution import (
    DEFAULT_MAX_ATOMS,
    MODE_ADAPTIVE,
    MODE_RECT,
    DiscreteDistribution,
    _rect_bin_rows,
    check_mode,
)

__all__ = ["BatchDistribution", "BatchRows", "rows_of", "two_state_rows"]

#: Result type of batched operations: uniform stack or ragged rows.
BatchRows = Union["BatchDistribution", List[DiscreteDistribution]]


def rows_of(batch: BatchRows) -> List[DiscreteDistribution]:
    """Per-cell distributions of either result form, in cell order."""
    if isinstance(batch, BatchDistribution):
        return batch.rows()
    return list(batch)


def _restack(rows: Sequence[DiscreteDistribution]) -> BatchRows:
    """Stack rows back into a batch when their widths agree."""
    width = rows[0].n_atoms
    if all(r.n_atoms == width for r in rows):
        return BatchDistribution(
            np.array([r.values for r in rows]),
            np.array([r.probs for r in rows]),
            _canonical=True,
        )
    return list(rows)


def two_state_rows(
    base: np.ndarray, long: np.ndarray, p: np.ndarray
) -> List[DiscreteDistribution]:
    """Per-cell 2-state laws for one node, built in one vectorised pass.

    Equivalent to ``[DiscreteDistribution.two_state(base[c], long[c],
    p[c]) for c in cells]`` atom for atom.  Degenerate cells (``p <= 0``,
    ``p >= 1`` or ``long == base`` — single-atom laws) are built through
    the scalar constructor; the generic 2-atom cells share one batched
    construction.
    """
    base = np.asarray(base, dtype=float)
    long = np.asarray(long, dtype=float)
    p = np.asarray(p, dtype=float)
    degenerate = (p <= 0.0) | (p >= 1.0) | (long == base)
    rows: List[DiscreteDistribution] = [None] * base.size  # type: ignore[list-item]
    if not degenerate.all():
        ok = ~degenerate
        batch = BatchDistribution.two_state(base[ok], long[ok], p[ok])
        for slot, row in zip(np.flatnonzero(ok), batch.rows()):
            rows[slot] = row
    for c in np.flatnonzero(degenerate):
        rows[c] = DiscreteDistribution.two_state(
            float(base[c]), float(long[c]), float(p[c])
        )
    return rows


class BatchDistribution:
    """``n_cells`` independent finite distributions, one per row.

    Rows are canonical (sorted support, equal values merged,
    probabilities normalised) — exactly the invariant of the scalar
    class, enforced per row.  Rows produced by rectangular-mode kernels
    relax "merged" to "sorted": they may carry zero-mass duplicate
    atoms.  Instances are immutable; all operators return new objects
    (or ragged row lists, see the module docstring).
    """

    __slots__ = ("values", "probs")

    def __init__(
        self, values: np.ndarray, probs: np.ndarray, _canonical: bool = False
    ) -> None:
        values = np.asarray(values, dtype=float)
        probs = np.asarray(probs, dtype=float)
        if values.ndim != 2 or values.shape != probs.shape or values.size == 0:
            raise EvaluationError(
                f"values/probs must be equal-shape (n_cells, n_atoms) "
                f"arrays, got {values.shape} and {probs.shape}"
            )
        if _canonical:
            self.values = values
            self.probs = probs
            return
        # Canonicalise per row through the scalar constructor (the
        # reference semantics); uniform widths are re-stacked.
        rows = [
            DiscreteDistribution(values[i], probs[i])
            for i in range(values.shape[0])
        ]
        width = rows[0].n_atoms
        if any(r.n_atoms != width for r in rows):
            raise EvaluationError(
                "rows canonicalise to different atom counts; build ragged "
                "batches with BatchDistribution.stack or keep them as lists"
            )
        self.values = np.array([r.values for r in rows])
        self.probs = np.array([r.probs for r in rows])

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def stack(cls, dists: Sequence[DiscreteDistribution]) -> "BatchDistribution":
        """Stack scalar distributions of equal atom count into a batch."""
        dists = list(dists)
        if not dists:
            raise EvaluationError("stack needs at least one distribution")
        width = dists[0].n_atoms
        if any(d.n_atoms != width for d in dists):
            raise EvaluationError(
                f"cannot stack distributions with differing atom counts "
                f"{sorted({d.n_atoms for d in dists})}"
            )
        return cls(
            np.array([d.values for d in dists]),
            np.array([d.probs for d in dists]),
            _canonical=True,
        )

    @classmethod
    def point(cls, value: float, n_cells: int) -> "BatchDistribution":
        """``n_cells`` copies of the Dirac distribution at ``value``."""
        if n_cells < 1:
            raise EvaluationError(f"n_cells must be >= 1, got {n_cells}")
        return cls(
            np.full((n_cells, 1), float(value)),
            np.ones((n_cells, 1)),
            _canonical=True,
        )

    @classmethod
    def two_state(
        cls, base: np.ndarray, long: np.ndarray, p: np.ndarray
    ) -> "BatchDistribution":
        """Per-cell 2-state laws (Equation (1)); generic cells only.

        Every cell must satisfy ``0 < p < 1`` and ``long > base`` (the
        uniform 2-atom case); route mixed batches through
        :func:`two_state_rows`, which handles degenerate cells.
        """
        base = np.asarray(base, dtype=float)
        long = np.asarray(long, dtype=float)
        p = np.asarray(p, dtype=float)
        if np.any((p <= 0.0) | (p >= 1.0) | (long <= base)):
            raise EvaluationError(
                "batched two_state requires 0 < p < 1 and long > base in "
                "every cell; use two_state_rows for degenerate cells"
            )
        values = np.stack([base, long], axis=1)
        probs = np.stack([1.0 - p, p], axis=1)
        # Same normalisation as the scalar path: a length-2 sum is the
        # sequential (1-p) + p in both layouts.
        totals = probs.sum(axis=1)
        return cls(values, probs / totals[:, None], _canonical=True)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def n_cells(self) -> int:
        """Number of stacked distributions."""
        return int(self.values.shape[0])

    @property
    def n_atoms(self) -> int:
        """Shared number of support points per row."""
        return int(self.values.shape[1])

    def row(self, i: int) -> DiscreteDistribution:
        """Cell ``i`` as a scalar distribution (shares the row arrays)."""
        return DiscreteDistribution._wrap(self.values[i], self.probs[i])

    def rows(self) -> List[DiscreteDistribution]:
        """All cells as scalar distributions, in order."""
        return [self.row(i) for i in range(self.n_cells)]

    def mean(self) -> np.ndarray:
        """Per-cell expected values.

        Computed row by row with the scalar ``values @ probs`` dot so
        each entry is bit-identical to ``self.row(i).mean()`` (a fused
        batched reduction could associate the sum differently).
        """
        return np.array(
            [float(self.values[i] @ self.probs[i]) for i in range(self.n_cells)]
        )

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------

    def shift(self, offset) -> "BatchDistribution":
        """Per-cell distribution of ``X + offset`` (scalar or per-cell)."""
        offset = np.asarray(offset, dtype=float)
        if offset.ndim == 1:
            offset = offset[:, None]
        return BatchDistribution(
            self.values + offset, self.probs, _canonical=True
        )

    def convolve(
        self,
        other: "BatchDistribution",
        max_atoms: int = DEFAULT_MAX_ATOMS,
        mode: str = MODE_ADAPTIVE,
    ) -> BatchRows:
        """Per-cell ``X + Y`` for independent stacks, vectorised.

        The outer sums/products and the per-row stable sort run over the
        whole batch at once; rows whose support develops equal values
        (a data-dependent merge) finalise through the scalar kernel —
        adaptive mode only, rectangular mode never merges.
        """
        self._check_cells(other)
        prof = _profile.ACTIVE
        if prof is None:
            return self._convolve(other, max_atoms, mode)[0]
        t0 = time.perf_counter()
        out, n_scalar = self._convolve(other, max_atoms, mode)
        prof.record(
            "batch_convolve", self.n_cells, n_scalar, time.perf_counter() - t0
        )
        return out

    def _convolve(
        self, other: "BatchDistribution", max_atoms: int, mode: str
    ) -> Tuple[BatchRows, int]:
        c = self.n_cells
        values = (self.values[:, :, None] + other.values[:, None, :]).reshape(c, -1)
        probs = (self.probs[:, :, None] * other.probs[:, None, :]).reshape(c, -1)
        if mode == MODE_ADAPTIVE:
            return _canonical_rows(values, probs, max_atoms)
        check_mode(mode)
        order = np.argsort(values, axis=1, kind="stable")
        values = np.take_along_axis(values, order, axis=1)
        probs = np.take_along_axis(probs, order, axis=1)
        return self._rect_finalise(other, values, probs, max_atoms, "_convolve")

    def max_with(
        self,
        other: "BatchDistribution",
        max_atoms: int = DEFAULT_MAX_ATOMS,
        mode: str = MODE_ADAPTIVE,
    ) -> BatchRows:
        """Per-cell ``max(X, Y)`` for independent stacks.

        Adaptive mode runs a rank-based CDF-product over the sorted
        support union — ``O(n log n)`` per row, no comparison tensors —
        with per-row scalar fallback for rows whose union has duplicate
        values and per-width regrouping of rows whose positive-mass atom
        counts disagree.  Rectangular mode keeps the concatenated grid
        (constant width), so it never falls back.
        """
        self._check_cells(other)
        prof = _profile.ACTIVE
        if prof is None:
            return self._max_with(other, max_atoms, mode)[0]
        t0 = time.perf_counter()
        out, n_scalar = self._max_with(other, max_atoms, mode)
        prof.record(
            "batch_max", self.n_cells, n_scalar, time.perf_counter() - t0
        )
        return out

    def _max_with(
        self, other: "BatchDistribution", max_atoms: int, mode: str
    ) -> Tuple[BatchRows, int]:
        if mode == MODE_ADAPTIVE:
            return self._max_adaptive(other, max_atoms)
        check_mode(mode)
        return self._max_rect(other, max_atoms)

    def _max_adaptive(
        self, other: "BatchDistribution", max_atoms: int
    ) -> Tuple[BatchRows, int]:
        c, a1 = self.values.shape
        concat = np.concatenate([self.values, other.values], axis=1)
        order = np.argsort(concat, axis=1, kind="stable")
        both = np.take_along_axis(concat, order, axis=1)
        w = both.shape[1]
        # The scalar kernel works on the *deduplicated* union grid
        # (np.union1d) — equivalently, on the last position of each
        # equal-value run of the sorted concatenation.  The rank counts
        # (cumsum of operand origin) equal searchsorted(..., "right")
        # exactly at those run ends — the stable sort puts every copy of
        # a value at or before its run end — so reading each position's
        # run end reproduces the scalar CDF lookups under duplicates.
        is_end = np.empty((c, w), dtype=bool)
        is_end[:, -1] = True
        is_end[:, :-1] = both[:, 1:] != both[:, :-1]
        all_unique = bool(is_end.all())
        origin_a = order < a1
        idx1 = np.cumsum(origin_a, axis=1)
        idx2 = np.cumsum(~origin_a, axis=1)
        if not all_unique:
            pos = np.arange(w)
            marked = np.where(is_end, pos[None, :], w)
            end_idx = np.minimum.accumulate(marked[:, ::-1], axis=1)[:, ::-1]
            idx1 = np.take_along_axis(idx1, end_idx, axis=1)
            idx2 = np.take_along_axis(idx2, end_idx, axis=1)
        f1 = np.take_along_axis(
            np.cumsum(self.probs, axis=1), np.maximum(idx1 - 1, 0), axis=1
        )
        f1 = np.where(idx1 == 0, 0.0, f1)
        f2 = np.take_along_axis(
            np.cumsum(other.probs, axis=1), np.maximum(idx2 - 1, 0), axis=1
        )
        f2 = np.where(idx2 == 0, 0.0, f2)
        f = f1 * f2
        rows: List[Optional[DiscreteDistribution]] = [None] * c
        n_scalar = 0
        # First grouping: rows with equal unique-grid size compact their
        # run-end values/CDFs together, mirroring the scalar grid.  With
        # no duplicates anywhere (the common case) every position is its
        # own run and the whole batch is one group, no compaction copy.
        if all_unique:
            u_groups: Dict[int, List[int]] = {w: list(range(c))}
        else:
            u_counts = is_end.sum(axis=1)
            u_groups = {}
            for i in range(c):
                u_groups.setdefault(int(u_counts[i]), []).append(i)
        # Second grouping: within each grid size, rows whose kept-atom
        # counts agree (zero-mass grid points drop data-dependently)
        # finish vectorised; degenerate rows (nothing kept) go scalar.
        width_groups: Dict[int, List[Tuple[List[int], np.ndarray, np.ndarray]]] = {}
        for u, members in u_groups.items():
            if all_unique:
                grid, fu = both, f
            else:
                idx = np.asarray(members)
                mask = is_end[idx]
                grid = both[idx][mask].reshape(idx.size, u)
                fu = f[idx][mask].reshape(idx.size, u)
            probs = np.empty_like(fu)
            probs[:, 0] = fu[:, 0]
            probs[:, 1:] = fu[:, 1:] - fu[:, :-1]
            keep = probs > 0
            kept = keep.sum(axis=1)
            kept_groups: Dict[int, List[int]] = {}
            for j, i in enumerate(members):
                kj = int(kept[j])
                if kj == 0:
                    n_scalar += 1
                    rows[i] = self.row(i)._max_with(
                        other.row(i), max_atoms, MODE_ADAPTIVE
                    )
                else:
                    kept_groups.setdefault(kj, []).append(j)
            for kw, js in kept_groups.items():
                jdx = np.asarray(js)
                m2 = keep[jdx]
                width_groups.setdefault(kw, []).append(
                    (
                        [members[j] for j in js],
                        grid[jdx][m2].reshape(jdx.size, kw),
                        probs[jdx][m2].reshape(jdx.size, kw),
                    )
                )
        for width, chunks in width_groups.items():
            slots = [s for chunk in chunks for s in chunk[0]]
            if len(chunks) == 1:
                sub_values, sub_probs = chunks[0][1], chunks[0][2]
            else:
                sub_values = np.concatenate([chunk[1] for chunk in chunks])
                sub_probs = np.concatenate([chunk[2] for chunk in chunks])
            sub, ns = _canonical_rows(
                sub_values, sub_probs, max_atoms, _sorted=True
            )
            n_scalar += ns
            # Whole batch in one chunk: slots are 0..c-1 in order (both
            # groupings preserve ascending row order within a chunk).
            if (
                len(slots) == c
                and len(chunks) == 1
                and isinstance(sub, BatchDistribution)
            ):
                return sub, n_scalar
            for slot, row in zip(slots, rows_of(sub)):
                rows[slot] = row
        return _restack(rows), n_scalar  # type: ignore[arg-type]

    def _max_rect(
        self, other: "BatchDistribution", max_atoms: int
    ) -> Tuple[BatchRows, int]:
        c, a1 = self.values.shape
        concat = np.concatenate([self.values, other.values], axis=1)
        order = np.argsort(concat, axis=1, kind="stable")
        both = np.take_along_axis(concat, order, axis=1)
        w = both.shape[1]
        # searchsorted(..., "right") without the per-row loop: the rank
        # counts (cumsum of operand origin) are exact at the *last*
        # position of each equal-value run — the stable sort puts all
        # a-copies of a value before its b-copies, so the run end has
        # every copy ≤ it — and searchsorted depends only on the value,
        # so every position reads its run end's count.
        is_end = np.empty((c, w), dtype=bool)
        is_end[:, -1] = True
        is_end[:, :-1] = both[:, 1:] != both[:, :-1]
        origin_a = order < a1
        idx1 = np.cumsum(origin_a, axis=1)
        idx2 = np.cumsum(~origin_a, axis=1)
        if not is_end.all():
            pos = np.arange(w)
            marked = np.where(is_end, pos[None, :], w)
            end_idx = np.minimum.accumulate(marked[:, ::-1], axis=1)[:, ::-1]
            idx1 = np.take_along_axis(idx1, end_idx, axis=1)
            idx2 = np.take_along_axis(idx2, end_idx, axis=1)
        f1 = np.take_along_axis(
            np.cumsum(self.probs, axis=1), np.maximum(idx1 - 1, 0), axis=1
        )
        f1 = np.where(idx1 == 0, 0.0, f1)
        f2 = np.take_along_axis(
            np.cumsum(other.probs, axis=1), np.maximum(idx2 - 1, 0), axis=1
        )
        f2 = np.where(idx2 == 0, 0.0, f2)
        f = f1 * f2
        probs = np.empty_like(f)
        probs[:, 0] = f[:, 0]
        probs[:, 1:] = f[:, 1:] - f[:, :-1]
        return self._rect_finalise(other, both, probs, max_atoms, "_max_with")

    def _rect_finalise(
        self,
        other: "BatchDistribution",
        values: np.ndarray,
        probs: np.ndarray,
        max_atoms: int,
        op: str,
    ) -> Tuple[BatchRows, int]:
        """Normalise sorted rows and apply rectangular binning.

        Shape-stable by construction: every row keeps the same width, so
        the result is always a :class:`BatchDistribution`.  Rows with a
        non-positive or non-finite mass total re-raise through the
        scalar kernel (same error, same message).
        """
        totals = probs.sum(axis=1)
        bad = ~(np.isfinite(totals) & (totals > 0))
        if bad.any():
            i = int(np.flatnonzero(bad)[0])
            getattr(self.row(i), op)(other.row(i), max_atoms, MODE_RECT)
            raise EvaluationError(  # pragma: no cover — scalar raises first
                f"probabilities sum to {totals[i]}"
            )
        probs = probs / totals[:, None]
        if values.shape[1] > max_atoms:
            values, probs = _rect_bin_rows(values, probs, max_atoms)
        return BatchDistribution(values, probs, _canonical=True), 0

    def truncate(
        self, max_atoms: int = DEFAULT_MAX_ATOMS, mode: str = MODE_ADAPTIVE
    ) -> BatchRows:
        """Per-cell moment-preserving truncation to ``max_atoms`` points.

        Adaptive mode vectorises the cumulative-probability binning
        (bins, scatter-add masses and weighted sums) across rows with
        scalar semantics per row, including the equal-probability-bin
        conditional means; rows whose bins empty (ragged keep masks)
        finalise scalar.  Rectangular mode bins by equal value width and
        always returns a :class:`BatchDistribution` with exactly
        ``max_atoms`` columns (zero-mass padding below budget).
        """
        prof = _profile.ACTIVE
        if prof is None:
            return self._truncate(max_atoms, mode)[0]
        t0 = time.perf_counter()
        out, n_scalar = self._truncate(max_atoms, mode)
        prof.record(
            "batch_truncate", self.n_cells, n_scalar, time.perf_counter() - t0
        )
        return out

    def _truncate(
        self, max_atoms: int, mode: str
    ) -> Tuple[BatchRows, int]:
        if max_atoms < 1:
            raise EvaluationError(f"max_atoms must be >= 1, got {max_atoms}")
        if mode != MODE_ADAPTIVE:
            check_mode(mode)
            return self._truncate_rect(max_atoms), 0
        if self.n_atoms <= max_atoms:
            return self, 0
        cum = np.cumsum(self.probs, axis=1)
        bins = np.minimum(
            (cum - self.probs * 0.5) * max_atoms, max_atoms - 1e-9
        ).astype(int)
        bins = np.maximum.accumulate(bins, axis=1)
        c = self.n_cells
        cell_idx = np.arange(c)[:, None]
        masses = np.zeros((c, max_atoms))
        np.add.at(masses, (cell_idx, bins), self.probs)
        weighted = np.zeros((c, max_atoms))
        np.add.at(weighted, (cell_idx, bins), self.probs * self.values)
        keep = masses > 0
        kept = keep.sum(axis=1)
        full = kept == max_atoms
        if full.all():
            values = weighted / masses
            # Same lean rebuild as the scalar kernel: strictly increasing
            # conditional means make the canonicalising re-sort/merge the
            # identity; ties (floating-point corner) go back through the
            # full constructor row by row.
            strict = (np.diff(values, axis=1) > 0).all(axis=1)
            if strict.all():
                totals = masses.sum(axis=1)
                return (
                    BatchDistribution(
                        values, masses / totals[:, None], _canonical=True
                    ),
                    0,
                )
        # Mixed: vectorise the full, strictly-increasing rows; emptied
        # bins (the scalar kernel sizes its arrays as bins[-1] + 1 and
        # drops empty bins) and tied rows rebuild through the scalar
        # constructor.
        rows: List[Optional[DiscreteDistribution]] = [None] * c
        n_scalar = 0
        for i in range(c):
            row_keep = keep[i]
            v = weighted[i][row_keep] / masses[i][row_keep]
            p = masses[i][row_keep]
            if v.size > 1 and bool(np.any(np.diff(v) <= 0)):
                rows[i] = DiscreteDistribution(v, p)
                n_scalar += 1
            elif not full[i]:
                total = float(p.sum())
                rows[i] = DiscreteDistribution._wrap(v, p / total)
                n_scalar += 1
            else:
                total = float(p.sum())
                rows[i] = DiscreteDistribution._wrap(v, p / total)
        return _restack(rows), n_scalar  # type: ignore[arg-type]

    def _truncate_rect(self, max_atoms: int) -> "BatchDistribution":
        n = self.n_atoms
        if n == max_atoms:
            return self
        if n < max_atoms:
            pad = max_atoms - n
            return BatchDistribution(
                np.concatenate(
                    [self.values, np.repeat(self.values[:, -1:], pad, axis=1)],
                    axis=1,
                ),
                np.concatenate(
                    [self.probs, np.zeros((self.n_cells, pad))], axis=1
                ),
                _canonical=True,
            )
        values, probs = _rect_bin_rows(self.values, self.probs, max_atoms)
        return BatchDistribution(values, probs, _canonical=True)

    def _check_cells(self, other: "BatchDistribution") -> None:
        if self.n_cells != other.n_cells:
            raise EvaluationError(
                f"batch cell counts disagree: {self.n_cells} vs {other.n_cells}"
            )

    def __repr__(self) -> str:
        return (
            f"BatchDistribution(cells={self.n_cells}, atoms={self.n_atoms})"
        )


def _canonical_rows(
    values: np.ndarray,
    probs: np.ndarray,
    max_atoms: int,
    _sorted: bool = False,
) -> Tuple[BatchRows, int]:
    """Sort + merge + normalise + truncate rows, vectorised where clean.

    Mirrors ``DiscreteDistribution.__init__`` followed by ``truncate``
    for every row.  Rows needing a data-dependent merge (equal support
    points) or failing validation finalise through the scalar
    constructor — per row, not per batch — so errors and atom layouts
    match it exactly while the clean rows stay on the vectorised path.
    Returns the result plus the number of rows finalised scalar.
    """
    c = values.shape[0]
    if not _sorted:
        order = np.argsort(values, axis=1, kind="stable")
        values = np.take_along_axis(values, order, axis=1)
        probs = np.take_along_axis(probs, order, axis=1)
    if values.shape[1] > 1:
        dirty = (np.diff(values, axis=1) == 0).any(axis=1)
    else:
        dirty = np.zeros(c, dtype=bool)
    totals = probs.sum(axis=1)
    dirty |= ~(np.isfinite(totals) & (totals > 0))
    if not dirty.any():
        batch = BatchDistribution(
            values, probs / totals[:, None], _canonical=True
        )
        return batch._truncate(max_atoms, MODE_ADAPTIVE)
    rows: List[Optional[DiscreteDistribution]] = [None] * c
    n_scalar = int(dirty.sum())
    for i in np.flatnonzero(dirty):
        rows[i] = DiscreteDistribution(values[i], probs[i], _sorted=True)._truncate(
            max_atoms, MODE_ADAPTIVE
        )
    clean = ~dirty
    if clean.any():
        idx = np.flatnonzero(clean)
        sub = BatchDistribution(
            values[idx], probs[idx] / totals[idx][:, None], _canonical=True
        )
        result, ns = sub._truncate(max_atoms, MODE_ADAPTIVE)
        n_scalar += ns
        for slot, row in zip(idx, rows_of(result)):
            rows[slot] = row
    return _restack(rows), n_scalar  # type: ignore[arg-type]
