"""Dodin's series-parallel approximation (the paper's DODIN method, §II-B).

Dodin's classical procedure evaluates a PERT network by exhaustively
applying exact reductions and approximating where the graph is not
series-parallel:

* **series reduction** — a node with a unique predecessor that has no
  other successor is convolved into it (exact);
* **parallel reduction** — two nodes with identical predecessor and
  successor sets are merged by independent maximum (exact);
* **node duplication** — when stuck, a join node is split into one copy
  per predecessor (each copy keeps the full duration law and all
  successors).  Every path is preserved, but shared uncertainty is
  counted once per copy: the classical Dodin bias.

Distributions are exact discrete laws with moment-preserving truncation
(:class:`~repro.makespan.distribution.DiscreteDistribution`), so on graphs
that are already series-parallel the method is exact up to truncation —
pinned down by tests against brute-force enumeration.

Duplication can cascade on dense non-SP graphs, so growth is bounded by a
node budget (default ``8·n + 64``); past it the evaluator finishes with
*forward completion propagation*: completion(v) = independent max of the
predecessors' completion distributions convolved with v's duration — the
distribution-valued analogue of Sculli's fold, which terminates on any
DAG.  The §VI-B accuracy benchmark quantifies the net effect; the paper
reached the same conclusion we reproduce — PATHAPPROX is both faster and
more reliable than DODIN on these graphs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.errors import EvaluationError
from repro.makespan.distribution import DEFAULT_MAX_ATOMS, DiscreteDistribution
from repro.makespan.probdag import ProbDAG

__all__ = ["dodin"]


class _Net:
    """Small mutable DAG of distributions with O(1) neighbourhood edits."""

    def __init__(self) -> None:
        self.dist: Dict[int, DiscreteDistribution] = {}
        self.preds: Dict[int, Set[int]] = {}
        self.succs: Dict[int, Set[int]] = {}
        self._next = 0

    def add(
        self, dist: DiscreteDistribution, preds: Set[int] = frozenset()
    ) -> int:
        v = self._next
        self._next += 1
        self.dist[v] = dist
        self.preds[v] = set(preds)
        self.succs[v] = set()
        for u in preds:
            self.succs[u].add(v)
        return v

    def remove(self, v: int) -> None:
        for u in self.preds[v]:
            self.succs[u].discard(v)
        for w in self.succs[v]:
            self.preds[w].discard(v)
        del self.dist[v], self.preds[v], self.succs[v]

    def __len__(self) -> int:
        return len(self.dist)


def _series_pass(net: _Net, max_atoms: int) -> bool:
    """Fold every ``u -> v`` where v is u's only successor-side option."""
    changed = False
    again = True
    while again:
        again = False
        for v in list(net.dist):
            if v not in net.dist:
                continue
            ps = net.preds[v]
            if len(ps) != 1:
                continue
            (u,) = ps
            if len(net.succs[u]) != 1:
                continue
            # merge v into u
            net.dist[u] = net.dist[u].convolve(net.dist[v], max_atoms)
            for w in list(net.succs[v]):
                net.preds[w].add(u)
                net.succs[u].add(w)
            net.succs[u].discard(v)
            net.remove(v)
            changed = again = True
    return changed


def _parallel_pass(net: _Net, max_atoms: int) -> bool:
    """Merge nodes with identical neighbourhoods by independent max."""
    changed = False
    groups: Dict[tuple, List[int]] = {}
    for v in net.dist:
        key = (
            tuple(sorted(net.preds[v])),
            tuple(sorted(net.succs[v])),
        )
        groups.setdefault(key, []).append(v)
    for key, nodes in groups.items():
        if len(nodes) < 2:
            continue
        keep = nodes[0]
        for other in nodes[1:]:
            net.dist[keep] = net.dist[keep].max_with(net.dist[other], max_atoms)
            net.remove(other)
            changed = True
    return changed


def _topo_order(net: _Net) -> List[int]:
    indeg = {v: len(net.preds[v]) for v in net.dist}
    ready = sorted(v for v, d in indeg.items() if d == 0)
    out: List[int] = []
    i = 0
    while i < len(ready):
        v = ready[i]
        i += 1
        out.append(v)
        for w in sorted(net.succs[v]):
            indeg[w] -= 1
            if indeg[w] == 0:
                ready.append(w)
    if len(out) != len(net.dist):
        raise EvaluationError("internal: Dodin network became cyclic")
    return out


def _duplicate_join(net: _Net, v: int) -> None:
    """Split join ``v`` into one copy per predecessor (Dodin duplication)."""
    preds = sorted(net.preds[v])
    succs = sorted(net.succs[v])
    dist = net.dist[v]
    net.remove(v)
    for u in preds:
        c = net.add(dist, {u})
        for w in succs:
            net.preds[w].add(c)
            net.succs[c].add(w)


def _forward_propagate(net: _Net, max_atoms: int) -> float:
    """Finish the evaluation by forward completion-time propagation.

    Completion(v) = (independent max over predecessors' completions)
    convolved with v's own duration law.  This is the distribution-valued
    analogue of Sculli's fold; it terminates on any DAG and serves as the
    bounded-growth fallback when node duplication would explode.
    """
    completion: Dict[int, DiscreteDistribution] = {}
    out: Optional[DiscreteDistribution] = None
    for v in _topo_order(net):
        ready: Optional[DiscreteDistribution] = None
        for u in sorted(net.preds[v]):
            ready = (
                completion[u]
                if ready is None
                else ready.max_with(completion[u], max_atoms)
            )
        done = (
            net.dist[v]
            if ready is None
            else ready.convolve(net.dist[v], max_atoms)
        )
        completion[v] = done
        if not net.succs[v]:
            out = done if out is None else out.max_with(done, max_atoms)
    if out is None:
        raise EvaluationError("internal: Dodin network has no sink")
    return out.mean()


def dodin(
    dag: ProbDAG,
    max_atoms: int = DEFAULT_MAX_ATOMS,
    node_budget_factor: int = 8,
) -> float:
    """Dodin's estimate of the expected makespan of a 2-state DAG."""
    if dag.n == 0:
        return 0.0
    net = _Net()
    ids: Dict[int, int] = {}
    for i in range(dag.n):
        t = dag.task(i)
        ids[i] = net.add(
            DiscreteDistribution.two_state(t.base, t.long, t.p),
            {ids[q] for q in dag.preds[i]},
        )
    # Virtual sink joins all components so the result is a single node.
    sinks = {v for v in net.dist if not net.succs[v]}
    net.add(DiscreteDistribution.point(0.0), sinks)
    budget = node_budget_factor * dag.n + 64

    while len(net) > 1:
        progressed = _series_pass(net, max_atoms)
        progressed |= _parallel_pass(net, max_atoms)
        if len(net) <= 1:
            break
        if progressed:
            continue
        # Stuck: find the earliest join (in-degree >= 2).
        join: Optional[int] = None
        for v in _topo_order(net):
            if len(net.preds[v]) >= 2:
                join = v
                break
        if join is None:
            # No join left; a source with several successors must exist —
            # the symmetric duplication (per successor) applies.
            for v in _topo_order(net):
                if len(net.succs[v]) >= 2:
                    join = v
                    break
            if join is None:
                raise EvaluationError("internal: irreducible Dodin network")
            # Split fork v per successor.
            succs = sorted(net.succs[join])
            preds = set(net.preds[join])
            dist = net.dist[join]
            net.remove(join)
            for w in succs:
                c = net.add(dist, preds)
                net.preds[w].add(c)
                net.succs[c].add(w)
            continue
        if len(net) + len(net.preds[join]) <= budget:
            _duplicate_join(net, join)
        else:
            return _forward_propagate(net, max_atoms)

    (last,) = net.dist
    return net.dist[last].mean()
