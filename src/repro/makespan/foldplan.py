"""Compiled fold plans: execute-many replay of the pathapprox recursion.

The scalar PATHAPPROX estimator (:mod:`repro.makespan.pathapprox`)
spends its time in two python-level recursions that are determined
entirely by DAG *structure* — the common-task factoring of
``_fold_factored`` and the node walks of ``_path_sum`` — yet re-derives
them for every cell and every adaptive-k budget doubling.  This module
lifts that work into a **compile-once, execute-many** layer:

* :func:`compile_fold_plan` runs the recursion *symbolically* once per
  (path set, variance order) signature and records a flat post-order op
  tape — CONVOLVE and MAX steps over semantic slots — as a
  :class:`FoldPlan`.  Plans are cached on the
  :class:`~repro.makespan.paramdag.ParamDAG` template
  (:meth:`~repro.makespan.paramdag.ParamDAG.plan_cache`), so the cells
  of a sweep group that share a signature share one compilation.

* :func:`execute_plans` replays tapes for many cells at once with a
  **pooled wavefront executor**: each round it gathers every step whose
  operands are ready — across all cells and plans — groups them by
  (op kind, operand widths), and runs each group as a single batched
  :class:`~repro.makespan.batch.BatchDistribution` kernel call.
  Singleton groups go straight to the scalar kernel.  Results land in a
  per-cell value store keyed by the tape's *semantic* slot names, so
  they survive across budget doublings (the 64-path plan skips every
  step the 32-path plan already computed).

* :func:`pathapprox_plan_fused` drives a whole *list* of templates —
  heterogeneous structures, one job per (template, options) pair —
  through the adaptive-k schedule together: each job replicates
  ``_adaptive_estimate``'s per-cell control flow exactly, while every
  round's tape steps from every job land in the same pooled
  :func:`execute_plans` pass (step pooling keys on operand shape, not
  on the template, so cross-template steps stack into one kernel call).
  :func:`pathapprox_plan_batch` is the single-job special case.

**Bit-identity.**  The tape records exactly the operations the scalar
recursion performs, keyed so that equal inputs share one slot: path-sum
chains are memoised by node-tuple *prefix* (the scalar chain prefix
computation is the identical op sequence, so a prefix hit returns the
identical object), fold subtrees by their frozenset-of-path-sets memo
key — the same key :class:`~repro.makespan.pathapprox._CellFold` uses.
Each step's operands are therefore bit-identical to the scalar path's,
and the batched kernels guarantee bit-identical outputs per row (the
batch-parity contract), so the replayed estimates equal the scalar
reference bit for bit — pinned by the evaluator parity tests.

The Clark-fold tape of the NORMAL method (:class:`ClarkPlan`) lives
here too: a flat (node, predecessors) schedule plus the sink fold,
cached on the template so repeated ``normal_batch`` calls skip the
structure scans.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EvaluationError
from repro.makespan import native as _native
from repro.makespan import profile as _profile
from repro.makespan.batch import BatchDistribution, rows_of, two_state_rows
from repro.makespan.distribution import (
    DEFAULT_MAX_ATOMS,
    MODE_ADAPTIVE,
    DiscreteDistribution,
)
from repro.makespan.pathapprox import (
    ADAPTIVE_STALLS,
    INITIAL_PATHS,
    SINGLE_SHOT_N,
    _k_best_paths_cells,
)

__all__ = [
    "FoldPlan",
    "ClarkPlan",
    "compile_fold_plan",
    "execute_plans",
    "pathapprox_plan_batch",
    "pathapprox_plan_fused",
    "clark_plan",
]

#: Adaptive-mode convolve pools route through the scalar kernel at
#: every width: the batched adaptive convolve builds ragged union grids
#: whose bookkeeping loses to the scalar loop across the board — a
#: width sweep (2..96 rows, 64-atom operands) measured it at 0.58x to
#: 0.74x with no crossover, and BENCH_kernel pins the 64-row point
#: below 1x.  Rect-mode convolve (fixed-width bins, no ragged grids)
#: and max/truncate in both modes stay batched — those win.  Routing
#: never changes results — the scalar and batched kernels are
#: bit-identical per row — and each decision is recorded as a
#: ``pool_conv_routed`` profile op.
CONV_SCALAR_ADAPTIVE = True

#: Leaf slot: the Dirac distribution at 0 (every path sum's seed).
_P0: Tuple[str, ...] = ("p0",)

#: Step kinds on the tape.
_CONV = "conv"
_MAX = "max"

#: Slot reference — a leaf (``("p0",)`` / ``("law", node)``) or a step
#: key (``("s", node_prefix)`` / ``("m", path_key)`` / ``("c",
#: path_key)``).  Semantic by construction: equal refs denote equal
#: distributions for a given cell, across plans and budgets.
Ref = Tuple


class FoldPlan:
    """A compiled fold: flat post-order op tape plus dependency edges.

    ``steps[i] = (key, kind, a, b)`` computes slot ``key`` as
    ``a kind b``; operands are earlier steps or leaves, so the tape is
    topologically ordered.  ``deps``/``dependents`` are the intra-tape
    edges the wavefront executor counts down; ``root`` is the slot
    holding the folded maximum.  Plans are immutable and shared across
    cells — all per-cell state lives in the executor.
    """

    __slots__ = ("steps", "index", "deps", "dependents", "root")

    def __init__(self, steps: List[Tuple], root: Ref) -> None:
        self.steps: Tuple[Tuple, ...] = tuple(steps)
        self.index: Dict[Ref, int] = {s[0]: i for i, s in enumerate(steps)}
        deps: List[Tuple[int, ...]] = []
        dependents: List[List[int]] = [[] for _ in steps]
        for i, (_key, _kind, a, b) in enumerate(steps):
            d = []
            for operand in (a, b):
                j = self.index.get(operand)
                if j is not None:
                    d.append(j)
                    dependents[j].append(i)
            deps.append(tuple(d))
        self.deps: Tuple[Tuple[int, ...], ...] = tuple(deps)
        self.dependents: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(d) for d in dependents
        )
        self.root = root

    def __repr__(self) -> str:
        return f"FoldPlan(steps={len(self.steps)}, root={self.root!r})"


def compile_fold_plan(
    paths: Sequence[int], var_rank: Sequence[int]
) -> FoldPlan:
    """Compile the factored fold of ``paths`` into a :class:`FoldPlan`.

    ``paths`` are node-set **bitmasks** (bit ``v`` set iff node ``v`` is
    on the path) — set algebra on python ints is an order of magnitude
    cheaper than on frozensets, and a mask is its own canonical form, so
    masks double as the memo keys.  Runs exactly the recursion of
    ``_fold_factored`` (same intersection stripping, same
    highest-variance split, same memo granularity), but emits tape steps
    instead of computing distributions.  ``var_rank[v]`` must rank nodes
    by the scalar split key ``(variance, id)`` ascending — a strict
    total order, so ``max`` by rank picks the same split node.
    """
    steps: List[Tuple] = []
    index: Dict[Ref, int] = {}
    sum_memo: Dict[Tuple[int, ...], Ref] = {}
    fold_memo: Dict[FrozenSet[int], Ref] = {}

    def emit(key: Ref, kind: str, a: Ref, b: Ref) -> Ref:
        if key not in index:
            index[key] = len(steps)
            steps.append((key, kind, a, b))
        return key

    def nodes_of(mask: int) -> List[int]:
        # Set bits, ascending == the scalar recursion's sorted() order.
        out: List[int] = []
        while mask:
            low = mask & -mask
            out.append(low.bit_length() - 1)
            mask ^= low
        return out

    def sum_ref(nodes: Tuple[int, ...]) -> Ref:
        ref = sum_memo.get(nodes)
        if ref is not None:
            return ref
        # Chain convolutions seeded at point(0), memoised per *prefix*:
        # the scalar chain computes every prefix anyway, so a prefix hit
        # reuses the identical intermediate.
        prev: Ref = _P0
        for j in range(len(nodes)):
            prefix = nodes[: j + 1]
            ref = sum_memo.get(prefix)
            if ref is None:
                ref = emit(("s", prefix), _CONV, prev, ("law", nodes[j]))
                sum_memo[prefix] = ref
            prev = ref
        return prev

    def fold_ref(group: Tuple[int, ...]) -> Ref:
        key = frozenset(group)
        ref = fold_memo.get(key)
        if ref is not None:
            return ref
        common = group[0]
        for q in group[1:]:
            common &= q
        rest = [q & ~common for q in group]
        nonempty = [q for q in rest if q]
        if not nonempty:
            folded: Ref = _P0
        elif len(nonempty) == 1:
            folded = sum_ref(tuple(nodes_of(nonempty[0])))
        else:
            union = 0
            for q in nonempty:
                union |= q
            split = max(nodes_of(union), key=var_rank.__getitem__)
            bit = 1 << split
            with_split = tuple(q for q in nonempty if q & bit)
            without = tuple(q for q in nonempty if not q & bit)
            if not without:
                folded = fold_ref(with_split)
            else:
                folded = emit(
                    ("m", key), _MAX, fold_ref(with_split), fold_ref(without)
                )
        if common:
            folded = emit(
                ("c", key), _CONV, folded, sum_ref(tuple(nodes_of(common)))
            )
        fold_memo[key] = folded
        return folded

    root = fold_ref(tuple(paths))
    return FoldPlan(steps, root)


class _CellRun:
    """Per-cell replay state: leaf laws plus the persistent slot store."""

    __slots__ = (
        "index",
        "values",
        "remaining",
        "node_dist",
        "means",
        "var_rank",
        "var_key",
        "estimate",
        "stalls",
        "last_estimate",
        "last_exhausted",
        "max_atoms",
        "mode",
    )

    def __init__(
        self,
        index: int,
        point0: DiscreteDistribution,
        node_dist: List[DiscreteDistribution],
        means: np.ndarray,
        variances: np.ndarray,
        max_atoms: int = DEFAULT_MAX_ATOMS,
        mode: str = MODE_ADAPTIVE,
    ) -> None:
        self.index = index
        self.max_atoms = max_atoms
        self.mode = mode
        self.values: Dict[Ref, DiscreteDistribution] = {_P0: point0}
        self.remaining: Dict[int, int] = {}
        self.node_dist = node_dist
        self.means = means
        n = len(node_dist)
        order = sorted(range(n), key=lambda v: (variances[v], v))
        rank = [0] * n
        for r, v in enumerate(order):
            rank[v] = r
        self.var_rank = rank
        self.var_key = tuple(order)
        self.estimate = 0.0
        self.stalls = 0
        self.last_estimate = 0.0
        self.last_exhausted = False

    def resolve(self, ref: Ref) -> DiscreteDistribution:
        d = self.values.get(ref)
        if d is None:
            # Only ("law", node) leaves can miss the store.
            d = self.node_dist[ref[1]]
            self.values[ref] = d
        return d


def _schedule(state: _CellRun, plan: FoldPlan) -> List[int]:
    """Seed the dependency countdown; return the initially ready steps.

    Steps whose slot is already in the cell's store (computed by an
    earlier budget's plan) are skipped outright, and satisfy their
    dependents' counts.
    """
    ready: List[int] = []
    remaining = state.remaining
    remaining.clear()
    values = state.values
    steps = plan.steps
    for i, step in enumerate(steps):
        if step[0] in values:
            continue
        nd = 0
        for d in plan.deps[i]:
            if steps[d][0] not in values:
                nd += 1
        if nd:
            remaining[i] = nd
        else:
            ready.append(i)
    return ready


def execute_plans(work: Sequence[Tuple[_CellRun, FoldPlan]]) -> None:
    """Replay each cell's plan, pooling ready steps across the batch.

    Wavefront execution: every round collects the steps whose operands
    are ready — across all (cell, plan) pairs, possibly spanning many
    templates and jobs — and groups them by ``(kind, width_a, width_b,
    max_atoms, mode)`` (the budget and truncation mode ride on each
    :class:`_CellRun`, so heterogeneous jobs pool safely).  Each group
    of two or more runs as one batched kernel call (operand rows
    stacked, results scattered back); singletons — and adaptive-mode
    convolve pools at any width (:data:`CONV_SCALAR_ADAPTIVE`), where
    the batched kernel's ragged-grid bookkeeping measurably loses —
    call the scalar kernel directly.  Execution order never affects
    results (each step's operands are fixed), so pooling preserves
    bit-identity.  (A greedy fullest-bin-first variant was tried and
    measured *slower*: fragmentation is structural — plans differ per
    cell — so deferral barely grows the pools while the bin bookkeeping
    taxes every step.)
    """
    prof = _profile.ACTIVE
    if prof is not None:
        prof.record("pool_exec", len(work))
    ready: List[Tuple[_CellRun, FoldPlan, int]] = []
    for state, plan in work:
        for i in _schedule(state, plan):
            ready.append((state, plan, i))

    while ready:
        groups: Dict[Tuple, List[Tuple]] = {}
        for state, plan, i in ready:
            _key, kind, a, b = plan.steps[i]
            da = state.resolve(a)
            db = state.resolve(b)
            groups.setdefault(
                (kind, da.n_atoms, db.n_atoms, state.max_atoms, state.mode),
                [],
            ).append((state, plan, i, da, db))
        ready = []
        for (kind, _wa, _wb, max_atoms, mode), members in groups.items():
            t0 = time.perf_counter() if prof is not None else 0.0
            routed = (
                CONV_SCALAR_ADAPTIVE
                and kind == _CONV
                and mode == MODE_ADAPTIVE
                and len(members) > 1
            )
            if len(members) == 1 or routed:
                if kind == _CONV:
                    outs = None
                    if routed:
                        # One pooled native call for the whole group (the
                        # group key guarantees uniform operand widths);
                        # members the kernel declines fall back to the
                        # scalar python path individually.
                        pooled = _native.convolve_dists_many(
                            [(m[3], m[4]) for m in members], max_atoms
                        )
                        if pooled is not None:
                            outs = [
                                d
                                if d is not None
                                else m[3]._convolve(m[4], max_atoms, mode)
                                for m, d in zip(members, pooled)
                            ]
                    if outs is None:
                        outs = [
                            m[3]._convolve(m[4], max_atoms, mode)
                            for m in members
                        ]
                else:
                    outs = [
                        m[3]._max_with(m[4], max_atoms, mode) for m in members
                    ]
            else:
                batch_a = BatchDistribution(
                    np.array([m[3].values for m in members]),
                    np.array([m[3].probs for m in members]),
                    _canonical=True,
                )
                batch_b = BatchDistribution(
                    np.array([m[4].values for m in members]),
                    np.array([m[4].probs for m in members]),
                    _canonical=True,
                )
                if kind == _CONV:
                    res = batch_a._convolve(batch_b, max_atoms, mode)[0]
                else:
                    res = batch_a._max_with(batch_b, max_atoms, mode)[0]
                outs = rows_of(res)
            if prof is not None:
                wall = time.perf_counter() - t0
                scalar = len(members) if len(members) == 1 or routed else 0
                prof.record("pool_step", len(members), scalar, wall)
                if routed:
                    prof.record("pool_conv_routed", len(members), 0, wall)
            for (state, plan, i, _da, _db), dist in zip(members, outs):
                state.values[plan.steps[i][0]] = dist
                remaining = state.remaining
                for d in plan.dependents[i]:
                    nd = remaining.get(d)
                    if nd is None:
                        continue
                    if nd == 1:
                        del remaining[d]
                        ready.append((state, plan, d))
                    else:
                        remaining[d] = nd - 1


class _JobRun:
    """One template's adaptive-k schedule inside a fused execution.

    Owns the per-cell :class:`_CellRun` states and replicates the
    per-job control flow of the scalar ``_adaptive_estimate`` —
    explicit-k and wide-DAG single-shot jobs run one round, adaptive
    jobs double their budget with per-cell stall/exhaustion tracking.
    The driver only asks two things: which states need the *current*
    round (``pending`` at ``budget`` paths), and whether another round
    remains after the results land (:meth:`advance`).
    """

    __slots__ = (
        "template",
        "preds",
        "sinks",
        "cache",
        "states",
        "rtol",
        "adaptive",
        "first",
        "budget",
        "cap",
        "pending",
    )

    def __init__(self, template, k: Optional[int], rtol: float,
                 max_atoms: int, mode: str) -> None:
        n = template.n
        self.template = template
        self.preds = template.preds
        self.sinks = template.sinks()
        self.cache = template.plan_cache()
        means = template.means
        variances = template.variances
        point0 = DiscreteDistribution.point(0.0)
        node_rows = [
            two_state_rows(
                template.base[:, j], template.long[:, j], template.p[:, j]
            )
            for j in range(n)
        ]
        self.states = [
            _CellRun(
                c,
                point0,
                [rows[c] for rows in node_rows],
                means[c],
                variances[c],
                max_atoms,
                mode,
            )
            for c in range(template.n_cells)
        ]
        self.rtol = rtol
        self.adaptive = k is None and n <= SINGLE_SHOT_N
        self.first = True
        if k is not None:
            self.budget = k
        elif n > SINGLE_SHOT_N:
            self.budget = 2 * n
        else:
            self.budget = INITIAL_PATHS
        self.cap = max(8 * n, 2 * INITIAL_PATHS)
        self.pending: List[_CellRun] = list(self.states)

    def round_work(self) -> List[Tuple[_CellRun, FoldPlan]]:
        """(state, plan) work items for the pending round, plans cached."""
        active = self.pending
        mean_rows = np.stack([st.means for st in active])
        paths_cells = _k_best_paths_cells(
            self.preds, self.sinks, mean_rows, self.budget
        )
        work: List[Tuple[_CellRun, FoldPlan]] = []
        for st, paths in zip(active, paths_cells):
            if not paths:
                raise EvaluationError("DAG has no source-to-sink path")
            st.last_exhausted = len(paths) < self.budget
            # Path nodes are distinct, so summing their powers of two is
            # the OR; a plain loop beats functools.reduce on this path.
            masks = []
            for p in paths:
                m = 0
                for v in p:
                    m += 1 << v
                masks.append(m)
            pathset = tuple(masks)
            sig = ("fold", frozenset(pathset), st.var_key)
            plan = self.cache.get(sig)
            if plan is None:
                plan = compile_fold_plan(pathset, st.var_rank)
                self.cache[sig] = plan
            work.append((st, plan))
        return work

    def advance(self) -> bool:
        """Fold the round's estimates into the schedule; more rounds?

        Mirrors ``_adaptive_estimate``: the exhaustion/cap filter uses
        the budget just run, the stall counter tolerates
        :data:`ADAPTIVE_STALLS` consecutive within-``rtol`` refinements,
        and the budget doubles for the next round.
        """
        if not self.adaptive:
            for st in self.pending:
                st.estimate = st.last_estimate
            self.pending = []
            return False
        if self.first:
            self.first = False
            still = []
            for st in self.states:
                st.estimate = st.last_estimate
                if self.budget < self.cap and not st.last_exhausted:
                    still.append(st)
            self.pending = still
        else:
            still = []
            for st in self.pending:
                refined = st.last_estimate
                if abs(refined - st.estimate) <= self.rtol * max(
                    abs(st.estimate), 1e-300
                ):
                    st.stalls += 1
                    if st.stalls >= ADAPTIVE_STALLS:
                        st.estimate = refined
                        continue
                else:
                    st.stalls = 0
                st.estimate = refined
                if self.budget < self.cap and not st.last_exhausted:
                    still.append(st)
            self.pending = still
        if self.pending:
            self.budget *= 2
            return True
        return False

    def values(self) -> np.ndarray:
        out = np.empty(len(self.states))
        for st in self.states:
            out[st.index] = st.estimate
        return out


def pathapprox_plan_fused(jobs: Sequence[Tuple]) -> List[np.ndarray]:
    """PATHAPPROX over many templates in one pooled execution.

    ``jobs`` is a sequence of ``(template, options)`` pairs — options
    use the :func:`~repro.makespan.pathapprox.pathapprox_batch` keyword
    names (``k``, ``max_atoms``, ``rtol``, ``truncate_mode``); one value
    array per job is returned, in job order.

    Each job runs the per-cell adaptive-k schedule *exactly* as
    :func:`pathapprox_plan_batch` would alone — same budgets, same
    stall logic, same cached plans — but every round pools the ready
    tape steps of **all** jobs into one :func:`execute_plans` pass:
    step batching keys on operand shape (plus budget and truncation
    mode), not on the template, so heterogeneous-structure steps stack
    into the same batched kernel calls.  Jobs with differing budgets
    advance side by side (an explicit-k job finishes after round one
    while adaptive jobs keep doubling).  Per-job results are
    bit-identical to the single-job path — pooling changes which rows
    share a kernel call, never what any row computes.
    """
    runs: List[_JobRun] = []
    for template, options in jobs:
        opts = dict(options) if options else {}
        runs.append(
            _JobRun(
                template,
                k=opts.get("k"),
                rtol=opts.get("rtol", 2e-4),
                max_atoms=opts.get("max_atoms", DEFAULT_MAX_ATOMS),
                mode=opts.get("truncate_mode", MODE_ADAPTIVE),
            )
        )

    pending = [run for run in runs if run.pending]
    while pending:
        spans: List[Tuple[_JobRun, List[Tuple[_CellRun, FoldPlan]]]] = []
        all_work: List[Tuple[_CellRun, FoldPlan]] = []
        for run in pending:
            work = run.round_work()
            spans.append((run, work))
            all_work.extend(work)
        execute_plans(all_work)
        pending = []
        for run, work in spans:
            for st, plan in work:
                st.last_estimate = st.resolve(plan.root).mean()
            if run.advance():
                pending.append(run)
    return [run.values() for run in runs]


def pathapprox_plan_batch(
    template,
    k: Optional[int] = None,
    max_atoms: int = DEFAULT_MAX_ATOMS,
    rtol: float = 2e-4,
    mode: str = MODE_ADAPTIVE,
) -> np.ndarray:
    """PATHAPPROX over every cell of a template via compiled fold plans.

    The single-job case of :func:`pathapprox_plan_fused`: every active
    cell shares the same lockstep budget sequence (32, 64, ...), each
    round enumerates paths, compiles or reuses the cells' plans, and
    replays them through one pooled :func:`execute_plans` pass.
    Per-cell control flow — stall counting, exhaustion, the ``k=None``
    / explicit-k / wide-DAG single-shot branches — replicates
    ``_adaptive_estimate`` exactly, so results are bit-identical to the
    scalar reference.
    """
    return pathapprox_plan_fused(
        [
            (
                template,
                {
                    "k": k,
                    "max_atoms": max_atoms,
                    "rtol": rtol,
                    "truncate_mode": mode,
                },
            )
        ]
    )[0]


# --------------------------------------------------------------------- #
# the NORMAL method's Clark-fold tape
# --------------------------------------------------------------------- #


class ClarkPlan:
    """Flat schedule of the Sculli/Clark moment propagation.

    ``steps[i] = (node, predecessors)`` in topological order; ``sinks``
    is the final fold.  Pure structure — the batched replay streams the
    template's parameter matrices through it.
    """

    __slots__ = ("steps", "sinks")

    def __init__(
        self, steps: Tuple[Tuple[int, Tuple[int, ...]], ...], sinks: Tuple[int, ...]
    ) -> None:
        self.steps = steps
        self.sinks = sinks

    def __repr__(self) -> str:
        return f"ClarkPlan(steps={len(self.steps)}, sinks={len(self.sinks)})"


def clark_plan(template) -> ClarkPlan:
    """The template's Clark-fold tape, compiled once and cached."""
    cache = template.plan_cache()
    plan = cache.get("clark")
    if plan is None:
        plan = ClarkPlan(
            steps=tuple(
                (v, tuple(template.preds[v])) for v in range(template.n)
            ),
            sinks=tuple(template.sinks()),
        )
        cache["clark"] = plan
    return plan
