"""Compiled fold plans: execute-many replay of the pathapprox recursion.

The scalar PATHAPPROX estimator (:mod:`repro.makespan.pathapprox`)
spends its time in two python-level recursions that are determined
entirely by DAG *structure* — the common-task factoring of
``_fold_factored`` and the node walks of ``_path_sum`` — yet re-derives
them for every cell and every adaptive-k budget doubling.  This module
lifts that work into a **compile-once, execute-many** layer:

* :func:`compile_fold_plan` runs the recursion *symbolically* once per
  (path set, variance order) signature and records a flat post-order op
  tape — CONVOLVE and MAX steps over semantic slots — as a
  :class:`FoldPlan`.  Plans are cached on the
  :class:`~repro.makespan.paramdag.ParamDAG` template
  (:meth:`~repro.makespan.paramdag.ParamDAG.plan_cache`), so the cells
  of a sweep group that share a signature share one compilation.

* :func:`execute_plans` replays tapes for many cells at once with a
  **pooled wavefront executor**: each round it gathers every step whose
  operands are ready — across all cells and plans — groups them by
  (op kind, operand widths), and runs each group as a single batched
  :class:`~repro.makespan.batch.BatchDistribution` kernel call.
  Singleton groups go straight to the scalar kernel.  Results land in a
  per-cell value store keyed by the tape's *semantic* slot names, so
  they survive across budget doublings (the 64-path plan skips every
  step the 32-path plan already computed).

* :func:`pathapprox_plan_batch` drives the whole batch through the
  adaptive-k schedule in lockstep, replicating
  ``_adaptive_estimate``'s per-cell control flow exactly.

**Bit-identity.**  The tape records exactly the operations the scalar
recursion performs, keyed so that equal inputs share one slot: path-sum
chains are memoised by node-tuple *prefix* (the scalar chain prefix
computation is the identical op sequence, so a prefix hit returns the
identical object), fold subtrees by their frozenset-of-path-sets memo
key — the same key :class:`~repro.makespan.pathapprox._CellFold` uses.
Each step's operands are therefore bit-identical to the scalar path's,
and the batched kernels guarantee bit-identical outputs per row (the
batch-parity contract), so the replayed estimates equal the scalar
reference bit for bit — pinned by the evaluator parity tests.

The Clark-fold tape of the NORMAL method (:class:`ClarkPlan`) lives
here too: a flat (node, predecessors) schedule plus the sink fold,
cached on the template so repeated ``normal_batch`` calls skip the
structure scans.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EvaluationError
from repro.makespan import profile as _profile
from repro.makespan.batch import BatchDistribution, rows_of, two_state_rows
from repro.makespan.distribution import (
    DEFAULT_MAX_ATOMS,
    MODE_ADAPTIVE,
    DiscreteDistribution,
)
from repro.makespan.pathapprox import (
    ADAPTIVE_STALLS,
    INITIAL_PATHS,
    SINGLE_SHOT_N,
    _k_best_paths_cells,
)

__all__ = [
    "FoldPlan",
    "ClarkPlan",
    "compile_fold_plan",
    "execute_plans",
    "pathapprox_plan_batch",
    "clark_plan",
]

#: Leaf slot: the Dirac distribution at 0 (every path sum's seed).
_P0: Tuple[str, ...] = ("p0",)

#: Step kinds on the tape.
_CONV = "conv"
_MAX = "max"

#: Slot reference — a leaf (``("p0",)`` / ``("law", node)``) or a step
#: key (``("s", node_prefix)`` / ``("m", path_key)`` / ``("c",
#: path_key)``).  Semantic by construction: equal refs denote equal
#: distributions for a given cell, across plans and budgets.
Ref = Tuple


class FoldPlan:
    """A compiled fold: flat post-order op tape plus dependency edges.

    ``steps[i] = (key, kind, a, b)`` computes slot ``key`` as
    ``a kind b``; operands are earlier steps or leaves, so the tape is
    topologically ordered.  ``deps``/``dependents`` are the intra-tape
    edges the wavefront executor counts down; ``root`` is the slot
    holding the folded maximum.  Plans are immutable and shared across
    cells — all per-cell state lives in the executor.
    """

    __slots__ = ("steps", "index", "deps", "dependents", "root")

    def __init__(self, steps: List[Tuple], root: Ref) -> None:
        self.steps: Tuple[Tuple, ...] = tuple(steps)
        self.index: Dict[Ref, int] = {s[0]: i for i, s in enumerate(steps)}
        deps: List[Tuple[int, ...]] = []
        dependents: List[List[int]] = [[] for _ in steps]
        for i, (_key, _kind, a, b) in enumerate(steps):
            d = []
            for operand in (a, b):
                j = self.index.get(operand)
                if j is not None:
                    d.append(j)
                    dependents[j].append(i)
            deps.append(tuple(d))
        self.deps: Tuple[Tuple[int, ...], ...] = tuple(deps)
        self.dependents: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(d) for d in dependents
        )
        self.root = root

    def __repr__(self) -> str:
        return f"FoldPlan(steps={len(self.steps)}, root={self.root!r})"


def compile_fold_plan(
    paths: Sequence[int], var_rank: Sequence[int]
) -> FoldPlan:
    """Compile the factored fold of ``paths`` into a :class:`FoldPlan`.

    ``paths`` are node-set **bitmasks** (bit ``v`` set iff node ``v`` is
    on the path) — set algebra on python ints is an order of magnitude
    cheaper than on frozensets, and a mask is its own canonical form, so
    masks double as the memo keys.  Runs exactly the recursion of
    ``_fold_factored`` (same intersection stripping, same
    highest-variance split, same memo granularity), but emits tape steps
    instead of computing distributions.  ``var_rank[v]`` must rank nodes
    by the scalar split key ``(variance, id)`` ascending — a strict
    total order, so ``max`` by rank picks the same split node.
    """
    steps: List[Tuple] = []
    index: Dict[Ref, int] = {}
    sum_memo: Dict[Tuple[int, ...], Ref] = {}
    fold_memo: Dict[FrozenSet[int], Ref] = {}

    def emit(key: Ref, kind: str, a: Ref, b: Ref) -> Ref:
        if key not in index:
            index[key] = len(steps)
            steps.append((key, kind, a, b))
        return key

    def nodes_of(mask: int) -> List[int]:
        # Set bits, ascending == the scalar recursion's sorted() order.
        out: List[int] = []
        while mask:
            low = mask & -mask
            out.append(low.bit_length() - 1)
            mask ^= low
        return out

    def sum_ref(nodes: Tuple[int, ...]) -> Ref:
        ref = sum_memo.get(nodes)
        if ref is not None:
            return ref
        # Chain convolutions seeded at point(0), memoised per *prefix*:
        # the scalar chain computes every prefix anyway, so a prefix hit
        # reuses the identical intermediate.
        prev: Ref = _P0
        for j in range(len(nodes)):
            prefix = nodes[: j + 1]
            ref = sum_memo.get(prefix)
            if ref is None:
                ref = emit(("s", prefix), _CONV, prev, ("law", nodes[j]))
                sum_memo[prefix] = ref
            prev = ref
        return prev

    def fold_ref(group: Tuple[int, ...]) -> Ref:
        key = frozenset(group)
        ref = fold_memo.get(key)
        if ref is not None:
            return ref
        common = group[0]
        for q in group[1:]:
            common &= q
        rest = [q & ~common for q in group]
        nonempty = [q for q in rest if q]
        if not nonempty:
            folded: Ref = _P0
        elif len(nonempty) == 1:
            folded = sum_ref(tuple(nodes_of(nonempty[0])))
        else:
            union = 0
            for q in nonempty:
                union |= q
            split = max(nodes_of(union), key=var_rank.__getitem__)
            bit = 1 << split
            with_split = tuple(q for q in nonempty if q & bit)
            without = tuple(q for q in nonempty if not q & bit)
            if not without:
                folded = fold_ref(with_split)
            else:
                folded = emit(
                    ("m", key), _MAX, fold_ref(with_split), fold_ref(without)
                )
        if common:
            folded = emit(
                ("c", key), _CONV, folded, sum_ref(tuple(nodes_of(common)))
            )
        fold_memo[key] = folded
        return folded

    root = fold_ref(tuple(paths))
    return FoldPlan(steps, root)


class _CellRun:
    """Per-cell replay state: leaf laws plus the persistent slot store."""

    __slots__ = (
        "index",
        "values",
        "remaining",
        "node_dist",
        "means",
        "var_rank",
        "var_key",
        "estimate",
        "stalls",
        "last_estimate",
        "last_exhausted",
    )

    def __init__(
        self,
        index: int,
        point0: DiscreteDistribution,
        node_dist: List[DiscreteDistribution],
        means: np.ndarray,
        variances: np.ndarray,
    ) -> None:
        self.index = index
        self.values: Dict[Ref, DiscreteDistribution] = {_P0: point0}
        self.remaining: Dict[int, int] = {}
        self.node_dist = node_dist
        self.means = means
        n = len(node_dist)
        order = sorted(range(n), key=lambda v: (variances[v], v))
        rank = [0] * n
        for r, v in enumerate(order):
            rank[v] = r
        self.var_rank = rank
        self.var_key = tuple(order)
        self.estimate = 0.0
        self.stalls = 0
        self.last_estimate = 0.0
        self.last_exhausted = False

    def resolve(self, ref: Ref) -> DiscreteDistribution:
        d = self.values.get(ref)
        if d is None:
            # Only ("law", node) leaves can miss the store.
            d = self.node_dist[ref[1]]
            self.values[ref] = d
        return d


def _schedule(state: _CellRun, plan: FoldPlan) -> List[int]:
    """Seed the dependency countdown; return the initially ready steps.

    Steps whose slot is already in the cell's store (computed by an
    earlier budget's plan) are skipped outright, and satisfy their
    dependents' counts.
    """
    ready: List[int] = []
    remaining = state.remaining
    remaining.clear()
    values = state.values
    steps = plan.steps
    for i, step in enumerate(steps):
        if step[0] in values:
            continue
        nd = 0
        for d in plan.deps[i]:
            if steps[d][0] not in values:
                nd += 1
        if nd:
            remaining[i] = nd
        else:
            ready.append(i)
    return ready


def execute_plans(
    work: Sequence[Tuple[_CellRun, FoldPlan]],
    max_atoms: int,
    mode: str = MODE_ADAPTIVE,
) -> None:
    """Replay each cell's plan, pooling ready steps across the batch.

    Wavefront execution: every round collects the steps whose operands
    are ready — across all (cell, plan) pairs — and groups them by
    ``(kind, width_a, width_b)``.  Each group of two or more runs as one
    batched kernel call (operand rows stacked, results scattered back);
    singletons call the scalar kernel directly.  Execution order never
    affects results (each step's operands are fixed), so pooling
    preserves bit-identity.  (A greedy fullest-bin-first variant was
    tried and measured *slower*: fragmentation is structural — plans
    differ per cell — so deferral barely grows the pools while the bin
    bookkeeping taxes every step.)
    """
    prof = _profile.ACTIVE
    ready: List[Tuple[_CellRun, FoldPlan, int]] = []
    for state, plan in work:
        for i in _schedule(state, plan):
            ready.append((state, plan, i))

    while ready:
        groups: Dict[Tuple, List[Tuple]] = {}
        for state, plan, i in ready:
            _key, kind, a, b = plan.steps[i]
            da = state.resolve(a)
            db = state.resolve(b)
            groups.setdefault((kind, da.n_atoms, db.n_atoms), []).append(
                (state, plan, i, da, db)
            )
        ready = []
        for (kind, _wa, _wb), members in groups.items():
            t0 = time.perf_counter() if prof is not None else 0.0
            if len(members) == 1:
                _state, _plan, _i, da, db = members[0]
                if kind == _CONV:
                    outs = [da._convolve(db, max_atoms, mode)]
                else:
                    outs = [da._max_with(db, max_atoms, mode)]
            else:
                batch_a = BatchDistribution(
                    np.array([m[3].values for m in members]),
                    np.array([m[3].probs for m in members]),
                    _canonical=True,
                )
                batch_b = BatchDistribution(
                    np.array([m[4].values for m in members]),
                    np.array([m[4].probs for m in members]),
                    _canonical=True,
                )
                if kind == _CONV:
                    res = batch_a._convolve(batch_b, max_atoms, mode)[0]
                else:
                    res = batch_a._max_with(batch_b, max_atoms, mode)[0]
                outs = rows_of(res)
            if prof is not None:
                prof.record(
                    "pool_step",
                    len(members),
                    1 if len(members) == 1 else 0,
                    time.perf_counter() - t0,
                )
            for (state, plan, i, _da, _db), dist in zip(members, outs):
                state.values[plan.steps[i][0]] = dist
                remaining = state.remaining
                for d in plan.dependents[i]:
                    nd = remaining.get(d)
                    if nd is None:
                        continue
                    if nd == 1:
                        del remaining[d]
                        ready.append((state, plan, d))
                    else:
                        remaining[d] = nd - 1


def pathapprox_plan_batch(
    template,
    k: Optional[int] = None,
    max_atoms: int = DEFAULT_MAX_ATOMS,
    rtol: float = 2e-4,
    mode: str = MODE_ADAPTIVE,
) -> np.ndarray:
    """PATHAPPROX over every cell of a template via compiled fold plans.

    The batched counterpart of the scalar adaptive schedule, run in
    *lockstep*: every active cell shares the same budget sequence
    (32, 64, ...), so each round enumerates paths, compiles or reuses
    the cells' plans, and replays them through one pooled
    :func:`execute_plans` pass.  Per-cell control flow — stall counting,
    exhaustion, the ``k=None`` / explicit-k / wide-DAG single-shot
    branches — replicates ``_adaptive_estimate`` exactly, so results
    are bit-identical to the scalar reference.
    """
    n = template.n
    n_cells = template.n_cells
    preds = template.preds
    sinks = template.sinks()
    means = template.means
    variances = template.variances
    cache = template.plan_cache()
    point0 = DiscreteDistribution.point(0.0)

    node_rows = [
        two_state_rows(template.base[:, j], template.long[:, j], template.p[:, j])
        for j in range(n)
    ]
    states = [
        _CellRun(
            c,
            point0,
            [rows[c] for rows in node_rows],
            means[c],
            variances[c],
        )
        for c in range(n_cells)
    ]

    def run_round(active: List[_CellRun], budget: int) -> None:
        work: List[Tuple[_CellRun, FoldPlan]] = []
        mean_rows = np.stack([st.means for st in active])
        paths_cells = _k_best_paths_cells(preds, sinks, mean_rows, budget)
        for st, paths in zip(active, paths_cells):
            if not paths:
                raise EvaluationError("DAG has no source-to-sink path")
            st.last_exhausted = len(paths) < budget
            # Path nodes are distinct, so summing their powers of two is
            # the OR; a plain loop beats functools.reduce on this path.
            masks = []
            for p in paths:
                m = 0
                for v in p:
                    m += 1 << v
                masks.append(m)
            pathset = tuple(masks)
            sig = ("fold", frozenset(pathset), st.var_key)
            plan = cache.get(sig)
            if plan is None:
                plan = compile_fold_plan(pathset, st.var_rank)
                cache[sig] = plan
            work.append((st, plan))
        execute_plans(work, max_atoms, mode)
        for st, plan in work:
            st.last_estimate = st.resolve(plan.root).mean()

    out = np.empty(n_cells)

    if k is not None:
        run_round(states, k)
        for st in states:
            out[st.index] = st.last_estimate
        return out

    if n > SINGLE_SHOT_N:
        run_round(states, 2 * n)
        for st in states:
            out[st.index] = st.last_estimate
        return out

    budget = INITIAL_PATHS
    run_round(states, budget)
    cap = max(8 * n, 2 * INITIAL_PATHS)
    active = []
    for st in states:
        st.estimate = st.last_estimate
        if budget < cap and not st.last_exhausted:
            active.append(st)
    while active:
        budget *= 2
        run_round(active, budget)
        still: List[_CellRun] = []
        for st in active:
            refined = st.last_estimate
            if abs(refined - st.estimate) <= rtol * max(abs(st.estimate), 1e-300):
                st.stalls += 1
                if st.stalls >= ADAPTIVE_STALLS:
                    st.estimate = refined
                    continue
            else:
                st.stalls = 0
            st.estimate = refined
            if budget < cap and not st.last_exhausted:
                still.append(st)
        active = still
    for st in states:
        out[st.index] = st.estimate
    return out


# --------------------------------------------------------------------- #
# the NORMAL method's Clark-fold tape
# --------------------------------------------------------------------- #


class ClarkPlan:
    """Flat schedule of the Sculli/Clark moment propagation.

    ``steps[i] = (node, predecessors)`` in topological order; ``sinks``
    is the final fold.  Pure structure — the batched replay streams the
    template's parameter matrices through it.
    """

    __slots__ = ("steps", "sinks")

    def __init__(
        self, steps: Tuple[Tuple[int, Tuple[int, ...]], ...], sinks: Tuple[int, ...]
    ) -> None:
        self.steps = steps
        self.sinks = sinks

    def __repr__(self) -> str:
        return f"ClarkPlan(steps={len(self.steps)}, sinks={len(self.sinks)})"


def clark_plan(template) -> ClarkPlan:
    """The template's Clark-fold tape, compiled once and cached."""
    cache = template.plan_cache()
    plan = cache.get("clark")
    if plan is None:
        plan = ClarkPlan(
            steps=tuple(
                (v, tuple(template.preds[v])) for v in range(template.n)
            ),
            sinks=tuple(template.sinks()),
        )
        cache["clark"] = plan
    return plan
