"""First-order 2-state task model (Equation (1) of the paper).

A task (or checkpointed segment) of total cost ``X = R + W + C`` on a
processor with exponential failure rate ``λ`` has total execution time

* ``X`` with probability ``1 − λX`` (no failure), and
* ``(3/2)·X`` with probability ``λX`` (one failure at the expected instant
  ``X/2``, a recovery, and a successful re-execution),

neglecting the ``Θ(λ²)`` probability of multiple failures.  The expected
value is ``X·(1 + λX/2)``, which is exactly the paper's Equation (2) when
``X = R_i^j + W_i^j + C_i^j``.

The model leaves its validity domain when ``λX >= 1``.  By default we
clamp the probability to ``1 − ε`` and keep going (the paper's experiments
with ``pfail <= 0.01`` never get close); pass ``clamp=False`` to raise
:class:`~repro.errors.FirstOrderDomainError` instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FirstOrderDomainError
from repro.util.validation import require_nonnegative

__all__ = [
    "TwoStateTask",
    "two_state_probability",
    "first_order_expected_time",
    "two_state_from_span",
]

#: Clamp ceiling for the one-failure probability.
_P_MAX = 1.0 - 1e-12

#: Re-execution cost multiplier of the one-failure branch: failure at
#: ``X/2`` on average plus a full re-execution.
RETRY_FACTOR = 1.5


@dataclass(frozen=True)
class TwoStateTask:
    """A 2-state probabilistic task: ``base`` w.p. ``1-p``, ``long`` w.p. ``p``."""

    name: str
    base: float
    long: float
    p: float

    def __post_init__(self) -> None:
        require_nonnegative(self.base, "base")
        if self.long < self.base:
            raise FirstOrderDomainError(
                f"task {self.name!r}: long duration {self.long} below base "
                f"{self.base}"
            )
        if not (0.0 <= self.p <= 1.0):
            raise FirstOrderDomainError(
                f"task {self.name!r}: probability {self.p} outside [0, 1]"
            )

    @property
    def mean(self) -> float:
        """Expected duration."""
        return (1.0 - self.p) * self.base + self.p * self.long

    @property
    def variance(self) -> float:
        """Duration variance."""
        d = self.long - self.base
        return self.p * (1.0 - self.p) * d * d


def two_state_probability(span: float, failure_rate: float, clamp: bool = True) -> float:
    """One-failure probability ``λ·X`` of Equation (1), clamped or checked."""
    require_nonnegative(span, "span")
    require_nonnegative(failure_rate, "failure_rate")
    p = failure_rate * span
    if p >= 1.0:
        if not clamp:
            raise FirstOrderDomainError(
                f"first-order probability λX = {p:.3g} >= 1 "
                f"(span={span:.3g}, λ={failure_rate:.3g}); the first-order "
                f"model does not apply"
            )
        return _P_MAX
    return p


def first_order_expected_time(
    span: float, failure_rate: float, clamp: bool = True
) -> float:
    """Expected execution time of a segment of cost ``span`` (Equation (2)).

    ``(1 − λX)·X + λX·(3/2)X = X·(1 + λX/2)`` for ``λX < 1``.
    """
    p = two_state_probability(span, failure_rate, clamp=clamp)
    return (1.0 - p) * span + p * (RETRY_FACTOR * span)


def two_state_from_span(
    name: str, span: float, failure_rate: float, clamp: bool = True
) -> TwoStateTask:
    """Equation (1): the 2-state variable of a segment of cost ``span``."""
    p = two_state_probability(span, failure_rate, clamp=clamp)
    return TwoStateTask(name=name, base=span, long=RETRY_FACTOR * span, p=p)
