"""Expected-makespan machinery for 2-state probabilistic DAGs.

The paper's pipeline (§II-B/C): once every superchain is cut into
checkpointed segments, each segment becomes a macro-task whose duration is
the 2-state random variable of Equation (1); the resulting *segment DAG*
is evaluated with one of four estimators (§VI-B):

* :func:`repro.makespan.montecarlo.montecarlo` — sampling ground truth;
* :func:`repro.makespan.dodin.dodin` — series-parallel reduction;
* :func:`repro.makespan.normal.normal` — Sculli's normal approximation;
* :func:`repro.makespan.pathapprox.pathapprox` — longest-path / failure
  scenario approximation (the paper's method of choice);

plus :func:`repro.makespan.exact.exact` (brute-force enumeration, small
DAGs only) and the Theorem 1 estimator for CKPTNONE
(:mod:`repro.makespan.ckptnone`).
"""

from repro.makespan.two_state import (
    TwoStateTask,
    first_order_expected_time,
    two_state_from_span,
)
from repro.makespan.probdag import ProbDAG
from repro.makespan.segment_dag import build_segment_dag
from repro.makespan.montecarlo import montecarlo
from repro.makespan.dodin import dodin
from repro.makespan.normal import normal
from repro.makespan.pathapprox import pathapprox
from repro.makespan.exact import exact
from repro.makespan.ckptnone import ckptnone_expected_makespan, failure_free_makespan
from repro.makespan.api import expected_makespan, EVALUATORS

__all__ = [
    "TwoStateTask",
    "first_order_expected_time",
    "two_state_from_span",
    "ProbDAG",
    "build_segment_dag",
    "montecarlo",
    "dodin",
    "normal",
    "pathapprox",
    "exact",
    "ckptnone_expected_makespan",
    "failure_free_makespan",
    "expected_makespan",
    "EVALUATORS",
]
