"""Expected-makespan machinery for 2-state probabilistic DAGs.

The paper's pipeline (§II-B/C): once every superchain is cut into
checkpointed segments, each segment becomes a macro-task whose duration is
the 2-state random variable of Equation (1); the resulting *segment DAG*
is evaluated with one of four estimators (§VI-B):

* :func:`repro.makespan.montecarlo.montecarlo` — sampling ground truth;
* :func:`repro.makespan.dodin.dodin` — series-parallel reduction;
* :func:`repro.makespan.normal.normal` — Sculli's normal approximation;
* :func:`repro.makespan.pathapprox.pathapprox` — longest-path / failure
  scenario approximation (the paper's method of choice);

plus :func:`repro.makespan.exact.exact` (brute-force enumeration, small
DAGs only) and the Theorem 1 estimator for CKPTNONE
(:mod:`repro.makespan.ckptnone`).

Evaluators are registered behind the
:class:`~repro.makespan.evaluator.Evaluator` protocol (declared option
schemas, ``deterministic``/``supports_batch`` capabilities) and the
layer is **batch native**: a :class:`~repro.makespan.paramdag.ParamDAG`
carries one DAG structure template plus per-cell 2-state parameter
arrays, :mod:`repro.makespan.batch` provides the vectorised
distribution kernels (leading cell axis), and
:func:`~repro.makespan.api.expected_makespans` prices a whole parameter
grid per evaluator call — bit-identical to the per-cell path.
"""

from repro.makespan.two_state import (
    TwoStateTask,
    first_order_expected_time,
    two_state_from_span,
)
from repro.makespan.probdag import ProbDAG
from repro.makespan.paramdag import ParamDAG
from repro.makespan.batch import BatchDistribution, rows_of, two_state_rows
from repro.makespan.segment_dag import build_segment_dag
from repro.makespan.montecarlo import montecarlo, montecarlo_batch
from repro.makespan.dodin import dodin
from repro.makespan.normal import normal, normal_batch
from repro.makespan.pathapprox import (
    pathapprox,
    pathapprox_batch,
    pathapprox_fused,
)
from repro.makespan.exact import exact
from repro.makespan.ckptnone import ckptnone_expected_makespan, failure_free_makespan
from repro.makespan.evaluator import (
    Evaluator,
    EvaluatorOption,
    EvaluatorRegistry,
    FunctionEvaluator,
)
from repro.makespan.api import (
    EVALUATORS,
    expected_makespan,
    expected_makespans,
    expected_makespans_fused,
    get_evaluator,
)

__all__ = [
    "TwoStateTask",
    "first_order_expected_time",
    "two_state_from_span",
    "ProbDAG",
    "ParamDAG",
    "BatchDistribution",
    "rows_of",
    "two_state_rows",
    "build_segment_dag",
    "montecarlo",
    "montecarlo_batch",
    "dodin",
    "normal",
    "normal_batch",
    "pathapprox",
    "pathapprox_batch",
    "pathapprox_fused",
    "exact",
    "ckptnone_expected_makespan",
    "failure_free_makespan",
    "Evaluator",
    "EvaluatorOption",
    "EvaluatorRegistry",
    "FunctionEvaluator",
    "EVALUATORS",
    "expected_makespan",
    "expected_makespans",
    "expected_makespans_fused",
    "get_evaluator",
]
