"""Exact expected makespan by scenario enumeration (small DAGs only).

Computing the expected makespan of a 2-state probabilistic DAG is
#P-complete (Hagstrom 1988, the paper's [8]), so exact evaluation must
enumerate all ``2^n`` failure patterns.  We keep it as the oracle for the
test suite and for calibrating the approximate evaluators: scenarios are
generated in vectorised batches (durations matrix + probability products)
and reduced through the shared longest-path kernel.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EvaluationError
from repro.makespan.probdag import ProbDAG

__all__ = ["exact"]

DEFAULT_LIMIT = 20


def exact(dag: ProbDAG, limit: int = DEFAULT_LIMIT, batch: int = 65536) -> float:
    """Exact expected makespan of a 2-state DAG with ``n <= limit`` nodes."""
    n = dag.n
    if n == 0:
        return 0.0
    if n > limit:
        raise EvaluationError(
            f"exact enumeration over 2^{n} scenarios refused (limit 2^{limit}); "
            f"use montecarlo/pathapprox instead"
        )
    base = dag.base
    extra = dag.long - base
    p = dag.p
    total = 1 << n
    bit_cols = np.arange(n, dtype=np.uint64)
    expectation = 0.0
    mass = 0.0
    for start in range(0, total, batch):
        stop = min(start + batch, total)
        idx = np.arange(start, stop, dtype=np.uint64)
        bits = ((idx[:, None] >> bit_cols) & 1).astype(float)
        durations = base + extra * bits
        probs = np.prod(bits * p + (1.0 - bits) * (1.0 - p), axis=1)
        makespans = dag.makespans(durations)
        expectation += float(probs @ makespans)
        mass += float(probs.sum())
    if abs(mass - 1.0) > 1e-9:
        raise EvaluationError(f"scenario probabilities sum to {mass}")
    return expectation
