"""The 2-state probabilistic DAG container.

Every expected-makespan evaluator consumes a :class:`ProbDAG`: nodes carry
2-state durations (Equation (1)); edges are precedence constraints.  The
container enforces topological construction (predecessors must exist when
a node is added) and provides the shared **vectorised longest-path
kernel**: given a ``(trials, n)`` duration matrix it propagates completion
times in topological order with one NumPy ``maximum`` per edge-group,
which both the Monte Carlo evaluator and the failure simulator reuse
(per the hpc-parallel guide: one hot vectorised kernel, orchestration in
plain Python).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EvaluationError
from repro.makespan.two_state import TwoStateTask

__all__ = ["ProbDAG"]


class ProbDAG:
    """A DAG of 2-state probabilistic tasks, stored in topological order."""

    def __init__(self) -> None:
        self.names: List[str] = []
        self._index: Dict[str, int] = {}
        self._base: List[float] = []
        self._long: List[float] = []
        self._p: List[float] = []
        self.preds: List[List[int]] = []
        self.succs: List[List[int]] = []

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def add(
        self,
        name: str,
        base: float,
        long: float,
        p: float,
        preds: Iterable[str] = (),
    ) -> int:
        """Add a node whose predecessors were all added before; returns index."""
        if name in self._index:
            raise EvaluationError(f"duplicate node {name!r}")
        if not (base >= 0) or long < base:
            raise EvaluationError(
                f"node {name!r}: need 0 <= base <= long, got ({base}, {long})"
            )
        if not (0.0 <= p <= 1.0):
            raise EvaluationError(f"node {name!r}: p={p} outside [0, 1]")
        idx = len(self.names)
        pred_idx: List[int] = []
        for pname in preds:
            if pname not in self._index:
                raise EvaluationError(
                    f"node {name!r}: predecessor {pname!r} not added yet "
                    f"(ProbDAG is built in topological order)"
                )
            pred_idx.append(self._index[pname])
        self.names.append(name)
        self._index[name] = idx
        self._base.append(float(base))
        self._long.append(float(long))
        self._p.append(float(p))
        self.preds.append(sorted(set(pred_idx)))
        self.succs.append([])
        for q in self.preds[idx]:
            self.succs[q].append(idx)
        return idx

    def add_task(self, task: TwoStateTask, preds: Iterable[str] = ()) -> int:
        """Add a :class:`~repro.makespan.two_state.TwoStateTask`."""
        return self.add(task.name, task.base, task.long, task.p, preds)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.names)

    @property
    def n_edges(self) -> int:
        """Number of edges."""
        return sum(len(ps) for ps in self.preds)

    @property
    def base(self) -> np.ndarray:
        """No-failure durations (read-only view)."""
        return np.asarray(self._base)

    @property
    def long(self) -> np.ndarray:
        """One-failure durations."""
        return np.asarray(self._long)

    @property
    def p(self) -> np.ndarray:
        """One-failure probabilities."""
        return np.asarray(self._p)

    def index(self, name: str) -> int:
        """Index of a node by name."""
        try:
            return self._index[name]
        except KeyError:
            raise EvaluationError(f"unknown node {name!r}") from None

    def task(self, i: int) -> TwoStateTask:
        """The 2-state task at index ``i``."""
        return TwoStateTask(self.names[i], self._base[i], self._long[i], self._p[i])

    def tasks(self) -> List[TwoStateTask]:
        """All tasks, in topological order."""
        return [self.task(i) for i in range(self.n)]

    def sinks(self) -> List[int]:
        """Indices of nodes without successors."""
        return [i for i in range(self.n) if not self.succs[i]]

    def sources(self) -> List[int]:
        """Indices of nodes without predecessors."""
        return [i for i in range(self.n) if not self.preds[i]]

    # ------------------------------------------------------------------ #
    # kernels
    # ------------------------------------------------------------------ #

    def makespans(self, durations: np.ndarray) -> np.ndarray:
        """Makespan of each scenario row of a ``(trials, n)`` duration matrix.

        Completion of node ``v`` = duration ``v`` + max over predecessors'
        completions; the makespan is the max over all nodes.  Vectorised
        across trials; ``O(E)`` vector operations.
        """
        durations = np.atleast_2d(np.asarray(durations, dtype=float))
        trials, n = durations.shape
        if n != self.n:
            raise EvaluationError(
                f"duration matrix has {n} columns for a {self.n}-node DAG"
            )
        if n == 0:
            return np.zeros(trials)
        completion = np.empty_like(durations)
        makespan = np.zeros(trials)
        for v in range(n):
            col = durations[:, v]
            ps = self.preds[v]
            if ps:
                ready = completion[:, ps[0]]
                if len(ps) > 1:
                    ready = completion[:, ps].max(axis=1)
                completion[:, v] = ready + col
            else:
                completion[:, v] = col
            np.maximum(makespan, completion[:, v], out=makespan)
        return makespan

    def deterministic_makespan(self, durations: Optional[np.ndarray] = None) -> float:
        """Longest path under the given (default: base) durations."""
        if durations is None:
            durations = self.base
        return float(self.makespans(np.asarray(durations)[None, :])[0])

    def completion_times(self, durations: Optional[np.ndarray] = None) -> np.ndarray:
        """Per-node completion times under one scenario (default: base)."""
        if durations is None:
            durations = self.base
        durations = np.asarray(durations, dtype=float)
        completion = np.empty(self.n)
        for v in range(self.n):
            ps = self.preds[v]
            ready = max((completion[q] for q in ps), default=0.0)
            completion[v] = ready + durations[v]
        return completion

    def tail_times(self, durations: Optional[np.ndarray] = None) -> np.ndarray:
        """Per-node longest path *from* the node (inclusive) to any sink."""
        if durations is None:
            durations = self.base
        durations = np.asarray(durations, dtype=float)
        tail = np.empty(self.n)
        for v in range(self.n - 1, -1, -1):
            ss = self.succs[v]
            after = max((tail[w] for w in ss), default=0.0)
            tail[v] = durations[v] + after
        return tail

    def __repr__(self) -> str:
        return f"ProbDAG(n={self.n}, edges={self.n_edges})"
