"""Evaluator dispatch: one entry point for the four §VI-B methods + exact."""

from __future__ import annotations

import inspect
from typing import Callable, Dict, FrozenSet, Optional

from repro.errors import EvaluationError
from repro.makespan.dodin import dodin
from repro.makespan.exact import exact
from repro.makespan.montecarlo import montecarlo
from repro.makespan.normal import normal
from repro.makespan.pathapprox import pathapprox
from repro.makespan.probdag import ProbDAG

__all__ = ["EVALUATORS", "expected_makespan"]

#: Evaluator registry, keyed by the paper's method names.
EVALUATORS: Dict[str, Callable[..., float]] = {
    "montecarlo": montecarlo,
    "dodin": dodin,
    "normal": normal,
    "pathapprox": pathapprox,
    "exact": exact,
}

#: Per-evaluator accepted keyword options (``None`` = accepts anything).
#: Keyed by the function object so replacing an EVALUATORS entry is safe.
_ACCEPTED_OPTIONS: Dict[Callable[..., float], Optional[FrozenSet[str]]] = {}


def _accepted_options(fn: Callable[..., float]) -> Optional[FrozenSet[str]]:
    """Keyword names the evaluator accepts beyond the DAG, from its
    signature; ``None`` when it takes ``**kwargs`` (nothing to validate)."""
    if fn not in _ACCEPTED_OPTIONS:
        params = list(inspect.signature(fn).parameters.values())
        if any(p.kind is p.VAR_KEYWORD for p in params):
            _ACCEPTED_OPTIONS[fn] = None
        else:
            _ACCEPTED_OPTIONS[fn] = frozenset(
                p.name
                for p in params[1:]  # params[0] is the DAG
                if p.kind in (p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY)
            )
    return _ACCEPTED_OPTIONS[fn]


def expected_makespan(dag: ProbDAG, method: str = "pathapprox", **kwargs) -> float:
    """Expected makespan of a 2-state DAG with the named method.

    ``method`` is one of ``montecarlo``, ``dodin``, ``normal``,
    ``pathapprox`` (default, the paper's choice) or ``exact``; extra
    keyword arguments are forwarded (e.g. ``trials=``/``seed=`` for Monte
    Carlo, ``k=`` for PathApprox).  Unknown keywords raise
    :class:`~repro.errors.EvaluationError` naming the method and its
    accepted options.
    """
    try:
        fn = EVALUATORS[method]
    except KeyError:
        raise EvaluationError(
            f"unknown evaluation method {method!r}; choose from "
            f"{sorted(EVALUATORS)}"
        ) from None
    if kwargs:  # introspect only when there are options to validate
        accepted = _accepted_options(fn)
        if accepted is not None:
            unknown = sorted(set(kwargs) - accepted)
            if unknown:
                raise EvaluationError(
                    f"unknown option(s) {', '.join(map(repr, unknown))} for "
                    f"method {method!r}; accepted options: "
                    f"{sorted(accepted) if accepted else 'none'}"
                )
    return fn(dag, **kwargs)
