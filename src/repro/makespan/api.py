"""Evaluator dispatch: one entry point for the four §VI-B methods + exact.

The registry (:data:`EVALUATORS`) maps the paper's method names to
:class:`~repro.makespan.evaluator.Evaluator` instances carrying a
declared option schema and capability flags; :func:`expected_makespan`
prices one DAG, :func:`expected_makespans` prices a whole parameterised
grid through the evaluator's batch entry point (bit-identical to the
per-cell path — the engine's batched sweep stage relies on it).
Options are validated at call time against the evaluator *currently*
registered, so replacing an entry never leaves stale validation behind
(the old ``inspect``-keyed cache did exactly that, and grew without
bound besides).
"""

from __future__ import annotations

import time
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EvaluationError
from repro.makespan import profile as _profile
from repro.makespan.dodin import dodin
from repro.makespan.evaluator import (
    Evaluator,
    EvaluatorOption,
    EvaluatorRegistry,
    FunctionEvaluator,
)
from repro.makespan.exact import exact
from repro.makespan.montecarlo import montecarlo, montecarlo_batch
from repro.makespan.normal import normal, normal_batch
from repro.makespan.paramdag import ParamDAG
from repro.makespan.pathapprox import (
    pathapprox,
    pathapprox_batch,
    pathapprox_fused,
)
from repro.makespan.probdag import ProbDAG

__all__ = [
    "EVALUATORS",
    "get_evaluator",
    "expected_makespan",
    "expected_makespans",
    "expected_makespans_fused",
]

#: Evaluator registry, keyed by the paper's method names.  Mutable:
#: assign an :class:`Evaluator` (or a plain ``fn(dag, **opts)``, wrapped
#: on assignment) to extend or replace a method.
EVALUATORS = EvaluatorRegistry()

EVALUATORS.register(
    FunctionEvaluator(
        montecarlo,
        name="montecarlo",
        summary="sampling ground truth (vectorised trials)",
        deterministic=False,
        # The batch entry point accepts one seed per cell (the engine
        # threads each cell's eval_seed through), so batched sampling
        # is bit-identical to the per-cell loop under any seed policy.
        supports_batch=True,
        batch_fn=montecarlo_batch,
        option_docs={
            "trials": "number of sampled scenarios",
            "seed": "RNG seed (None = fresh entropy; batch: one per cell)",
            "antithetic": "draw (U, 1-U) pairs for variance reduction",
            "batch": "trials per vectorised block (memory bound)",
        },
    )
)
EVALUATORS.register(
    FunctionEvaluator(
        dodin,
        name="dodin",
        summary="series-parallel reduction with node duplication",
        deterministic=True,
        supports_batch=True,  # structure-driven; batches via the cell loop
        option_docs={
            "max_atoms": "support budget per discrete distribution",
            "node_budget_factor": "duplication growth bound (x n + 64)",
        },
    )
)
EVALUATORS.register(
    FunctionEvaluator(
        normal,
        name="normal",
        summary="Sculli's normal approximation (Clark's moment fold)",
        deterministic=True,
        supports_batch=True,
        batch_fn=normal_batch,
    )
)
EVALUATORS.register(
    FunctionEvaluator(
        pathapprox,
        name="pathapprox",
        summary="longest-path approximation (the paper's choice)",
        deterministic=True,
        supports_batch=True,
        batch_fn=pathapprox_batch,
        fused_fn=pathapprox_fused,
        option_docs={
            "k": "path budget (None = adaptive doubling)",
            "max_atoms": "support budget per discrete distribution",
            "factor_common": "factor tasks shared by whole path groups",
            "rtol": "relative tolerance of the adaptive schedule",
            "truncate_mode": "kernel truncation: 'adaptive' (reference) "
            "or 'rect' (fixed-width binning, batched fast path)",
        },
    )
)
EVALUATORS.register(
    FunctionEvaluator(
        exact,
        name="exact",
        summary="exhaustive scenario enumeration (small DAGs only)",
        deterministic=True,
        supports_batch=True,
        option_docs={
            "limit": "refuse DAGs with more than this many nodes",
            "batch": "scenarios per vectorised block",
        },
    )
)


def get_evaluator(method: str) -> Evaluator:
    """The registered evaluator for ``method``.

    Raises :class:`~repro.errors.EvaluationError` for unknown methods.
    A plain callable found in the registry slot (tests may swap the
    whole mapping out) is wrapped on the fly, deriving its schema from
    the *current* function — there is deliberately no cache to go stale.
    """
    try:
        found = EVALUATORS[method]
    except KeyError:
        raise EvaluationError(
            f"unknown evaluation method {method!r}; choose from "
            f"{sorted(EVALUATORS)}"
        ) from None
    if isinstance(found, Evaluator):
        return found
    return FunctionEvaluator(found, name=method)


def expected_makespan(dag: ProbDAG, method: str = "pathapprox", **kwargs) -> float:
    """Expected makespan of a 2-state DAG with the named method.

    ``method`` is one of ``montecarlo``, ``dodin``, ``normal``,
    ``pathapprox`` (default, the paper's choice) or ``exact``; extra
    keyword arguments are forwarded (e.g. ``trials=``/``seed=`` for Monte
    Carlo, ``k=`` for PathApprox).  Keywords outside the evaluator's
    declared option schema raise
    :class:`~repro.errors.EvaluationError` naming the method and its
    accepted options.
    """
    evaluator = get_evaluator(method)
    evaluator.validate_options(kwargs)
    return evaluator.evaluate(dag, **kwargs)


def expected_makespans(
    template: ParamDAG, method: str = "pathapprox", **kwargs: Any
) -> np.ndarray:
    """Expected makespans of every cell of a parameterised DAG template.

    Dispatches to the evaluator's batch entry point; the result is
    bit-identical to evaluating each ``template.cell(i)`` through
    :func:`expected_makespan` (stochastic evaluators accept one seed
    per cell — Monte Carlo's ``seed=[...]``).  Raises for evaluators
    that do not support batching.
    """
    evaluator = get_evaluator(method)
    if not evaluator.supports_batch:
        raise EvaluationError(
            f"method {method!r} does not support batched evaluation; "
            f"evaluate its cells one at a time"
        )
    evaluator.validate_options(kwargs)
    prof = _profile.ACTIVE
    if prof is None:
        return evaluator.evaluate_batch(template, **kwargs)
    t0 = time.perf_counter()
    values = evaluator.evaluate_batch(template, **kwargs)
    prof.record(
        "dispatch", 1, template.n_cells, time.perf_counter() - t0
    )
    return values


def expected_makespans_fused(
    jobs: Sequence[Tuple[ParamDAG, Any, Optional[Sequence]]],
    method: str = "pathapprox",
    **options: Any,
) -> List[np.ndarray]:
    """Price many templates through one fused evaluation dispatch.

    ``jobs`` is a sequence of ``(template, job_options, seeds)`` triples:
    per-job option mappings (merged over the shared ``**options``
    defaults) and an optional per-cell seed list for stochastic
    evaluators (``None`` for closed-form methods), following the seed
    convention of :func:`expected_makespans`.  Returns one value array
    per job, in job order, each **bit-identical** to the corresponding
    ``expected_makespans(template, method, **job_options)`` call with
    the job's seeds threaded through — the fused contract extends the
    batch contract, and the engine's fused sweep dispatch relies on it.
    One profile ``dispatch`` op is recorded per call (``rows`` = jobs,
    ``scalar_rows`` = total cells), so ``repro sweep --profile`` can
    count dispatches and their pooled width.
    """
    evaluator = get_evaluator(method)
    if not evaluator.supports_batch:
        raise EvaluationError(
            f"method {method!r} does not support batched evaluation; "
            f"evaluate its cells one at a time"
        )
    norm_jobs = []
    total_cells = 0
    for template, job_options, seeds in jobs:
        merged = dict(options)
        if job_options:
            merged.update(job_options)
        checked = merged
        if seeds is not None and "seed" not in checked:
            checked = {**merged, "seed": seeds}
        evaluator.validate_options(checked)
        if seeds is not None and len(seeds) != template.n_cells:
            raise EvaluationError(
                f"fused job got {len(seeds)} seeds for "
                f"{template.n_cells} cells (pass one seed per cell)"
            )
        norm_jobs.append((template, merged, seeds))
        total_cells += template.n_cells
    if not norm_jobs:
        return []
    prof = _profile.ACTIVE
    if prof is None:
        return list(evaluator.evaluate_fused(norm_jobs))
    t0 = time.perf_counter()
    values = list(evaluator.evaluate_fused(norm_jobs))
    prof.record(
        "dispatch", len(norm_jobs), total_cells, time.perf_counter() - t0
    )
    return values
