"""Evaluator dispatch: one entry point for the four §VI-B methods + exact."""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import EvaluationError
from repro.makespan.dodin import dodin
from repro.makespan.exact import exact
from repro.makespan.montecarlo import montecarlo
from repro.makespan.normal import normal
from repro.makespan.pathapprox import pathapprox
from repro.makespan.probdag import ProbDAG

__all__ = ["EVALUATORS", "expected_makespan"]

#: Evaluator registry, keyed by the paper's method names.
EVALUATORS: Dict[str, Callable[..., float]] = {
    "montecarlo": montecarlo,
    "dodin": dodin,
    "normal": normal,
    "pathapprox": pathapprox,
    "exact": exact,
}


def expected_makespan(dag: ProbDAG, method: str = "pathapprox", **kwargs) -> float:
    """Expected makespan of a 2-state DAG with the named method.

    ``method`` is one of ``montecarlo``, ``dodin``, ``normal``,
    ``pathapprox`` (default, the paper's choice) or ``exact``; extra
    keyword arguments are forwarded (e.g. ``trials=``/``seed=`` for Monte
    Carlo, ``k=`` for PathApprox).
    """
    try:
        fn = EVALUATORS[method]
    except KeyError:
        raise EvaluationError(
            f"unknown evaluation method {method!r}; choose from "
            f"{sorted(EVALUATORS)}"
        ) from None
    return fn(dag, **kwargs)
