"""Sculli's normal approximation (the paper's NORMAL method, §II-B).

Every completion time is approximated by a normal distribution:

* a node's completion = max of its predecessors' completions + its own
  duration (mean/variance of the 2-state law used exactly);
* the max of two normals is replaced by a normal matching the exact first
  two moments of the max, via Clark's formulas (1961), assuming
  independence;
* multi-way maxima fold pairwise.

Cheap (``O(E)`` scalar work) but biased on graphs with many correlated
paths — exactly the behaviour the §VI-B accuracy study quantifies.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.makespan.probdag import ProbDAG

__all__ = ["normal", "clark_max"]

_SQRT2 = math.sqrt(2.0)
_INV_SQRT2PI = 1.0 / math.sqrt(2.0 * math.pi)


def _phi(x: float) -> float:
    """Standard normal pdf."""
    return _INV_SQRT2PI * math.exp(-0.5 * x * x)


def _Phi(x: float) -> float:
    """Standard normal cdf."""
    return 0.5 * (1.0 + math.erf(x / _SQRT2))


def clark_max(
    m1: float, v1: float, m2: float, v2: float, rho: float = 0.0
) -> Tuple[float, float]:
    """Clark's moment-matching for ``max(X1, X2)`` of correlated normals.

    Returns the exact mean and variance of the max of two jointly normal
    variables with means ``m1, m2``, variances ``v1, v2`` and correlation
    ``rho``; the method then *treats* the max as normal with those moments.
    """
    a2 = v1 + v2 - 2.0 * rho * math.sqrt(v1 * v2)
    if a2 <= 1e-300:
        # (near-)perfectly correlated equal-variance case: max is the
        # larger mean's variable.
        if m1 >= m2:
            return m1, v1
        return m2, v2
    a = math.sqrt(a2)
    alpha = (m1 - m2) / a
    cdf_pos = _Phi(alpha)
    cdf_neg = _Phi(-alpha)
    pdf = _phi(alpha)
    mean = m1 * cdf_pos + m2 * cdf_neg + a * pdf
    second = (
        (m1 * m1 + v1) * cdf_pos
        + (m2 * m2 + v2) * cdf_neg
        + (m1 + m2) * a * pdf
    )
    var = max(0.0, second - mean * mean)
    return mean, var


def normal(dag: ProbDAG) -> float:
    """Sculli's estimate of the expected makespan of a 2-state DAG."""
    n = dag.n
    if n == 0:
        return 0.0
    means: List[float] = [0.0] * n
    variances: List[float] = [0.0] * n
    for v in range(n):
        t = dag.task(v)
        m_ready, v_ready = 0.0, 0.0
        first = True
        for q in dag.preds[v]:
            if first:
                m_ready, v_ready = means[q], variances[q]
                first = False
            else:
                m_ready, v_ready = clark_max(m_ready, v_ready, means[q], variances[q])
        means[v] = m_ready + t.mean
        variances[v] = v_ready + t.variance

    m_out, v_out = 0.0, 0.0
    first = True
    for s in dag.sinks():
        if first:
            m_out, v_out = means[s], variances[s]
            first = False
        else:
            m_out, v_out = clark_max(m_out, v_out, means[s], variances[s])
    return m_out
