"""Sculli's normal approximation (the paper's NORMAL method, §II-B).

Every completion time is approximated by a normal distribution:

* a node's completion = max of its predecessors' completions + its own
  duration (mean/variance of the 2-state law used exactly);
* the max of two normals is replaced by a normal matching the exact first
  two moments of the max, via Clark's formulas (1961), assuming
  independence;
* multi-way maxima fold pairwise.

Cheap (``O(E)`` scalar work) but biased on graphs with many correlated
paths — exactly the behaviour the §VI-B accuracy study quantifies.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.makespan.probdag import ProbDAG

__all__ = ["normal", "normal_batch", "clark_max"]

_SQRT2 = math.sqrt(2.0)
_INV_SQRT2PI = 1.0 / math.sqrt(2.0 * math.pi)


def _phi(x: float) -> float:
    """Standard normal pdf."""
    return _INV_SQRT2PI * math.exp(-0.5 * x * x)


def _Phi(x: float) -> float:
    """Standard normal cdf."""
    return 0.5 * (1.0 + math.erf(x / _SQRT2))


def clark_max(
    m1: float, v1: float, m2: float, v2: float, rho: float = 0.0
) -> Tuple[float, float]:
    """Clark's moment-matching for ``max(X1, X2)`` of correlated normals.

    Returns the exact mean and variance of the max of two jointly normal
    variables with means ``m1, m2``, variances ``v1, v2`` and correlation
    ``rho``; the method then *treats* the max as normal with those moments.
    """
    a2 = v1 + v2 - 2.0 * rho * math.sqrt(v1 * v2)
    if a2 <= 1e-300:
        # (near-)perfectly correlated equal-variance case: max is the
        # larger mean's variable.
        if m1 >= m2:
            return m1, v1
        return m2, v2
    a = math.sqrt(a2)
    alpha = (m1 - m2) / a
    cdf_pos = _Phi(alpha)
    cdf_neg = _Phi(-alpha)
    pdf = _phi(alpha)
    mean = m1 * cdf_pos + m2 * cdf_neg + a * pdf
    second = (
        (m1 * m1 + v1) * cdf_pos
        + (m2 * m2 + v2) * cdf_neg
        + (m1 + m2) * a * pdf
    )
    var = max(0.0, second - mean * mean)
    return mean, var


def normal(dag: ProbDAG) -> float:
    """Sculli's estimate of the expected makespan of a 2-state DAG."""
    n = dag.n
    if n == 0:
        return 0.0
    means: List[float] = [0.0] * n
    variances: List[float] = [0.0] * n
    for v in range(n):
        t = dag.task(v)
        m_ready, v_ready = 0.0, 0.0
        first = True
        for q in dag.preds[v]:
            if first:
                m_ready, v_ready = means[q], variances[q]
                first = False
            else:
                m_ready, v_ready = clark_max(m_ready, v_ready, means[q], variances[q])
        means[v] = m_ready + t.mean
        variances[v] = v_ready + t.variance

    m_out, v_out = 0.0, 0.0
    first = True
    for s in dag.sinks():
        if first:
            m_out, v_out = means[s], variances[s]
            first = False
        else:
            m_out, v_out = clark_max(m_out, v_out, means[s], variances[s])
    return m_out


# --------------------------------------------------------------------- #
# batched evaluation over a parameterised DAG template
# --------------------------------------------------------------------- #

# math.erf has no NumPy counterpart and np.exp is not guaranteed to
# round identically to libm's exp, so the transcendental pieces of the
# vectorised Clark fold go through the *scalar* functions element-wise;
# everything algebraic around them is one NumPy pass over the cell axis.
_ERF = np.frompyfunc(math.erf, 1, 1)
_EXP = np.frompyfunc(math.exp, 1, 1)


def _clark_max_cells(
    m1: np.ndarray, v1: np.ndarray, m2: np.ndarray, v2: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """:func:`clark_max` (``rho=0``) over a leading cell axis.

    Element-wise bit-identical to the scalar function: every arithmetic
    step mirrors its expression (down to association order), and the
    degenerate branch is applied by mask after computing both sides.
    """
    rho = 0.0
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        a2 = v1 + v2 - 2.0 * rho * np.sqrt(v1 * v2)
        degenerate = a2 <= 1e-300
        a = np.sqrt(a2)
        alpha = (m1 - m2) / a
        cdf_pos = 0.5 * (1.0 + _ERF(alpha / _SQRT2).astype(float))
        cdf_neg = 0.5 * (1.0 + _ERF((-alpha) / _SQRT2).astype(float))
        pdf = _INV_SQRT2PI * _EXP(-0.5 * alpha * alpha).astype(float)
        mean = m1 * cdf_pos + m2 * cdf_neg + a * pdf
        second = (
            (m1 * m1 + v1) * cdf_pos
            + (m2 * m2 + v2) * cdf_neg
            + (m1 + m2) * a * pdf
        )
        spread = second - mean * mean
        # Python's max(0.0, x) keeps x only when x > 0 (NaN falls back
        # to 0.0); np.maximum would propagate NaN instead.
        var = np.where(spread > 0.0, spread, 0.0)
        larger_first = m1 >= m2
        mean = np.where(degenerate, np.where(larger_first, m1, m2), mean)
        var = np.where(degenerate, np.where(larger_first, v1, v2), var)
    return mean, var


def normal_batch(template) -> np.ndarray:
    """Sculli's estimates for every cell of a parameterised DAG.

    ``template`` is a :class:`~repro.makespan.paramdag.ParamDAG`.  The
    whole moment propagation runs with a leading cell axis — one
    vectorised Clark fold per edge instead of one scalar fold per edge
    per cell — and is bit-identical to evaluating each materialised
    cell with :func:`normal` (pinned by the batch-parity tests).

    The propagation schedule (node order, predecessor folds, sink fold)
    is a pure function of structure; it is compiled once into a
    :class:`~repro.makespan.foldplan.ClarkPlan` cached on the template
    and replayed here over the parameter matrices.
    """
    n = template.n
    n_cells = template.n_cells
    if n == 0:
        return np.zeros(n_cells)
    from repro.makespan.foldplan import clark_plan

    plan = clark_plan(template)
    task_means = template.means
    task_vars = template.variances
    means: List[np.ndarray] = [None] * n  # type: ignore[list-item]
    variances: List[np.ndarray] = [None] * n  # type: ignore[list-item]
    for v, preds in plan.steps:
        if preds:
            m_ready, v_ready = means[preds[0]], variances[preds[0]]
            for q in preds[1:]:
                m_ready, v_ready = _clark_max_cells(
                    m_ready, v_ready, means[q], variances[q]
                )
        else:
            m_ready = np.zeros(n_cells)
            v_ready = np.zeros(n_cells)
        means[v] = m_ready + task_means[:, v]
        variances[v] = v_ready + task_vars[:, v]

    sinks = plan.sinks
    m_out, v_out = means[sinks[0]], variances[sinks[0]]
    for s in sinks[1:]:
        m_out, v_out = _clark_max_cells(m_out, v_out, means[s], variances[s])
    return np.asarray(m_out, dtype=float)
