"""Thin Python client for the evaluation service (stdlib ``urllib``).

>>> client = ServiceClient("http://127.0.0.1:8765")
>>> reply = client.evaluate(family="genome", ntasks=50, processors=5,
...                         pfail=1e-3, ccr=0.01)
>>> reply.record.em_some, reply.cached

Transport and server-side failures both surface as
:class:`~repro.errors.ServiceError` carrying the server's error message
where one exists.

Idempotent reads (``GET /status``, ``/sources``, ``/cache``) are
retried a bounded number of times with exponential backoff on transport
failures and HTTP 5xx replies — a service mid-restart answers a
monitoring probe instead of failing it.  POSTs are **never** retried:
``/evaluate``/``/sweep`` can take arbitrarily long and a blind resend
would double-submit work (coalescing would absorb it, but the client
should not rely on that).
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

from repro.engine.records import CellResult, record_from_dict
from repro.engine.sweep import SweepSpec
from repro.errors import ServiceError
from repro.mspg.graph import Workflow
from repro.service.fingerprint import EvalRequest, request_to_dict

__all__ = ["EvalReply", "SweepReply", "ServiceClient"]


class _RetryableServiceError(ServiceError):
    """Transport failure / 5xx: retryable for idempotent reads only."""


@dataclass(frozen=True)
class EvalReply:
    """One ``/evaluate`` answer."""

    record: CellResult
    fingerprint: str
    cached: bool
    wall_time_s: float


@dataclass(frozen=True)
class SweepReply:
    """One ``/sweep`` answer (records in grid order).

    ``note`` is the server's seed-policy caveat when present (spawn
    policy over multiple (size, processors) groups — see
    :mod:`repro.service.server`), else ``None``.
    """

    records: List[CellResult]
    cached: int
    computed: int
    wall_time_s: float
    note: Optional[str] = None


class ServiceClient:
    """HTTP client for one :class:`~repro.service.server.ReproService`.

    ``retries`` bounds how many times an idempotent GET is re-sent
    after a transport failure or 5xx reply (``retry_backoff`` seconds
    before the first retry, doubling each attempt).  POSTs are always
    single-shot.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 600.0,
        retries: int = 3,
        retry_backoff: float = 0.1,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.retry_backoff = max(0.0, float(retry_backoff))

    # ------------------------------------------------------------------
    # Transport.

    def _request(
        self, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        # Only payload-less GETs are idempotent; a POST that timed out
        # may still be computing server-side, so it is never re-sent.
        attempts = 1 + (self.retries if payload is None else 0)
        backoff = self.retry_backoff
        for attempt in range(attempts):
            try:
                return self._request_once(path, payload)
            except _RetryableServiceError as exc:
                if attempt + 1 >= attempts:
                    raise ServiceError(str(exc)) from None
                time.sleep(backoff)
                backoff *= 2
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_once(
        self, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                body = resp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8"))["error"]
            except Exception:  # noqa: BLE001 — error body is best-effort
                message = str(exc)
            if exc.code >= 500:
                # Server-side breakage, not a request problem — safe to
                # retry an idempotent read.
                raise _RetryableServiceError(f"{path}: {message}") from None
            raise ServiceError(f"{path}: {message}") from None
        except (urllib.error.URLError, socket.timeout, OSError) as exc:
            raise _RetryableServiceError(
                f"cannot reach service at {self.base_url}: {exc}"
            ) from None
        try:
            return json.loads(body)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"{path}: malformed reply: {exc}") from None

    def wait_ready(self, timeout: float = 10.0, interval: float = 0.05) -> None:
        """Poll ``/status`` until the service answers (or raise)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                self.status()
                return
            except ServiceError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(interval)

    # ------------------------------------------------------------------
    # Endpoints.

    def evaluate(
        self, request: Optional[EvalRequest] = None, **fields: Any
    ) -> EvalReply:
        """POST one cell; pass an :class:`EvalRequest` or its fields."""
        if request is not None and fields:
            raise ServiceError("pass either a request object or fields, not both")
        payload = (
            request_to_dict(request) if request is not None else dict(fields)
        )
        reply = self._request("/evaluate", payload)
        return EvalReply(
            record=record_from_dict(reply["record"]),
            fingerprint=reply["fingerprint"],
            cached=bool(reply["cached"]),
            wall_time_s=float(reply["wall_time_s"]),
        )

    def sweep(
        self, spec: Optional[SweepSpec] = None, **fields: Any
    ) -> SweepReply:
        """POST a whole grid; pass a :class:`SweepSpec` or its fields."""
        if spec is not None and fields:
            raise ServiceError("pass either a spec object or fields, not both")
        if spec is not None:
            fields = {
                "family": spec.family,
                "sizes": list(spec.sizes),
                "processors": {str(k): list(v) for k, v in spec.processors.items()},
                "pfails": list(spec.pfails),
                "ccrs": list(spec.ccrs),
                "seed": spec.seed,
                "method": spec.method,
                "bandwidth": spec.bandwidth,
                "linearizer": spec.linearizer,
                "save_final_outputs": spec.save_final_outputs,
                "seed_policy": spec.seed_policy,
                "eval_seed_policy": spec.eval_seed_policy,
                "evaluator_options": dict(spec.evaluator_options),
            }
            if spec.source is not None:
                # A file-sourced spec names its workflow by content
                # hash; the server resolves it from its registry (the
                # workflow-sourced payload shape takes a flat
                # processors list).
                fields["workflow"] = spec.source.content_hash
                fields["processors"] = list(
                    spec.processors[spec.sizes[0]]
                )
        reply = self._request("/sweep", dict(fields))
        return SweepReply(
            records=[record_from_dict(r) for r in reply["records"]],
            cached=int(reply["cached"]),
            computed=int(reply["computed"]),
            wall_time_s=float(reply["wall_time_s"]),
            note=reply.get("note"),
        )

    def register(
        self, workflow: Union[Workflow, Dict[str, Any]], label: Optional[str] = None
    ) -> str:
        """Register an external workflow source; returns its content hash.

        Accepts a :class:`~repro.mspg.graph.Workflow` or its
        ``repro-workflow-v1`` JSON dict.  Idempotent: re-registering the
        same content (e.g. after a service restart) returns the same
        hash, so previously stored fingerprints keep matching.
        """
        if isinstance(workflow, Workflow):
            from repro.generators.serialization import workflow_to_json

            workflow = workflow_to_json(workflow)
        payload: Dict[str, Any] = {"workflow": workflow}
        if label is not None:
            payload["label"] = label
        return str(self._request("/register", payload)["workflow"])

    def sources(self) -> List[Dict[str, Any]]:
        """The service's registered external workflow sources."""
        return list(self._request("/sources")["sources"])

    def status(self) -> Dict[str, Any]:
        return self._request("/status")

    def cache_stats(self) -> Dict[str, Any]:
        return self._request("/cache")

    def clear_cache(self) -> Dict[str, Any]:
        return self._request("/cache", {"action": "clear"})
