"""Canonical request fingerprinting for the evaluation service.

An :class:`EvalRequest` names one experiment cell — the workflow
(either a (family, size, seed) generation triple or the content hash of
a registered external workflow file), the platform (processors, pfail,
bandwidth), the CCR target, and the evaluation method with its options.
Its :func:`fingerprint` is a SHA-256 digest of the canonical JSON
payload, used as the durable-store key and the request-coalescing
identity: two requests with the same fingerprint are the same
computation.

**The execution contract.**  A request is *defined* to produce the
record of the 1×1 grid sweep containing only its cell::

    run_sweep(request_to_spec(request))[0]

Under the default ``"stable"`` seed policy that is bit-identical to
:func:`repro.experiments.figures.run_cell` (and hence to
:func:`repro.api.run_strategies` with the derived workflow/schedule
seeds) for every closed-form method.  The contract is what makes
coalescing safe: cell results of closed-form methods do not depend on
which batch computed them.  Monte Carlo obeys the contract too when the
request's ``eval_seed_policy`` is ``"content"`` — its sampling seed is
then :func:`repro.engine.sweep.cell_eval_seed` of the cell's own
content, identical in any grid — and such requests coalesce like any
other method.  Under the legacy ``"positional"`` policy the sampling
stream is derived from the cell's position in its grid, so the
scheduler falls back to per-cell 1×1 dispatch for those requests.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.engine.records import CellResult
from repro.engine.sweep import EVAL_SEED_POLICIES, SEED_POLICIES, SweepSpec
from repro.errors import ServiceError
from repro.makespan.api import EVALUATORS
from repro.workloads import SourceRegistry, file_family
from repro.util.validation import (
    bandwidth_error,
    ccr_error,
    pfail_error,
    seed_error,
)

__all__ = [
    "EvalRequest",
    "GRID_SENSITIVE_METHODS",
    "grid_sensitive",
    "fingerprint",
    "request_to_dict",
    "request_from_dict",
    "request_to_spec",
    "requests_from_spec",
    "request_for_record",
]

#: Stochastic methods whose *positional* sampling seeds are derived per
#: grid index.  Grid sensitivity is policy-conditional: under the
#: ``"content"`` eval-seed policy these methods derive their seeds from
#: cell content (see :func:`repro.engine.sweep.cell_eval_seed`) and are
#: coalesced, stored and backfilled like every closed-form method; only
#: under the legacy ``"positional"`` policy does the scheduler keep
#: dispatching them as per-cell 1×1 specs (see :func:`grid_sensitive`).
GRID_SENSITIVE_METHODS = frozenset({"montecarlo"})


def grid_sensitive(method: str, eval_seed_policy: str) -> bool:
    """Whether a cell's result depends on the shape of the batch grid.

    True only for :data:`GRID_SENSITIVE_METHODS` under the
    ``"positional"`` eval-seed policy; the ``"content"`` policy makes
    their sampling seeds position-independent.
    """
    return method in GRID_SENSITIVE_METHODS and eval_seed_policy != "content"


#: Fingerprint schema tag — bump when the canonical payload changes shape
#: so old digests can never alias new ones.  v2 added the ``workflow``
#: field (external workflow sources addressed by content hash); v3 added
#: ``eval_seed_policy`` (content-seeded Monte Carlo) — positional-policy
#: rows from older stores are rewritten under v3 digests carrying their
#: legacy policy explicitly, so they can never answer a content-policy
#: request.  Opening a v1/v2 store migrates its rows (see
#: :mod:`repro.service.store`).
FINGERPRINT_VERSION = 3

#: Shape of a workflow content hash (see :func:`repro.workloads.workflow_hash`).
_HASH_HEX_LEN = 64
_HASH_CHARS = frozenset("0123456789abcdef")


@dataclass(frozen=True)
class EvalRequest:
    """One evaluation-service request (= one experiment cell).

    ``seed`` is the *root* experiment seed; the workflow and schedule
    seeds are derived from it per ``seed_policy``, exactly as
    :class:`~repro.engine.sweep.SweepSpec` does.  ``evaluator_options``
    accepts a mapping and is canonicalised to a sorted tuple of pairs.

    ``workflow`` names an external workflow by canonical content hash
    (:func:`repro.workloads.workflow_hash`) instead of generating a
    ``family`` instance; the family string is then content-derived
    (``file:<hash12>``, filled in automatically) and ``ntasks`` must be
    the file's actual task count (checked against the registered source
    at dispatch time).
    """

    family: str
    ntasks: int
    processors: int
    pfail: float
    ccr: float
    seed: int = 2017
    method: str = "pathapprox"
    bandwidth: float = 100e6
    linearizer: str = "random"
    save_final_outputs: bool = True
    seed_policy: str = "stable"
    #: Evaluation-seed derivation (see
    #: :data:`repro.engine.sweep.EVAL_SEED_POLICIES`): ``"positional"``
    #: (legacy grid-position seeds; grid-sensitive methods are then
    #: dispatched per cell) or ``"content"`` (position-independent
    #: :func:`~repro.engine.sweep.cell_eval_seed` streams; every method
    #: coalesces and stores alike).
    eval_seed_policy: str = "positional"
    evaluator_options: Tuple[Tuple[str, Any], ...] = ()
    #: Content hash of an external workflow (``None`` = family-sourced).
    workflow: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "family", str(self.family))
        if self.workflow is not None:
            if (
                not isinstance(self.workflow, str)
                or len(self.workflow) != _HASH_HEX_LEN
                or not set(self.workflow) <= _HASH_CHARS
            ):
                raise ServiceError(
                    f"workflow must be a {_HASH_HEX_LEN}-char lowercase hex "
                    f"content hash (see repro.workloads.workflow_hash), "
                    f"got {self.workflow!r}"
                )
            derived = file_family(self.workflow)
            if self.family and self.family != derived:
                raise ServiceError(
                    f"family {self.family!r} contradicts the workflow "
                    f"content hash (its family string is {derived!r}); "
                    "omit family for file-sourced requests"
                )
            object.__setattr__(self, "family", derived)
        elif not self.family:
            raise ServiceError(
                "a request needs either a family or a workflow content hash"
            )
        try:
            object.__setattr__(self, "ntasks", int(self.ntasks))
            object.__setattr__(self, "processors", int(self.processors))
            object.__setattr__(self, "pfail", float(self.pfail))
            object.__setattr__(self, "ccr", float(self.ccr))
            object.__setattr__(self, "seed", int(self.seed))
            object.__setattr__(self, "bandwidth", float(self.bandwidth))
        except (TypeError, ValueError, OverflowError) as exc:
            raise ServiceError(f"bad numeric request field: {exc}") from None
        try:
            options = tuple(sorted(dict(self.evaluator_options).items()))
        except (TypeError, ValueError) as exc:
            raise ServiceError(
                f"evaluator_options must be a mapping with string keys: {exc}"
            ) from None
        object.__setattr__(self, "evaluator_options", options)
        if self.ntasks < 1:
            raise ServiceError(f"ntasks must be >= 1, got {self.ntasks}")
        if self.processors < 1:
            raise ServiceError(
                f"processors must be >= 1, got {self.processors}"
            )
        for msg in (
            pfail_error(self.pfail),
            ccr_error(self.ccr),
            bandwidth_error(self.bandwidth),
            seed_error(self.seed),
        ):
            if msg is not None:
                raise ServiceError(msg)
        # Option values must be JSON scalars: the canonical fingerprint
        # payload is strict JSON, and the scheduler's coalesce_key needs
        # hashable options (an unhashable value would otherwise blow up
        # batch planning mid-dispatch, failing unrelated requests).
        for key, value in options:
            if not isinstance(key, str):
                raise ServiceError(
                    f"evaluator option names must be strings, got {key!r}"
                )
            if isinstance(value, float) and not math.isfinite(value):
                raise ServiceError(
                    f"evaluator option {key!r} must be finite, got {value}"
                )
            if value is not None and not isinstance(
                value, (str, int, float, bool)
            ):
                raise ServiceError(
                    f"evaluator option {key!r} must be a JSON scalar "
                    f"(str/int/float/bool/None), got {type(value).__name__}"
                )
        if self.method not in EVALUATORS:
            raise ServiceError(
                f"unknown method {self.method!r}; "
                f"choose from {sorted(EVALUATORS)}"
            )
        if self.seed_policy not in SEED_POLICIES:
            raise ServiceError(
                f"unknown seed policy {self.seed_policy!r}; "
                f"choose from {list(SEED_POLICIES)}"
            )
        if self.eval_seed_policy not in EVAL_SEED_POLICIES:
            raise ServiceError(
                f"unknown eval-seed policy {self.eval_seed_policy!r}; "
                f"choose from {list(EVAL_SEED_POLICIES)}"
            )

    @property
    def coalesce_key(self) -> Tuple[Any, ...]:
        """Everything but the (pfail, CCR) axes — requests sharing this
        key share a workflow instance and a schedule, so the scheduler
        batches them into common :class:`SweepSpec` grids."""
        return (
            self.family,
            self.workflow,
            self.ntasks,
            self.processors,
            self.seed,
            self.method,
            self.bandwidth,
            self.linearizer,
            self.save_final_outputs,
            self.seed_policy,
            self.eval_seed_policy,
            self.evaluator_options,
        )

    @property
    def grid_sensitive(self) -> bool:
        """Whether the result depends on the batch grid shape.  Only
        positional-policy sampling methods qualify (their seeds are
        derived per grid index); such requests are always dispatched as
        per-cell 1×1 grids.  Content-policy requests never are."""
        return grid_sensitive(self.method, self.eval_seed_policy)


def request_to_dict(request: EvalRequest) -> Dict[str, Any]:
    """JSON-ready field dict (evaluator options as a plain mapping)."""
    out: Dict[str, Any] = {
        f.name: getattr(request, f.name) for f in fields(EvalRequest)
    }
    out["evaluator_options"] = dict(request.evaluator_options)
    return out


def request_from_dict(payload: Mapping[str, Any]) -> EvalRequest:
    """Rebuild a request from a field mapping; unknown keys are an error
    (a mistyped field silently defaulting would corrupt fingerprints).

    ``family`` may be omitted when a ``workflow`` content hash is given
    (it is content-derived in that case, see :class:`EvalRequest`).
    """
    names = {f.name for f in fields(EvalRequest)}
    unknown = sorted(set(payload) - names)
    if unknown:
        raise ServiceError(
            f"unknown request field(s) {', '.join(map(repr, unknown))}; "
            f"accepted: {sorted(names)}"
        )
    payload = dict(payload)
    if payload.get("workflow") is not None:
        payload.setdefault("family", "")
    try:
        return EvalRequest(**payload)
    except (TypeError, ValueError, OverflowError) as exc:
        raise ServiceError(f"bad request payload: {exc}") from None


def fingerprint(request: EvalRequest) -> str:
    """Canonical SHA-256 fingerprint (hex) of one request.

    The digest covers every field through the canonical JSON payload
    (sorted keys, exact float repr), prefixed with the fingerprint
    schema version.
    """
    payload = request_to_dict(request)
    payload["_v"] = FINGERPRINT_VERSION
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def request_to_spec(
    request: EvalRequest, registry: Optional[SourceRegistry] = None
) -> SweepSpec:
    """The request's defining 1×1 grid (see the module docstring).

    Requests naming an external workflow by content hash need a
    ``registry`` holding the source; an unknown hash (or a ``ntasks``
    that contradicts the file's task count) raises
    :class:`~repro.errors.ServiceError`.
    """
    source = None
    if request.workflow is not None:
        if registry is None:
            raise ServiceError(
                f"request names workflow source "
                f"{request.workflow[:12]!r} but no source registry is "
                "available"
            )
        source = registry.require(request.workflow)
        if request.ntasks != source.workflow.n_tasks:
            raise ServiceError(
                f"request ntasks={request.ntasks} contradicts workflow "
                f"source {request.workflow[:12]!r} "
                f"({source.workflow.n_tasks} tasks)"
            )
    return SweepSpec(
        family=request.family,
        sizes=(request.ntasks,),
        processors={request.ntasks: (request.processors,)},
        pfails=(request.pfail,),
        ccrs=(request.ccr,),
        seed=request.seed,
        method=request.method,
        bandwidth=request.bandwidth,
        linearizer=request.linearizer,
        save_final_outputs=request.save_final_outputs,
        seed_policy=request.seed_policy,
        eval_seed_policy=request.eval_seed_policy,
        evaluator_options=request.evaluator_options,
        source=source,
        name=f"cell[{request.family}]",
    )


def requests_from_spec(spec: SweepSpec) -> List[EvalRequest]:
    """Expand a sweep grid into per-cell requests, in grid order.

    The inverse view of coalescing: the service's ``/sweep`` endpoint
    and the store's sweep backfill both reduce a grid to its cells so
    every cell is individually addressable by fingerprint.
    """
    return [
        EvalRequest(
            family=spec.family,
            ntasks=ntasks,
            processors=p,
            pfail=pfail,
            ccr=ccr,
            seed=spec.seed,
            method=spec.method,
            bandwidth=spec.bandwidth,
            linearizer=spec.linearizer,
            save_final_outputs=spec.save_final_outputs,
            seed_policy=spec.seed_policy,
            eval_seed_policy=spec.eval_seed_policy,
            evaluator_options=spec.evaluator_options,
            workflow=(
                spec.source.content_hash if spec.source is not None else None
            ),
        )
        for ntasks in spec.sizes
        for p in spec.processors[ntasks]
        for pfail in spec.pfails
        for ccr in spec.ccrs
    ]


def request_for_record(
    template: EvalRequest, record: CellResult
) -> EvalRequest:
    """The request whose cell a sweep ``record`` answers, given a
    ``template`` carrying the sweep's non-axis fields (seed, method, ...).

    Used by the store's backfill to key historical sweep records.
    """
    return replace(
        template,
        family=record.family,
        ntasks=record.ntasks_requested,
        processors=record.processors,
        pfail=record.pfail,
        ccr=record.ccr,
    )
