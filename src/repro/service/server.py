"""The evaluation service's HTTP front end (stdlib only).

A :class:`ReproService` owns a durable :class:`ResultStore`, a
coalescing :class:`BatchScheduler` and a ``ThreadingHTTPServer`` that
speaks a small JSON API:

============  ======  ====================================================
path          method  semantics
============  ======  ====================================================
/evaluate     POST    one cell request (:func:`request_from_dict` fields);
                      replies with the record, its fingerprint, and
                      ``cached`` (true when served from the store).
                      Concurrent requests are coalesced: each handler
                      thread submits to the shared scheduler, which
                      batches everything arriving within the linger
                      window and merges identical fingerprints.  A
                      ``workflow`` field names a registered external
                      workflow by content hash instead of a family.
/register     POST    load an external workflow source:
                      ``{"workflow": <repro-workflow-v1 JSON>,
                      "label": ...}``; replies with the canonical
                      content hash (idempotent — re-registering the
                      same content returns the same hash), the
                      content-derived family string and the task count.
                      Sources are persisted in the store's ``sources``
                      table and rehydrated on service start, so
                      ``/sweep``-by-hash survives restarts without a
                      re-upload.
/sources      GET     the registered external workflow sources
                      (hash, family, ntasks, label per entry).
/sweep        POST    a whole grid (SweepSpec-shaped payload; a
                      ``workflow`` content hash may replace
                      family/sizes for a registered source); expanded
                      to per-cell requests, answered from the store
                      where possible, the rest dispatched as coalesced
                      batches; replies with records in grid order.
                      Every cell follows the per-cell 1×1 contract.
                      Under the ``"stable"`` seed policy (the
                      endpoint's default) that makes the reply equal to
                      ``run_sweep`` of the same spec bit for bit for
                      closed-form methods.  Under ``"spawn"`` the
                      equality only holds for grids with a single
                      (size, processors) group: ``run_sweep`` derives
                      spawn seeds positionally across groups, while the
                      service answers each cell from its own 1×1 grid —
                      multi-group spawn replies carry a ``note`` field
                      saying so.  Positional-policy Monte Carlo cells
                      use per-cell sampling seeds instead of a
                      monolithic grid's positional ones (same
                      estimator, different sampling stream); under
                      ``eval_seed_policy: "content"`` Monte Carlo seeds
                      are content-derived, so the reply equals
                      ``run_sweep`` of the same content-policy spec
                      exactly like the closed-form methods.
/status       GET     uptime, version, store + scheduler counters
                      (including the coalesced batch sizes dispatched
                      through the engine's batched evaluation core), the
                      execution backend, and the work queue's state —
                      registered workers included.
/cache        GET     store detail (path, schema, entries, hit rates).
/cache        POST    ``{"action": "clear"}`` empties store + pipeline.
============  ======  ====================================================

The coordinator endpoints of the remote execution backend —
``POST /work/lease``, ``/work/complete``, ``/work/fail`` and
``/workers/register`` (see :mod:`repro.engine.backends.remote`) — are
mounted on the same server, so ``repro serve --backend remote`` turns
the service into the coordinator of a ``repro worker`` fleet: dispatched
batches are enqueued as leased work units, workers poll them over HTTP,
and a worker that dies mid-unit has its lease expire and the unit
requeued.  The durable store sits in front of the queue, so answered
fingerprints never reach the fleet at all.

Errors come back as ``{"error": ...}`` with status 400 (bad request /
library error) or 404 (unknown path).  Start a blocking server with
:func:`serve`, or an in-process background one with
``ReproService(...).start()`` (used by the tests and the quickstart).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Sequence, Tuple, Union

from repro import __version__
from repro.engine.backends import (
    BACKENDS,
    RemoteWorkerBackend,
    WorkQueue,
    queue_routes,
)
from repro.engine.records import record_to_dict
from repro.engine.sweep import SweepSpec
from repro.errors import ReproError, ServiceError
from repro.engine.sweep import EVAL_SEED_POLICIES
from repro.makespan import native as native_kernels
from repro.makespan import profile as kernel_profile
from repro.service.fingerprint import (
    grid_sensitive,
    request_from_dict,
    requests_from_spec,
)
from repro.service.scheduler import BatchScheduler
from repro.service.store import SCHEMA_VERSION, ResultStore
from repro.workloads import FileSource, SourceRegistry

__all__ = ["ReproService", "serve", "sweep_spec_from_payload"]


def sweep_spec_from_payload(
    payload: Dict[str, Any], registry: Optional[SourceRegistry] = None
) -> SweepSpec:
    """Build a :class:`SweepSpec` from a ``/sweep`` JSON payload.

    ``processors`` may be a mapping (size → counts, JSON string keys
    accepted) or a flat list applied to every size, mirroring the CLI.
    A ``workflow`` content hash (resolved through ``registry``)
    replaces ``family``/``sizes``: the grid's single size is the file's
    task count and ``processors`` must be a flat list of counts.
    """
    payload = dict(payload)
    source = None
    if payload.get("workflow") is not None:
        if registry is None:
            raise ServiceError(
                "sweep payload names a workflow source but no source "
                "registry is available"
            )
        source = registry.require(str(payload.pop("workflow")))
        payload.setdefault("family", source.spec_family)
        payload.setdefault("sizes", [source.workflow.n_tasks])
    try:
        family = payload.pop("family")
        sizes = payload.pop("sizes")
        processors = payload.pop("processors")
        pfails = payload.pop("pfails")
        ccrs = payload.pop("ccrs")
    except KeyError as exc:
        raise ServiceError(f"sweep payload missing field {exc.args[0]!r}") from None
    if not isinstance(processors, dict):
        # Flat list → the same counts for every size; everything else
        # (int/float coercion of sizes, keys, pfails, ccrs, evaluator
        # options) is SweepSpec.__post_init__'s job — it raises
        # ExperimentError, which the handler maps to a 400 like any
        # other validation failure.
        try:
            counts = tuple(processors)
            processors = {n: counts for n in sizes}
        except TypeError as exc:
            raise ServiceError(f"bad sweep sizes/processors: {exc}") from None
    elif source is not None:
        raise ServiceError(
            "a workflow-sourced sweep takes a flat processors list "
            "(its single size is the file's task count)"
        )
    allowed = {
        "seed",
        "method",
        "bandwidth",
        "linearizer",
        "save_final_outputs",
        "seed_policy",
        "eval_seed_policy",
        "evaluator_options",
        "name",
    }
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise ServiceError(
            f"unknown sweep field(s) {', '.join(map(repr, unknown))}; "
            f"accepted: {sorted(allowed | {'family', 'sizes', 'processors', 'pfails', 'ccrs', 'workflow'})}"
        )
    payload.setdefault("seed_policy", "stable")
    return SweepSpec(
        family=family,
        sizes=sizes,
        processors=processors,
        pfails=pfails,
        ccrs=ccrs,
        source=source,
        **payload,
    )


class _Handler(BaseHTTPRequestHandler):
    """JSON request handler; the owning service is a class attribute."""

    service: "ReproService"  # bound by ReproService._handler_class
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def log_message(self, fmt: str, *args: Any) -> None:
        log = self.service.log
        if log is not None:
            log(f"{self.address_string()} {fmt % args}")

    def _reply(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise ServiceError("request body must be a JSON object")
        return payload

    def _dispatch(self, routes: Dict[str, Callable[[], None]]) -> None:
        handler = routes.get(self.path.rstrip("/") or "/")
        if handler is None:
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            handler()
        except ReproError as exc:
            self._reply(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 — never kill the thread
            self._reply(500, {"error": f"internal error: {exc}"})

    # -- routes --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        self._dispatch(
            {
                "/status": self._get_status,
                "/cache": self._get_cache,
                "/sources": self._get_sources,
            }
        )

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        routes: Dict[str, Callable[[], None]] = {
            "/evaluate": self._post_evaluate,
            "/sweep": self._post_sweep,
            "/cache": self._post_cache,
            "/register": self._post_register,
        }
        # The remote backend's coordinator endpoints ride the same
        # route table (queue_routes) as the standalone WorkServer, so
        # the wire protocol cannot drift between the two hosts.
        for path, handler in queue_routes(self.service.work_queue).items():
            routes[path] = (
                lambda h=handler: self._reply(200, h(self._read_json()))
            )
        self._dispatch(routes)

    def _post_evaluate(self) -> None:
        payload = self._read_json()
        payload.setdefault(
            "eval_seed_policy", self.service.default_eval_seed_policy
        )
        request = request_from_dict(payload)
        t0 = time.perf_counter()
        outcome = self.service.scheduler.submit(request).result()
        self._reply(
            200,
            {
                "fingerprint": outcome.fingerprint,
                "cached": outcome.cached,
                "wall_time_s": time.perf_counter() - t0,
                "record": record_to_dict(outcome.record),
            },
        )

    def _post_register(self) -> None:
        payload = self._read_json()
        body = payload.get("workflow")
        if not isinstance(body, dict):
            raise ServiceError(
                "register payload must carry a 'workflow' object "
                "(the repro-workflow-v1 JSON serialization, see "
                "repro.generators.serialization.workflow_to_json)"
            )
        from repro.generators.serialization import workflow_from_json

        try:
            wf = workflow_from_json(body)
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            # Structurally malformed bodies (missing 'tasks', wrong
            # shapes) raise bare builtins from the deserialiser; keep
            # the malformed-input-is-400 contract /evaluate and /sweep
            # follow.
            raise ServiceError(
                f"malformed workflow serialization: {exc!r}"
            ) from None
        label = payload.get("label")
        source = FileSource(wf, label=str(label) if label is not None else None)
        known = source.content_hash in self.service.registry
        self.service.registry.register(source)
        # Persist next to the results: a restarted service rehydrates
        # its registry from the store, so /sweep-by-hash keeps working
        # without a re-upload.
        self.service.store.save_source(source)
        self._reply(
            200,
            {
                "workflow": source.content_hash,
                "family": source.spec_family,
                "ntasks": source.workflow.n_tasks,
                "label": source.label,
                "known": known,
            },
        )

    def _get_sources(self) -> None:
        self._reply(200, {"sources": self.service.registry.describe()})

    def _post_sweep(self) -> None:
        payload = self._read_json()
        payload.setdefault(
            "eval_seed_policy", self.service.default_eval_seed_policy
        )
        spec = sweep_spec_from_payload(payload, self.service.registry)
        requests = requests_from_spec(spec)
        t0 = time.perf_counter()
        outcomes = self.service.scheduler.evaluate_many(requests)
        payload = {
            "n_cells": len(outcomes),
            "cached": sum(o.cached for o in outcomes),
            "computed": sum(not o.cached for o in outcomes),
            "wall_time_s": time.perf_counter() - t0,
            "records": [record_to_dict(o.record) for o in outcomes],
        }
        groups = sum(len(spec.processors[n]) for n in spec.sizes)
        if (
            spec.seed_policy == "spawn"
            and groups > 1
            and not grid_sensitive(spec.method, spec.eval_seed_policy)
        ):
            # (Positional Monte Carlo gets no note: its per-cell
            # sampling seeds never match a monolithic grid's — see the
            # module docstring.  Content-policy Monte Carlo behaves
            # like the closed-form methods, caveat included.)
            payload["note"] = (
                "spawn seed policy over multiple (size, processors) "
                "groups: cells are answered per the 1×1 contract, so "
                "workflow/schedule seeds differ from a monolithic "
                "run_sweep of this grid (its spawn seeds are "
                "positional); use seed_policy 'stable' for bit-identical "
                "numbers"
            )
        self._reply(200, payload)

    def _get_status(self) -> None:
        svc = self.service
        store_stats = svc.store.stats()
        sched = svc.scheduler.stats
        self._reply(
            200,
            {
                "version": __version__,
                "uptime_s": time.time() - svc.started_at,
                "sources": len(svc.registry),
                "eval_seed_policy": svc.default_eval_seed_policy,
                "store": {
                    "path": svc.store.path,
                    "entries": store_stats.entries,
                    "hits": store_stats.hits,
                    "misses": store_stats.misses,
                    "hit_rate": store_stats.hit_rate,
                },
                "scheduler": {
                    "submitted": sched.submitted,
                    "deduped": sched.deduped,
                    "store_hits": sched.store_hits,
                    "computed_cells": sched.computed_cells,
                    "batches": sched.batches,
                    "batch_eval": svc.scheduler.batch_eval,
                    "fused_eval": svc.scheduler.fused_eval,
                    "batch_size_max": sched.batch_size_max,
                    "batch_size_mean": sched.batch_size_mean,
                    "last_batch_sizes": list(sched.last_batch_sizes),
                },
                "backend": svc.backend_name,
                # Which distribution-kernel backend serves this process
                # (compiled native vs pure-python reference) and why.
                "kernels": native_kernels.status(),
                "work_queue": svc.work_queue.stats(),
                "workers": svc.work_queue.workers(),
                # Present only while kernel profiling is live (serve
                # --profile, or an embedding process calling enable()).
                "kernel_profile": kernel_profile.snapshot(),
            },
        )

    def _get_cache(self) -> None:
        svc = self.service
        stats = svc.store.stats()
        self._reply(
            200,
            {
                "path": svc.store.path,
                "schema_version": SCHEMA_VERSION,
                "entries": stats.entries,
                "session_hits": stats.hits,
                "session_misses": stats.misses,
                "session_hit_rate": stats.hit_rate,
                "total_hits": stats.total_hits,
            },
        )

    def _post_cache(self) -> None:
        payload = self._read_json()
        action = payload.get("action")
        if action != "clear":
            raise ServiceError(
                f"unknown cache action {action!r}; accepted: 'clear'"
            )
        self.service.store.clear()
        self.service.scheduler.reset_pipeline()
        self._reply(200, {"cleared": True})


class ReproService:
    """Store + scheduler + HTTP server, wired together.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port`/:attr:`url`).  ``store`` accepts an existing
    :class:`ResultStore`, a path, or ``None`` for an in-memory store.
    Use as a context manager, or :meth:`start`/:meth:`close`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        store: Union[ResultStore, str, Path, None] = None,
        jobs: int = 1,
        linger: float = 0.05,
        log: Optional[Callable[[str], None]] = None,
        batch_eval: bool = True,
        fused_eval: bool = True,
        eval_seed_policy: str = "positional",
        profile: bool = False,
        backend: Optional[str] = None,
        workers: Sequence[str] = (),
        lease_timeout: float = 30.0,
        worker_grace: float = 60.0,
    ) -> None:
        if eval_seed_policy not in EVAL_SEED_POLICIES:
            raise ServiceError(
                f"unknown eval-seed policy {eval_seed_policy!r}; "
                f"choose from {list(EVAL_SEED_POLICIES)}"
            )
        if backend is not None and backend not in BACKENDS:
            raise ServiceError(
                f"unknown execution backend {backend!r}; "
                f"choose from {list(BACKENDS)}"
            )
        #: Kernel profiling collectors are process-local, but worker
        #: processes profile themselves and ship snapshots back through
        #: the sweep executor, so profiling works at any ``jobs``;
        #: ``/status`` carries the live ``kernel_profile`` snapshot.
        self.profiling = bool(profile)
        if self.profiling:
            kernel_profile.enable()
        #: Policy applied to /evaluate and /sweep payloads that do not
        #: name one themselves (a payload's explicit field always wins).
        self.default_eval_seed_policy = eval_seed_policy
        if isinstance(store, ResultStore):
            self.store = store
            self._owns_store = False
        else:
            self.store = ResultStore(store if store is not None else ":memory:")
            self._owns_store = True
        #: External workflow sources (``POST /register`` loads them in
        #: and persists them to the store's ``sources`` table; on
        #: construction the registry is rehydrated from the store, so a
        #: restarted service keeps answering by content hash without a
        #: re-upload — re-registering stays idempotent either way).
        self.registry = SourceRegistry()
        for source in self.store.load_sources():
            self.registry.register(source)
        self.scheduler = BatchScheduler(
            self.store, jobs=jobs, linger=linger, batch_eval=batch_eval,
            fused_eval=fused_eval, registry=self.registry,
        )
        self.log = log
        self.started_at = time.time()
        #: The remote backend's work queue.  Always constructed — its
        #: coordinator endpoints are always mounted, so a fleet can
        #: register/poll regardless of the dispatch backend — but only
        #: ``backend="remote"`` enqueues work units on it.
        self.work_queue = WorkQueue(lease_timeout=lease_timeout)
        self.backend_name = backend or (
            "process" if jobs not in (None, 1) else "inline"
        )
        handler = type("_BoundHandler", (_Handler,), {"service": self})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        #: The long-lived backend instance owned by the service (only
        #: the remote fleet needs one: its queue and monitor must span
        #: batches; the local backends are built per dispatch).
        self._backend_obj: Optional[RemoteWorkerBackend] = None
        if backend == "remote":
            # Constructed after the HTTP socket is bound: recruiting
            # attachable workers sends them this service's own URL as
            # the coordinator address.
            self._backend_obj = RemoteWorkerBackend(
                queue=self.work_queue,
                coordinator_url=self.url,
                workers=workers,
                worker_grace=worker_grace,
            )
            self.scheduler.backend = self._backend_obj
        elif backend is not None:
            self.scheduler.backend = backend
        # Whether a serve loop was (or is being) entered: shutdown()
        # blocks forever on a server whose serve_forever never ran, so
        # close() must skip it for a constructed-but-never-started
        # service (e.g. teardown on an error path before start()).
        self._serving = False

    @property
    def address(self) -> Tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def port(self) -> int:
        return self.address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ReproService":
        """Serve in a daemon thread (returns once the socket is live)."""
        self.scheduler.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()
        self._serving = True
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (blocks until shutdown)."""
        self.scheduler.start()
        self._serving = True
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover — interactive only
            pass
        finally:
            self.close()

    def close(self) -> None:
        if self._serving:
            # Bounded: shutdown() blocks on an event only a running
            # serve loop sets, and an exception delivered between
            # `_serving = True` and the loop's first iteration (e.g.
            # Ctrl-C in the blocking `repro serve` path) would deadlock
            # an unbounded call.
            waiter = threading.Thread(
                target=self._httpd.shutdown, daemon=True
            )
            waiter.start()
            waiter.join(timeout=5.0)
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.scheduler.stop()
        if self._backend_obj is not None:
            self._backend_obj.close()
            self._backend_obj = None
        if self.profiling:
            kernel_profile.disable()
        if self._owns_store:
            self.store.close()

    def __enter__(self) -> "ReproService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    store: Union[str, Path, None] = None,
    jobs: int = 1,
    linger: float = 0.05,
    log: Optional[Callable[[str], None]] = print,
    batch_eval: bool = True,
    fused_eval: bool = True,
    eval_seed_policy: str = "positional",
    profile: bool = False,
    backend: Optional[str] = None,
    workers: Sequence[str] = (),
    lease_timeout: float = 30.0,
    worker_grace: float = 60.0,
) -> None:
    """Run a blocking evaluation service (the ``repro serve`` command)."""
    service = ReproService(
        host=host, port=port, store=store, jobs=jobs, linger=linger, log=log,
        batch_eval=batch_eval, fused_eval=fused_eval,
        eval_seed_policy=eval_seed_policy, profile=profile,
        backend=backend, workers=workers, lease_timeout=lease_timeout,
        worker_grace=worker_grace,
    )
    if log is not None:
        log(
            f"repro service v{__version__} listening on {service.url} "
            f"(store: {service.store.path}, jobs={jobs}, linger={linger}s"
            + f", backend={service.backend_name}"
            + (", kernel profiling on" if profile else "")
            + ")"
        )
        if backend == "remote":
            log(
                f"coordinating a worker fleet: point workers at "
                f"`repro worker {service.url}` "
                f"(lease timeout {lease_timeout}s)"
            )
    service.serve_forever()
