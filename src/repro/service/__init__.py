"""repro.service — the persistent evaluation service.

The serving layer over the pipeline engine: one-shot CLI runs become a
long-lived, cache-backed query service for makespan/strategy
evaluations.  Results are keyed by canonical request fingerprints and
survive process restarts in a SQLite store; queued requests are deduped
and coalesced into sweep batches so the engine's artifact cache does
maximal work.

Module map
----------
``fingerprint``
    :class:`EvalRequest` (one cell: a family/size/seed triple *or* an
    external workflow named by content hash, processors, pfail, CCR,
    method + evaluator options) and its canonical SHA-256
    :func:`fingerprint`; the 1×1 :func:`request_to_spec` execution
    contract; grid↔cells conversion (:func:`requests_from_spec`).
``store``
    :class:`ResultStore` — schema-versioned SQLite keyed by fingerprint,
    hit/miss stats, lossless JSONL export/import, and
    ``records_from_jsonl`` backfill of plain sweep outputs.
``scheduler``
    :class:`BatchScheduler` — dedups identical fingerprints, serves
    store hits, coalesces misses into exact-cover
    :class:`~repro.engine.sweep.SweepSpec` batches grouped by
    (workflow, processors), and dispatches them through
    :func:`repro.engine.sweep.run_specs`; optional background worker
    with a linger window for cross-request coalescing.
``server``
    :class:`ReproService` / :func:`serve` — a stdlib
    ``ThreadingHTTPServer`` JSON API: ``POST /evaluate``,
    ``POST /sweep``, ``POST /register`` (load an external workflow
    source, addressed thereafter by its canonical content hash),
    ``GET /sources``, ``GET /status``, ``GET|POST /cache``.
``client``
    :class:`ServiceClient` — thin ``urllib`` client returning parsed
    :class:`~repro.engine.records.CellResult` replies.

Quickstart
----------
>>> from repro.service import ReproService, ServiceClient
>>> with ReproService(store="results.db") as svc:   # ephemeral port
...     client = ServiceClient(svc.url)
...     r1 = client.evaluate(family="genome", ntasks=50, processors=5,
...                          pfail=1e-3, ccr=0.01)
...     r2 = client.evaluate(family="genome", ntasks=50, processors=5,
...                          pfail=1e-3, ccr=0.01)
...     assert r2.cached and r2.record == r1.record

``repro serve`` / ``repro submit`` wrap this from the command line.
"""

from repro.service.client import EvalReply, ServiceClient, SweepReply
from repro.service.fingerprint import (
    EvalRequest,
    fingerprint,
    grid_sensitive,
    request_from_dict,
    request_to_dict,
    request_to_spec,
    requests_from_spec,
)
from repro.service.scheduler import (
    BatchScheduler,
    EvalOutcome,
    SchedulerStats,
    plan_batches,
)
from repro.service.server import ReproService, serve, sweep_spec_from_payload
from repro.service.store import SCHEMA_VERSION, ResultStore, StoreStats

__all__ = [
    "EvalRequest",
    "fingerprint",
    "grid_sensitive",
    "request_from_dict",
    "request_to_dict",
    "request_to_spec",
    "requests_from_spec",
    "ResultStore",
    "StoreStats",
    "SCHEMA_VERSION",
    "BatchScheduler",
    "EvalOutcome",
    "SchedulerStats",
    "plan_batches",
    "ReproService",
    "serve",
    "sweep_spec_from_payload",
    "ServiceClient",
    "EvalReply",
    "SweepReply",
]
