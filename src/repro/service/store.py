"""Durable result store: fingerprint-keyed SQLite with JSONL round trips.

The store is what makes the evaluation service *persistent*: every
computed :class:`~repro.engine.records.CellResult` is written under its
request :func:`~repro.service.fingerprint.fingerprint`, so a repeated
request — in this process or any later one — is served without
recomputation.  The schema is versioned (:data:`SCHEMA_VERSION` in a
``meta`` table; opening a store written by an incompatible version
raises :class:`~repro.errors.ServiceError` instead of silently
misreading rows).

Three interchange paths exist:

* :meth:`ResultStore.export_jsonl` / :meth:`ResultStore.import_jsonl` —
  lossless store dumps (fingerprint + request + record + hit counter per
  line), fingerprints verified on import;
* :meth:`ResultStore.backfill` /  :meth:`ResultStore.backfill_jsonl` —
  ingest *plain sweep records* (e.g. the JSONL written by ``repro sweep
  --out``) given the sweep's non-axis context (root seed, method, ...),
  parsing via :func:`repro.engine.records.records_from_jsonl`.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.engine.records import (
    CellResult,
    record_from_dict,
    record_to_dict,
    records_from_jsonl,
)
from repro.errors import ServiceError
from repro.service.fingerprint import (
    EvalRequest,
    fingerprint,
    request_from_dict,
    request_to_dict,
)

__all__ = ["SCHEMA_VERSION", "StoreStats", "ResultStore"]

#: Bump on any change to the table layout or the stored JSON shapes.
#: v2: requests carry a ``workflow`` content-hash field (external
#: workflow sources).  v3: requests carry an ``eval_seed_policy`` field
#: (content-seeded Monte Carlo), fingerprints are the v3 digests, and a
#: ``sources`` table persists registered external workflow sources next
#: to the results.  v1/v2 stores are migrated in place on open (see
#: :meth:`ResultStore._migrate_v1` / :meth:`ResultStore._migrate_v2`).
SCHEMA_VERSION = 3

#: Flush the in-memory persistent-hit-counter deltas to SQLite once this
#: many accumulate (they also flush on every read of the counters and on
#: close).  Keeps the warm hit path free of per-request disk commits.
HIT_FLUSH_THRESHOLD = 64

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS results (
    fingerprint  TEXT PRIMARY KEY,
    request_json TEXT NOT NULL,
    record_json  TEXT NOT NULL,
    created_at   REAL NOT NULL,
    hits         INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS sources (
    content_hash  TEXT PRIMARY KEY,
    workflow_json TEXT NOT NULL,
    label         TEXT,
    created_at    REAL NOT NULL
);
"""


@dataclass(frozen=True)
class StoreStats:
    """Store counters: persistent size/hits plus this-session traffic."""

    entries: int
    hits: int  #: store hits in this session
    misses: int  #: store misses in this session
    total_hits: int  #: hit counter summed over the store's whole life

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Session hit rate in [0, 1] (0.0 when no request was made)."""
        return self.hits / self.requests if self.requests else 0.0


class ResultStore:
    """Fingerprint-keyed durable cell-result store (SQLite).

    ``path`` may be a filesystem path (created on first use) or
    ``":memory:"`` for an ephemeral in-process store.  All operations
    are serialised behind one lock, so a store instance may be shared by
    the scheduler worker and the HTTP handler threads.
    """

    def __init__(self, path: Union[str, Path] = ":memory:") -> None:
        self.path = str(path)
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        # Persistent hit counters are flushed in batches so the warm
        # read path stays free of synchronous SQLite commits.
        self._pending_hits: Dict[str, int] = {}
        with self._lock:
            self._conn.executescript(_SCHEMA)
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
                self._conn.commit()
            elif int(row[0]) == 1:
                self._migrate_v1()
            elif int(row[0]) == 2:
                self._migrate_v2()
            elif int(row[0]) != SCHEMA_VERSION:
                self._conn.close()
                raise ServiceError(
                    f"store {self.path!r} has schema version {row[0]}, "
                    f"this build reads version {SCHEMA_VERSION}; "
                    "export/backfill it with a matching build"
                )

    def _migrate_v1(self) -> None:
        """Rewrite a v1 store's rows under the current fingerprint schema.

        v1 predates external workflow sources and eval-seed policies, so
        every stored request is family-sourced and positional; rebuilding
        it from its stored field dict yields the same request with
        ``workflow=None`` and ``eval_seed_policy="positional"``, whose
        current fingerprint (the canonical payload grew those keys)
        replaces the old digest.  The mapping is injective — two v1
        rows never collapse — and atomic: any failure rolls the store
        back to its untouched v1 state.

        One record class is dropped rather than carried forward:
        antithetic Monte Carlo cells.  The same build that bumped the
        schema fixed ``sample_makespans(antithetic=True)`` pairing, so
        a v1 antithetic record's defining computation now yields
        different numbers — migrating it would serve stale pre-fix
        estimates as hits forever.  (Plain Monte Carlo and every
        closed-form method are untouched by the fix and migrate as-is.)
        """
        rows = self._conn.execute(
            "SELECT fingerprint, request_json FROM results"
        ).fetchall()
        try:
            for old_fp, request_json in rows:
                request = request_from_dict(json.loads(request_json))
                if request.method == "montecarlo" and dict(
                    request.evaluator_options
                ).get("antithetic"):
                    self._conn.execute(
                        "DELETE FROM results WHERE fingerprint = ?",
                        (old_fp,),
                    )
                    continue
                new_fp = fingerprint(request)
                self._conn.execute(
                    "UPDATE results SET fingerprint = ?, request_json = ? "
                    "WHERE fingerprint = ?",
                    (
                        new_fp,
                        json.dumps(request_to_dict(request), sort_keys=True),
                        old_fp,
                    ),
                )
            self._conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(SCHEMA_VERSION),),
            )
            self._conn.commit()
        except BaseException:
            self._conn.rollback()
            self._conn.close()
            raise

    def _migrate_v2(self) -> None:
        """Rewrite a v2 store's rows under the v3 fingerprint schema.

        v2 predates eval-seed policies, so every stored request was
        computed under the ``"positional"`` derivation; rebuilding it
        from its stored field dict tags it with that policy explicitly,
        and its v3 fingerprint replaces the old digest.  **Every row is
        kept** — including positional Monte Carlo rows, whose records
        stay valid answers to positional-policy requests — but because
        the v3 digest covers the policy, a legacy positional row can
        never be served to a content-policy request.  Injective and
        atomic, like :meth:`_migrate_v1`.
        """
        rows = self._conn.execute(
            "SELECT fingerprint, request_json FROM results"
        ).fetchall()
        try:
            for old_fp, request_json in rows:
                request = request_from_dict(json.loads(request_json))
                self._conn.execute(
                    "UPDATE results SET fingerprint = ?, request_json = ? "
                    "WHERE fingerprint = ?",
                    (
                        fingerprint(request),
                        json.dumps(request_to_dict(request), sort_keys=True),
                        old_fp,
                    ),
                )
            self._conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(SCHEMA_VERSION),),
            )
            self._conn.commit()
        except BaseException:
            self._conn.rollback()
            self._conn.close()
            raise

    # ------------------------------------------------------------------
    # Core keyed access.

    @staticmethod
    def _fingerprint_of(key: Union[str, EvalRequest]) -> str:
        return key if isinstance(key, str) else fingerprint(key)

    def get(
        self, key: Union[str, EvalRequest], count_miss: bool = True
    ) -> Optional[CellResult]:
        """Stored record for a request/fingerprint, or ``None``.

        A hit bumps both the session counter and the row's persistent
        hit counter (the latter is batched — see
        :data:`HIT_FLUSH_THRESHOLD` — so warm reads do not pay a disk
        commit each); a miss bumps the session miss counter unless
        ``count_miss=False`` (used by the scheduler's fast path, whose
        misses are re-looked-up — and counted — at dispatch time).
        """
        fp = self._fingerprint_of(key)
        with self._lock:
            row = self._conn.execute(
                "SELECT record_json FROM results WHERE fingerprint = ?", (fp,)
            ).fetchone()
            if row is None:
                if count_miss:
                    self._misses += 1
                return None
            self._hits += 1
            self._pending_hits[fp] = self._pending_hits.get(fp, 0) + 1
            if sum(self._pending_hits.values()) >= HIT_FLUSH_THRESHOLD:
                self._flush_hits()
        return record_from_dict(json.loads(row[0]))

    def _flush_hits(self) -> None:
        """Write the accumulated hit-counter deltas (lock held)."""
        if not self._pending_hits:
            return
        self._conn.executemany(
            "UPDATE results SET hits = hits + ? WHERE fingerprint = ?",
            [(n, fp) for fp, n in self._pending_hits.items()],
        )
        self._conn.commit()
        self._pending_hits.clear()

    def peek(self, key: Union[str, EvalRequest]) -> Optional[CellResult]:
        """Like :meth:`get` but without touching any counter."""
        fp = self._fingerprint_of(key)
        with self._lock:
            row = self._conn.execute(
                "SELECT record_json FROM results WHERE fingerprint = ?", (fp,)
            ).fetchone()
        return None if row is None else record_from_dict(json.loads(row[0]))

    def put(
        self,
        request: EvalRequest,
        record: CellResult,
        fp: Optional[str] = None,
    ) -> str:
        """Store (upsert) one record under its request fingerprint."""
        fp = fp if fp is not None else fingerprint(request)
        with self._lock:
            self._conn.execute(
                "INSERT INTO results "
                "(fingerprint, request_json, record_json, created_at, hits) "
                "VALUES (?, ?, ?, ?, 0) "
                "ON CONFLICT(fingerprint) DO UPDATE SET "
                "request_json = excluded.request_json, "
                "record_json = excluded.record_json",
                (
                    fp,
                    json.dumps(request_to_dict(request), sort_keys=True),
                    json.dumps(record_to_dict(record), sort_keys=True),
                    time.time(),
                ),
            )
            self._conn.commit()
        return fp

    def hit_count(self, key: Union[str, EvalRequest]) -> int:
        """The persistent hit counter of one entry (0 when absent)."""
        fp = self._fingerprint_of(key)
        with self._lock:
            self._flush_hits()
            row = self._conn.execute(
                "SELECT hits FROM results WHERE fingerprint = ?", (fp,)
            ).fetchone()
        return int(row[0]) if row is not None else 0

    def __contains__(self, key: Union[str, EvalRequest]) -> bool:
        fp = self._fingerprint_of(key)
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM results WHERE fingerprint = ?", (fp,)
            ).fetchone()
        return row is not None

    def __len__(self) -> int:
        with self._lock:
            (n,) = self._conn.execute("SELECT COUNT(*) FROM results").fetchone()
        return int(n)

    def stats(self) -> StoreStats:
        with self._lock:
            self._flush_hits()
            (n,) = self._conn.execute("SELECT COUNT(*) FROM results").fetchone()
            (total,) = self._conn.execute(
                "SELECT COALESCE(SUM(hits), 0) FROM results"
            ).fetchone()
            return StoreStats(
                entries=int(n),
                hits=self._hits,
                misses=self._misses,
                total_hits=int(total),
            )

    def clear(self) -> None:
        """Drop all entries; session counters are reset too."""
        with self._lock:
            self._pending_hits.clear()
            self._conn.execute("DELETE FROM results")
            self._conn.commit()
            self._hits = 0
            self._misses = 0

    def close(self) -> None:
        with self._lock:
            self._flush_hits()
            self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # JSONL interchange.

    def export_jsonl(self, path: Optional[Union[str, Path]] = None) -> str:
        """Dump the store as JSON Lines (returned; written if ``path``).

        One object per entry: ``{"fingerprint", "request", "record",
        "hits", "created_at"}`` — lossless, re-ingestable with
        :meth:`import_jsonl`.
        """
        with self._lock:
            self._flush_hits()
            rows = self._conn.execute(
                "SELECT fingerprint, request_json, record_json, hits, "
                "created_at FROM results ORDER BY created_at, fingerprint"
            ).fetchall()
        lines = [
            json.dumps(
                {
                    "fingerprint": fp,
                    "request": json.loads(req),
                    "record": json.loads(rec),
                    "hits": hits,
                    "created_at": created,
                },
                sort_keys=True,
            )
            for fp, req, rec, hits, created in rows
        ]
        text = "".join(line + "\n" for line in lines)
        if path is not None:
            Path(path).write_text(text)
        return text

    def import_jsonl(self, source: Union[str, Path]) -> int:
        """Ingest an :meth:`export_jsonl` dump; returns entries added.

        Each line's fingerprint is recomputed from its request and must
        match (a mismatch means the dump was edited or written by an
        incompatible fingerprint schema).  Existing entries are left
        untouched.  The import is atomic: on any error the store is
        rolled back to its prior state.
        """
        if isinstance(source, Path):
            text = source.read_text()
        elif source.strip() and not source.lstrip().startswith("{"):
            text = Path(source).read_text()
        else:
            text = source
        added = 0
        with self._lock:
            try:
                for line in text.splitlines():
                    line = line.strip()
                    if not line:
                        continue
                    payload = json.loads(line)
                    request = request_from_dict(payload["request"])
                    fp = fingerprint(request)
                    if fp != payload["fingerprint"]:
                        raise ServiceError(
                            f"fingerprint mismatch on import: line says "
                            f"{payload['fingerprint'][:12]}…, request hashes "
                            f"to {fp[:12]}…"
                        )
                    record = record_from_dict(payload["record"])
                    cur = self._conn.execute(
                        "INSERT OR IGNORE INTO results "
                        "(fingerprint, request_json, record_json, created_at, "
                        "hits) VALUES (?, ?, ?, ?, ?)",
                        (
                            fp,
                            json.dumps(request_to_dict(request), sort_keys=True),
                            json.dumps(record_to_dict(record), sort_keys=True),
                            float(payload.get("created_at", time.time())),
                            int(payload.get("hits", 0)),
                        ),
                    )
                    added += cur.rowcount
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        return added

    # ------------------------------------------------------------------
    # Backfill from plain sweep records.

    def backfill(
        self,
        records: Iterable[CellResult],
        *,
        seed: int,
        seed_policy: str,
        method: str = "pathapprox",
        bandwidth: float = 100e6,
        linearizer: str = "random",
        save_final_outputs: bool = True,
        eval_seed_policy: str = "positional",
        evaluator_options: Tuple[Tuple[str, Any], ...] = (),
        workflow: Optional[str] = None,
    ) -> int:
        """Key plain sweep records by their reconstructed requests.

        A :class:`CellResult` carries its grid axes (family, size,
        processors, pfail, CCR) but not the sweep's root seed or
        evaluation settings — the caller supplies those (they are the
        arguments the sweep was run with).  ``workflow`` is the content
        hash of the external workflow a file-sourced sweep (``repro
        sweep --dax``) ran over; the records' family strings must then
        be the hash-derived ``file:<hash12>`` (checked per record by
        :class:`~repro.service.fingerprint.EvalRequest`), which guards
        against filing one workflow's records under another's hash.  ``seed`` and ``seed_policy``
        are deliberately required: a wrong policy would file the records
        under fingerprints whose defining computation used different
        workflow/schedule seeds, silently serving wrong numbers as hits
        (``repro sweep`` defaults to ``spawn``, ``repro submit`` to
        ``stable``).  Two record classes are refused because their
        correctness under the per-cell 1×1 fingerprint contract cannot
        be established from record data:

        * *positional-policy* grid-sensitive methods (Monte Carlo with
          ``eval_seed_policy="positional"``) — their sampling stream
          depends on the cell's position in the source grid.  Under
          ``eval_seed_policy="content"`` the stream is
          :func:`repro.engine.sweep.cell_eval_seed` of the cell's own
          content — identical in any grid — so content-policy Monte
          Carlo records backfill like every closed-form method, subject
          to the same workflow-seed verification below;
        * all ``seed_policy="spawn"`` records — spawn derives workflow
          *and schedule* seeds from the source grid's positional
          SeedSequence spawns.  A record stores its workflow seed (so a
          wrong size position is detectable) but not its schedule seed,
          so a cell taken from a non-initial processor position of a
          spawn grid is indistinguishable from a contract-conforming
          one while carrying different numbers.  ``"stable"`` seeds are
          position-independent, making stable-policy sweeps the safe —
          and only accepted — backfill source.

        Every accepted record's stored workflow seed is additionally
        verified against :func:`repro.engine.sweep.cell_wf_seed` for the
        claimed ``seed``/``seed_policy``, refusing records computed
        under a different root seed or policy.  Existing entries are
        never overwritten; returns the number of entries added.  Atomic:
        on any error the store is rolled back to its prior state.
        """
        from repro.engine.sweep import EVAL_SEED_POLICIES, SEED_POLICIES
        from repro.service.fingerprint import grid_sensitive

        if eval_seed_policy not in EVAL_SEED_POLICIES:
            raise ServiceError(
                f"unknown eval-seed policy {eval_seed_policy!r}; "
                f"choose from {list(EVAL_SEED_POLICIES)}"
            )
        if grid_sensitive(method, eval_seed_policy):
            raise ServiceError(
                f"cannot backfill positional-policy {method!r} records: "
                "their values depend on the source grid's shape, not "
                "just the cell (the per-cell 1×1 contract does not "
                "hold); sweeps run with eval_seed_policy='content' use "
                "position-independent sampling seeds and can be "
                "backfilled"
            )
        if seed_policy not in SEED_POLICIES:
            raise ServiceError(
                f"unknown seed policy {seed_policy!r}; "
                f"choose from {list(SEED_POLICIES)}"
            )
        if seed_policy == "spawn":
            raise ServiceError(
                "cannot backfill spawn-policy records: spawn derives "
                "workflow/schedule seeds from positional SeedSequence "
                "spawns of the source grid, and records do not carry "
                "their schedule seed, so conformance to the per-cell "
                "1×1 fingerprint contract cannot be verified; re-run "
                "the sweep with seed_policy='stable' (the "
                "position-independent derivation) to backfill it"
            )
        from repro.engine.sweep import cell_wf_seed

        expected_seeds: Dict[Tuple[str, int], int] = {}
        added = 0
        with self._lock:
            try:
                for record in records:
                    cell = (record.family, record.ntasks_requested)
                    if cell not in expected_seeds:
                        expected_seeds[cell] = cell_wf_seed(
                            seed, seed_policy, *cell
                        )
                    if record.seed != expected_seeds[cell]:
                        raise ServiceError(
                            f"record for {record.family} "
                            f"n={record.ntasks_requested} "
                            f"p={record.processors} carries workflow seed "
                            f"{record.seed}, but the per-cell contract "
                            f"derives {expected_seeds[cell]} from root "
                            f"seed {seed} under policy {seed_policy!r}: "
                            "the record was computed with different "
                            "seeds (wrong root seed or policy, or a "
                            "non-initial position of a spawn grid) and "
                            "would be served as a wrong hit"
                        )
                    request = EvalRequest(
                        family=record.family,
                        ntasks=record.ntasks_requested,
                        processors=record.processors,
                        pfail=record.pfail,
                        ccr=record.ccr,
                        seed=seed,
                        method=method,
                        bandwidth=bandwidth,
                        linearizer=linearizer,
                        save_final_outputs=save_final_outputs,
                        seed_policy=seed_policy,
                        eval_seed_policy=eval_seed_policy,
                        evaluator_options=evaluator_options,
                        workflow=workflow,
                    )
                    fp = fingerprint(request)
                    cur = self._conn.execute(
                        "INSERT OR IGNORE INTO results "
                        "(fingerprint, request_json, record_json, created_at, "
                        "hits) VALUES (?, ?, ?, ?, 0)",
                        (
                            fp,
                            json.dumps(request_to_dict(request), sort_keys=True),
                            json.dumps(record_to_dict(record), sort_keys=True),
                            time.time(),
                        ),
                    )
                    added += cur.rowcount
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        return added

    def backfill_jsonl(self, source: Union[str, Path], **context: Any) -> int:
        """:meth:`backfill` from a records JSONL file/text (the format
        written by ``repro sweep --out`` /
        :func:`repro.engine.records.records_to_jsonl`)."""
        return self.backfill(records_from_jsonl(source), **context)

    # ------------------------------------------------------------------
    # Durable external workflow sources.

    def save_source(self, source: Any) -> str:
        """Persist one :class:`~repro.workloads.FileSource` (upsert).

        The row is keyed by the canonical content hash and stores the
        ``repro-workflow-v1`` JSON serialisation, so a service reopening
        the store can rehydrate its
        :class:`~repro.workloads.SourceRegistry` and keep answering
        ``/sweep``-by-hash requests without a re-upload.  Returns the
        content hash.
        """
        from repro.generators.serialization import workflow_to_json
        from repro.workloads import FileSource

        if not isinstance(source, FileSource):
            raise ServiceError(
                f"only file sources can be persisted, got "
                f"{type(source).__name__}"
            )
        with self._lock:
            self._conn.execute(
                "INSERT INTO sources "
                "(content_hash, workflow_json, label, created_at) "
                "VALUES (?, ?, ?, ?) "
                "ON CONFLICT(content_hash) DO UPDATE SET "
                "workflow_json = excluded.workflow_json, "
                "label = excluded.label",
                (
                    source.content_hash,
                    json.dumps(
                        workflow_to_json(source.workflow), sort_keys=True
                    ),
                    source.label,
                    time.time(),
                ),
            )
            self._conn.commit()
        return source.content_hash

    def load_sources(self) -> List[Any]:
        """All persisted file sources, oldest first.

        Each row's workflow is deserialised and its content hash
        re-derived on load; a row whose stored hash no longer matches
        its content (an edited or corrupted store) is refused rather
        than silently served under the wrong address.
        """
        from repro.generators.serialization import workflow_from_json
        from repro.workloads import FileSource

        with self._lock:
            rows = self._conn.execute(
                "SELECT content_hash, workflow_json, label FROM sources "
                "ORDER BY created_at, content_hash"
            ).fetchall()
        sources = []
        for content_hash, workflow_json, label in rows:
            try:
                workflow = workflow_from_json(json.loads(workflow_json))
            except Exception as exc:  # noqa: BLE001 — map to ServiceError
                raise ServiceError(
                    f"stored workflow source {content_hash[:12]!r} does "
                    f"not deserialise: {exc!r}"
                ) from None
            source = FileSource(workflow, label=label)
            if source.content_hash != content_hash:
                raise ServiceError(
                    f"stored workflow source {content_hash[:12]!r} hashes "
                    f"to {source.content_hash[:12]!r}: the store row was "
                    "edited or corrupted"
                )
            sources.append(source)
        return sources

    def source_count(self) -> int:
        """Number of persisted workflow sources."""
        with self._lock:
            (n,) = self._conn.execute(
                "SELECT COUNT(*) FROM sources"
            ).fetchone()
        return int(n)

    def entries(self) -> List[Tuple[str, EvalRequest, CellResult, int]]:
        """All (fingerprint, request, record, hits) rows — small stores
        only; meant for tests and inspection tooling."""
        with self._lock:
            self._flush_hits()
            rows = self._conn.execute(
                "SELECT fingerprint, request_json, record_json, hits "
                "FROM results ORDER BY created_at, fingerprint"
            ).fetchall()
        return [
            (
                fp,
                request_from_dict(json.loads(req)),
                record_from_dict(json.loads(rec)),
                int(hits),
            )
            for fp, req, rec, hits in rows
        ]
