"""Request coalescing: dedup by fingerprint, batch by grid group, dispatch.

The scheduler is the service's throughput lever.  Given a pile of
requests it

1. **dedups** identical fingerprints — one computation, every waiter
   gets the result;
2. **consults the store** — previously computed cells cost one SQLite
   lookup;
3. **coalesces** the misses into :class:`~repro.engine.sweep.SweepSpec`
   batches grouped by :attr:`EvalRequest.coalesce_key` (same workflow
   family/size/seed, processors, method, ...): requests that differ only
   along the pfail/CCR axes become one grid, so the M-SPG tree is built
   once per workflow and the schedule once per (workflow, processors)
   pair — exactly the :class:`~repro.engine.pipeline.ArtifactCache`
   reuse the sweep engine gives a declared grid;
4. **dispatches** the specs through :func:`repro.engine.sweep.run_specs`
   (shared pipeline when serial; spec-per-worker fan-out over a
   pluggable execution backend for ``jobs > 1`` or an explicit
   ``backend=`` — including a remote ``repro worker`` fleet) and writes
   every fresh record back to the store.  The
   dispatch rides the engine's batched evaluation entry point: each
   coalesced spec's cells are priced through one DAG template per
   structure group (bit-identical to per-cell evaluation;
   ``batch_eval=False`` restores the reference path), and the sizes of
   the dispatched batches are surfaced via ``/status``.

Batches are *exact covers*: a group's requested (pfail, CCR) cells are
partitioned into one spec per pfail value, so no unrequested cell is
ever computed.  Grid-sensitive requests (Monte Carlo under the legacy
``"positional"`` eval-seed policy — its sampling seed is positional,
see :mod:`repro.service.fingerprint`) are dispatched as per-cell 1×1
specs instead; they still share the pipeline's cached tree/schedule, so
the amortisation survives.  Under the ``"content"`` eval-seed policy
Monte Carlo's sampling seeds are position-independent
(:func:`repro.engine.sweep.cell_eval_seed`), so those requests coalesce
into real batches — and ride the batched vectorised sampling core —
exactly like the closed-form methods.

:class:`BatchScheduler` also runs an optional background worker
(:meth:`~BatchScheduler.start` / :meth:`~BatchScheduler.submit`) that
collects requests arriving within a small linger window into one batch —
this is what lets concurrent HTTP requests coalesce.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.engine.backends import ExecutionBackend
from repro.engine.pipeline import Pipeline
from repro.engine.records import CellResult
from repro.engine.sweep import SweepSpec, run_specs
from repro.errors import ServiceError
from repro.service.fingerprint import EvalRequest, fingerprint, request_to_spec
from repro.service.store import ResultStore
from repro.workloads import SourceRegistry

__all__ = ["EvalOutcome", "SchedulerStats", "BatchScheduler", "plan_batches"]


@dataclass(frozen=True)
class EvalOutcome:
    """One answered request: the record plus how it was obtained."""

    request: EvalRequest
    fingerprint: str
    record: CellResult
    cached: bool  #: served from the durable store (no computation)


@dataclass
class SchedulerStats:
    """Scheduler-lifetime counters (mutated under the scheduler lock)."""

    submitted: int = 0  #: requests seen (incl. duplicates)
    deduped: int = 0  #: duplicate fingerprints merged within batches
    store_hits: int = 0  #: requests answered by the durable store
    computed_cells: int = 0  #: cells actually evaluated
    batches: int = 0  #: coalesced specs dispatched
    #: Largest successfully dispatched coalesced spec, in cells.
    batch_size_max: int = 0
    #: Cells per successful spec of the last dispatch (failed specs are
    #: excluded, keeping these consistent with batches/computed_cells).
    last_batch_sizes: Tuple[int, ...] = ()

    @property
    def batch_size_mean(self) -> float:
        """Mean cells per dispatched spec over the scheduler's lifetime."""
        return self.computed_cells / self.batches if self.batches else 0.0


@dataclass
class _Pending:
    """One queued unique fingerprint and everybody waiting on it."""

    request: EvalRequest
    future: "Future[EvalOutcome]" = field(default_factory=Future)
    waiters: int = 1


def plan_batches(
    requests: Sequence[EvalRequest],
    registry: Optional[SourceRegistry] = None,
) -> List[Tuple[SweepSpec, List[EvalRequest]]]:
    """Partition unique requests into coalesced sweep specs.

    Returns ``(spec, cell_requests)`` pairs where ``cell_requests``
    lists, in the spec's grid order, the request each produced record
    answers.  The partition is an exact cover: every requested cell
    appears exactly once, and no spec contains an unrequested cell.
    ``registry`` resolves requests naming an external workflow by
    content hash; an unresolvable reference raises
    :class:`~repro.errors.ServiceError` (the scheduler pre-screens
    those per request so one bad reference cannot fail a whole batch).
    """
    groups: Dict[Tuple, List[EvalRequest]] = {}
    for req in requests:
        groups.setdefault(req.coalesce_key, []).append(req)

    batches: List[Tuple[SweepSpec, List[EvalRequest]]] = []
    for members in groups.values():
        head = members[0]
        if head.grid_sensitive:
            # Positional sampling seeds: the 1×1 contract is only
            # reproducible cell by cell.  (Content-policy stochastic
            # requests fall through to the coalesced path below.)
            batches.extend((request_to_spec(r, registry), [r]) for r in members)
            continue
        # One spec per pfail value; its CCR axis is exactly the CCRs
        # requested at that pfail (requests are unique, so no repeats).
        by_pfail: Dict[float, List[EvalRequest]] = {}
        for r in members:
            by_pfail.setdefault(r.pfail, []).append(r)
        for pfail, cells in by_pfail.items():
            spec = replace(
                request_to_spec(head, registry),
                pfails=(pfail,),
                ccrs=tuple(r.ccr for r in cells),
                name=f"batch[{head.family} n={head.ntasks} "
                f"p={head.processors}]",
            )
            batches.append((spec, list(cells)))
    return batches


class BatchScheduler:
    """Coalescing dispatcher over one shared pipeline and result store.

    Synchronous use: :meth:`evaluate` / :meth:`evaluate_many`.  Service
    use: :meth:`start` the background worker, then :meth:`submit`
    returns a :class:`~concurrent.futures.Future` per request; requests
    arriving within ``linger`` seconds of each other are batched, and
    concurrent identical fingerprints share one future.

    The shared :class:`~repro.engine.pipeline.Pipeline` persists across
    batches, so even requests arriving in separate batches reuse cached
    workflows, M-SPG trees and schedules; call :meth:`reset_pipeline`
    to bound its memory in a very long-lived service.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        jobs: int = 1,
        linger: float = 0.05,
        batch_eval: bool = True,
        fused_eval: bool = True,
        registry: Optional[SourceRegistry] = None,
        backend: Union[None, str, "ExecutionBackend"] = None,
    ) -> None:
        self.store = store
        self.jobs = jobs
        self.linger = linger
        #: Execution backend dispatched batches run on — ``None`` keeps
        #: the historical behaviour (in-process when ``jobs == 1``, a
        #: process pool otherwise), a backend name or instance (e.g.
        #: the service's long-lived
        #: :class:`~repro.engine.backends.RemoteWorkerBackend`) forces
        #: that backend.  Records are identical on every backend.
        self.backend = backend
        #: External workflow sources addressable by content hash
        #: (``request.workflow``); a fresh empty registry by default so
        #: callers can always ``scheduler.registry.register(...)``.
        self.registry = registry if registry is not None else SourceRegistry()
        #: Dispatch coalesced specs through the engine's batched
        #: evaluation entry point (records are bit-identical either
        #: way; False restores the per-cell reference path).
        self.batch_eval = batch_eval
        #: Stage co-batched specs on one shared fused-evaluation
        #: collector, so specs sharing a method are priced through a
        #: single multi-template dispatch (False restores the
        #: per-group dispatch; records are bit-identical either way).
        self.fused_eval = fused_eval
        self.pipeline = Pipeline()
        self.stats = SchedulerStats()
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._queue: Dict[str, _Pending] = {}
        self._worker: Optional[threading.Thread] = None
        self._stopping = False
        # Serialises store-lookup + dispatch: concurrent evaluate_many
        # calls (the background worker vs. a /sweep handler thread) must
        # not compute the same fingerprint twice, and the shared
        # pipeline is not meant for concurrent mutation.
        self._dispatch_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Synchronous batch evaluation.

    def evaluate_many(
        self,
        requests: Sequence[EvalRequest],
        progress: Optional[Callable[[str], None]] = None,
    ) -> List[EvalOutcome]:
        """Answer a batch of requests; outcomes align with the input.

        Duplicates are computed once, stored results are served without
        recomputation, and the remaining cells are dispatched as
        coalesced sweeps (see the module docstring).
        """
        fps = [fingerprint(r) for r in requests]
        unique: Dict[str, EvalRequest] = {}
        for fp, req in zip(fps, requests):
            unique.setdefault(fp, req)

        with self._dispatch_lock:
            resolved, errors = self._resolve(unique, progress)

        with self._lock:
            self.stats.submitted += len(requests)
            self.stats.deduped += len(requests) - len(unique)
        for fp in fps:
            if fp in errors:
                raise errors[fp]
        return [resolved[fp] for fp in fps]

    def _resolve(
        self,
        unique: Dict[str, EvalRequest],
        progress: Optional[Callable[[str], None]] = None,
    ) -> Tuple[Dict[str, EvalOutcome], Dict[str, BaseException]]:
        """Answer unique fingerprints: store first, then coalesced dispatch.

        Returns ``(resolved, errors)``; every input fingerprint appears
        in exactly one of the two.  Failures are isolated per dispatched
        spec: a request whose evaluation raises (unknown family, engine
        error, ...) lands in ``errors`` without poisoning unrelated
        requests that merely shared the batch, and records from the
        specs that succeeded are still stored.
        """
        resolved: Dict[str, EvalOutcome] = {}
        errors: Dict[str, BaseException] = {}
        misses: Dict[str, EvalRequest] = {}
        for fp, req in unique.items():
            record = self.store.get(fp) if self.store is not None else None
            if record is not None:
                resolved[fp] = EvalOutcome(req, fp, record, cached=True)
            else:
                misses[fp] = req
        # Counted here, before the source pre-screen shrinks `misses`:
        # a request failing source resolution was not served by the store.
        store_hits = len(unique) - len(misses)

        # Pre-screen workflow-source references request by request, so
        # one unknown/contradictory hash fails only its own request
        # instead of blowing up batch planning for everyone else.
        for fp, req in list(misses.items()):
            if req.workflow is None:
                continue
            try:
                request_to_spec(req, self.registry)
            except ServiceError as exc:
                errors[fp] = exc
                del misses[fp]

        batches = plan_batches(list(misses.values()), self.registry)
        done = 0
        computed = 0
        if batches:
            # One dispatch, per-spec error capture (run_specs
            # return_exceptions): a failing spec lands its exception in
            # its own slot, so co-batched specs' records are kept and
            # stored — no request is failed by a stranger it merely
            # shared a linger window with.
            specs = [spec for spec, _ in batches]
            results = run_specs(
                specs, jobs=self.jobs, progress=progress,
                pipeline=self.pipeline, return_exceptions=True,
                batch_eval=self.batch_eval, fused_eval=self.fused_eval,
                backend=self.backend,
            )
            sizes = []
            for (spec, cells), records in zip(batches, results):
                if isinstance(records, BaseException):
                    for req in cells:
                        errors[fingerprint(req)] = records
                    continue
                if len(cells) != len(records):  # pragma: no cover
                    exc = ServiceError(
                        f"batch {spec.name!r} returned {len(records)} "
                        f"records for {len(cells)} requested cells"
                    )
                    for req in cells:
                        errors[fingerprint(req)] = exc
                    continue
                done += 1
                computed += len(cells)
                sizes.append(len(cells))
                for req, record in zip(cells, records):
                    fp = fingerprint(req)
                    if self.store is not None:
                        self.store.put(req, record, fp)
                    resolved[fp] = EvalOutcome(req, fp, record, cached=False)

        with self._lock:
            self.stats.store_hits += store_hits
            self.stats.computed_cells += computed
            self.stats.batches += done
            if batches:
                # Sizes cover the *successful* specs only, so max/mean/
                # last stay consistent with batches/computed_cells.
                self.stats.last_batch_sizes = tuple(sizes)
                if sizes:
                    self.stats.batch_size_max = max(
                        self.stats.batch_size_max, max(sizes)
                    )
        return resolved, errors

    def evaluate(
        self,
        request: EvalRequest,
        progress: Optional[Callable[[str], None]] = None,
    ) -> EvalOutcome:
        """Answer one request (store lookup, then a 1-cell batch)."""
        return self.evaluate_many([request], progress=progress)[0]

    def reset_pipeline(self) -> None:
        """Drop the shared pipeline's artifact cache (memory bound)."""
        self.pipeline.clear()

    # ------------------------------------------------------------------
    # Background coalescing worker.

    def start(self) -> "BatchScheduler":
        """Start the background worker (idempotent); returns self."""
        with self._lock:
            if self._worker is not None and self._worker.is_alive():
                return self
            self._stopping = False
            self._worker = threading.Thread(
                target=self._run, name="repro-service-scheduler", daemon=True
            )
            self._worker.start()
        return self

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        """Drain the queue and stop the worker."""
        with self._cv:
            self._stopping = True
            self._cv.notify_all()
        worker = self._worker
        if worker is not None:
            worker.join(timeout)
        self._worker = None

    def submit(self, request: EvalRequest) -> "Future[EvalOutcome]":
        """Queue one request for the next coalesced batch.

        Identical fingerprints already waiting share the same future —
        concurrent duplicate requests trigger exactly one computation.
        """
        fp = fingerprint(request)
        # Fast path: durable-store hits are answered immediately — only
        # actual compute pays the coalescing linger.  (The miss is not
        # counted here; evaluate_many re-checks — and counts — at
        # dispatch time, when a concurrent batch may have filled it.)
        if self.store is not None:
            record = self.store.get(fp, count_miss=False)
            if record is not None:
                future: "Future[EvalOutcome]" = Future()
                future.set_result(EvalOutcome(request, fp, record, cached=True))
                with self._lock:
                    self.stats.submitted += 1
                    self.stats.store_hits += 1
                return future
        with self._cv:
            if self._stopping or self._worker is None:
                raise ServiceError(
                    "scheduler worker is not running (call start())"
                )
            pending = self._queue.get(fp)
            if pending is not None:
                pending.waiters += 1
                self.stats.deduped += 1
                self.stats.submitted += 1
                return pending.future
            pending = _Pending(request)
            self._queue[fp] = pending
            self._cv.notify_all()
            return pending.future

    def _run(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._stopping:
                    self._cv.wait()
                if self._stopping and not self._queue:
                    return
            # Linger outside the lock so late arrivals join this batch.
            if self.linger > 0:
                time.sleep(self.linger)
            with self._cv:
                batch = list(self._queue.items())
                self._queue.clear()
            if not batch:
                continue
            # The queue is keyed by fingerprint, so the batch is already
            # unique — resolve it directly and settle each future from
            # the per-fingerprint outcome/error maps: a request that
            # fails (unknown family, engine error, ...) rejects only its
            # own waiters, never unrelated requests that merely arrived
            # in the same linger window.
            unique = {fp: pending.request for fp, pending in batch}
            try:
                with self._dispatch_lock:
                    resolved, errors = self._resolve(unique)
            except BaseException as exc:  # noqa: BLE001 — fan the error out
                for _, pending in batch:
                    pending.future.set_exception(exc)
                continue
            # (Merged waiters were already counted at submit time; each
            # unique pending is counted once here.)
            with self._lock:
                self.stats.submitted += len(batch)
            for fp, pending in batch:
                if fp in errors:
                    pending.future.set_exception(errors[fp])
                else:
                    pending.future.set_result(resolved[fp])
