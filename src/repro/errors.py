"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the failure mode.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "WorkflowError",
    "CycleError",
    "UnknownTaskError",
    "UnknownFileError",
    "NotMSPGError",
    "SchedulingError",
    "CheckpointError",
    "EvaluationError",
    "FirstOrderDomainError",
    "SimulationError",
    "ExperimentError",
    "SerializationError",
    "ServiceError",
    "BackendError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class WorkflowError(ReproError):
    """Malformed workflow definition (bad weights, duplicate ids, ...)."""


class CycleError(WorkflowError):
    """The task graph contains a cycle and therefore is not a DAG."""


class UnknownTaskError(WorkflowError):
    """A task id was referenced that does not exist in the workflow."""


class UnknownFileError(WorkflowError):
    """A file name was referenced that does not exist in the workflow."""


class NotMSPGError(ReproError):
    """The DAG is not a Minimal Series-Parallel Graph.

    Raised by exact recognition (:func:`repro.mspg.recognize.recognize`)
    when the graph cannot be produced by the M-SPG grammar.  The
    :func:`repro.mspg.transform.mspgify` transform never raises this: it
    adds zero-size synchronisation edges instead (the generalisation of the
    paper's footnote 2 treatment of LIGO workflows).
    """


class SchedulingError(ReproError):
    """Invalid scheduling input or internal scheduling invariant violation."""


class CheckpointError(ReproError):
    """Invalid checkpoint placement input or plan inconsistency."""


class EvaluationError(ReproError):
    """Expected-makespan evaluation failure (bad method, bad DAG, ...)."""


class FirstOrderDomainError(EvaluationError):
    """The first-order approximation is outside its validity domain.

    The paper's Equation (1) assigns probability ``λ·X`` to the
    one-failure branch of a segment of total cost ``X``.  When
    ``λ·X >= 1`` this is no longer a probability; the model has left the
    small-``λ`` regime it was derived for.  Callers may opt into clamping
    instead of raising (see :mod:`repro.makespan.two_state`).
    """


class SimulationError(ReproError):
    """Failure-injection simulation error."""


class ExperimentError(ReproError):
    """Experiment harness configuration or execution error."""


class SerializationError(ReproError):
    """Workflow (de)serialisation error (DAX/JSON)."""


class ServiceError(ReproError):
    """Evaluation-service failure (bad request, store schema mismatch,
    transport error reported by the HTTP client)."""


class BackendError(ReproError):
    """Execution-backend failure (unavailable executor, broken worker
    pool or fleet, undecodable work-unit payload)."""
