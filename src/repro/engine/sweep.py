"""Grid sweep executor: staged pipeline × (optional) process-pool fan-out.

A sweep is declared as a :class:`SweepSpec` — one workflow family (or
an external workflow file wrapped in a
:class:`~repro.workloads.FileSource`, see :meth:`SweepSpec.from_source`),
a set of sizes, per-size processor counts, and pfail/CCR axes — and
executed by :func:`run_sweep`.  The execution plan is deterministic:

* the grid is decomposed into *groups*, one per (size, processors) pair,
  iterated size-major (the historical ``run_figure`` order);
* every seed is derived **up front in the parent process**, so records
  are bit-identical whatever ``jobs`` or chunking is used.  Two seed
  policies exist: ``"stable"`` reproduces the historical
  :func:`repro.util.rng.stable_seed` derivation (the paper figures), and
  ``"spawn"`` derives child seeds through
  :class:`numpy.random.SeedSequence` spawning (the recommended scheme
  for independent parallel streams);
* with ``jobs == 1`` the groups run in-process over one shared
  :class:`~repro.engine.pipeline.Pipeline`, so the M-SPG tree is built
  once per workflow and the schedule once per (workflow, processors)
  pair;
* with ``jobs > 1`` — or an explicit ``backend=`` — chunks fan out
  over a pluggable :mod:`execution backend <repro.engine.backends>`
  (process pool by default; serial reference, fresh-interpreter
  subprocesses and a remote ``repro worker`` fleet are the others),
  each worker amortising the invariant stages over its chunk with a
  private pipeline.  All backends run through one shared dispatch
  loop (:func:`repro.engine.backends.run_tasks`), which owns the
  broken-executor serial restart and the profile-snapshot merge;
* each chunk's cells are priced through the makespan layer's batched
  entry point (one parameterised-DAG template per structure group) when
  the evaluator supports it — bit-identical to per-cell evaluation,
  with ``batch_eval=False`` as the reference escape hatch; stochastic
  evaluators (Monte Carlo) receive their per-cell sampling seeds
  through the batch call, so records are seed-for-seed identical to
  the per-cell path under either eval-seed policy;
* on top of batching, the default **fused-evaluation** mode defers
  every cell-evaluation a sweep needs — CKPTSOME and CKPTALL, every
  chunk of a (workflow, processors) group, and for :func:`run_specs`
  every co-batched spec sharing a method — into a
  :class:`~repro.engine.pipeline.FusedEvalCollector` that prices them
  through one multi-template dispatch per method.  Records stay
  bit-identical (pooling never changes per-row kernel results);
  ``fused_eval=False`` (CLI ``--no-fused-eval``) restores the
  per-group dispatch.

Results are always returned in grid order, one
:class:`~repro.engine.records.CellResult` per cell.
"""

from __future__ import annotations

import itertools
import math
import os
from dataclasses import dataclass, replace
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.engine.backends import (
    BackendTask,
    BackendUnavailable,
    ExecutionBackend,
    get_backend,
    run_tasks,
)
from repro.engine.pipeline import FusedEvalCollector, Pipeline
from repro.engine.records import CellResult
from repro.errors import EvaluationError, ExperimentError
from repro.makespan import profile as _profile
from repro.makespan.api import get_evaluator
from repro.util.rng import stable_seed
from repro.workloads import FamilySource, FileSource, WorkflowSource
from repro.util.validation import (
    bandwidth_error,
    ccr_error,
    pfail_error,
    seed_error,
)

__all__ = [
    "SweepSpec",
    "cell_wf_seed",
    "cell_eval_seed",
    "run_sweep",
    "run_specs",
]

#: Allowed seed-derivation policies.
SEED_POLICIES = ("spawn", "stable")

#: Allowed evaluation-seed policies.  ``"positional"`` derives each
#: cell's sampling seed from its position in the declared grid (the
#: historical behaviour, shared by both :data:`SEED_POLICIES`);
#: ``"content"`` derives it from what the cell *is* via
#: :func:`cell_eval_seed`, making stochastic records independent of the
#: grid they were computed in.
EVAL_SEED_POLICIES = ("positional", "content")


@dataclass(frozen=True)
class SweepSpec:
    """Declarative description of one parameter-grid sweep."""

    family: str
    sizes: Tuple[int, ...]
    processors: Mapping[int, Tuple[int, ...]]
    pfails: Tuple[float, ...]
    ccrs: Tuple[float, ...]
    seed: int = 2017
    method: str = "pathapprox"
    bandwidth: float = 100e6
    linearizer: str = "random"
    save_final_outputs: bool = True
    seed_policy: str = "spawn"
    #: How per-cell *evaluation* (sampling) seeds are derived.  The
    #: default ``"positional"`` reproduces the historical grid-position
    #: derivation bit for bit (paper figures and all pre-existing
    #: records); ``"content"`` derives each cell's seed from the cell's
    #: own content via :func:`cell_eval_seed`, so a cell's record no
    #: longer depends on the shape of the grid that computed it.  Only
    #: stochastic methods (Monte Carlo) consume evaluation seeds —
    #: closed-form records are identical under both policies.
    eval_seed_policy: str = "positional"
    name: str = "sweep"
    #: Extra evaluator keywords (``trials=`` for Monte Carlo, ``k=`` for
    #: PathApprox, ...).  Accepts a mapping; stored as a sorted tuple of
    #: (name, value) pairs so specs stay hashable and picklable.
    evaluator_options: Tuple[Tuple[str, Any], ...] = ()
    #: External workflow source (``None`` = generate ``family``
    #: instances).  Set through :meth:`from_source`; when present,
    #: ``family`` must be the source's ``spec_family`` and ``sizes`` its
    #: actual task count, so records and seed derivations stay
    #: content-addressed.
    source: Optional[FileSource] = None

    def __post_init__(self) -> None:
        try:
            object.__setattr__(
                self, "sizes", tuple(int(n) for n in self.sizes)
            )
            object.__setattr__(
                self, "pfails", tuple(float(p) for p in self.pfails)
            )
            object.__setattr__(
                self, "ccrs", tuple(float(c) for c in self.ccrs)
            )
            object.__setattr__(
                self,
                "processors",
                {int(k): tuple(v) for k, v in dict(self.processors).items()},
            )
            object.__setattr__(self, "seed", int(self.seed))
            object.__setattr__(self, "bandwidth", float(self.bandwidth))
        except (TypeError, ValueError, OverflowError) as exc:
            raise ExperimentError(
                f"bad numeric sweep field: {exc}"
            ) from None
        try:
            object.__setattr__(
                self,
                "evaluator_options",
                tuple(sorted(dict(self.evaluator_options).items())),
            )
        except (TypeError, ValueError) as exc:
            raise ExperimentError(
                f"evaluator_options must be a mapping with string keys: "
                f"{exc}"
            ) from None
        if self.seed_policy not in SEED_POLICIES:
            raise ExperimentError(
                f"unknown seed policy {self.seed_policy!r}; "
                f"choose from {list(SEED_POLICIES)}"
            )
        if self.eval_seed_policy not in EVAL_SEED_POLICIES:
            raise ExperimentError(
                f"unknown eval-seed policy {self.eval_seed_policy!r}; "
                f"choose from {list(EVAL_SEED_POLICIES)}"
            )
        for msg in (
            *(pfail_error(pfail) for pfail in self.pfails),
            *(ccr_error(ccr) for ccr in self.ccrs),
            bandwidth_error(self.bandwidth),
            seed_error(self.seed),
        ):
            if msg is not None:
                raise ExperimentError(msg)
        for ntasks in self.sizes:
            if not self.processors.get(ntasks):
                raise ExperimentError(
                    f"no processor counts configured for size {ntasks}"
                )
        if self.source is not None:
            if not isinstance(self.source, FileSource):
                raise ExperimentError(
                    f"spec source must be a FileSource, got "
                    f"{type(self.source).__name__}"
                )
            if self.family != self.source.spec_family:
                raise ExperimentError(
                    f"family {self.family!r} does not match the source's "
                    f"content-derived family {self.source.spec_family!r}"
                )
            if self.sizes != (self.source.workflow.n_tasks,):
                raise ExperimentError(
                    f"a file-sourced spec's sizes must be the workflow's "
                    f"actual task count ({self.source.workflow.n_tasks},), "
                    f"got {self.sizes}"
                )

    @classmethod
    def from_source(
        cls,
        source: FileSource,
        processors: Sequence[int],
        pfails: Sequence[float],
        ccrs: Sequence[float],
        **kwargs: Any,
    ) -> "SweepSpec":
        """Spec over one external workflow: the size axis is the file's
        task count, ``processors`` is a flat list of counts, and the
        family string is the source's content-derived ``file:<hash12>``."""
        ntasks = source.workflow.n_tasks
        kwargs.setdefault("name", f"sweep[{source.spec_family}]")
        return cls(
            family=source.spec_family,
            sizes=(ntasks,),
            processors={ntasks: tuple(processors)},
            pfails=tuple(pfails),
            ccrs=tuple(ccrs),
            source=source,
            **kwargs,
        )

    @property
    def resolved_source(self) -> WorkflowSource:
        """The spec's workflow source (family generation by default)."""
        return (
            self.source if self.source is not None else FamilySource(self.family)
        )

    @property
    def n_cells(self) -> int:
        """Total number of grid cells."""
        per_group = len(self.pfails) * len(self.ccrs)
        return sum(
            len(self.processors[n]) for n in self.sizes
        ) * per_group

    @classmethod
    def from_figure(cls, figure) -> "SweepSpec":
        """Adapt a :class:`repro.experiments.figures.FigureSpec`.

        Uses the ``"stable"`` seed policy so figure numbers are identical
        to the historical serial loops.  Duck-typed to avoid an import
        cycle with the experiments package.
        """
        try:
            processors = {
                int(n): tuple(figure.processors[n]) for n in figure.sizes
            }
        except KeyError as exc:
            raise ExperimentError(
                f"no processor counts configured for size {exc.args[0]}"
            ) from None
        return cls(
            family=figure.family,
            sizes=tuple(figure.sizes),
            processors=processors,
            pfails=tuple(figure.pfails),
            ccrs=tuple(figure.ccrs),
            seed=figure.seed,
            method=figure.method,
            bandwidth=figure.bandwidth,
            seed_policy="stable",
            name=figure.name,
        )


@dataclass(frozen=True)
class _Chunk:
    """One unit of executor work: contiguous cells of one grid group."""

    order: Tuple[int, int]  # (group index, chunk index) — flatten order
    ntasks: int
    processors: int
    wf_seed: int
    sched_seed: int
    cells: Tuple[Tuple[float, float, int], ...]  # (pfail, ccr, eval_seed)


def _seq_to_seed(seq: np.random.SeedSequence) -> int:
    """Deterministic 63-bit int seed from a spawned SeedSequence."""
    return int(seq.generate_state(1, np.uint64)[0] >> np.uint64(1))


def cell_wf_seed(
    seed: int, seed_policy: str, family: str, ntasks: int
) -> int:
    """Workflow seed a 1×1 grid (the per-cell contract) derives.

    ``"stable"`` hashes (seed, family, ntasks) position-independently;
    ``"spawn"`` takes the index-0 spawns of the SeedSequence tree, which
    is what a single-cell grid resolves to.  The service store's
    backfill uses this to verify record provenance: a record whose
    stored seed disagrees was computed under different workflow seeds
    (wrong root seed/policy, or a non-initial position of a spawn grid).
    """
    if seed_policy not in SEED_POLICIES:
        raise ExperimentError(
            f"unknown seed policy {seed_policy!r}; "
            f"choose from {list(SEED_POLICIES)}"
        )
    if seed_policy == "spawn":
        if seed < 0:
            raise ExperimentError(
                "the spawn seed policy requires a non-negative root "
                f"seed (SeedSequence spawning), got {seed}"
            )
        root = np.random.SeedSequence(seed)
        return _seq_to_seed(root.spawn(1)[0].spawn(2)[0])
    return stable_seed(seed, family, ntasks)


def cell_eval_seed(
    wf_seed: int,
    processors: int,
    pfail: float,
    ccr: float,
    method: str,
    evaluator_options: Mapping[str, Any] = (),
) -> int:
    """Content-derived evaluation (sampling) seed of one cell.

    The ``"content"`` eval-seed policy's defining contract, mirroring
    :func:`cell_wf_seed`: the seed is a :func:`repro.util.rng.stable_seed`
    hash of what the cell *is* — its workflow seed (which already pins
    root seed, family and size under either seed policy), processor
    count, (pfail, CCR) coordinates, evaluation method and canonical
    evaluator options — never of where the cell sits in a grid.  Two
    grids of any shape therefore sample identical streams for identical
    cells, which is what lets Monte Carlo requests ride request
    coalescing, batched evaluation and the durable result store.

    Floats are hashed through their exact ``repr`` and options through
    their canonical sorted-pair form, matching the canonicalisation
    :class:`SweepSpec` and the service fingerprint already apply.
    """
    try:
        options = tuple(sorted(dict(evaluator_options).items()))
    except (TypeError, ValueError) as exc:
        raise ExperimentError(
            f"evaluator_options must be a mapping with string keys: {exc}"
        ) from None
    return stable_seed(
        "eval",
        int(wf_seed),
        int(processors),
        repr(float(pfail)),
        repr(float(ccr)),
        str(method),
        repr(options),
    )


def _derive_chunks(
    spec: SweepSpec, chunk_cells: Optional[int]
) -> List[_Chunk]:
    """The deterministic execution plan: all seeds resolved, grid order.

    Group seeds come either from ``stable_seed`` hashing (order
    independent by construction) or from a ``SeedSequence.spawn`` tree
    rooted at ``spec.seed`` and expanded in grid order — both computed
    here, before any fan-out, so serial and parallel runs see identical
    numbers.
    """
    cell_axes = [(pf, cc) for pf in spec.pfails for cc in spec.ccrs]
    n_cells_per_group = len(cell_axes)
    groups: List[_Chunk] = []

    if spec.seed_policy == "spawn":
        root = np.random.SeedSequence(spec.seed)
        size_seqs = root.spawn(len(spec.sizes))
    else:
        size_seqs = [None] * len(spec.sizes)

    group_index = 0
    for ntasks, size_seq in zip(spec.sizes, size_seqs):
        procs = spec.processors[ntasks]
        if spec.seed_policy == "spawn":
            kids = size_seq.spawn(1 + len(procs))
            wf_seed = _seq_to_seed(kids[0])
            proc_seqs = kids[1:]
        else:
            wf_seed = stable_seed(spec.seed, spec.family, ntasks)
            proc_seqs = [None] * len(procs)
        for p, proc_seq in zip(procs, proc_seqs):
            if spec.seed_policy == "spawn":
                kids2 = proc_seq.spawn(1 + n_cells_per_group)
                sched_seed = _seq_to_seed(kids2[0])
                eval_seeds = [_seq_to_seed(s) for s in kids2[1:]]
            else:
                sched_seed = stable_seed(spec.seed, spec.family, ntasks, p)
                eval_seeds = [
                    stable_seed(spec.seed, spec.family, ntasks, p, "cell", i)
                    for i in range(n_cells_per_group)
                ]
            if spec.eval_seed_policy == "content":
                # Content policy replaces only the *evaluation* seeds;
                # the workflow/schedule derivations above (including the
                # spawn tree's shape) are untouched, so closed-form
                # records are bit-identical under either policy.
                eval_seeds = [
                    cell_eval_seed(
                        wf_seed, p, pf, cc, spec.method,
                        dict(spec.evaluator_options),
                    )
                    for pf, cc in cell_axes
                ]
            cells = tuple(
                (pf, cc, ev)
                for (pf, cc), ev in zip(cell_axes, eval_seeds)
            )
            groups.append(
                _Chunk(
                    order=(group_index, 0),
                    ntasks=ntasks,
                    processors=p,
                    wf_seed=wf_seed,
                    sched_seed=sched_seed,
                    cells=cells,
                )
            )
            group_index += 1

    if chunk_cells is None or chunk_cells <= 0:
        return groups
    # Split each group's cell list into chunks of at most ``chunk_cells``
    # for finer load balancing (at the cost of re-amortising the
    # invariant stages once per chunk instead of once per group).
    chunks: List[_Chunk] = []
    for g in groups:
        for j in range(0, len(g.cells), chunk_cells):
            chunks.append(
                replace(
                    g,
                    order=(g.order[0], j),
                    cells=g.cells[j : j + chunk_cells],
                )
            )
    return chunks


def _progress_message(spec: SweepSpec, cell: CellResult) -> str:
    return (
        f"{spec.name} n={cell.ntasks_requested} p={cell.processors} "
        f"pfail={cell.pfail} ccr={cell.ccr:.2e}: "
        f"all/some={cell.ratio_all:.3f} none/some={cell.ratio_none:.3f}"
    )


def _supports_batch(method: str) -> bool:
    """Whether the registered evaluator opted into batched evaluation.

    Unknown methods answer False so the per-cell path raises exactly
    the error it always has.
    """
    try:
        evaluator = get_evaluator(method)
    except EvaluationError:
        return False
    return bool(getattr(evaluator, "supports_batch", False))


def _chunk_schedule(
    spec: SweepSpec, chunk: _Chunk, pipeline: Pipeline
) -> Tuple[Any, Any]:
    """The chunk's (workflow, schedule), through the pipeline cache."""
    workflow = pipeline.prepare_source(
        spec.resolved_source, chunk.ntasks, chunk.wf_seed
    )
    tree = pipeline.mspg_tree(workflow)
    schedule = pipeline.schedule_for(
        workflow,
        chunk.processors,
        seed=chunk.sched_seed,
        linearizer=spec.linearizer,
        tree=tree,
    )
    return workflow, schedule


def _defer_chunk(
    spec: SweepSpec,
    chunk: _Chunk,
    pipeline: Pipeline,
    collector: FusedEvalCollector,
) -> Callable[[], List[CellResult]]:
    """Stage one chunk's evaluations on ``collector``; finish later.

    Runs the invariant stages and the per-cell preparation immediately
    (exactly as :func:`_run_chunk` would), defers the expected-makespan
    pricing to the collector, and returns the finisher that assembles
    the chunk's records once the collector has flushed.  Evaluators
    without batch support are priced on the spot (nothing to defer).
    """
    workflow, schedule = _chunk_schedule(spec, chunk, pipeline)
    return pipeline.evaluate_cells_deferred(
        family=spec.family,
        ntasks_requested=chunk.ntasks,
        workflow=workflow,
        schedule=schedule,
        processors=chunk.processors,
        cells=chunk.cells,
        collector=collector,
        method=spec.method,
        seed=chunk.wf_seed,
        bandwidth=spec.bandwidth,
        save_final_outputs=spec.save_final_outputs,
        evaluator_options=dict(spec.evaluator_options),
    )


def _run_chunk(
    spec: SweepSpec,
    chunk: _Chunk,
    pipeline: Pipeline,
    progress: Optional[Callable[[str], None]] = None,
    batch_eval: bool = True,
    fused_eval: bool = True,
) -> List[CellResult]:
    """Execute one chunk's cells through the staged pipeline.

    With ``batch_eval`` (the default) and a batch-capable evaluator the
    chunk's cells are priced through
    :meth:`~repro.engine.pipeline.Pipeline.evaluate_cells` — the DAG
    template is built once per structure group and the evaluator runs
    once per group instead of once per cell; with ``fused_eval`` on top
    (the default) the chunk's CKPTSOME and CKPTALL evaluations across
    all structure groups land in one fused dispatch.  Records are
    bit-identical on every path: stochastic evaluators get their
    per-cell ``eval_seed`` stream threaded through the batch call
    (whatever the eval-seed policy), and evaluators without
    ``supports_batch`` take the per-cell path.
    """
    workflow, schedule = _chunk_schedule(spec, chunk, pipeline)
    if batch_eval and len(chunk.cells) > 1 and _supports_batch(spec.method):
        records = pipeline.evaluate_cells(
            family=spec.family,
            ntasks_requested=chunk.ntasks,
            workflow=workflow,
            schedule=schedule,
            processors=chunk.processors,
            cells=chunk.cells,
            method=spec.method,
            seed=chunk.wf_seed,
            bandwidth=spec.bandwidth,
            save_final_outputs=spec.save_final_outputs,
            evaluator_options=dict(spec.evaluator_options),
            fused_eval=fused_eval,
        )
        if progress is not None:
            for record in records:
                progress(_progress_message(spec, record))
        return records
    records: List[CellResult] = []
    for pfail, ccr, eval_seed in chunk.cells:
        platform = pipeline.platform_for(
            workflow, chunk.processors, pfail, spec.bandwidth
        )
        record = pipeline.evaluate_cell(
            family=spec.family,
            ntasks_requested=chunk.ntasks,
            workflow=workflow,
            schedule=schedule,
            platform=platform,
            pfail=pfail,
            ccr=ccr,
            method=spec.method,
            seed=chunk.wf_seed,
            eval_seed=eval_seed,
            save_final_outputs=spec.save_final_outputs,
            evaluator_options=dict(spec.evaluator_options),
        )
        records.append(record)
        if progress is not None:
            progress(_progress_message(spec, record))
    return records


def _run_chunk_task(
    spec: SweepSpec,
    chunk: _Chunk,
    batch_eval: bool = True,
    fused_eval: bool = True,
    profile: bool = False,
    pipeline: Optional[Pipeline] = None,
) -> Tuple[List[CellResult], Optional[Dict[str, Any]]]:
    """Backend work-unit entry point: price one chunk, ship the records.

    Follows the :mod:`repro.engine.backends` task contract — returns
    ``(records, profile_snapshot)``.  The snapshot is ``None`` unless
    ``profile`` is set: an out-of-process backend's parent collector
    does not cross the process boundary, so the worker enables a
    private one and ships the counters back for
    :meth:`~repro.makespan.profile.KernelProfile.merge`.  ``pipeline``
    lets an in-process backend (serial reference, broken-executor
    restart) share one pipeline across tasks; out-of-process executions
    build a private one per chunk.
    """
    if not profile:
        records = _run_chunk(
            spec, chunk, pipeline if pipeline is not None else Pipeline(),
            batch_eval=batch_eval, fused_eval=fused_eval,
        )
        return records, None
    prof = _profile.enable()
    try:
        records = _run_chunk(
            spec, chunk, pipeline if pipeline is not None else Pipeline(),
            batch_eval=batch_eval, fused_eval=fused_eval,
        )
        return records, prof.snapshot()
    finally:
        _profile.disable()


def _resolve_backend(
    backend: Union[None, str, ExecutionBackend], jobs: int
) -> Tuple[ExecutionBackend, bool]:
    """Turn a ``backend=`` argument into ``(instance, owns_backend)``.

    ``None`` means the historical default — a process pool sized by
    ``jobs``.  A string goes through
    :func:`repro.engine.backends.get_backend`; an instance is used as
    is (and not closed: the caller owns its lifecycle — this is how the
    service threads one long-lived remote fleet through every batch).
    Raises :class:`~repro.engine.backends.BackendUnavailable` when the
    environment cannot host the backend; callers fall back to the
    serial in-process path, which produces identical records.
    """
    if backend is None:
        backend = "process"
    if isinstance(backend, str):
        return get_backend(backend, jobs=jobs), True
    return backend, False


def _run_chunks_fused(
    spec: SweepSpec,
    chunks: Sequence[_Chunk],
    pipeline: Pipeline,
    progress: Optional[Callable[[str], None]],
) -> List[List[CellResult]]:
    """Serial fused execution: one dispatch per (workflow, processors)
    group, spanning all of the group's chunks, both strategies and every
    structure group."""
    ordered: List[List[CellResult]] = []
    for _gi, group in itertools.groupby(chunks, key=lambda c: c.order[0]):
        collector = FusedEvalCollector(pipeline)
        finishers = [
            _defer_chunk(spec, ch, pipeline, collector) for ch in group
        ]
        collector.flush()
        for finish in finishers:
            records = finish()
            if progress is not None:
                for record in records:
                    progress(_progress_message(spec, record))
            ordered.append(records)
    return ordered


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    chunk_cells: Optional[int] = None,
    pipeline: Optional[Pipeline] = None,
    batch_eval: bool = True,
    fused_eval: bool = True,
    backend: Union[None, str, ExecutionBackend] = None,
) -> List[CellResult]:
    """Execute a sweep; returns one record per cell, in grid order.

    Parameters
    ----------
    jobs:
        ``1`` (default) runs in-process over one shared pipeline —
        maximal artifact reuse.  ``> 1`` fans chunks out over an
        execution backend sized to that many workers; ``0``/negative
        means "all cores".  Records are identical for every value.
    progress:
        Callback receiving one formatted line per completed cell.
    chunk_cells:
        Split each (size, processors) group into chunks of at most this
        many cells for finer pool balancing.  Default: one chunk per
        group when serial (maximal reuse of the invariant stages); on a
        concurrent backend with fewer groups than workers, groups are
        split automatically so every worker has work.  Chunking never
        changes the records, only the work distribution.
    pipeline:
        Existing pipeline (and artifact cache) to reuse for in-process
        execution; ignored on the backend fan-out path.
    batch_eval:
        Price each chunk's cells through the evaluator's batched entry
        point (default) instead of one evaluation per cell.  Records
        are bit-identical either way — False is the reference escape
        hatch (CLI ``--no-batch-eval``).  Evaluators without batch
        support always run per cell.
    fused_eval:
        Collect all of a (workflow, processors) group's evaluations —
        every chunk, CKPTSOME and CKPTALL, every structure group — into
        one fused dispatch (default) instead of dispatching per
        strategy and structure group.  Records are bit-identical either
        way — False is the per-group escape hatch (CLI
        ``--no-fused-eval``).  Implied off by ``batch_eval=False``.
    backend:
        Where chunks execute: ``None`` (default) keeps the historical
        behaviour — in-process when ``jobs == 1``, a process pool
        otherwise; a name from :data:`repro.engine.backends.BACKENDS`
        (``"serial"``, ``"process"``, ``"subprocess"``, ``"remote"``)
        or a ready :class:`~repro.engine.backends.ExecutionBackend`
        instance forces that backend regardless of ``jobs``.  Every
        seed is derived here in the parent before submission, so
        records are bit-identical across all backends.
    """
    if not spec.sizes or not spec.pfails or not spec.ccrs:
        raise ExperimentError(
            "sweep grid is empty (sizes, pfails and ccrs must be non-empty)"
        )
    chunks = _derive_chunks(spec, chunk_cells)
    if jobs is None or jobs < 1:
        jobs = os.cpu_count() or 1

    if backend is None and jobs == 1:
        pipe = pipeline if pipeline is not None else Pipeline()
        if batch_eval and fused_eval and _supports_batch(spec.method):
            ordered = _run_chunks_fused(spec, chunks, pipe, progress)
        else:
            ordered = [
                _run_chunk(
                    spec, ch, pipe, progress, batch_eval=batch_eval,
                    fused_eval=fused_eval,
                )
                for ch in chunks
            ]
        return [rec for recs in ordered for rec in recs]

    try:
        exec_backend, owns = _resolve_backend(backend, jobs)
    except BackendUnavailable:
        # No executor support in this environment (restricted sandbox):
        # fall back to the serial path, which produces identical records.
        return run_sweep(
            spec, jobs=1, progress=progress, pipeline=pipeline,
            batch_eval=batch_eval, fused_eval=fused_eval,
        )

    if chunk_cells is None and exec_backend.max_inflight != 1:
        # Auto-chunk so a concurrent backend has a few chunks per worker
        # even when the grid has fewer (size, processors) groups than
        # workers.  (A one-at-a-time backend keeps group granularity —
        # splitting would only re-amortise the invariant stages.)
        per_group = len(spec.pfails) * len(spec.ccrs)
        n_groups = len(chunks)
        target = 2 * max(jobs, 2)
        if n_groups < target:
            chunk_cells = max(1, math.ceil(per_group * n_groups / target))
            chunks = _derive_chunks(spec, chunk_cells)

    def on_result(order: Tuple[int, int], recs: List[CellResult]) -> None:
        if progress is not None:
            for rec in recs:
                progress(_progress_message(spec, rec))

    results = run_tasks(
        exec_backend,
        [
            BackendTask(
                fn=_run_chunk_task,
                args=(spec, ch, batch_eval, fused_eval),
                key=ch.order,
            )
            for ch in chunks
        ],
        on_result=on_result,
        on_note=progress,
        owns_backend=owns,
    )
    return [rec for order in sorted(results) for rec in results[order]]


def _run_spec_task(
    spec: SweepSpec,
    batch_eval: bool = True,
    fused_eval: bool = True,
    profile: bool = False,
    pipeline: Optional[Pipeline] = None,
) -> Tuple[List[CellResult], Optional[Dict[str, Any]]]:
    """Backend work-unit entry point for :func:`run_specs`: one serial
    sweep per unit.

    Returns ``(records, profile_snapshot)`` exactly like
    :func:`_run_chunk_task` — out-of-process workers profile themselves
    when the parent holds an active collector, and an in-process
    backend threads its shared ``pipeline`` through the sweep.
    """
    if not profile:
        return run_sweep(
            spec, jobs=1, pipeline=pipeline, batch_eval=batch_eval,
            fused_eval=fused_eval,
        ), None
    prof = _profile.enable()
    try:
        records = run_sweep(
            spec, jobs=1, pipeline=pipeline, batch_eval=batch_eval,
            fused_eval=fused_eval,
        )
        return records, prof.snapshot()
    finally:
        _profile.disable()


def _sweep_deferred(
    spec: SweepSpec,
    pipeline: Pipeline,
    collector: FusedEvalCollector,
    progress: Optional[Callable[[str], None]],
) -> Callable[[], List[CellResult]]:
    """Stage a whole spec's evaluations on a shared collector.

    The cross-spec half of the fused dispatcher: every chunk of every
    (workflow, processors) group is deferred, so co-batched specs
    sharing an evaluation method are priced together in one dispatch
    when the collector flushes.  The returned finisher yields the
    spec's records in grid order (emitting progress lines as it goes).
    """
    if not spec.sizes or not spec.pfails or not spec.ccrs:
        raise ExperimentError(
            "sweep grid is empty (sizes, pfails and ccrs must be non-empty)"
        )
    chunks = _derive_chunks(spec, None)
    finishers = [
        _defer_chunk(spec, ch, pipeline, collector) for ch in chunks
    ]

    def finish() -> List[CellResult]:
        records: List[CellResult] = []
        for fin in finishers:
            recs = fin()
            if progress is not None:
                for rec in recs:
                    progress(_progress_message(spec, rec))
            records.extend(recs)
        return records

    return finish


def _run_specs_fused(
    specs: Sequence[SweepSpec],
    pipeline: Pipeline,
    progress: Optional[Callable[[str], None]],
    return_exceptions: bool,
    batch_eval: bool,
    fused_eval: bool,
) -> List[Any]:
    """Serial fused execution of a spec batch over one shared collector.

    Specs whose evaluator cannot batch fall back to their own
    :func:`run_sweep` on the shared pipeline.  A spec that raises —
    staging or finishing — yields its exception in its slot under
    ``return_exceptions`` without disturbing the co-batched specs
    (the collector isolates dispatch failures per template job).
    """
    collector = FusedEvalCollector(pipeline)
    slots: List[Any] = [None] * len(specs)
    finishers: Dict[int, Callable[[], List[CellResult]]] = {}
    for i, spec in enumerate(specs):
        try:
            if _supports_batch(spec.method):
                finishers[i] = _sweep_deferred(
                    spec, pipeline, collector, progress
                )
            else:
                slots[i] = run_sweep(
                    spec, jobs=1, progress=progress, pipeline=pipeline,
                    batch_eval=batch_eval, fused_eval=fused_eval,
                )
        except Exception as exc:
            if not return_exceptions:
                raise
            slots[i] = exc
    collector.flush()
    for i, finish in finishers.items():
        try:
            slots[i] = finish()
        except Exception as exc:
            if not return_exceptions:
                raise
            slots[i] = exc
    return slots


def run_specs(
    specs: Sequence[SweepSpec],
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    pipeline: Optional[Pipeline] = None,
    return_exceptions: bool = False,
    batch_eval: bool = True,
    fused_eval: bool = True,
    backend: Union[None, str, ExecutionBackend] = None,
) -> List[Any]:
    """Batch entry point: execute several sweeps; one record list per spec.

    This is the hook the service scheduler dispatches coalesced request
    batches through.  Serial execution (``jobs == 1``) threads one shared
    :class:`~repro.engine.pipeline.Pipeline` through every spec, so specs
    that share a (workflow, processors) pair — e.g. the same grid group
    split across batches — reuse the cached M-SPG tree and schedule
    instead of recomputing them; with ``fused_eval`` (the default) their
    evaluations are additionally staged on one shared
    :class:`~repro.engine.pipeline.FusedEvalCollector`, so co-batched
    specs sharing an evaluation method are priced through a single
    fused dispatch.  With ``jobs > 1`` — or an explicit ``backend=``,
    which takes the same names and instances as :func:`run_sweep` —
    whole specs fan out over an execution backend (``0``/negative
    means "all cores"); a single spec falls through to
    :func:`run_sweep`'s own cell-level fan-out.  Records are identical
    for every ``jobs`` value and every backend.

    With ``return_exceptions=True`` a spec whose execution raises yields
    its exception object in that slot instead of aborting the whole
    batch (:func:`asyncio.gather` semantics) — the service scheduler
    uses this to fail only the requests belonging to a bad spec while
    the co-batched specs' results are kept.  The fused path preserves
    this isolation: dispatch failures are retried one template job at a
    time, so only the specs feeding a bad job see its exception.

    ``batch_eval`` and ``fused_eval`` are forwarded to every
    :func:`run_sweep` call: the coalesced service batches ride the same
    batched/fused evaluation entry points as declared sweeps (False
    restores the per-cell / per-group reference paths; records are
    identical either way).
    """
    specs = list(specs)
    if not specs:
        return []
    if jobs is None or jobs < 1:
        jobs = os.cpu_count() or 1

    def one(
        spec: SweepSpec, pipe: Optional[Pipeline], n: int
    ) -> Any:
        try:
            return run_sweep(
                spec, jobs=n, progress=progress, pipeline=pipe,
                batch_eval=batch_eval, fused_eval=fused_eval,
                backend=backend,
            )
        except Exception as exc:
            if not return_exceptions:
                raise
            return exc

    if len(specs) == 1:
        return [one(specs[0], pipeline, jobs)]
    if backend is None and jobs == 1:
        pipe = pipeline if pipeline is not None else Pipeline()
        if batch_eval and fused_eval:
            return _run_specs_fused(
                specs, pipe, progress, return_exceptions, batch_eval,
                fused_eval,
            )
        return [one(s, pipe, 1) for s in specs]
    try:
        exec_backend, owns = _resolve_backend(
            backend, min(jobs, len(specs))
        )
    except BackendUnavailable:
        return run_specs(
            specs, jobs=1, progress=progress, pipeline=pipeline,
            return_exceptions=return_exceptions, batch_eval=batch_eval,
            fused_eval=fused_eval,
        )

    def on_result(i: int, recs: List[CellResult]) -> None:
        if progress is not None:
            for rec in recs:
                progress(_progress_message(specs[i], rec))

    out = run_tasks(
        exec_backend,
        [
            BackendTask(
                fn=_run_spec_task, args=(s, batch_eval, fused_eval), key=i
            )
            for i, s in enumerate(specs)
        ],
        on_result=on_result,
        on_note=progress,
        return_exceptions=return_exceptions,
        owns_backend=owns,
    )
    return [out[i] for i in range(len(specs))]
