"""Remote worker fleet: lease/complete work queue + HTTP coordinator.

The remote backend is pull-based.  A :class:`WorkQueue` holds encoded
work units; ``repro worker`` processes poll a *coordinator* over HTTP —
``POST /work/lease`` to claim a unit, ``POST /work/complete`` /
``POST /work/fail`` to settle it — and register themselves via
``POST /workers/register`` (surfaced in ``/status``).  Every lease
carries a deadline: a worker that dies mid-unit simply stops renewing,
and the unit is **requeued** for the next lease poll once the deadline
passes, so a killed worker never loses work, only time.  Because all
seeds are derived before submission, a requeued unit recomputed by a
different worker produces byte-identical records — first completion
wins, late duplicates are ignored.

Two processes can host the coordinator endpoints:

* :class:`~repro.service.server.ReproService` mounts them next to
  ``/evaluate`` (``repro serve --backend remote``), so a worker fleet
  shares the service's durable store as its cache tier — answered
  fingerprints never reach the queue at all;
* :class:`WorkServer`, a minimal standalone coordinator the
  :class:`RemoteWorkerBackend` spins up (ephemeral port) when there is
  no service to attach to (``repro sweep --backend remote``).

``--workers URL...`` recruits *attachable* workers (``repro worker
--listen PORT``): the backend POSTs each URL ``/attach`` with its own
coordinator address and the worker starts polling back.  Workers
started as ``repro worker COORDINATOR_URL`` need no recruiting — they
poll the coordinator directly.

Payloads ride the pickle wire codec of
:mod:`repro.engine.backends.base` — trusted fleets only.
"""

from __future__ import annotations

import base64
import json
import threading
import time
import urllib.request
import uuid
from collections import deque
from concurrent.futures import Future
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.backends.base import (
    BackendTask,
    BrokenBackendError,
    ExecutionBackend,
    decode_error,
    decode_result,
    encode_task,
)
from repro.errors import BackendError

__all__ = [
    "WorkQueue",
    "WorkServer",
    "RemoteWorkerBackend",
    "queue_routes",
    "attach_worker",
]

#: A unit is abandoned (its future fails) after this many lease
#: expiries — the backstop against a unit that kills every worker that
#: touches it cycling through the fleet forever.
MAX_ATTEMPTS = 5


class _Unit:
    __slots__ = (
        "unit_id", "payload", "future", "worker", "deadline", "attempts",
    )

    def __init__(self, unit_id: str, payload: bytes) -> None:
        self.unit_id = unit_id
        self.payload = payload
        self.future: "Future[Any]" = Future()
        self.worker: Optional[str] = None  # current lease holder
        self.deadline: Optional[float] = None  # lease expiry (monotonic)
        self.attempts = 0  # leases granted so far


class WorkQueue:
    """Thread-safe lease/complete queue of encoded work units.

    ``lease_timeout`` is the seconds a worker owns a unit before it is
    considered dead and the unit requeued (checked lazily on every
    lease/stats call and by the backend's monitor — no reaper thread of
    its own, so an embedding service pays nothing while idle).
    """

    def __init__(self, lease_timeout: float = 30.0) -> None:
        if lease_timeout <= 0:
            raise BackendError(
                f"lease_timeout must be positive, got {lease_timeout}"
            )
        self.lease_timeout = float(lease_timeout)
        self._lock = threading.Lock()
        self._units: Dict[str, _Unit] = {}
        self._pending: deque = deque()  # unit ids awaiting a lease
        self._workers: Dict[str, Dict[str, Any]] = {}
        self._counters = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "requeued": 0,
        }

    # -- producer side -------------------------------------------------

    def submit(self, payload: bytes) -> "Future[Any]":
        """Enqueue one encoded unit; the future resolves on completion."""
        unit = _Unit(uuid.uuid4().hex, payload)
        with self._lock:
            self._units[unit.unit_id] = unit
            self._pending.append(unit.unit_id)
            self._counters["submitted"] += 1
        return unit.future

    def reap(self) -> int:
        """Requeue every unit whose lease expired; returns how many."""
        with self._lock:
            return self._reap_locked()

    def _reap_locked(self) -> int:
        now = time.monotonic()
        requeued = 0
        for unit in self._units.values():
            if unit.worker is None or unit.future.done():
                continue
            if unit.deadline is not None and unit.deadline < now:
                unit.worker = None
                unit.deadline = None
                if unit.attempts >= MAX_ATTEMPTS:
                    unit.future.set_exception(
                        BackendError(
                            f"work unit {unit.unit_id[:8]} abandoned after "
                            f"{unit.attempts} expired leases"
                        )
                    )
                else:
                    self._pending.append(unit.unit_id)
                    requeued += 1
        self._counters["requeued"] += requeued
        return requeued

    def fail_pending(self, exc: BaseException) -> int:
        """Fail every unsettled unit (fleet declared dead / shutdown)."""
        with self._lock:
            failed = 0
            for unit in self._units.values():
                if not unit.future.done():
                    unit.future.set_exception(exc)
                    failed += 1
            self._pending.clear()
            return failed

    # -- worker side ---------------------------------------------------

    def register(self, worker: str, meta: Optional[dict] = None) -> None:
        with self._lock:
            entry = self._workers.setdefault(
                worker,
                {"registered_at": time.time(), "units_done": 0, "meta": {}},
            )
            entry["last_seen"] = time.time()
            if meta:
                entry["meta"] = dict(meta)

    def lease(self, worker: str) -> Optional[Tuple[str, bytes]]:
        """Claim the next pending unit for ``worker`` (None = no work).

        Leasing doubles as the worker heartbeat and as the lazy reap
        point: expired leases are requeued before handing out work, so
        a live worker picks up a dead one's units on its next poll.
        """
        with self._lock:
            self._reap_locked()
            entry = self._workers.setdefault(
                worker,
                {"registered_at": time.time(), "units_done": 0, "meta": {}},
            )
            entry["last_seen"] = time.time()
            while self._pending:
                unit = self._units.get(self._pending.popleft())
                if unit is None or unit.future.done():
                    continue
                unit.worker = worker
                unit.deadline = time.monotonic() + self.lease_timeout
                unit.attempts += 1
                return unit.unit_id, unit.payload
            return None

    def complete(self, unit_id: str, worker: str, result_blob: bytes) -> bool:
        """Settle a unit with its encoded ``(result, snapshot)`` pair.

        Idempotent: a late duplicate (the unit was requeued and another
        worker finished first) is acknowledged but ignored — results
        are byte-identical whichever worker computed them.
        """
        with self._lock:
            unit = self._units.get(unit_id)
            if unit is None:
                return False
            entry = self._workers.get(worker)
            if entry is not None:
                entry["last_seen"] = time.time()
                entry["units_done"] = entry.get("units_done", 0) + 1
            if unit.future.done():
                return False
            unit.worker = None
            unit.deadline = None
            self._counters["completed"] += 1
            # Settled under the lock so a racing duplicate completion
            # (lease expired, both workers answered) cannot double-set.
            try:
                unit.future.set_result(decode_result(result_blob))
            except Exception as exc:  # noqa: BLE001 — corrupted result
                unit.future.set_exception(
                    BackendError(f"undecodable worker result: {exc}")
                )
            return True

    def fail(
        self,
        unit_id: str,
        worker: str,
        message: str,
        error_blob: Optional[bytes] = None,
    ) -> bool:
        """Settle a unit with the exception its task raised.

        This is a *task* failure (bad spec, evaluation error) reported
        by a live worker — it resolves the unit, unlike a worker death,
        which requeues it.
        """
        with self._lock:
            unit = self._units.get(unit_id)
            if unit is None or unit.future.done():
                return False
            entry = self._workers.get(worker)
            if entry is not None:
                entry["last_seen"] = time.time()
            unit.worker = None
            unit.deadline = None
            self._counters["failed"] += 1
            unit.future.set_exception(
                decode_error(error_blob, message)
                if error_blob is not None
                else BackendError(message)
            )
            return True

    # -- introspection -------------------------------------------------

    def workers(self) -> Dict[str, Dict[str, Any]]:
        """Registered workers (id → registration/heartbeat/done counts)."""
        with self._lock:
            return {
                wid: {
                    "registered_at": entry["registered_at"],
                    "last_seen": entry.get("last_seen"),
                    "units_done": entry.get("units_done", 0),
                    "meta": dict(entry.get("meta", {})),
                }
                for wid, entry in self._workers.items()
            }

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            self._reap_locked()
            leased = sum(
                1
                for u in self._units.values()
                if u.worker is not None and not u.future.done()
            )
            return {
                "lease_timeout_s": self.lease_timeout,
                "pending": len(self._pending),
                "leased": leased,
                "workers": len(self._workers),
                **self._counters,
            }

    def last_worker_activity(self) -> Optional[float]:
        """``time.time()`` of the most recent worker heartbeat, if any."""
        with self._lock:
            seen = [
                entry.get("last_seen")
                for entry in self._workers.values()
                if entry.get("last_seen") is not None
            ]
            return max(seen) if seen else None


# ----------------------------------------------------------------------
# HTTP plumbing shared by WorkServer and the evaluation service.


def queue_routes(
    queue: WorkQueue,
) -> Dict[str, Callable[[Dict[str, Any]], Dict[str, Any]]]:
    """The coordinator's POST routes as ``path → handler(payload)``.

    Both hosts — the standalone :class:`WorkServer` and the evaluation
    service's handler — dispatch through this one table, so the wire
    protocol cannot drift between them.
    """

    def _lease(payload: Dict[str, Any]) -> Dict[str, Any]:
        worker = str(payload.get("worker") or "anonymous")
        leased = queue.lease(worker)
        if leased is None:
            return {"unit": None}
        unit_id, blob = leased
        return {
            "unit": unit_id,
            "payload": base64.b64encode(blob).decode("ascii"),
        }

    def _complete(payload: Dict[str, Any]) -> Dict[str, Any]:
        unit = str(payload.get("unit") or "")
        worker = str(payload.get("worker") or "anonymous")
        blob = base64.b64decode(str(payload.get("payload") or ""))
        return {"accepted": queue.complete(unit, worker, blob)}

    def _fail(payload: Dict[str, Any]) -> Dict[str, Any]:
        unit = str(payload.get("unit") or "")
        worker = str(payload.get("worker") or "anonymous")
        message = str(payload.get("error") or "worker task failed")
        raw = payload.get("payload")
        blob = base64.b64decode(str(raw)) if raw else None
        return {"accepted": queue.fail(unit, worker, message, blob)}

    def _register(payload: Dict[str, Any]) -> Dict[str, Any]:
        worker = str(payload.get("worker") or "anonymous")
        meta = payload.get("meta")
        queue.register(worker, meta if isinstance(meta, dict) else None)
        return {
            "registered": True,
            "worker": worker,
            "lease_timeout_s": queue.lease_timeout,
        }

    return {
        "/work/lease": _lease,
        "/work/complete": _complete,
        "/work/fail": _fail,
        "/workers/register": _register,
    }


class _CoordinatorHandler(BaseHTTPRequestHandler):
    """Minimal JSON handler for the standalone coordinator."""

    queue: WorkQueue  # bound per server via a subclass attribute
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt: str, *args: Any) -> None:  # noqa: ARG002
        pass  # the coordinator is chatty (polling); stay silent

    def _reply(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        if self.path.rstrip("/") == "/status":
            self._reply(
                200,
                {
                    "coordinator": "repro-work-server",
                    "work_queue": self.queue.stats(),
                    "workers": self.queue.workers(),
                },
            )
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        route = queue_routes(self.queue).get(self.path.rstrip("/"))
        if route is None:
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
            if not isinstance(payload, dict):
                raise ValueError("body must be a JSON object")
            self._reply(200, route(payload))
        except Exception as exc:  # noqa: BLE001 — report, don't die
            self._reply(400, {"error": str(exc)})


class WorkServer:
    """Standalone HTTP coordinator over one :class:`WorkQueue`."""

    def __init__(
        self,
        queue: WorkQueue,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.queue = queue
        handler = type("_BoundCoordinator", (_CoordinatorHandler,), {"queue": queue})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "WorkServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-work-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is not None:
            waiter = threading.Thread(target=self._httpd.shutdown, daemon=True)
            waiter.start()
            waiter.join(timeout=5.0)
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()


def _post_json(
    url: str, payload: Dict[str, Any], timeout: float = 10.0
) -> Dict[str, Any]:
    data = json.dumps(payload).encode("utf-8")
    req = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


def attach_worker(worker_url: str, coordinator_url: str) -> str:
    """Recruit an attachable worker (``repro worker --listen``): tell it
    to start polling ``coordinator_url``.  Returns the worker's id."""
    try:
        reply = _post_json(
            worker_url.rstrip("/") + "/attach",
            {"coordinator": coordinator_url},
        )
    except OSError as exc:
        raise BackendError(
            f"cannot attach worker at {worker_url}: {exc}"
        ) from None
    return str(reply.get("worker", worker_url))


class RemoteWorkerBackend(ExecutionBackend):
    """HTTP fan-out over a worker fleet sharing one work queue.

    Two hosting modes:

    * ``queue=`` **bound**: the embedding process (the evaluation
      service) owns the queue and exposes the coordinator endpoints
      itself; the backend only submits units and monitors liveness.
    * **standalone** (no ``queue``): the backend creates its own
      :class:`WorkQueue` and :class:`WorkServer` on an ephemeral port
      (:attr:`coordinator_url`) for workers to poll.

    ``workers`` lists attachable worker URLs to recruit at
    construction.  ``worker_grace`` bounds how long submitted work may
    sit with **no live worker**: past it, every unsettled future fails
    with :class:`~repro.engine.backends.base.BrokenBackendError` and
    the dispatch loop finishes the sweep serially in-process — a
    fleetless remote sweep degrades, it does not hang.
    """

    name = "remote"
    supports_profile_merge = True
    max_inflight = None

    def __init__(
        self,
        queue: Optional[WorkQueue] = None,
        coordinator_url: Optional[str] = None,
        workers: Sequence[str] = (),
        lease_timeout: float = 30.0,
        worker_grace: float = 60.0,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.worker_grace = float(worker_grace)
        self._server: Optional[WorkServer] = None
        if queue is not None:
            self.queue = queue
            self.coordinator_url = coordinator_url
        else:
            self.queue = WorkQueue(lease_timeout=lease_timeout)
            self._server = WorkServer(self.queue, host=host, port=port).start()
            self.coordinator_url = self._server.url
        self.attached: List[str] = []
        for worker_url in workers:
            if self.coordinator_url is None:
                raise BackendError(
                    "cannot recruit workers without a coordinator URL"
                )
            self.attached.append(
                attach_worker(worker_url, self.coordinator_url)
            )
        self._closed = threading.Event()
        self._last_settled = time.monotonic()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-remote-monitor", daemon=True
        )
        self._monitor.start()

    def submit(self, task: BackendTask, profile: bool = False) -> "Future[Any]":
        if self._closed.is_set():
            raise BackendError("remote backend is closed")
        payload = encode_task(task.fn, task.args, profile)
        future = self.queue.submit(payload)
        future.add_done_callback(self._note_settled)
        return future

    def _note_settled(self, _future: "Future[Any]") -> None:
        self._last_settled = time.monotonic()

    def _monitor_loop(self) -> None:
        interval = max(0.05, min(1.0, self.queue.lease_timeout / 4))
        while not self._closed.wait(interval):
            self.queue.reap()
            stats = self.queue.stats()
            outstanding = stats["pending"] + stats["leased"]
            if not outstanding:
                self._last_settled = time.monotonic()
                continue
            last_seen = self.queue.last_worker_activity()
            worker_idle = (
                float("inf")
                if last_seen is None
                else time.time() - last_seen
            )
            settled_idle = time.monotonic() - self._last_settled
            if min(worker_idle, settled_idle) > self.worker_grace:
                self.queue.fail_pending(
                    BrokenBackendError(
                        f"no live remote worker for {self.worker_grace:.0f}s "
                        f"({outstanding} unit(s) outstanding)"
                    )
                )

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        self.queue.fail_pending(BackendError("remote backend closed"))
        if self._server is not None:
            self._server.close()
            self._server = None
        self._monitor.join(timeout=5.0)
