"""One fresh interpreter per task: crash-isolating subprocess backend.

Unlike the process pool — whose long-lived workers amortise interpreter
startup but share fate with every task they ever ran —
:class:`SubprocessBackend` runs each work unit in a brand-new
``python -m repro.engine.backends.subproc`` child: the task payload is
piped to stdin (:func:`~repro.engine.backends.base.encode_task`), the
``(result, profile_snapshot)`` pair comes back on stdout.  A native
crash (segfault in a C extension, OOM kill) takes down exactly one
task: the child's nonzero exit surfaces as a
:class:`~repro.errors.BackendError` for that task alone, it never
poisons an executor shared with other tasks.  The price is one
interpreter start (and one cold pipeline) per task.

Runner protocol (the ``__main__`` block below)::

    stdin   pickle (fn, args, profile)           [encode_task]
    stdout  pickle ("ok", (result, snapshot))    [task succeeded]
            pickle ("error", pickled-exception)  [task raised]
    exit 0 either way; any other exit status means the interpreter
    itself died.
"""

from __future__ import annotations

import os
import subprocess
import sys
from concurrent.futures import Future, ThreadPoolExecutor
from pathlib import Path
from typing import Any, Optional

from repro.engine.backends.base import (
    BackendTask,
    BackendUnavailable,
    ExecutionBackend,
    decode_error,
    decode_result,
    encode_error,
    encode_result,
    encode_task,
    run_encoded_task,
)
from repro.errors import BackendError

__all__ = ["SubprocessBackend"]


def _child_env() -> dict:
    """The child's environment: parent env plus an import path that is
    guaranteed to resolve :mod:`repro` (source checkouts run with
    ``PYTHONPATH=src``; the child must see the same package)."""
    import repro

    env = dict(os.environ)
    pkg_parent = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    parts = [pkg_parent] + (existing.split(os.pathsep) if existing else [])
    env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
    return env


class SubprocessBackend(ExecutionBackend):
    """Execute each task in a fresh, disposable interpreter.

    ``jobs`` bounds how many children run concurrently (an internal
    thread pool feeds them and waits on their pipes).
    """

    name = "subprocess"
    supports_profile_merge = True
    max_inflight = None

    def __init__(self, jobs: int = 2) -> None:
        self.jobs = max(1, int(jobs))
        self._env = _child_env()
        self._threads: Optional[ThreadPoolExecutor] = ThreadPoolExecutor(
            max_workers=self.jobs, thread_name_prefix="repro-subproc"
        )

    def submit(self, task: BackendTask, profile: bool = False) -> "Future[Any]":
        if self._threads is None:
            raise BackendUnavailable("subprocess backend is closed")
        payload = encode_task(task.fn, task.args, profile)
        return self._threads.submit(self._run_child, payload)

    def _run_child(self, payload: bytes) -> Any:
        try:
            proc = subprocess.run(
                [sys.executable, "-m", "repro.engine.backends.subproc"],
                input=payload,
                capture_output=True,
                env=self._env,
            )
        except (OSError, PermissionError) as exc:
            # Process creation itself is blocked: broken, not a task
            # failure — the dispatch loop restarts serially.
            from repro.engine.backends.base import BrokenBackendError

            raise BrokenBackendError(
                f"cannot spawn a task interpreter: {exc}"
            ) from None
        if proc.returncode != 0:
            stderr = proc.stderr.decode("utf-8", "replace").strip()
            tail = stderr.splitlines()[-3:] if stderr else []
            raise BackendError(
                f"task interpreter died with exit status {proc.returncode}"
                + (": " + " | ".join(tail) if tail else "")
            )
        try:
            status, value = decode_result(proc.stdout)
        except Exception as exc:  # noqa: BLE001 — corrupted reply pipe
            raise BackendError(
                f"undecodable subprocess reply: {exc}"
            ) from None
        if status == "error":
            raise decode_error(value, "subprocess task failed")
        return value

    def close(self) -> None:
        threads, self._threads = self._threads, None
        if threads is not None:
            threads.shutdown(wait=False, cancel_futures=True)


def _runner_main() -> int:
    """``python -m repro.engine.backends.subproc``: run one piped task."""
    payload = sys.stdin.buffer.read()
    try:
        value = run_encoded_task(payload)
        reply = encode_result(("ok", value))
    except BaseException as exc:  # noqa: BLE001 — shipped to the parent
        reply = encode_result(("error", encode_error(exc)))
    sys.stdout.buffer.write(reply)
    sys.stdout.buffer.flush()
    return 0


if __name__ == "__main__":
    sys.exit(_runner_main())
