"""``repro worker`` — the fleet's compute process.

Two ways to run one:

* **Poller** (``repro worker http://coordinator:8765``): registers with
  the coordinator — a ``repro serve --backend remote`` service or a
  sweep's standalone :class:`~repro.engine.backends.remote.WorkServer`
  — then loops lease → execute → complete.  Transient coordinator
  outages (restart, network blip) are retried with backoff; a unit
  whose completion cannot be delivered is simply dropped — its lease
  expires and the queue requeues it, so at-least-once delivery holds
  without worker-side state.
* **Attachable** (``repro worker --listen 9400``): a small HTTP server
  that waits to be recruited — ``POST /attach {"coordinator": URL}``
  starts a poller thread against that coordinator (this is what
  ``--workers URL...`` does).  ``GET /status`` reports the worker id,
  attached coordinators and units done.

Executing a unit means unpickling and calling a task function — run
workers only against coordinators you trust (see
:mod:`repro.engine.backends.base`).
"""

from __future__ import annotations

import base64
import json
import os
import socket
import threading
import urllib.error
import urllib.request
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional

from repro.engine.backends.base import (
    encode_error,
    encode_result,
    run_encoded_task,
)
from repro.errors import BackendError

__all__ = ["WorkerLoop", "WorkerServer", "default_worker_id"]


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


class WorkerLoop:
    """One lease → execute → complete poller against a coordinator."""

    def __init__(
        self,
        coordinator: str,
        worker_id: Optional[str] = None,
        poll_interval: float = 0.2,
        log: Optional[Callable[[str], None]] = None,
        timeout: float = 600.0,
    ) -> None:
        self.coordinator = coordinator.rstrip("/")
        self.worker_id = worker_id or default_worker_id()
        self.poll_interval = max(0.01, float(poll_interval))
        self.log = log
        self.timeout = timeout
        self.units_done = 0
        self.units_failed = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- transport -----------------------------------------------------

    def _post(self, path: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        data = json.dumps(payload).encode("utf-8")
        req = urllib.request.Request(
            self.coordinator + path,
            data=data,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except (urllib.error.URLError, OSError, ValueError) as exc:
            raise BackendError(
                f"coordinator {self.coordinator}{path}: {exc}"
            ) from None

    def _say(self, message: str) -> None:
        if self.log is not None:
            self.log(f"[{self.worker_id}] {message}")

    # -- lifecycle -----------------------------------------------------

    def stop(self) -> None:
        self._stop.set()

    def start(self) -> "WorkerLoop":
        """Run :meth:`run` on a daemon thread (attachable mode/tests)."""
        self._thread = threading.Thread(
            target=self.run, name=f"repro-worker-{self.worker_id}", daemon=True
        )
        self._thread.start()
        return self

    def join(self, timeout: Optional[float] = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    def run(self) -> None:
        """Poll until stopped.  Never raises: every failure is logged,
        backed off and retried (the coordinator may simply be
        restarting)."""
        backoff = self.poll_interval
        registered = False
        while not self._stop.is_set():
            try:
                if not registered:
                    self._post(
                        "/workers/register",
                        {
                            "worker": self.worker_id,
                            "meta": {
                                "host": socket.gethostname(),
                                "pid": os.getpid(),
                            },
                        },
                    )
                    registered = True
                    self._say(f"registered with {self.coordinator}")
                did_work = self._poll_once()
                backoff = self.poll_interval
                if not did_work:
                    self._stop.wait(self.poll_interval)
            except BackendError as exc:
                self._say(f"transport error: {exc}")
                registered = False  # re-register after an outage
                self._stop.wait(backoff)
                backoff = min(backoff * 2, 5.0)

    def _poll_once(self) -> bool:
        """One lease poll; returns True when a unit was executed."""
        reply = self._post("/work/lease", {"worker": self.worker_id})
        unit_id = reply.get("unit")
        if not unit_id:
            return False
        payload = base64.b64decode(str(reply.get("payload") or ""))
        self._say(f"leased unit {str(unit_id)[:8]}")
        try:
            value = run_encoded_task(payload)
        except BaseException as exc:  # noqa: BLE001 — shipped back
            self.units_failed += 1
            self._say(f"unit {str(unit_id)[:8]} failed: {exc}")
            self._post(
                "/work/fail",
                {
                    "unit": unit_id,
                    "worker": self.worker_id,
                    "error": f"{type(exc).__name__}: {exc}",
                    "payload": base64.b64encode(
                        encode_error(exc)
                    ).decode("ascii"),
                },
            )
            return True
        self.units_done += 1
        self._post(
            "/work/complete",
            {
                "unit": unit_id,
                "worker": self.worker_id,
                "payload": base64.b64encode(
                    encode_result(value)
                ).decode("ascii"),
            },
        )
        self._say(f"completed unit {str(unit_id)[:8]}")
        return True


class _WorkerHandler(BaseHTTPRequestHandler):
    server_ref: "WorkerServer"
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt: str, *args: Any) -> None:  # noqa: ARG002
        pass

    def _reply(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        if self.path.rstrip("/") == "/status":
            self._reply(200, self.server_ref.describe())
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        if self.path.rstrip("/") != "/attach":
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
            coordinator = str(payload["coordinator"])
        except Exception as exc:  # noqa: BLE001 — malformed attach
            self._reply(
                400, {"error": f"attach payload needs 'coordinator': {exc}"}
            )
            return
        self._reply(200, self.server_ref.attach(coordinator))


class WorkerServer:
    """Attachable worker: an HTTP shell around on-demand poller loops."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        worker_id: Optional[str] = None,
        poll_interval: float = 0.2,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.worker_id = worker_id or default_worker_id()
        self.poll_interval = poll_interval
        self.log = log
        self._loops: List[WorkerLoop] = []
        self._lock = threading.Lock()
        handler = type("_BoundWorker", (_WorkerHandler,), {"server_ref": self})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def attach(self, coordinator: str) -> Dict[str, Any]:
        """Start (or reuse) a poller loop against ``coordinator``."""
        with self._lock:
            for loop in self._loops:
                if loop.coordinator == coordinator.rstrip("/"):
                    return {"worker": self.worker_id, "attached": False}
            loop = WorkerLoop(
                coordinator,
                worker_id=self.worker_id,
                poll_interval=self.poll_interval,
                log=self.log,
            ).start()
            self._loops.append(loop)
        return {"worker": self.worker_id, "attached": True}

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "worker": self.worker_id,
                "coordinators": [loop.coordinator for loop in self._loops],
                "units_done": sum(loop.units_done for loop in self._loops),
                "units_failed": sum(
                    loop.units_failed for loop in self._loops
                ),
            }

    def start(self) -> "WorkerServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-worker-http-{self.worker_id}",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking variant for the CLI."""
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover — interactive only
            pass
        finally:
            self.close()

    def close(self) -> None:
        with self._lock:
            for loop in self._loops:
                loop.stop()
            loops, self._loops = list(self._loops), []
        if self._thread is not None:
            waiter = threading.Thread(target=self._httpd.shutdown, daemon=True)
            waiter.start()
            waiter.join(timeout=5.0)
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()
        for loop in loops:
            loop.join(timeout=2.0)
