"""In-process and process-pool execution backends.

:class:`SerialBackend` is the reference implementation of the protocol:
``submit`` runs the task on the calling thread and returns an
already-resolved future.  It threads one shared
:class:`~repro.engine.pipeline.Pipeline` through its tasks, so
consecutive chunks of the same (workflow, processors) group reuse the
cached M-SPG tree and schedule exactly like the inline serial path.

:class:`ProcessPoolBackend` wraps ``concurrent.futures`` — the
historical ``jobs > 1`` behaviour.  Workers spawn lazily, so a sandbox
that blocks process creation surfaces as
:class:`~concurrent.futures.process.BrokenProcessPool` at result time
(the shared dispatch loop's serial-restart fallback), while an
environment that refuses even the pool's plumbing (no semaphores, no
fork/spawn) raises :class:`~repro.engine.backends.base.BackendUnavailable`
at construction.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Optional

from repro.engine.backends.base import (
    BackendTask,
    BackendUnavailable,
    ExecutionBackend,
)

__all__ = ["SerialBackend", "ProcessPoolBackend"]


class SerialBackend(ExecutionBackend):
    """Run every task inline on the calling thread (the jobs=1 path).

    ``supports_profile_merge`` is False: tasks run inside the parent's
    address space, so an active profile collector records their kernel
    ops directly and no snapshot shipping is needed.
    """

    name = "serial"
    supports_profile_merge = False
    #: One at a time — the dispatch loop's submission window, so
    #: progress lines appear as each task finishes, not all at the end.
    max_inflight = 1

    def __init__(self) -> None:
        from repro.engine.pipeline import Pipeline

        self._pipeline = Pipeline()

    def submit(self, task: BackendTask, profile: bool = False) -> "Future[Any]":
        future: "Future[Any]" = Future()
        try:
            # profile=False always: the parent collector is live here.
            future.set_result(
                task.fn(*task.args, profile=False, pipeline=self._pipeline)
            )
        except BaseException as exc:  # noqa: BLE001 — future carries it
            future.set_exception(exc)
        return future


class ProcessPoolBackend(ExecutionBackend):
    """Fan tasks out over a ``concurrent.futures`` process pool."""

    name = "process"
    supports_profile_merge = True
    max_inflight = None

    def __init__(self, jobs: int = 2) -> None:
        self.jobs = max(1, int(jobs))
        try:
            self._pool: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
                max_workers=self.jobs
            )
        except (OSError, PermissionError, ModuleNotFoundError) as exc:
            # No process support in this environment (restricted
            # sandbox): signal the caller to fall back serially.
            raise BackendUnavailable(
                f"cannot start a process pool here: {exc}"
            ) from None

    def submit(self, task: BackendTask, profile: bool = False) -> "Future[Any]":
        if self._pool is None:
            raise BackendUnavailable("process pool is closed")
        return self._pool.submit(task.fn, *task.args, profile=profile)

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
