"""Pluggable execution backends for the sweep engine.

One protocol (:class:`~repro.engine.backends.base.ExecutionBackend`:
``submit(task) → future`` plus the ``supports_profile_merge`` /
``max_inflight`` capabilities), four implementations, one shared
dispatch loop (:func:`~repro.engine.backends.dispatch.run_tasks`):

==============  =====================================================
``serial``      in-process reference path (shared pipeline, one task
                at a time)
``process``     ``concurrent.futures`` process pool — the historical
                ``jobs > 1`` behaviour, lazy-spawn fallback included
``subprocess``  one fresh interpreter per task — a native crash takes
                down exactly one work unit
``remote``      HTTP fan-out to a ``repro worker`` fleet over a
                lease/complete work queue with requeue-on-worker-death
==============  =====================================================

Records are bit-identical across all four: every seed is derived in
the parent before submission, so *where* a task runs can never change
*what* it computes.  Use :func:`get_backend` to build one by name.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.engine.backends.base import (
    BackendTask,
    BackendUnavailable,
    BrokenBackendError,
    ExecutionBackend,
)
from repro.engine.backends.dispatch import run_tasks
from repro.engine.backends.local import ProcessPoolBackend, SerialBackend
from repro.engine.backends.remote import (
    RemoteWorkerBackend,
    WorkQueue,
    WorkServer,
    attach_worker,
    queue_routes,
)
from repro.engine.backends.subproc import SubprocessBackend
from repro.engine.backends.worker import WorkerLoop, WorkerServer
from repro.errors import BackendError

__all__ = [
    "BACKENDS",
    "BackendTask",
    "BackendUnavailable",
    "BrokenBackendError",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "RemoteWorkerBackend",
    "SerialBackend",
    "SubprocessBackend",
    "WorkQueue",
    "WorkServer",
    "WorkerLoop",
    "WorkerServer",
    "attach_worker",
    "get_backend",
    "queue_routes",
    "run_tasks",
]

#: Backend names accepted by :func:`get_backend` and ``--backend``.
BACKENDS = ("serial", "process", "subprocess", "remote")


def get_backend(
    name: str,
    jobs: int = 1,
    workers: Sequence[str] = (),
    queue: Optional[WorkQueue] = None,
    coordinator_url: Optional[str] = None,
    lease_timeout: float = 30.0,
    worker_grace: float = 60.0,
) -> ExecutionBackend:
    """Build an execution backend by name.

    ``jobs`` sizes the local pools; ``workers``/``queue``/
    ``lease_timeout``/``worker_grace`` configure the remote fleet (see
    :class:`~repro.engine.backends.remote.RemoteWorkerBackend`).
    Raises :class:`~repro.engine.backends.base.BackendUnavailable` when
    the environment cannot host the backend (callers fall back to the
    in-process serial path) and :class:`~repro.errors.BackendError` for
    an unknown name.
    """
    if name == "serial":
        return SerialBackend()
    if name == "process":
        return ProcessPoolBackend(jobs=jobs)
    if name == "subprocess":
        return SubprocessBackend(jobs=jobs)
    if name == "remote":
        return RemoteWorkerBackend(
            queue=queue,
            coordinator_url=coordinator_url,
            workers=workers,
            lease_timeout=lease_timeout,
            worker_grace=worker_grace,
        )
    raise BackendError(
        f"unknown execution backend {name!r}; choose from {list(BACKENDS)}"
    )
