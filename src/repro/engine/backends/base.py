"""The execution-backend protocol: spawn/collect over pickleable tasks.

A *backend* turns the sweep engine's pickleable work units — one
:func:`repro.engine.sweep._run_chunk_task` per grid chunk, one
:func:`repro.engine.sweep._run_spec_task` per coalesced spec — into
:class:`concurrent.futures.Future` results, hiding *where* the work
runs: in-process (:class:`~repro.engine.backends.local.SerialBackend`),
in a process pool
(:class:`~repro.engine.backends.local.ProcessPoolBackend`), in one
fresh interpreter per task
(:class:`~repro.engine.backends.subproc.SubprocessBackend`) or on a
fleet of HTTP workers
(:class:`~repro.engine.backends.remote.RemoteWorkerBackend`).

Every task function follows one contract::

    fn(*args, profile=False, pipeline=None) -> (result, profile_snapshot)

``profile=True`` asks the task to enable a private
:mod:`repro.makespan.profile` collector and ship its snapshot back with
the result (collectors never cross an execution boundary);
``pipeline=`` lets an in-process backend thread a shared
:class:`~repro.engine.pipeline.Pipeline` through its tasks.  The
records a task computes are **backend-independent by construction**:
all seeds are derived in the parent before submission, so the
``jobs=1 ≡ jobs=N`` contract generalises to "≡ any backend".

The wire codec (:func:`encode_task` / :func:`run_encoded_task` /
:func:`encode_result` / :func:`decode_result`) is shared by the
subprocess runner and the remote worker loop.  It is pickle-based and
therefore **trusted-fleet only**: anyone who can POST to a work queue
or feed a runner's stdin can execute code as the worker.  Bind
coordinators to loopback/private interfaces.
"""

from __future__ import annotations

import pickle
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

from repro.errors import BackendError

__all__ = [
    "BackendTask",
    "BackendUnavailable",
    "BrokenBackendError",
    "ExecutionBackend",
    "decode_result",
    "encode_error",
    "decode_error",
    "encode_result",
    "encode_task",
    "run_encoded_task",
]


class BackendUnavailable(BackendError):
    """The backend cannot be constructed in this environment (e.g. a
    sandbox that blocks process creation).  Callers fall back to the
    in-process serial path, which produces identical records."""


class BrokenBackendError(BackendError):
    """The backend died mid-run (worker pool broke, fleet vanished).

    The shared dispatch loop catches this — together with
    :class:`concurrent.futures.process.BrokenProcessPool` — and
    restarts the *remaining* tasks serially in-process, keeping every
    result already collected.
    """


@dataclass(frozen=True)
class BackendTask:
    """One unit of backend work: a pickleable task function call.

    ``key`` is the caller's ordering key (a chunk's grid order, a
    spec's batch index) — opaque to the backend, used by the dispatch
    loop to return results in submission-independent order and to skip
    already-completed work on a broken-backend serial restart.
    """

    fn: Callable[..., Tuple[Any, Optional[dict]]]
    args: Tuple[Any, ...]
    key: Any = None


class ExecutionBackend:
    """Spawn/collect contract every execution backend implements.

    Capabilities (class attributes, overridable per instance):

    ``supports_profile_merge``
        True when tasks run outside the parent's address space, so the
        dispatch loop must ask them to self-profile and ship snapshots
        back for :meth:`~repro.makespan.profile.KernelProfile.merge`.
        False for in-process execution, where the parent's live
        collector records everything directly.
    ``max_inflight``
        Cap on concurrently submitted tasks (the dispatch loop windows
        submissions); ``None`` = the backend bounds its own
        concurrency.
    """

    name: str = "backend"
    supports_profile_merge: bool = True
    max_inflight: Optional[int] = None

    def submit(self, task: BackendTask, profile: bool = False) -> "Future[Any]":
        """Spawn one task; the future resolves to ``fn(*args)``'s
        ``(result, profile_snapshot)`` pair."""
        raise NotImplementedError

    def close(self) -> None:
        """Release executor resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ----------------------------------------------------------------------
# Wire codec (subprocess runner + remote worker loop).

#: Protocol 4 keeps payloads readable by any supported interpreter.
_PICKLE_PROTOCOL = 4


def encode_task(
    fn: Callable[..., Any], args: Tuple[Any, ...], profile: bool
) -> bytes:
    """Serialise one task call for an out-of-process runner."""
    return pickle.dumps((fn, tuple(args), bool(profile)), _PICKLE_PROTOCOL)


def run_encoded_task(blob: bytes) -> Any:
    """Execute an :func:`encode_task` payload in this process."""
    try:
        fn, args, profile = pickle.loads(blob)
    except Exception as exc:  # noqa: BLE001 — malformed payload
        raise BackendError(f"undecodable task payload: {exc}") from None
    return fn(*args, profile=profile)


def encode_result(value: Any) -> bytes:
    """Serialise a task's ``(result, snapshot)`` pair."""
    return pickle.dumps(value, _PICKLE_PROTOCOL)


def decode_result(blob: bytes) -> Any:
    return pickle.loads(blob)


def encode_error(exc: BaseException) -> bytes:
    """Serialise a task exception (fall back to its message when the
    exception object itself does not pickle)."""
    try:
        return pickle.dumps(exc, _PICKLE_PROTOCOL)
    except Exception:  # noqa: BLE001 — unpicklable exception state
        return pickle.dumps(
            BackendError(f"{type(exc).__name__}: {exc}"), _PICKLE_PROTOCOL
        )


def decode_error(blob: bytes, fallback: str = "worker error") -> BaseException:
    try:
        exc = pickle.loads(blob)
    except Exception:  # noqa: BLE001 — undecodable error payload
        return BackendError(fallback)
    if isinstance(exc, BaseException):
        return exc
    return BackendError(f"{fallback}: {exc!r}")
