"""The one shared dispatch loop every execution backend runs through.

Before this layer existed, :func:`~repro.engine.sweep.run_sweep` and
:func:`~repro.engine.sweep.run_specs` each carried their own
process-pool block, broken-pool fallback and profile-snapshot merge.
:func:`run_tasks` is the single copy of all three:

* **spawn/collect** — tasks are submitted through
  :meth:`~repro.engine.backends.base.ExecutionBackend.submit` (windowed
  by ``max_inflight``) and collected as they complete;
* **profile merge** — when the parent holds an active
  :mod:`repro.makespan.profile` collector and the backend runs tasks
  out-of-process (``supports_profile_merge``), tasks are asked to
  self-profile and their snapshots are folded into the parent collector
  here, at the single ``_merge`` call site;
* **broken-backend restart** — a backend that dies mid-run
  (:class:`~concurrent.futures.process.BrokenProcessPool`,
  :class:`~repro.engine.backends.base.BrokenBackendError`) triggers a
  serial in-process restart of the **remaining** tasks only: results
  already collected are kept, their ``on_result`` callbacks are *not*
  re-fired, and their work is not recomputed (the historical
  whole-grid restart re-reported — and re-priced — every completed
  chunk).

Per-task exception isolation (``return_exceptions=True``) survives the
restart: a failing task lands its exception in its own slot on either
path, without disturbing its batch-mates.
"""

from __future__ import annotations

import warnings
from concurrent.futures import FIRST_COMPLETED, Future, wait
from typing import Any, Callable, Dict, Optional, Sequence

from concurrent.futures.process import BrokenProcessPool

from repro.engine.backends.base import (
    BackendTask,
    BrokenBackendError,
    ExecutionBackend,
)
from repro.makespan import profile as _profile

__all__ = ["run_tasks"]

#: Failures that mean "the executor is gone", not "this task is bad".
_BROKEN = (BrokenBackendError, BrokenProcessPool)


def _merge(snapshot: Optional[Dict[str, Any]]) -> None:
    """Fold a task's profile snapshot into the parent collector (the
    single call site the two executors used to duplicate)."""
    if snapshot is not None and _profile.ACTIVE is not None:
        _profile.ACTIVE.merge(snapshot)


def _run_serially(
    task: BackendTask,
    results: Dict[Any, Any],
    on_result: Optional[Callable[[Any, Any], None]],
    return_exceptions: bool,
) -> None:
    """Execute one task in-process (the restart path).

    ``profile=False``: the parent's collector — when active — records
    in-process kernel ops directly, so no snapshot round-trip.
    """
    try:
        payload, snapshot = task.fn(*task.args, profile=False)
    except Exception as exc:
        if not return_exceptions:
            raise
        results[task.key] = exc
        return
    _merge(snapshot)
    results[task.key] = payload
    if on_result is not None:
        on_result(task.key, payload)


def run_tasks(
    backend: ExecutionBackend,
    tasks: Sequence[BackendTask],
    *,
    on_result: Optional[Callable[[Any, Any], None]] = None,
    on_note: Optional[Callable[[str], None]] = None,
    return_exceptions: bool = False,
    owns_backend: bool = False,
) -> Dict[Any, Any]:
    """Drive ``tasks`` through ``backend``; returns ``key → payload``.

    ``on_result(key, payload)`` fires once per task in completion order
    (progress reporting); it never fires twice for one key, even across
    a broken-backend serial restart.  With ``return_exceptions`` a
    failing task's slot holds its exception instead of aborting the
    run.  ``owns_backend`` closes the backend on exit (set when the
    caller built it for this call rather than passing a shared one).
    """
    want_profile = (
        _profile.ACTIVE is not None and backend.supports_profile_merge
    )
    results: Dict[Any, Any] = {}
    queue = list(tasks)
    window = backend.max_inflight or len(queue) or 1
    inflight: Dict["Future[Any]", BackendTask] = {}
    broken: Optional[BaseException] = None
    try:
        while queue or inflight:
            try:
                while queue and len(inflight) < window:
                    task = queue.pop(0)
                    inflight[backend.submit(task, profile=want_profile)] = task
            except _BROKEN as exc:
                queue.insert(0, task)
                broken = exc
                break
            if not inflight:
                continue
            done, _ = wait(inflight, return_when=FIRST_COMPLETED)
            for future in done:
                task = inflight.pop(future)
                try:
                    payload, snapshot = future.result()
                except _BROKEN as exc:
                    queue.append(task)
                    broken = exc
                    break
                except Exception as exc:
                    if not return_exceptions:
                        raise
                    results[task.key] = exc
                    continue
                _merge(snapshot)
                results[task.key] = payload
                if on_result is not None:
                    on_result(task.key, payload)
            if broken is not None:
                break
    finally:
        if owns_backend:
            backend.close()

    if broken is not None:
        # The executor died under us.  Everything already collected is
        # kept — completed work is not re-priced and its progress lines
        # are not re-reported — and only the remainder runs serially.
        remaining = [
            t
            for t in [*queue, *inflight.values()]
            if t.key not in results
        ]
        warnings.warn(
            f"{backend.name} backend broke mid-run ({broken}); "
            f"finishing the remaining {len(remaining)} of {len(tasks)} "
            "task(s) serially in-process",
            RuntimeWarning,
            stacklevel=2,
        )
        if on_note is not None:
            on_note(
                f"! {backend.name} backend broke ({broken}); finishing "
                f"{len(remaining)} remaining task(s) serially"
            )
        for task in remaining:
            _run_serially(task, results, on_result, return_exceptions)
    return results
