"""Pipeline engine: staged execution, artifact cache, parallel sweeps.

The engine is the architectural seam between the paper's algorithms and
everything that runs them at scale:

* :mod:`repro.engine.pipeline` — :func:`repro.api.run_strategies`
  decomposed into explicit stages (prepare → mspgify → allocate → plan →
  build-DAG → evaluate) over a keyed :class:`ArtifactCache`, so sweeps
  reuse the M-SPG tree and schedule across the pfail/CCR axes;
* :mod:`repro.engine.sweep` — a deterministic grid executor with
  pluggable execution-backend fan-out, ``SeedSequence``-spawned
  per-cell child seeds (serial and parallel runs produce identical
  records), chunking, and a progress callback; cells are priced through
  the makespan layer's batched evaluation entry point (one DAG template
  per structure group, bit-identical to per-cell evaluation;
  ``batch_eval=False`` is the reference escape hatch) and
  :func:`run_specs` is the batch entry point (several sweeps over one
  shared pipeline, or fanned out spec-per-worker) that
  :mod:`repro.service` dispatches coalesced request batches through;
* :mod:`repro.engine.backends` — the execution backends themselves:
  one ``submit(task) → future`` protocol, four implementations (serial
  reference, process pool, fresh-interpreter subprocesses, remote
  ``repro worker`` fleet over a lease/complete work queue) and the one
  shared dispatch loop that owns broken-executor restart and
  profile-snapshot merging.  Records are bit-identical across all of
  them;
* :mod:`repro.engine.records` — the typed result-record schema with
  JSONL/CSV serialisation (both directions), shared by the experiments
  harness, the CLI, the benchmarks and the service result store.

The experiments harness (:func:`repro.experiments.figures.run_figure`),
the facade (:func:`repro.api.run_strategies`) and the CLI ``sweep``/
``figure`` sub-commands are all thin layers over this package.
"""

from repro.engine.backends import (
    BACKENDS,
    BackendTask,
    BackendUnavailable,
    BrokenBackendError,
    ExecutionBackend,
    ProcessPoolBackend,
    RemoteWorkerBackend,
    SerialBackend,
    SubprocessBackend,
    get_backend,
    run_tasks,
)
from repro.engine.pipeline import (
    COMPUTE_ONLY_STAGES,
    STAGES,
    STORED_STAGES,
    ArtifactCache,
    Pipeline,
    StageStats,
)
from repro.engine.records import (
    CellResult,
    record_from_dict,
    record_to_dict,
    records_from_csv,
    records_from_jsonl,
    records_to_csv,
    records_to_jsonl,
)
from repro.engine.sweep import (
    SweepSpec,
    cell_eval_seed,
    cell_wf_seed,
    run_specs,
    run_sweep,
)

__all__ = [
    "BACKENDS",
    "BackendTask",
    "BackendUnavailable",
    "BrokenBackendError",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "RemoteWorkerBackend",
    "SerialBackend",
    "SubprocessBackend",
    "get_backend",
    "run_tasks",
    "COMPUTE_ONLY_STAGES",
    "STAGES",
    "STORED_STAGES",
    "ArtifactCache",
    "Pipeline",
    "StageStats",
    "CellResult",
    "record_from_dict",
    "record_to_dict",
    "records_from_csv",
    "records_from_jsonl",
    "records_to_csv",
    "records_to_jsonl",
    "SweepSpec",
    "cell_eval_seed",
    "cell_wf_seed",
    "run_specs",
    "run_sweep",
]
