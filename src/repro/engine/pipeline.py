"""Staged execution of the paper pipeline with a keyed artifact cache.

:func:`repro.api.run_strategies` bundles six conceptual stages into one
call::

    prepare -> mspgify -> allocate -> plan -> build_dag -> evaluate

A parameter sweep (pfail × CCR, the shape of the paper's Figures 5-7)
only varies the inputs of the *late* stages: the M-SPG tree depends on
workflow structure alone, and the schedule ignores storage costs, so
both are invariant across the pfail/CCR axes.  :class:`Pipeline` makes
each stage an explicit method whose result lands in an
:class:`ArtifactCache` keyed by exactly the inputs it depends on — a
sweep reuses the tree and schedule instead of recomputing them per cell.

The cache also exploits two cheaper invariances:

* CCR rescaling touches file sizes only, so scaled workflows are shared
  across the pfail axis;
* the CKPTNONE estimator (Theorem 1) contains no I/O term, so its value
  is shared across the CCR axis.

Per-stage hit/miss counters (:meth:`ArtifactCache.stats`) make the reuse
observable; the call-count tests pin the "once per (workflow,
processors) pair" contract down.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Mapping, Optional, Sequence, Tuple

from repro.ccr import scale_to_ccr
from repro.checkpoint.plan import CheckpointPlan
from repro.checkpoint.strategies import ckpt_all_plan, ckpt_some_plan
from repro.engine.records import CellResult
from repro.errors import ExperimentError
from repro.generators import generate
from repro.makespan.api import (
    expected_makespan,
    expected_makespans,
    expected_makespans_fused,
    get_evaluator,
)
from repro.makespan.ckptnone import ckptnone_expected_makespan
from repro.makespan.paramdag import ParamDAG
from repro.makespan.probdag import ProbDAG
from repro.makespan.segment_dag import build_segment_dag
from repro.mspg.expr import MSPG
from repro.mspg.graph import Workflow
from repro.mspg.transform import mspgify
from repro.platform import Platform, lambda_from_pfail
from repro.scheduling.allocate import allocate
from repro.scheduling.schedule import Schedule
from repro.util.rng import SeedLike

__all__ = [
    "STAGES",
    "StageStats",
    "ArtifactCache",
    "Pipeline",
    "FusedEvalCollector",
]

#: Stage names, in pipeline order.
STAGES: Tuple[str, ...] = (
    "prepare",
    "mspgify",
    "allocate",
    "plan",
    "build_dag",
    "evaluate",
)

#: Stages whose results are **counted but never stored**.  Their cache
#: keys would be unique per cell (checkpoint plans and segment DAGs
#: depend on the CCR-scaled workflow *and* the pfail-specific platform;
#: evaluations additionally on method/options), so storing them would
#: pay key construction and unbounded memory for a guaranteed 0% hit
#: rate — a long sweep measured exactly that: 0 hits / 168 misses per
#: stage before they were reclassified.  Their ``misses`` counter is
#: work-done telemetry (one computation each), not a cache outcome, and
#: :meth:`ArtifactCache.hit_rate` excludes them.
COMPUTE_ONLY_STAGES: Tuple[str, ...] = ("plan", "build_dag", "evaluate")

#: Stages that actually store artifacts — the denominator of
#: :meth:`ArtifactCache.hit_rate`.
STORED_STAGES: Tuple[str, ...] = tuple(
    s for s in STAGES if s not in COMPUTE_ONLY_STAGES
)


@dataclass
class StageStats:
    """Cache hit/miss counters for one pipeline stage."""

    hits: int = 0
    misses: int = 0

    @property
    def calls(self) -> int:
        return self.hits + self.misses


class ArtifactCache:
    """Keyed artifact store with per-stage hit/miss accounting.

    Keys are arbitrary hashables chosen by the :class:`Pipeline` to cover
    exactly the inputs a stage result depends on.  Stages whose results
    are never reused (checkpoint plans, segment DAGs — their keys are
    unique per cell) are counted but not stored, so a long sweep does not
    hold every intermediate alive.
    """

    def __init__(self) -> None:
        self._store: Dict[Tuple[str, Hashable], Any] = {}
        self._stats: Dict[str, StageStats] = {s: StageStats() for s in STAGES}

    def get_or_compute(
        self, stage: str, key: Hashable, compute: Callable[[], Any]
    ) -> Any:
        """Cached artifact for ``(stage, key)``, computing it on first use."""
        full = (stage, key)
        stats = self._stats[stage]
        if full in self._store:
            stats.hits += 1
            return self._store[full]
        stats.misses += 1
        value = compute()
        self._store[full] = value
        return value

    def count_compute(self, stage: str) -> None:
        """Record a computation for a :data:`COMPUTE_ONLY_STAGES` stage.

        The stage's ``misses`` counter doubles as its work-done tally;
        nothing is stored, so these stages never hit and are excluded
        from :meth:`hit_rate`.
        """
        self._stats[stage].misses += 1

    def stats(self) -> Dict[str, StageStats]:
        """Per-stage counters (live objects — read, don't mutate)."""
        return dict(self._stats)

    def hit_rate(self) -> float:
        """Aggregate hit rate over :data:`STORED_STAGES` only.

        Compute-only stages are excluded: they never store, so counting
        their misses would dilute the rate with outcomes the cache was
        never asked to avoid.
        """
        calls = sum(self._stats[s].calls for s in STORED_STAGES)
        hits = sum(self._stats[s].hits for s in STORED_STAGES)
        return hits / calls if calls else 0.0

    def clear(self) -> None:
        """Drop all artifacts; counters are reset too."""
        self._store.clear()
        for s in STAGES:
            self._stats[s] = StageStats()

    def __len__(self) -> int:
        return len(self._store)


class _FusedEntry:
    """One deferred evaluation request: a DAG list awaiting its values.

    Created by :meth:`FusedEvalCollector.add`; after the collector
    flushes, ``values[i]`` holds the expected makespan of ``dags[i]``,
    or ``error`` carries the exception that priced the entry's cells
    (dispatch failures are isolated per job, so co-collected entries
    keep their results).
    """

    __slots__ = ("dags", "method", "options", "eval_seeds", "values", "error")

    def __init__(
        self,
        dags: Sequence[ProbDAG],
        method: str,
        options: Mapping[str, Any],
        eval_seeds: Optional[Sequence[Optional[int]]],
    ) -> None:
        self.dags = list(dags)
        self.method = method
        self.options = dict(options)
        self.eval_seeds = list(eval_seeds) if eval_seeds is not None else None
        self.values: list = [None] * len(self.dags)
        self.error: Optional[Exception] = None


class FusedEvalCollector:
    """Deferred work-list of cell evaluations, priced in fused dispatches.

    The engine's sweep stage previously issued one
    :func:`~repro.makespan.api.expected_makespans` call per (strategy,
    chunk, structure group) — ~23 calls for a MONTAGE-84 sweep — which
    capped the pooled wavefront at one group's cells.  A collector
    instead *defers*: callers :meth:`add` every DAG list a sweep needs
    (CKPTSOME and CKPTALL, all chunks of a group, co-batched specs) and
    :meth:`flush` prices the whole work-list through **one**
    :func:`~repro.makespan.api.expected_makespans_fused` dispatch per
    method — cells are grouped into template jobs by (structure,
    options), so a fused dispatch legitimately spans CKPTSOME and
    CKPTALL DAGs with different structure keys.

    Results are bit-identical to the per-group path (the fused contract
    extends the batch contract), and stochastic methods keep their
    per-cell seed streams: each job carries its cells' ``eval_seeds`` in
    collection order.  Templates of the same structure share one plan
    store across dispatches via the owning pipeline, so repeated
    flushes (service batches) reuse compiled plans.
    """

    def __init__(self, pipeline: "Pipeline") -> None:
        self._pipeline = pipeline
        self._entries: list = []

    def add(
        self,
        dags: Sequence[ProbDAG],
        method: str,
        options: Mapping[str, Any],
        eval_seeds: Optional[Sequence[Optional[int]]] = None,
    ) -> _FusedEntry:
        """Defer a DAG list; returns the entry its values will land in."""
        if eval_seeds is not None and len(eval_seeds) != len(dags):
            raise ExperimentError(
                f"got {len(eval_seeds)} eval seeds for {len(dags)} DAGs"
            )
        entry = _FusedEntry(dags, method, options, eval_seeds)
        self._entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def flush(self) -> None:
        """Price every deferred cell; one fused dispatch per method.

        A dispatch that raises is retried one job at a time, so a bad
        job (say, invalid options of one co-batched spec) fails only
        the entries holding its cells; the job's exception lands in
        their ``error`` slot and the other entries keep their values.
        """
        entries, self._entries = self._entries, []
        by_method: Dict[str, list] = {}
        for entry in entries:
            by_method.setdefault(entry.method, []).append(entry)
        for method, ents in by_method.items():
            job_map: Dict[Hashable, list] = {}
            for entry in ents:
                okey: Hashable
                try:
                    okey = tuple(sorted(entry.options.items()))
                    hash(okey)
                except TypeError:
                    # Unhashable option values: the entry's cells still
                    # fuse with each other, just not across entries.
                    okey = ("entry", id(entry))
                seeded = entry.eval_seeds is not None
                for i, dag in enumerate(entry.dags):
                    key = (ParamDAG.structure_key(dag), okey, seeded)
                    members = job_map.get(key)
                    if members is None:
                        job_map[key] = members = []
                    members.append((entry, i))
            jobs = []
            slots = []
            for (skey, _okey, seeded), members in job_map.items():
                template = ParamDAG.from_dags(
                    [entry.dags[i] for entry, i in members]
                )
                template.set_plan_cache(
                    self._pipeline.shared_plan_cache(skey)
                )
                head = members[0][0]
                seeds = (
                    [entry.eval_seeds[i] for entry, i in members]
                    if seeded
                    else None
                )
                jobs.append((template, dict(head.options), seeds))
                slots.append(members)
            self._pipeline.cache.count_compute("evaluate")
            try:
                results: list = expected_makespans_fused(jobs, method)
            except Exception:
                results = []
                for job in jobs:
                    try:
                        results.append(
                            expected_makespans_fused([job], method)[0]
                        )
                    except Exception as exc:
                        results.append(exc)
            for members, values in zip(slots, results):
                if isinstance(values, Exception):
                    for entry, _i in members:
                        if entry.error is None:
                            entry.error = values
                else:
                    for (entry, i), value in zip(members, values):
                        entry.values[i] = float(value)


class Pipeline:
    """The staged paper pipeline over one shared :class:`ArtifactCache`.

    Thread one instance through every cell of a sweep and the invariant
    stages (workflow generation, ``mspgify``, ``allocate``, CCR scaling,
    the CKPTNONE estimate) are computed once per distinct input instead
    of once per cell.  A fresh instance reproduces the historical
    one-shot behaviour exactly — every stage is a deterministic function
    of its key, so caching never changes results.
    """

    def __init__(self, cache: Optional[ArtifactCache] = None) -> None:
        self.cache = cache if cache is not None else ArtifactCache()
        # Identity tokens for unhashable pipeline objects (workflows,
        # schedules).  The strong reference keeps id() stable for the
        # lifetime of the pipeline.
        self._tokens: Dict[int, Tuple[Any, int]] = {}
        self._token_counter = itertools.count()
        # Per-structure compiled-plan stores shared across the fused
        # dispatcher's templates (see FusedEvalCollector).
        self._plan_caches: Dict[Hashable, dict] = {}

    def shared_plan_cache(self, structure_key: Hashable) -> dict:
        """The pipeline-wide compiled-plan store for one DAG structure.

        Handed to every :class:`~repro.makespan.paramdag.ParamDAG` the
        fused dispatcher stacks for that structure, so plans compiled in
        one dispatch are replayed by later ones (further chunks, further
        service batches) instead of being recompiled per template.
        """
        cache = self._plan_caches.get(structure_key)
        if cache is None:
            self._plan_caches[structure_key] = cache = {}
        return cache

    def _token(self, obj: Any) -> int:
        entry = self._tokens.get(id(obj))
        if entry is None or entry[0] is not obj:
            entry = (obj, next(self._token_counter))
            self._tokens[id(obj)] = entry
        return entry[1]

    def clear(self) -> None:
        """Drop all cached artifacts *and* the identity-token references.

        Use this (not ``pipeline.cache.clear()`` alone) to bound memory
        in a long-lived pipeline: the token map holds strong references
        to every workflow/schedule ever used as a cache key.
        """
        self.cache.clear()
        self._tokens.clear()
        self._plan_caches.clear()

    # ------------------------------------------------------------------
    # Stage 1 — prepare: workflow generation, platform, CCR rescaling.

    def prepare(self, family: str, ntasks: int, seed: int) -> Workflow:
        """Generate (or fetch) the workflow instance for a grid group."""
        return self.cache.get_or_compute(
            "prepare",
            ("workflow", family, ntasks, seed),
            lambda: generate(family, ntasks, seed),
        )

    def prepare_source(self, source, ntasks: int, seed: int) -> Workflow:
        """Workflow instance from a :class:`~repro.workloads.WorkflowSource`.

        The cache key tail is the source's own
        :meth:`~repro.workloads.WorkflowSource.cache_key`: family
        sources key on (family, ntasks, seed) — exactly the
        :meth:`prepare` key, so family sweeps share its entries — while
        file sources key on their canonical content hash alone, sharing
        one cached workflow (and downstream tree/schedule artifacts)
        across every spec over the same content.
        """
        return self.cache.get_or_compute(
            "prepare",
            ("workflow", *source.cache_key(ntasks, seed)),
            lambda: source.resolve(ntasks, seed),
        )

    def platform_for(
        self,
        workflow: Workflow,
        processors: int,
        pfail: float,
        bandwidth: float = 100e6,
    ) -> Platform:
        """Platform with λ chosen so an average task fails with ``pfail``."""
        key = ("platform", self._token(workflow), processors, pfail, bandwidth)
        return self.cache.get_or_compute(
            "prepare",
            key,
            lambda: Platform(
                processors,
                failure_rate=lambda_from_pfail(pfail, workflow.mean_weight),
                bandwidth=bandwidth,
            ),
        )

    def scale(
        self, workflow: Workflow, platform: Platform, ccr: Optional[float]
    ) -> Workflow:
        """CCR-rescaled copy of ``workflow`` (shared across the pfail axis)."""
        if ccr is None:
            return workflow
        key = ("scaled", self._token(workflow), platform.bandwidth, ccr)
        return self.cache.get_or_compute(
            "prepare", key, lambda: scale_to_ccr(workflow, platform, ccr)
        )

    # ------------------------------------------------------------------
    # Stage 2 — mspgify: structure only, invariant across the whole sweep.

    def mspg_tree(self, workflow: Workflow) -> MSPG:
        """The workflow's M-SPG tree (computed once per workflow)."""
        return self.cache.get_or_compute(
            "mspgify", self._token(workflow), lambda: mspgify(workflow).tree
        )

    # ------------------------------------------------------------------
    # Stage 3 — allocate: one schedule per (workflow, processors, seed).

    def schedule_for(
        self,
        workflow: Workflow,
        processors: int,
        seed: SeedLike = None,
        linearizer: str = "random",
        tree: Optional[MSPG] = None,
    ) -> Schedule:
        """Superchain schedule, cached per (workflow, processors, seed).

        Only int seeds key a cache entry: ``None`` means "fresh random
        schedule" and a Generator/SeedSequence is stateful — replaying
        either from a cache would change the caller's semantics.
        """
        if not isinstance(seed, int):
            self.cache.count_compute("allocate")
            return allocate(
                workflow,
                tree if tree is not None else self.mspg_tree(workflow),
                processors,
                seed=seed,
                linearizer=linearizer,
            )
        key = (self._token(workflow), processors, seed, linearizer)
        return self.cache.get_or_compute(
            "allocate",
            key,
            lambda: allocate(
                workflow,
                tree if tree is not None else self.mspg_tree(workflow),
                processors,
                seed=seed,
                linearizer=linearizer,
            ),
        )

    # ------------------------------------------------------------------
    # Stage 4 — plan: checkpoint placement (per cell; counted, not stored).

    def plan(
        self,
        workflow: Workflow,
        schedule: Schedule,
        platform: Platform,
        strategy: str = "some",
        save_final_outputs: bool = True,
    ) -> CheckpointPlan:
        """One strategy's checkpoint plan on the (scaled) workflow."""
        builders = {"some": ckpt_some_plan, "all": ckpt_all_plan}
        try:
            builder = builders[strategy]
        except KeyError:
            raise ExperimentError(
                f"unknown checkpoint strategy {strategy!r}; "
                f"choose from {sorted(builders)}"
            ) from None
        self.cache.count_compute("plan")
        return builder(
            workflow, schedule, platform, save_final_outputs=save_final_outputs
        )

    def plans(
        self,
        workflow: Workflow,
        schedule: Schedule,
        platform: Platform,
        save_final_outputs: bool = True,
    ) -> Tuple[CheckpointPlan, CheckpointPlan]:
        """(CKPTSOME, CKPTALL) plans for one cell."""
        return (
            self.plan(workflow, schedule, platform, "some", save_final_outputs),
            self.plan(workflow, schedule, platform, "all", save_final_outputs),
        )

    # ------------------------------------------------------------------
    # Stage 5 — build_dag: segment DAG construction (per cell).

    def segment_dag(
        self,
        workflow: Workflow,
        schedule: Schedule,
        plan: CheckpointPlan,
        platform: Platform,
    ) -> ProbDAG:
        """2-state probabilistic segment DAG for one plan."""
        self.cache.count_compute("build_dag")
        return build_segment_dag(workflow, schedule, plan, platform)

    # ------------------------------------------------------------------
    # Stage 6 — evaluate: expected makespans.

    def evaluate(
        self,
        dag: ProbDAG,
        method: str = "pathapprox",
        eval_seed: Optional[int] = None,
        **options: Any,
    ) -> float:
        """Expected makespan of a segment DAG with the named method.

        ``eval_seed`` is forwarded only to stochastic methods — those
        whose registered evaluator declares ``deterministic=False`` and
        accepts a ``seed`` option (Monte Carlo); the closed-form
        estimators take no seed.  Extra keyword ``options`` go straight
        to the evaluator (``trials=`` for Monte Carlo, ``k=`` for
        PathApprox, ...); an explicit ``seed`` option overrides
        ``eval_seed``.
        """
        self.cache.count_compute("evaluate")
        if eval_seed is not None and "seed" not in options:
            evaluator = get_evaluator(method)
            if not evaluator.deterministic and (
                evaluator.accepts_any_option
                or "seed" in evaluator.option_names()
            ):
                options = {**options, "seed": eval_seed}
        return expected_makespan(dag, method, **options)

    def evaluate_none(
        self,
        workflow: Workflow,
        scaled: Workflow,
        schedule: Schedule,
        platform: Platform,
        cacheable: bool = True,
    ) -> float:
        """CKPTNONE's Theorem 1 estimate, cached across the CCR axis.

        The estimator contains no I/O term, so its value depends on the
        *unscaled* workflow (weights), the schedule, and the platform —
        not on the CCR-rescaled file sizes; ``workflow`` keys the cache
        while ``scaled`` feeds the computation (they agree on weights).

        Pass ``cacheable=False`` for throwaway schedules (e.g. built
        with ``seed=None``): caching would pin every such schedule in
        the token map without any chance of a future hit.
        """
        if not cacheable:
            self.cache.count_compute("evaluate")
            return ckptnone_expected_makespan(scaled, schedule, platform)
        key = (
            self._token(workflow),
            self._token(schedule),
            platform.processors,
            platform.failure_rate,
        )
        return self.cache.get_or_compute(
            "evaluate",
            key,
            lambda: ckptnone_expected_makespan(scaled, schedule, platform),
        )

    # ------------------------------------------------------------------
    # Cell-level composition (stages 4-6 over one prepared group).

    def evaluate_cell(
        self,
        family: str,
        ntasks_requested: int,
        workflow: Workflow,
        schedule: Schedule,
        platform: Platform,
        pfail: float,
        ccr: float,
        method: str = "pathapprox",
        seed: int = 0,
        eval_seed: Optional[int] = None,
        save_final_outputs: bool = True,
        evaluator_options: Optional[Mapping[str, Any]] = None,
    ) -> CellResult:
        """Run the per-cell stages (scale → plan → DAG → evaluate)."""
        scaled = self.scale(workflow, platform, ccr)
        plan_some, plan_all = self.plans(
            scaled, schedule, platform, save_final_outputs
        )
        options = dict(evaluator_options) if evaluator_options else {}
        dag_some = self.segment_dag(scaled, schedule, plan_some, platform)
        dag_all = self.segment_dag(scaled, schedule, plan_all, platform)
        em_some = self.evaluate(dag_some, method, eval_seed, **options)
        em_all = self.evaluate(dag_all, method, eval_seed, **options)
        em_none = self.evaluate_none(workflow, scaled, schedule, platform)
        return CellResult(
            family=family,
            ntasks_requested=ntasks_requested,
            ntasks=workflow.n_tasks,
            processors=platform.processors,
            pfail=pfail,
            ccr=ccr,
            em_some=em_some,
            em_all=em_all,
            em_none=em_none,
            checkpoints_some=plan_some.n_segments,
            checkpoints_all=plan_all.n_segments,
            superchains=len(schedule.superchains),
            seed=seed,
        )

    # ------------------------------------------------------------------
    # Batched cell evaluation (stages 4-6 over a whole grid group).

    def _evaluate_grouped(
        self,
        dags: Sequence[ProbDAG],
        method: str,
        options: Mapping[str, Any],
        eval_seeds: Optional[Sequence[Optional[int]]] = None,
    ) -> list:
        """Price many same-group DAGs through the batch entry point.

        Cells are grouped by :meth:`ParamDAG.structure_key` (pfail/CCR
        can move the checkpoint plan, so a group's segment DAGs need
        not all coincide); each structure group becomes one template
        priced in a single :func:`expected_makespans` call.  Results
        are bit-identical to per-cell evaluation — the batch contract
        every ``supports_batch`` evaluator is pinned to.  ``eval_seeds``
        (one per DAG) is forwarded as the batch ``seed`` option in each
        group's cell order, mirroring the seed injection
        :meth:`evaluate` performs per cell for stochastic methods.
        """
        groups: Dict[Hashable, list] = {}
        for i, dag in enumerate(dags):
            groups.setdefault(ParamDAG.structure_key(dag), []).append(i)
        out: list = [None] * len(dags)
        for indices in groups.values():
            template = ParamDAG.from_dags([dags[i] for i in indices])
            group_options = dict(options)
            if eval_seeds is not None and "seed" not in group_options:
                group_options["seed"] = [eval_seeds[i] for i in indices]
            self.cache.count_compute("evaluate")
            values = expected_makespans(template, method, **group_options)
            for i, value in zip(indices, values):
                out[i] = float(value)
        return out

    def _evaluate_cells_per_cell(
        self,
        family: str,
        ntasks_requested: int,
        workflow: Workflow,
        schedule: Schedule,
        processors: int,
        cells: Sequence[Tuple[float, float, Optional[int]]],
        method: str,
        seed: int,
        bandwidth: float,
        save_final_outputs: bool,
        evaluator_options: Optional[Mapping[str, Any]],
    ) -> list:
        """The per-cell reference path (evaluators without batching)."""
        return [
            self.evaluate_cell(
                family=family,
                ntasks_requested=ntasks_requested,
                workflow=workflow,
                schedule=schedule,
                platform=self.platform_for(
                    workflow, processors, pfail, bandwidth
                ),
                pfail=pfail,
                ccr=ccr,
                method=method,
                seed=seed,
                eval_seed=eval_seed,
                save_final_outputs=save_final_outputs,
                evaluator_options=evaluator_options,
            )
            for pfail, ccr, eval_seed in cells
        ]

    def _prepare_cells(
        self,
        workflow: Workflow,
        schedule: Schedule,
        processors: int,
        cells: Sequence[Tuple[float, float, Optional[int]]],
        bandwidth: float,
        save_final_outputs: bool,
    ) -> list:
        """Stages 4-5 + CKPTNONE for every cell, in grid order."""
        prepared = []
        for pfail, ccr, _eval_seed in cells:
            platform = self.platform_for(workflow, processors, pfail, bandwidth)
            scaled = self.scale(workflow, platform, ccr)
            plan_some, plan_all = self.plans(
                scaled, schedule, platform, save_final_outputs
            )
            dag_some = self.segment_dag(scaled, schedule, plan_some, platform)
            dag_all = self.segment_dag(scaled, schedule, plan_all, platform)
            em_none = self.evaluate_none(workflow, scaled, schedule, platform)
            prepared.append(
                (platform, plan_some, plan_all, dag_some, dag_all, em_none)
            )
        return prepared

    @staticmethod
    def _eval_seeds_for(
        evaluator, cells: Sequence[Tuple[float, float, Optional[int]]]
    ) -> Optional[list]:
        """The cells' eval-seed stream, for stochastic evaluators only.

        Mirrors :meth:`evaluate`'s per-cell injection: closed-form
        evaluators take no seed at all.
        """
        if not evaluator.deterministic and (
            evaluator.accepts_any_option or "seed" in evaluator.option_names()
        ):
            return [eval_seed for _pf, _cc, eval_seed in cells]
        return None

    def evaluate_cells(
        self,
        family: str,
        ntasks_requested: int,
        workflow: Workflow,
        schedule: Schedule,
        processors: int,
        cells: Sequence[Tuple[float, float, Optional[int]]],
        method: str = "pathapprox",
        seed: int = 0,
        bandwidth: float = 100e6,
        save_final_outputs: bool = True,
        evaluator_options: Optional[Mapping[str, Any]] = None,
        fused_eval: bool = True,
    ) -> list:
        """Run stages 4-6 for every ``(pfail, ccr, eval_seed)`` cell of
        one prepared (workflow, processors) group, batching evaluation.

        The per-cell stages (scale → plan → segment DAG → CKPTNONE)
        run exactly as :meth:`evaluate_cell` would, in grid order; the
        expensive expected-makespan evaluations are collected into one
        work-list — CKPTSOME and CKPTALL together — and priced through
        a single fused dispatch (``fused_eval=False`` restores the
        per-(strategy, structure group) dispatch of
        :meth:`_evaluate_grouped`).  Records are bit-identical on every
        path: stochastic evaluators (Monte Carlo) receive the cells'
        ``eval_seed`` streams one per cell, and evaluators without
        ``supports_batch`` fall back to the per-cell path, seeds
        intact.
        """
        evaluator = get_evaluator(method)
        if not evaluator.supports_batch:
            return self._evaluate_cells_per_cell(
                family, ntasks_requested, workflow, schedule, processors,
                cells, method, seed, bandwidth, save_final_outputs,
                evaluator_options,
            )
        if fused_eval:
            collector = FusedEvalCollector(self)
            finish = self.evaluate_cells_deferred(
                family=family,
                ntasks_requested=ntasks_requested,
                workflow=workflow,
                schedule=schedule,
                processors=processors,
                cells=cells,
                collector=collector,
                method=method,
                seed=seed,
                bandwidth=bandwidth,
                save_final_outputs=save_final_outputs,
                evaluator_options=evaluator_options,
            )
            collector.flush()
            return finish()
        options = dict(evaluator_options) if evaluator_options else {}
        prepared = self._prepare_cells(
            workflow, schedule, processors, cells, bandwidth,
            save_final_outputs,
        )
        eval_seeds = self._eval_seeds_for(evaluator, cells)
        em_some = self._evaluate_grouped(
            [p[3] for p in prepared], method, options, eval_seeds
        )
        em_all = self._evaluate_grouped(
            [p[4] for p in prepared], method, options, eval_seeds
        )
        return [
            CellResult(
                family=family,
                ntasks_requested=ntasks_requested,
                ntasks=workflow.n_tasks,
                processors=platform.processors,
                pfail=pfail,
                ccr=ccr,
                em_some=em_some[i],
                em_all=em_all[i],
                em_none=em_none,
                checkpoints_some=plan_some.n_segments,
                checkpoints_all=plan_all.n_segments,
                superchains=len(schedule.superchains),
                seed=seed,
            )
            for i, (
                (pfail, ccr, _eval_seed),
                (platform, plan_some, plan_all, _ds, _da, em_none),
            ) in enumerate(zip(cells, prepared))
        ]

    def evaluate_cells_deferred(
        self,
        family: str,
        ntasks_requested: int,
        workflow: Workflow,
        schedule: Schedule,
        processors: int,
        cells: Sequence[Tuple[float, float, Optional[int]]],
        collector: FusedEvalCollector,
        method: str = "pathapprox",
        seed: int = 0,
        bandwidth: float = 100e6,
        save_final_outputs: bool = True,
        evaluator_options: Optional[Mapping[str, Any]] = None,
    ) -> Callable[[], list]:
        """Deferred-evaluation twin of :meth:`evaluate_cells`.

        Runs stages 4-5 (+ CKPTNONE) immediately, hands the cells' DAGs
        to ``collector`` instead of pricing them, and returns a
        zero-argument *finisher* that assembles the
        :class:`~repro.engine.records.CellResult` list once the
        collector has flushed.  The sweep executor uses this to land
        every chunk of a group — and every co-batched spec — in one
        fused dispatch.  Evaluators without ``supports_batch`` are
        priced immediately through the per-cell path (nothing to
        defer); the finisher then just returns the records.
        """
        evaluator = get_evaluator(method)
        if not evaluator.supports_batch:
            records = self._evaluate_cells_per_cell(
                family, ntasks_requested, workflow, schedule, processors,
                cells, method, seed, bandwidth, save_final_outputs,
                evaluator_options,
            )
            return lambda: records
        options = dict(evaluator_options) if evaluator_options else {}
        prepared = self._prepare_cells(
            workflow, schedule, processors, cells, bandwidth,
            save_final_outputs,
        )
        eval_seeds = self._eval_seeds_for(evaluator, cells)
        some_entry = collector.add(
            [p[3] for p in prepared], method, options, eval_seeds
        )
        all_entry = collector.add(
            [p[4] for p in prepared], method, options, eval_seeds
        )

        def finish() -> list:
            for entry in (some_entry, all_entry):
                if entry.error is not None:
                    raise entry.error
            return [
                CellResult(
                    family=family,
                    ntasks_requested=ntasks_requested,
                    ntasks=workflow.n_tasks,
                    processors=platform.processors,
                    pfail=pfail,
                    ccr=ccr,
                    em_some=some_entry.values[i],
                    em_all=all_entry.values[i],
                    em_none=em_none,
                    checkpoints_some=plan_some.n_segments,
                    checkpoints_all=plan_all.n_segments,
                    superchains=len(schedule.superchains),
                    seed=seed,
                )
                for i, (
                    (pfail, ccr, _eval_seed),
                    (platform, plan_some, plan_all, _ds, _da, em_none),
                ) in enumerate(zip(cells, prepared))
            ]

        return finish
