"""The canonical result-record schema shared by experiments, CLI and benchmarks.

One experiment cell — a (family, size, processors, pfail, CCR)
configuration evaluated under all three checkpoint strategies — produces
one :class:`CellResult`.  This module owns the record type plus its
serialisation: CSV (the historical experiment format, derived ratio
columns included) and JSONL (one record per line, round-trippable with
:func:`records_from_jsonl`).

Rendering (tables, ASCII panels) stays in
:mod:`repro.experiments.results`, which re-exports :class:`CellResult`
for backward compatibility.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

__all__ = [
    "CellResult",
    "record_to_dict",
    "records_to_csv",
    "records_to_jsonl",
    "records_from_jsonl",
]

#: Derived columns appended to serialised records (computed properties).
DERIVED_COLUMNS = ("ratio_all", "ratio_none")


@dataclass(frozen=True)
class CellResult:
    """One experiment cell: a (family, size, p, pfail, CCR) configuration.

    ``ratio_all`` / ``ratio_none`` are the paper's *relative expected
    makespans*: ``EM(CKPTALL)/EM(CKPTSOME)`` and
    ``EM(CKPTNONE)/EM(CKPTSOME)`` — values above 1 mean CKPTSOME wins.
    """

    family: str
    ntasks_requested: int
    ntasks: int
    processors: int
    pfail: float
    ccr: float
    em_some: float
    em_all: float
    em_none: float
    checkpoints_some: int
    checkpoints_all: int
    superchains: int
    seed: int

    @property
    def ratio_all(self) -> float:
        """``EM(CKPTALL) / EM(CKPTSOME)``."""
        return self.em_all / self.em_some

    @property
    def ratio_none(self) -> float:
        """``EM(CKPTNONE) / EM(CKPTSOME)``."""
        return self.em_none / self.em_some


def record_to_dict(record: CellResult) -> Dict[str, object]:
    """Field dict of one record, derived ratio columns included."""
    out: Dict[str, object] = {
        f.name: getattr(record, f.name) for f in fields(CellResult)
    }
    for name in DERIVED_COLUMNS:
        out[name] = getattr(record, name)
    return out


def records_to_csv(
    records: Sequence[CellResult], path: Optional[Union[str, Path]] = None
) -> str:
    """Serialise records to CSV (returned; also written if ``path`` given)."""
    buf = io.StringIO()
    names = [f.name for f in fields(CellResult)] + list(DERIVED_COLUMNS)
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(names)
    for r in records:
        writer.writerow([getattr(r, n) for n in names])
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def records_to_jsonl(
    records: Sequence[CellResult], path: Optional[Union[str, Path]] = None
) -> str:
    """Serialise records to JSON Lines (returned; written if ``path`` given)."""
    text = "".join(
        json.dumps(record_to_dict(r), sort_keys=True) + "\n" for r in records
    )
    if path is not None:
        Path(path).write_text(text)
    return text


def records_from_jsonl(source: Union[str, Path]) -> List[CellResult]:
    """Parse records back from JSONL text or a path to a ``.jsonl`` file.

    A ``str`` that does not start with ``{`` is treated as a file path
    (JSONL record lines always start with an object), so the round trip
    ``records_from_jsonl("out.jsonl")`` mirrors
    ``records_to_jsonl(records, "out.jsonl")``.  Derived columns present
    in the stream are ignored (they are recomputed properties).
    """
    if isinstance(source, Path):
        text = source.read_text()
    elif source.strip() and not source.lstrip().startswith("{"):
        text = Path(source).read_text()
    else:
        text = source
    field_names = {f.name for f in fields(CellResult)}
    records: List[CellResult] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        payload = json.loads(line)
        records.append(
            CellResult(**{k: v for k, v in payload.items() if k in field_names})
        )
    return records
