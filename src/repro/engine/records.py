"""The canonical result-record schema shared by experiments, CLI and benchmarks.

One experiment cell — a (family, size, processors, pfail, CCR)
configuration evaluated under all three checkpoint strategies — produces
one :class:`CellResult`.  This module owns the record type plus its
serialisation: CSV (the historical experiment format, derived ratio
columns included) and JSONL (one record per line, round-trippable with
:func:`records_from_jsonl`).

Rendering (tables, ASCII panels) stays in
:mod:`repro.experiments.results`, which re-exports :class:`CellResult`
for backward compatibility.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

__all__ = [
    "CellResult",
    "record_to_dict",
    "record_from_dict",
    "records_to_csv",
    "records_to_jsonl",
    "records_from_jsonl",
    "records_from_csv",
]

#: Derived columns appended to serialised records (computed properties).
DERIVED_COLUMNS = ("ratio_all", "ratio_none")


@dataclass(frozen=True)
class CellResult:
    """One experiment cell: a (family, size, p, pfail, CCR) configuration.

    ``ratio_all`` / ``ratio_none`` are the paper's *relative expected
    makespans*: ``EM(CKPTALL)/EM(CKPTSOME)`` and
    ``EM(CKPTNONE)/EM(CKPTSOME)`` — values above 1 mean CKPTSOME wins.
    """

    family: str
    ntasks_requested: int
    ntasks: int
    processors: int
    pfail: float
    ccr: float
    em_some: float
    em_all: float
    em_none: float
    checkpoints_some: int
    checkpoints_all: int
    superchains: int
    seed: int

    @property
    def ratio_all(self) -> float:
        """``EM(CKPTALL) / EM(CKPTSOME)``."""
        return self.em_all / self.em_some

    @property
    def ratio_none(self) -> float:
        """``EM(CKPTNONE) / EM(CKPTSOME)``."""
        return self.em_none / self.em_some


def record_to_dict(record: CellResult) -> Dict[str, object]:
    """Field dict of one record, derived ratio columns included."""
    out: Dict[str, object] = {
        f.name: getattr(record, f.name) for f in fields(CellResult)
    }
    for name in DERIVED_COLUMNS:
        out[name] = getattr(record, name)
    return out


#: Parsers per dataclass field annotation (annotations are strings under
#: ``from __future__ import annotations``).  ``float`` accepts the CSV
#: spellings of non-finite values ("inf", "-inf", "nan") directly.
_FIELD_PARSERS = {"str": str, "int": int, "float": float}


def record_from_dict(payload: Dict[str, object]) -> CellResult:
    """Rebuild a :class:`CellResult` from a field mapping.

    The inverse of :func:`record_to_dict`: derived columns and unknown
    keys are ignored, and values are coerced to the declared field types
    — so the same function parses JSON payloads (already typed) and CSV
    rows (all strings, including ``inf``/``nan`` float spellings).
    """
    kwargs = {}
    for f in fields(CellResult):
        if f.name in payload:
            kwargs[f.name] = _FIELD_PARSERS[f.type](payload[f.name])
    return CellResult(**kwargs)


def records_to_csv(
    records: Sequence[CellResult], path: Optional[Union[str, Path]] = None
) -> str:
    """Serialise records to CSV (returned; also written if ``path`` given)."""
    buf = io.StringIO()
    names = [f.name for f in fields(CellResult)] + list(DERIVED_COLUMNS)
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(names)
    for r in records:
        writer.writerow([getattr(r, n) for n in names])
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def records_to_jsonl(
    records: Sequence[CellResult], path: Optional[Union[str, Path]] = None
) -> str:
    """Serialise records to JSON Lines (returned; written if ``path`` given)."""
    text = "".join(
        json.dumps(record_to_dict(r), sort_keys=True) + "\n" for r in records
    )
    if path is not None:
        Path(path).write_text(text)
    return text


def records_from_jsonl(source: Union[str, Path]) -> List[CellResult]:
    """Parse records back from JSONL text or a path to a ``.jsonl`` file.

    A ``str`` that does not start with ``{`` is treated as a file path
    (JSONL record lines always start with an object), so the round trip
    ``records_from_jsonl("out.jsonl")`` mirrors
    ``records_to_jsonl(records, "out.jsonl")``.  Derived columns present
    in the stream are ignored (they are recomputed properties).
    """
    if isinstance(source, Path):
        text = source.read_text()
    elif source.strip() and not source.lstrip().startswith("{"):
        text = Path(source).read_text()
    else:
        text = source
    records: List[CellResult] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        records.append(record_from_dict(json.loads(line)))
    return records


def records_from_csv(source: Union[str, Path]) -> List[CellResult]:
    """Parse records back from CSV text or a path to a ``.csv`` file.

    The inverse of :func:`records_to_csv` — a ``str`` containing a
    newline is treated as CSV text (a serialised table always has a
    header line), anything else as a file path.  Derived ratio columns
    are ignored; non-finite floats round-trip via their ``inf``/``nan``
    spellings.
    """
    if isinstance(source, Path):
        text = source.read_text()
    elif "\n" in source:
        text = source
    else:
        text = Path(source).read_text()
    if not text.strip():
        return []
    reader = csv.DictReader(io.StringIO(text))
    return [record_from_dict(row) for row in reader]
