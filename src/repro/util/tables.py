"""Fixed-width text tables for experiment output.

The benchmark harness prints paper-style tables (one row per CCR value,
one column per strategy/processor count).  No third-party table library is
used; this keeps the dependency footprint at numpy only.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_float"]


def format_float(x: object, digits: int = 4) -> str:
    """Format numbers compactly: floats to *digits* significant figures."""
    if isinstance(x, bool) or not isinstance(x, (int, float)):
        return str(x)
    if isinstance(x, int):
        return str(x)
    if x != x:  # NaN
        return "nan"
    if x == float("inf"):
        return "inf"
    if x == 0:
        return "0"
    ax = abs(x)
    if ax >= 10 ** (digits + 2) or ax < 10 ** (-digits):
        return f"{x:.{digits - 1}e}"
    return f"{x:.{digits}g}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    digits: int = 4,
) -> str:
    """Render rows as a fixed-width table with a rule under the header."""
    str_rows: List[List[str]] = [
        [format_float(cell, digits) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
