"""Topological orderings of DAGs given as adjacency mappings.

The library needs three flavours:

* a deterministic order (Kahn's algorithm with FIFO tie-breaking) used by
  analyses that must be reproducible without a seed;
* a *random* topological sort (uniform tie-breaking) — the paper's
  ``OnOneProcessor`` linearises superchains with a random topological sort
  (Algorithm 1, line 39);
* a *keyed* sort where ties are broken by a priority function, used by the
  min-live-volume linearization heuristic (paper §VIII future work).

All functions operate on ``succs``/``preds`` mappings ``node -> iterable``
so they work for both :class:`repro.mspg.graph.Workflow` instances and the
little ad-hoc DAGs used in the evaluators.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Mapping, Optional, Sequence

from repro.errors import CycleError
from repro.util.rng import SeedLike, as_rng

Node = Hashable

__all__ = [
    "topological_order",
    "random_topological_order",
    "keyed_topological_order",
    "is_topological_order",
]


def _indegrees(
    nodes: Sequence[Node], succs: Mapping[Node, Iterable[Node]]
) -> Dict[Node, int]:
    indeg = {v: 0 for v in nodes}
    for u in nodes:
        for w in succs.get(u, ()):
            indeg[w] += 1
    return indeg


def topological_order(
    nodes: Sequence[Node], succs: Mapping[Node, Iterable[Node]]
) -> List[Node]:
    """Deterministic Kahn topological sort (insertion-order tie-breaking)."""
    indeg = _indegrees(nodes, succs)
    ready = [v for v in nodes if indeg[v] == 0]
    out: List[Node] = []
    head = 0
    while head < len(ready):
        v = ready[head]
        head += 1
        out.append(v)
        for w in succs.get(v, ()):
            indeg[w] -= 1
            if indeg[w] == 0:
                ready.append(w)
    if len(out) != len(nodes):
        raise CycleError(
            f"graph has a cycle: ordered {len(out)} of {len(nodes)} nodes"
        )
    return out


def random_topological_order(
    nodes: Sequence[Node],
    succs: Mapping[Node, Iterable[Node]],
    seed: SeedLike = None,
) -> List[Node]:
    """Random topological sort: at each step pick a ready node uniformly.

    This samples from the set of linear extensions (not uniformly over
    extensions, but with full support — every linear extension has positive
    probability), which is what the paper's ``OnOneProcessor`` requires.
    """
    rng = as_rng(seed)
    indeg = _indegrees(nodes, succs)
    ready = [v for v in nodes if indeg[v] == 0]
    out: List[Node] = []
    while ready:
        i = int(rng.integers(0, len(ready)))
        # O(1) removal: swap-with-last.
        ready[i], ready[-1] = ready[-1], ready[i]
        v = ready.pop()
        out.append(v)
        for w in succs.get(v, ()):
            indeg[w] -= 1
            if indeg[w] == 0:
                ready.append(w)
    if len(out) != len(nodes):
        raise CycleError(
            f"graph has a cycle: ordered {len(out)} of {len(nodes)} nodes"
        )
    return out


def keyed_topological_order(
    nodes: Sequence[Node],
    succs: Mapping[Node, Iterable[Node]],
    key: Callable[[Node], float],
    seed: SeedLike = None,
) -> List[Node]:
    """Topological sort where the ready node minimising ``key`` goes next.

    Remaining ties are broken uniformly at random (seeded).  ``key`` is
    re-evaluated each time a node is selected, so it may depend on mutable
    state updated by the caller between picks — the min-live-volume
    heuristic exploits this via a closure over the live-file set.
    """
    rng = as_rng(seed)
    indeg = _indegrees(nodes, succs)
    ready = [v for v in nodes if indeg[v] == 0]
    out: List[Node] = []
    while ready:
        scores = [key(v) for v in ready]
        best = min(scores)
        candidates = [i for i, s in enumerate(scores) if s == best]
        i = candidates[int(rng.integers(0, len(candidates)))]
        ready[i], ready[-1] = ready[-1], ready[i]
        v = ready.pop()
        out.append(v)
        for w in succs.get(v, ()):
            indeg[w] -= 1
            if indeg[w] == 0:
                ready.append(w)
    if len(out) != len(nodes):
        raise CycleError(
            f"graph has a cycle: ordered {len(out)} of {len(nodes)} nodes"
        )
    return out


def is_topological_order(
    order: Sequence[Node], succs: Mapping[Node, Iterable[Node]]
) -> bool:
    """Check that *order* lists each node once and respects all edges."""
    pos = {v: i for i, v in enumerate(order)}
    if len(pos) != len(order):
        return False
    for u in order:
        for w in succs.get(u, ()):
            if w not in pos or pos[u] >= pos[w]:
                return False
    return True
