"""Minimal ASCII line/scatter plots for terminal-only experiment output.

The paper's figures plot *relative expected makespan* against CCR on a log
x-axis.  :func:`ascii_xy_plot` renders multiple named series on a character
grid so that the benchmark harness can show the qualitative shape (who wins,
where the crossover sits) without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ascii_xy_plot"]

_MARKERS = "ox+*#@%&"


def _transform(v: float, log: bool) -> float:
    if log:
        if v <= 0:
            raise ValueError(f"log-scale axis requires positive values, got {v}")
        return math.log10(v)
    return v


def ascii_xy_plot(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 72,
    height: int = 20,
    logx: bool = False,
    logy: bool = False,
    title: Optional[str] = None,
    ybounds: Optional[Tuple[float, float]] = None,
    hline: Optional[float] = None,
) -> str:
    """Render ``{label: [(x, y), ...]}`` series on a character grid.

    ``hline`` draws a horizontal reference line (the paper's figures mark
    ``y = 1``, the break-even line between strategies).
    Non-finite y values are skipped (the paper notes CKPTNONE leaves the
    plotted range in the high-failure corner; we reproduce that by letting
    the series drop out of the grid).
    """
    pts: List[Tuple[float, float, int]] = []
    labels = list(series)
    for si, label in enumerate(labels):
        for x, y in series[label]:
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            pts.append((_transform(x, logx), _transform(y, logy), si))
    if not pts:
        return (title or "") + "\n(no finite points)"

    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    if hline is not None:
        ys.append(_transform(hline, logy))
    xmin, xmax = min(xs), max(xs)
    if ybounds is not None:
        ymin, ymax = (_transform(ybounds[0], logy), _transform(ybounds[1], logy))
    else:
        ymin, ymax = min(ys), max(ys)
    if xmax == xmin:
        xmax = xmin + 1.0
    if ymax == ymin:
        ymax = ymin + 1.0

    grid = [[" "] * width for _ in range(height)]

    def col(x: float) -> int:
        return min(width - 1, max(0, int(round((x - xmin) / (xmax - xmin) * (width - 1)))))

    def row(y: float) -> int:
        # Row 0 is the top of the plot.
        return min(
            height - 1,
            max(0, int(round((ymax - y) / (ymax - ymin) * (height - 1)))),
        )

    if hline is not None:
        r = row(_transform(hline, logy))
        for c in range(width):
            grid[r][c] = "-"

    for x, y, si in pts:
        if ybounds is not None and not (ymin <= y <= ymax):
            continue
        grid[row(y)][col(x)] = _MARKERS[si % len(_MARKERS)]

    lines: List[str] = []
    if title:
        lines.append(title)
    inv_y = (lambda v: 10**v) if logy else (lambda v: v)
    lines.append(f"{inv_y(ymax):10.3g} +" + "".join(grid[0]))
    for r in range(1, height - 1):
        lines.append(" " * 10 + " |" + "".join(grid[r]))
    lines.append(f"{inv_y(ymin):10.3g} +" + "".join(grid[height - 1]))
    inv_x = (lambda v: 10**v) if logx else (lambda v: v)
    left = f"{inv_x(xmin):.3g}"
    right = f"{inv_x(xmax):.3g}"
    axis = " " * 12 + left + " " * max(1, width - len(left) - len(right)) + right
    lines.append(axis)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {label}" for i, label in enumerate(labels)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
