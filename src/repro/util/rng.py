"""Random-number-generator plumbing.

All stochastic code in the library accepts a ``seed`` argument that may be
``None`` (non-deterministic), an integer, or an already-constructed
:class:`numpy.random.Generator`.  :func:`as_rng` normalises the three cases
so that every public entry point is reproducible when given an int seed.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

__all__ = ["SeedLike", "as_rng", "spawn_rngs", "stable_seed", "sequence_seed"]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``Generator`` instances are passed through unchanged so that callers can
    thread one generator through a pipeline and keep a single random stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Create *n* statistically independent generators derived from *seed*.

    Uses :class:`numpy.random.SeedSequence` spawning, the recommended way to
    derive parallel streams (e.g., one per experiment cell) without stream
    overlap.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of RNGs: {n}")
    if isinstance(seed, np.random.SeedSequence):
        seq = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a SeedSequence from the generator's own stream.
        seq = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def stable_seed(*parts: Union[int, str]) -> int:
    """Derive a deterministic 63-bit seed from heterogeneous parts.

    Used by the experiment harness so that each (family, ntasks, pfail, ...)
    cell gets a reproducible but distinct workflow, independent of the order
    in which cells run.
    """
    import hashlib

    h = hashlib.sha256("\x1f".join(str(p) for p in parts).encode()).digest()
    return int.from_bytes(h[:8], "big") >> 1


def sequence_seed(seed: SeedLike, index: int) -> Optional[int]:
    """Deterministic per-index seed derived from *seed* (``None`` stays None)."""
    if seed is None:
        return None
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**63 - 1))
    base = int(seed) if not isinstance(seed, np.random.SeedSequence) else int(seed.entropy or 0)
    return stable_seed(base, index)
