"""Shared low-level utilities (RNG handling, topological sorts, tables)."""

from repro.util.rng import as_rng, spawn_rngs
from repro.util.toposort import (
    topological_order,
    random_topological_order,
    is_topological_order,
)
from repro.util.tables import format_table
from repro.util.asciiplot import ascii_xy_plot

__all__ = [
    "as_rng",
    "spawn_rngs",
    "topological_order",
    "random_topological_order",
    "is_topological_order",
    "format_table",
    "ascii_xy_plot",
]
