"""Small argument-validation helpers shared across the library."""

from __future__ import annotations

import math
from typing import Optional

__all__ = [
    "require_positive",
    "require_nonnegative",
    "require_in_unit_interval",
    "pfail_error",
    "ccr_error",
    "bandwidth_error",
    "seed_error",
]


def require_positive(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value > 0``; return the value."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def require_nonnegative(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value >= 0``; return the value."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def require_in_unit_interval(
    value: float, name: str, *, open_right: bool = False
) -> float:
    """Raise ``ValueError`` unless ``0 <= value <= 1`` (or ``< 1``)."""
    upper_ok = value < 1 if open_right else value <= 1
    if not (0 <= value and upper_ok):
        bound = "[0, 1)" if open_right else "[0, 1]"
        raise ValueError(f"{name} must be in {bound}, got {value!r}")
    return value


# ----------------------------------------------------------------------
# Experiment-parameter domains.  Enforced at three altitudes — argparse
# types in the CLI, SweepSpec in the engine, EvalRequest in the service
# — each with its own exception type, so these return an error message
# (``None`` when valid) and every site states the rule exactly once.


def pfail_error(value: float) -> Optional[str]:
    """Failure probability: finite, in [0, 1)."""
    if not (math.isfinite(value) and 0.0 <= value < 1.0):
        return f"pfail must be in [0, 1), got {value}"
    return None


def ccr_error(value: float) -> Optional[str]:
    """CCR target: finite, >= 0."""
    if not (math.isfinite(value) and value >= 0):
        return f"CCR must be finite and >= 0, got {value}"
    return None


def bandwidth_error(value: float) -> Optional[str]:
    """Platform bandwidth: finite, > 0."""
    if not (math.isfinite(value) and value > 0):
        return f"bandwidth must be finite and > 0, got {value}"
    return None


def seed_error(value: int) -> Optional[str]:
    """Root experiment seed: non-negative (SeedSequence-compatible)."""
    if value < 0:
        return f"seed must be >= 0, got {value}"
    return None
