"""Small argument-validation helpers shared across the library."""

from __future__ import annotations

from typing import Optional

__all__ = ["require_positive", "require_nonnegative", "require_in_unit_interval"]


def require_positive(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value > 0``; return the value."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def require_nonnegative(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value >= 0``; return the value."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def require_in_unit_interval(
    value: float, name: str, *, open_right: bool = False
) -> float:
    """Raise ``ValueError`` unless ``0 <= value <= 1`` (or ``< 1``)."""
    upper_ok = value < 1 if open_right else value <= 1
    if not (0 <= value and upper_ok):
        bound = "[0, 1)" if open_right else "[0, 1]"
        raise ValueError(f"{name} must be in {bound}, got {value!r}")
    return value
