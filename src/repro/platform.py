"""Execution platform model.

The paper's platform (§II, §VI-A) is a homogeneous cluster of ``p``
processors, each subject to i.i.d. exponentially-distributed fail-stop
failures with rate ``λ``, connected to a stable storage system with a fixed
bandwidth.  Checkpointing / reading a file of ``s`` bytes costs ``s / bw``
seconds.  Rebooting after a failure is instantaneous (the paper's
first-order model has no downtime term).

Failure rates in the experiments are derived from a per-task failure
probability ``pfail`` (§VI-A): with average task weight ``w̄``, the rate is
chosen so that ``pfail = 1 − exp(−λ·w̄)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.util.validation import (
    require_in_unit_interval,
    require_nonnegative,
    require_positive,
)

__all__ = ["Platform", "lambda_from_pfail", "pfail_from_lambda"]

#: Default stable-storage bandwidth (bytes/second).  The absolute value is
#: immaterial for the paper's experiments, which always rescale file sizes
#: to reach a target Communication-to-Computation Ratio (CCR); it only
#: fixes the unit in which raw generator output is interpreted.
DEFAULT_BANDWIDTH = 100e6


@dataclass(frozen=True)
class Platform:
    """A homogeneous failure-prone cluster.

    Parameters
    ----------
    processors:
        Number of processors ``p`` (>= 1).
    failure_rate:
        Exponential fail-stop rate ``λ`` per processor, in 1/second.
        ``0`` models a failure-free platform.
    bandwidth:
        Stable-storage bandwidth in bytes/second, shared semantics with the
        paper: reads and writes both move at this rate and concurrent
        accesses are not modelled (I/O costs are per-task additive).
    """

    processors: int
    failure_rate: float = 0.0
    bandwidth: float = DEFAULT_BANDWIDTH

    def __post_init__(self) -> None:
        if int(self.processors) != self.processors or self.processors < 1:
            raise ValueError(
                f"processors must be a positive integer, got {self.processors!r}"
            )
        require_nonnegative(self.failure_rate, "failure_rate")
        require_positive(self.bandwidth, "bandwidth")

    def io_seconds(self, nbytes: float) -> float:
        """Seconds to read or write ``nbytes`` from/to stable storage."""
        require_nonnegative(nbytes, "nbytes")
        return nbytes / self.bandwidth

    def with_failure_rate(self, failure_rate: float) -> "Platform":
        """A copy of this platform with a different failure rate."""
        return replace(self, failure_rate=failure_rate)

    def with_processors(self, processors: int) -> "Platform":
        """A copy of this platform with a different processor count."""
        return replace(self, processors=processors)

    def with_bandwidth(self, bandwidth: float) -> "Platform":
        """A copy of this platform with a different storage bandwidth."""
        return replace(self, bandwidth=bandwidth)


def lambda_from_pfail(pfail: float, mean_task_weight: float) -> float:
    """Failure rate ``λ`` such that ``pfail = 1 − exp(−λ·w̄)`` (§VI-A).

    ``pfail`` is the probability that a task of average weight fails at
    least once during its execution.
    """
    require_in_unit_interval(pfail, "pfail", open_right=True)
    require_positive(mean_task_weight, "mean_task_weight")
    if pfail == 0:
        return 0.0
    return -math.log1p(-pfail) / mean_task_weight


def pfail_from_lambda(failure_rate: float, mean_task_weight: float) -> float:
    """Inverse of :func:`lambda_from_pfail`."""
    require_nonnegative(failure_rate, "failure_rate")
    require_positive(mean_task_weight, "mean_task_weight")
    return -math.expm1(-failure_rate * mean_task_weight)
