"""Workflow sources: where a sweep's workflow instances come from.

The paper's evaluation is confined to the synthetic PWG families, but
the harness round-trips Pegasus DAX v3 documents — the format real
production workflows ship in — and a sweep should be able to price one
of those just like a generated instance.  This module makes the origin
of a workflow a first-class object:

* :class:`FamilySource` — today's ``(family, ntasks, seed)`` generation
  through :func:`repro.generators.generate`; semantics (and cache keys,
  hence records) are bit-identical to the pre-source engine;
* :class:`FileSource` — a fixed external workflow loaded from a
  ``.dax``/``.xml`` (Pegasus DAX v3) or ``.json`` (native schema) file,
  identified by a **canonical content hash** of its tasks, weights,
  files and edges.  Two files with the same content — whatever their
  path, element order or workflow name — share one hash, so the
  engine's :class:`~repro.engine.pipeline.ArtifactCache` and the
  service's request fingerprints stay bit-safe;
* :class:`SourceRegistry` — a small thread-safe hash → source map the
  evaluation service loads file sources into (``POST /register``), so
  HTTP requests can name a workflow by content hash alone.

A :class:`~repro.engine.sweep.SweepSpec` carries an optional source
(:meth:`SweepSpec.from_source <repro.engine.sweep.SweepSpec.from_source>`),
and :class:`~repro.service.fingerprint.EvalRequest` gains a ``workflow``
field holding the content hash; everything below the source — schedule
seeding, checkpoint planning, batched evaluation — is source-agnostic.
"""

from __future__ import annotations

import hashlib
import json
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import SerializationError, ServiceError, WorkflowError
from repro.mspg.graph import Workflow

__all__ = [
    "WorkflowSource",
    "FamilySource",
    "FileSource",
    "SourceRegistry",
    "workflow_hash",
    "file_family",
    "load_source",
    "SOURCE_SUFFIXES",
]

#: Recognised workflow-file suffixes and the format each selects.
SOURCE_SUFFIXES = {
    ".dax": "dax",
    ".xml": "dax",
    ".json": "json",
}


def workflow_hash(workflow: Workflow) -> str:
    """Canonical SHA-256 content hash (hex) of a workflow.

    Covers exactly what evaluation depends on: tasks (id, weight),
    files (name, size, producer, consumers) and control edges — all
    sorted, floats in exact ``repr`` — and deliberately *not* the
    workflow's display name, task categories (reporting labels the
    algorithms ignore, and DAX serialisation rewrites empty ones) or
    the element order of the file it came from, so re-serialised or
    re-ordered copies of the same workflow share one hash.
    """
    payload = {
        "tasks": sorted((t.id, repr(t.weight)) for t in workflow.tasks()),
        "files": sorted(
            (
                name,
                repr(workflow.file_size(name)),
                workflow.producer(name) or "",
                tuple(sorted(workflow.consumers(name))),
            )
            for name in workflow.file_names
        ),
        "control_edges": sorted(workflow.control_edges()),
    }
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def file_family(content_hash: str) -> str:
    """The ``family`` string a file source occupies in specs/records.

    Content-derived (``file:<hash12>``), so file-sourced records are
    self-describing and the stable seed derivation — which hashes the
    family string — is deterministic for a given workflow content.
    """
    return f"file:{content_hash[:12]}"


class WorkflowSource:
    """Where a sweep's workflow instances come from.

    Implementations provide:

    * :meth:`resolve` — materialise the workflow for one grid group;
    * :meth:`cache_key` — the :class:`~repro.engine.pipeline.ArtifactCache`
      key tail covering exactly what the result depends on;
    * :attr:`spec_family` — the ``family`` string specs and records carry.
    """

    def resolve(self, ntasks: int, seed: int) -> Workflow:
        raise NotImplementedError

    def cache_key(self, ntasks: int, seed: int) -> Tuple:
        raise NotImplementedError

    @property
    def spec_family(self) -> str:
        raise NotImplementedError


class FamilySource(WorkflowSource):
    """Synthetic generation through the :data:`~repro.generators.FAMILIES`
    registry — the engine's historical behaviour, cache keys included."""

    def __init__(self, family: str) -> None:
        self.family = str(family)

    def resolve(self, ntasks: int, seed: int) -> Workflow:
        from repro.generators import generate

        return generate(self.family, ntasks, seed)

    def cache_key(self, ntasks: int, seed: int) -> Tuple:
        # Identical to the pre-source Pipeline.prepare key, so family
        # sweeps hit the same cache entries (and records) as before.
        return (self.family, ntasks, seed)

    @property
    def spec_family(self) -> str:
        return self.family

    def __repr__(self) -> str:
        return f"FamilySource({self.family!r})"


class FileSource(WorkflowSource):
    """A fixed external workflow, identified by its content hash.

    ``ntasks``/``seed`` are ignored by :meth:`resolve` (the instance is
    the file's content, not a draw), and the cache key is the hash alone
    — every spec over the same content shares one cached workflow,
    M-SPG tree and (per processor count) schedule.
    """

    def __init__(self, workflow: Workflow, label: Optional[str] = None) -> None:
        if workflow.n_tasks < 1:
            raise WorkflowError("a file source needs a non-empty workflow")
        self.workflow = workflow
        self.content_hash = workflow_hash(workflow)
        self.label = label if label is not None else workflow.name

    @classmethod
    def from_path(cls, path: Union[str, Path]) -> "FileSource":
        """Load a workflow file by suffix (``.dax``/``.xml`` or ``.json``)."""
        return cls(load_workflow_file(path), label=Path(str(path)).name)

    def resolve(self, ntasks: int, seed: int) -> Workflow:
        return self.workflow

    def cache_key(self, ntasks: int, seed: int) -> Tuple:
        return ("file", self.content_hash)

    @property
    def spec_family(self) -> str:
        return file_family(self.content_hash)

    def describe(self) -> Dict[str, object]:
        """JSON-ready summary (what ``GET /sources`` lists per entry)."""
        return {
            "workflow": self.content_hash,
            "family": self.spec_family,
            "ntasks": self.workflow.n_tasks,
            "label": self.label,
        }

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FileSource)
            and self.content_hash == other.content_hash
        )

    def __hash__(self) -> int:
        return hash(("FileSource", self.content_hash))

    def __repr__(self) -> str:
        return (
            f"FileSource({self.label!r}, tasks={self.workflow.n_tasks}, "
            f"hash={self.content_hash[:12]})"
        )


def load_workflow_file(path: Union[str, Path]) -> Workflow:
    """Read a workflow from a ``.dax``/``.xml`` or ``.json`` file.

    Unrecognised suffixes raise :class:`SerializationError` naming the
    supported formats (the CLI surfaces this as an exit-2 message).
    """
    from repro.generators.dax import read_dax
    from repro.generators.serialization import load_workflow

    suffix = Path(str(path)).suffix.lower()
    fmt = SOURCE_SUFFIXES.get(suffix)
    if fmt is None:
        supported = ", ".join(sorted(SOURCE_SUFFIXES))
        raise SerializationError(
            f"unsupported workflow file suffix {suffix!r} for {path}; "
            f"supported formats: {supported} "
            "(.dax/.xml = Pegasus DAX v3, .json = native schema)"
        )
    return read_dax(path) if fmt == "dax" else load_workflow(path)


def load_source(path: Union[str, Path]) -> FileSource:
    """:class:`FileSource` for a workflow file (see :func:`load_workflow_file`)."""
    return FileSource.from_path(path)


class SourceRegistry:
    """Thread-safe content-hash → :class:`FileSource` map.

    The evaluation service keeps one: ``POST /register`` loads a source
    in, after which requests can name the workflow by hash alone.
    Registration is idempotent — re-registering the same content is a
    no-op returning the same hash — so clients re-register freely after
    a service restart and previously stored fingerprints keep matching.
    """

    def __init__(self) -> None:
        self._sources: Dict[str, FileSource] = {}
        self._lock = threading.Lock()

    def register(self, source: FileSource) -> str:
        """Add a source; returns its content hash (idempotent)."""
        if not isinstance(source, FileSource):
            raise ServiceError(
                f"only file sources can be registered, got "
                f"{type(source).__name__}"
            )
        with self._lock:
            self._sources.setdefault(source.content_hash, source)
        return source.content_hash

    def get(self, content_hash: str) -> Optional[FileSource]:
        with self._lock:
            return self._sources.get(content_hash)

    def require(self, content_hash: str) -> FileSource:
        """The registered source for a hash, or a :class:`ServiceError`
        naming what *is* registered."""
        source = self.get(content_hash)
        if source is None:
            known = [h[:12] for h in self.hashes()] or ["<none>"]
            raise ServiceError(
                f"unknown workflow source {content_hash[:12]!r}; "
                f"registered sources: {', '.join(known)} "
                "(register the workflow first — POST /register, or "
                "'repro submit --dax FILE' does it for you)"
            )
        return source

    def hashes(self) -> List[str]:
        with self._lock:
            return sorted(self._sources)

    def describe(self) -> List[Dict[str, object]]:
        """JSON-ready listing of every registered source."""
        with self._lock:
            sources = list(self._sources.values())
        return sorted(
            (s.describe() for s in sources),
            key=lambda d: str(d["workflow"]),
        )

    def __contains__(self, content_hash: object) -> bool:
        with self._lock:
            return content_hash in self._sources

    def __len__(self) -> int:
        with self._lock:
            return len(self._sources)
