"""Workflow DAG model and Minimal Series-Parallel Graph machinery.

This package provides the substrate of the reproduction:

* :mod:`repro.mspg.graph` — the file-grained workflow DAG model;
* :mod:`repro.mspg.expr` — M-SPG expression trees and the two composition
  operators of the paper (§II-A);
* :mod:`repro.mspg.recognize` — exact recognition of M-SPG DAGs;
* :mod:`repro.mspg.transform` — transitive reduction and the ``mspgify``
  completion transform (footnote 2 of the paper, generalised);
* :mod:`repro.mspg.analysis` — structural analyses (levels, critical path).
"""

from repro.mspg.graph import Task, Workflow
from repro.mspg.expr import (
    EMPTY,
    EmptyGraph,
    MSPG,
    Parallel,
    Series,
    TaskNode,
    parallel,
    series,
    tree_edges,
    tree_sinks,
    tree_sources,
)
from repro.mspg.recognize import recognize, is_mspg
from repro.mspg.transform import transitive_reduction, mspgify, MspgifyResult

__all__ = [
    "Task",
    "Workflow",
    "MSPG",
    "EmptyGraph",
    "EMPTY",
    "TaskNode",
    "Series",
    "Parallel",
    "series",
    "parallel",
    "tree_edges",
    "tree_sources",
    "tree_sinks",
    "recognize",
    "is_mspg",
    "transitive_reduction",
    "mspgify",
    "MspgifyResult",
]
