"""Structural analyses of workflow DAGs.

Helpers shared by generators, the experiment harness and the docs:
longest-path levels, critical path, width/parallelism profile, and a
reachability check used to assert that transforms preserve ordering.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Set, Tuple

from repro.mspg.expr import MSPG, tree_edges, tree_tasks
from repro.mspg.graph import Workflow
from repro.mspg.transform import descendants_bitsets

__all__ = [
    "levels",
    "level_sets",
    "critical_path_length",
    "critical_path",
    "width",
    "degree_stats",
    "tree_respects_workflow_order",
]


def levels(workflow: Workflow) -> Dict[str, int]:
    """Longest-path level of each task (sources are level 0)."""
    out: Dict[str, int] = {}
    for v in workflow.topological_order():
        preds = workflow.preds(v)
        out[v] = 1 + max((out[u] for u in preds), default=-1)
    return out


def level_sets(workflow: Workflow) -> List[List[str]]:
    """Tasks grouped by level, in topological order within each level."""
    lv = levels(workflow)
    n = 1 + max(lv.values(), default=-1)
    groups: List[List[str]] = [[] for _ in range(n)]
    for v in workflow.topological_order():
        groups[lv[v]].append(v)
    return groups

def critical_path(workflow: Workflow) -> Tuple[float, List[str]]:
    """Length (seconds) and tasks of a weight-critical path."""
    best: Dict[str, float] = {}
    back: Dict[str, str] = {}
    order = workflow.topological_order()
    for v in order:
        w = workflow.weight(v)
        incoming = [(best[u], u) for u in workflow.preds(v)]
        if incoming:
            b, u = max(incoming)
            best[v] = b + w
            back[v] = u
        else:
            best[v] = w
    if not best:
        return 0.0, []
    end = max(best, key=best.__getitem__)
    path = [end]
    while path[-1] in back:
        path.append(back[path[-1]])
    path.reverse()
    return best[end], path


def critical_path_length(workflow: Workflow) -> float:
    """Length of the weight-critical path (lower bound on any makespan)."""
    return critical_path(workflow)[0]


def width(workflow: Workflow) -> int:
    """Maximum number of tasks on one level (a cheap parallelism proxy)."""
    return max((len(g) for g in level_sets(workflow)), default=0)


def degree_stats(workflow: Workflow) -> Dict[str, float]:
    """Basic degree statistics (used by generator tests and reports)."""
    indegs = [len(workflow.preds(t)) for t in workflow.task_ids]
    outdegs = [len(workflow.succs(t)) for t in workflow.task_ids]
    n = max(1, len(indegs))
    return {
        "max_in": float(max(indegs, default=0)),
        "max_out": float(max(outdegs, default=0)),
        "mean_in": sum(indegs) / n,
        "mean_out": sum(outdegs) / n,
    }


def tree_respects_workflow_order(tree: MSPG, workflow: Workflow) -> bool:
    """Whether the tree's partial order extends the workflow's edges.

    For every workflow edge ``(u, v)``, ``v`` must be reachable from ``u``
    in the graph the tree denotes.  This is the soundness condition of
    :func:`repro.mspg.transform.mspgify`: demoted (data-only) edges must
    remain ordered by the synthetic structure.
    """
    nodes = list(tree_tasks(tree))
    if set(nodes) != set(workflow.task_ids):
        return False
    edges = tree_edges(tree)
    succs: Dict[str, Set[str]] = {v: set() for v in nodes}
    for u, v in edges:
        succs[u].add(v)
    frozen = {u: frozenset(vs) for u, vs in succs.items()}
    from repro.util.toposort import topological_order

    order = topological_order(nodes, frozen)
    index = {v: i for i, v in enumerate(order)}
    desc = descendants_bitsets(order, frozen)
    for u, v in workflow.edges():
        if not (desc[u] >> index[v]) & 1:
            return False
    return True
