"""Exact recognition of Minimal Series-Parallel Graphs.

The paper assumes its input workflows *are* M-SPGs (§II-A) but never spells
out a recognition procedure.  We need one both to validate generated
workflows and to drive scheduling, so we derive it from the grammar:

* a *disconnected* M-SPG is the parallel composition of its weakly
  connected components;
* a *connected* M-SPG with at least two vertices must be a serial
  composition (parallel composition of non-empty graphs is disconnected,
  and chains are serial compositions of atoms), i.e. it has a **serial
  cut**: a partition ``(P, V∖P)`` whose crossing edges are exactly
  ``sinks(G[P]) × sources(G[V∖P])``.

**Greedy correctness.**  Let ``G = H1 ;→ H2 ;→ … ;→ Hk`` be the coarsest
serial decomposition of a connected M-SPG.  Every vertex of ``H_{j>1}`` is
a descendant of every sink of ``H_1`` (serial composition makes the cut a
complete bipartite), and every vertex of ``H_1`` is an ancestor of some
sink of ``H_1``.  Hence all of ``H_1`` precedes all of ``H_2 ∪ … ∪ H_k``
in *every* topological order — the top-level cut points are prefixes of any
topological order.  Growing a prefix along one arbitrary topological order
and testing the cut condition therefore finds *all* top-level cuts in a
single ``O(V·E)`` scan.

The scan maintains, incrementally:

* ``sinks_P`` — vertices of the prefix with no successor inside it;
* ``sources_rest`` — vertices outside with no predecessor outside;
* ``cross`` — the set of edges crossing the prefix boundary (all crossing
  edges run prefix → rest because the prefix is topologically closed).

A prefix is a valid cut iff ``cross == sinks_P × sources_rest``; since
``cross ⊆ sinks_P × sources_rest`` can be verified edge-by-edge, equality
reduces to a cardinality check plus membership tests.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import NotMSPGError
from repro.mspg.expr import EMPTY, MSPG, TaskNode, parallel, series
from repro.mspg.graph import Workflow
from repro.util.toposort import topological_order

Node = Hashable

__all__ = ["recognize", "recognize_adjacency", "is_mspg", "serial_cut_prefixes"]


def weakly_connected_components(
    nodes: Iterable[Node],
    succs: Mapping[Node, Iterable[Node]],
    preds: Mapping[Node, Iterable[Node]],
) -> List[List[Node]]:
    """Weakly connected components of the subgraph induced by ``nodes``.

    Components are returned with nodes in the iteration order of ``nodes``
    — callers must pass an *ordered* iterable (a topological list, not a
    set) for downstream code to stay deterministic: both component
    discovery order and the node order within each component follow it.
    """
    order = list(nodes)
    node_set = set(order)
    seen: Set[Node] = set()
    comp_of: Dict[Node, int] = {}
    n_comps = 0
    for start in order:
        if start in seen:
            continue
        stack = [start]
        seen.add(start)
        comp_of[start] = n_comps
        while stack:
            v = stack.pop()
            for w in succs.get(v, ()):
                if w in node_set and w not in seen:
                    seen.add(w)
                    comp_of[w] = n_comps
                    stack.append(w)
            for w in preds.get(v, ()):
                if w in node_set and w not in seen:
                    seen.add(w)
                    comp_of[w] = n_comps
                    stack.append(w)
        n_comps += 1
    comps: List[List[Node]] = [[] for _ in range(n_comps)]
    for v in order:
        comps[comp_of[v]].append(v)
    return comps


def serial_cut_prefixes(
    topo: Sequence[Node],
    succs: Mapping[Node, Iterable[Node]],
    preds: Mapping[Node, Iterable[Node]],
    relaxed: bool = False,
) -> List[int]:
    """Prefix lengths at which a serial cut exists (see module docs)."""
    return [cut for cut, _ in serial_cut_candidates(topo, succs, preds, relaxed)]


def serial_cut_candidates(
    topo: Sequence[Node],
    succs: Mapping[Node, Iterable[Node]],
    preds: Mapping[Node, Iterable[Node]],
    relaxed: bool = False,
) -> List[Tuple[int, int]]:
    """Valid serial cuts as ``(prefix length, completion cost)`` pairs.

    ``topo`` must be a topological order of the (connected) node subset
    under the *induced* subgraph; adjacency lookups are filtered to it.

    With ``relaxed=True`` a cut only requires every crossing edge to run
    from a sink of the prefix to a source of the rest (the complete
    bipartite product may be *incomplete*); this is the condition under
    which the cut can be fixed by adding dummy edges, used by
    :func:`repro.mspg.transform.mspgify`.  The *completion cost* is the
    number of dummy edges the cut would add,
    ``|sinks(P)|·|sources(V∖P)| − |crossing edges|`` (0 for exact cuts).

    The trivial boundaries 0 and ``len(topo)`` are not reported.
    """
    node_set = set(topo)
    n = len(topo)
    # preds_in_rest[w]: number of predecessors of w (within node_set) not
    # yet moved into the prefix.  sources_rest tracks w with count 0.
    preds_in_rest: Dict[Node, int] = {}
    for w in topo:
        preds_in_rest[w] = sum(1 for u in preds.get(w, ()) if u in node_set)
    succ_in_prefix: Dict[Node, int] = {v: 0 for v in topo}

    in_prefix: Set[Node] = set()
    sinks_p: Set[Node] = set()
    sources_rest: Set[Node] = {w for w in topo if preds_in_rest[w] == 0}
    cross: Set[Tuple[Node, Node]] = set()

    cuts: List[Tuple[int, int]] = []
    for idx, v in enumerate(topo):
        in_prefix.add(v)
        sources_rest.discard(v)
        sinks_p.add(v)
        for u in preds.get(v, ()):
            if u in in_prefix:
                cross.discard((u, v))
                if succ_in_prefix[u] == 0:
                    sinks_p.discard(u)
                succ_in_prefix[u] += 1
        for w in succs.get(v, ()):
            if w in node_set:  # w cannot already be in the prefix (topo order)
                cross.add((v, w))
                preds_in_rest[w] -= 1
                if preds_in_rest[w] == 0:
                    sources_rest.add(w)
        if idx == n - 1:
            break
        cost = len(sinks_p) * len(sources_rest) - len(cross)
        if not relaxed and cost != 0:
            continue
        ok = True
        for (u, w) in cross:
            if succ_in_prefix[u] != 0 or preds_in_rest[w] != 0:
                ok = False
                break
        if ok:
            cuts.append((idx + 1, cost))
    return cuts


def recognize_adjacency(
    nodes: Sequence[Node],
    succs: Mapping[Node, Iterable[Node]],
    preds: Mapping[Node, Iterable[Node]],
) -> MSPG:
    """Recognise the induced subgraph on ``nodes`` as an M-SPG tree.

    Raises :class:`~repro.errors.NotMSPGError` if the graph cannot be
    produced by the M-SPG grammar.
    """
    if not nodes:
        return EMPTY
    node_set = set(nodes)
    filtered_succs = {
        v: [w for w in succs.get(v, ()) if w in node_set] for v in nodes
    }
    topo = topological_order(list(nodes), filtered_succs)
    return _recognize_rec(topo, succs, preds)


def _recognize_rec(
    topo: Sequence[Node],
    succs: Mapping[Node, Iterable[Node]],
    preds: Mapping[Node, Iterable[Node]],
) -> MSPG:
    """Recursive recognition; ``topo`` is a topological order of the subset."""
    if len(topo) == 1:
        return TaskNode(topo[0])
    comps = weakly_connected_components(topo, succs, preds)
    if len(comps) > 1:
        pos = {v: i for i, v in enumerate(topo)}
        children = []
        for comp in comps:
            comp_topo = sorted(comp, key=pos.__getitem__)
            children.append(_recognize_rec(comp_topo, succs, preds))
        return parallel(*children)
    cuts = serial_cut_prefixes(topo, succs, preds)
    if not cuts:
        raise NotMSPGError(
            f"connected subgraph of {len(topo)} tasks has no serial cut "
            f"(first tasks: {list(topo)[:5]!r})"
        )
    boundaries = [0] + cuts + [len(topo)]
    children = []
    for lo, hi in zip(boundaries, boundaries[1:]):
        children.append(_recognize_rec(topo[lo:hi], succs, preds))
    return series(*children)


def recognize(workflow: Workflow) -> MSPG:
    """Recognise a :class:`~repro.mspg.graph.Workflow` as an M-SPG tree.

    Operates on the workflow's full edge set (data and control edges).
    Use :func:`repro.mspg.transform.mspgify` for graphs that are not
    exactly M-SPGs.
    """
    succs = workflow.successor_map()
    preds = workflow.predecessor_map()
    return recognize_adjacency(workflow.topological_order(), succs, preds)


def is_mspg(workflow: Workflow) -> bool:
    """Whether the workflow's DAG is exactly an M-SPG."""
    try:
        recognize(workflow)
    except NotMSPGError:
        return False
    return True
