"""M-SPG expression trees.

An M-SPG (§II-A of the paper) is defined recursively from atomic tasks with
two operators:

* **serial composition** ``G1 ;→ G2`` — adds dependencies from all sinks of
  ``G1`` to all sources of ``G2`` (sinks/sources are *not* merged, unlike
  classical SPGs);
* **parallel composition** ``G1 ‖ G2`` — disjoint union.

We represent M-SPG structure as an immutable expression tree over task ids
with a *canonical form* that the scheduler relies on:

* :class:`Series` children are :class:`TaskNode` or :class:`Parallel`
  (never nested :class:`Series`, never empty);
* :class:`Parallel` children are :class:`TaskNode` or :class:`Series`
  (never nested :class:`Parallel`, never empty) and there are at least two;
* the empty graph is the :data:`EMPTY` singleton.

The canonical form makes Algorithm 1's decomposition
``G = C ;→ (G1‖…‖Gn) ;→ G_{n+1}`` — with ``C`` the *longest possible
chain* — a simple pattern match (see
:func:`repro.scheduling.allocate.decompose_head`), and guarantees that the
recursion cannot loop (the paper warns about decompositions that lead to
infinite recursions).

Use the smart constructors :func:`series` and :func:`parallel`; they
normalise arbitrary nestings into canonical form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Sequence, Set, Tuple, Union

from repro.errors import WorkflowError

__all__ = [
    "MSPG",
    "EmptyGraph",
    "EMPTY",
    "TaskNode",
    "Series",
    "Parallel",
    "series",
    "parallel",
    "chain",
    "tree_tasks",
    "tree_size",
    "tree_weight",
    "tree_sources",
    "tree_sinks",
    "tree_edges",
    "tree_depth",
    "validate_canonical",
]


class EmptyGraph:
    """The empty M-SPG (neutral element of both compositions)."""

    _instance: "EmptyGraph" = None  # type: ignore[assignment]

    def __new__(cls) -> "EmptyGraph":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "EMPTY"


#: The unique empty M-SPG.
EMPTY = EmptyGraph()


@dataclass(frozen=True)
class TaskNode:
    """An atomic task leaf, referencing a task id of some workflow."""

    task_id: str

    def __repr__(self) -> str:
        return f"T({self.task_id})"


@dataclass(frozen=True)
class Series:
    """Serial composition ``children[0] ;→ children[1] ;→ …``."""

    children: Tuple["_NonEmpty", ...]

    def __repr__(self) -> str:
        return "(" + " ; ".join(repr(c) for c in self.children) + ")"


@dataclass(frozen=True)
class Parallel:
    """Parallel composition ``children[0] ‖ children[1] ‖ …``."""

    children: Tuple["_NonEmpty", ...]

    def __repr__(self) -> str:
        return "(" + " || ".join(repr(c) for c in self.children) + ")"


_NonEmpty = Union[TaskNode, Series, Parallel]
MSPG = Union[EmptyGraph, TaskNode, Series, Parallel]


def series(*parts: MSPG) -> MSPG:
    """Canonical serial composition of ``parts`` (empties dropped).

    Nested :class:`Series` children are flattened so that the result's
    children alternate between atoms and :class:`Parallel` nodes.
    """
    flat: List[_NonEmpty] = []
    for part in parts:
        if isinstance(part, EmptyGraph):
            continue
        if isinstance(part, Series):
            flat.extend(part.children)
        else:
            flat.append(part)
    if not flat:
        return EMPTY
    if len(flat) == 1:
        return flat[0]
    return Series(tuple(flat))


def parallel(*parts: MSPG) -> MSPG:
    """Canonical parallel composition of ``parts`` (empties dropped)."""
    flat: List[_NonEmpty] = []
    for part in parts:
        if isinstance(part, EmptyGraph):
            continue
        if isinstance(part, Parallel):
            flat.extend(part.children)
        else:
            flat.append(part)
    if not flat:
        return EMPTY
    if len(flat) == 1:
        return flat[0]
    return Parallel(tuple(flat))


def chain(*task_ids: str) -> MSPG:
    """A chain ``g1 ;→ g2 ;→ … ;→ gn`` of atomic tasks."""
    return series(*(TaskNode(t) for t in task_ids))


# --------------------------------------------------------------------- #
# tree queries
# --------------------------------------------------------------------- #


def tree_tasks(tree: MSPG) -> Iterator[str]:
    """Yield the task ids of the tree in left-to-right order."""
    stack: List[MSPG] = [tree]
    out: List[str] = []
    if isinstance(tree, EmptyGraph):
        return iter(())

    def _walk(node: MSPG) -> Iterator[str]:
        if isinstance(node, TaskNode):
            yield node.task_id
        elif isinstance(node, (Series, Parallel)):
            for child in node.children:
                yield from _walk(child)

    return _walk(tree)


def tree_size(tree: MSPG) -> int:
    """Number of atomic tasks in the tree."""
    return sum(1 for _ in tree_tasks(tree))


def tree_weight(tree: MSPG, weights: Mapping[str, float]) -> float:
    """Sum of the weights of the tree's atomic tasks.

    This is the graph weight used by the PropMap heuristic (Algorithm 1,
    line 20): "the weight of an M-SPG being the sum of the weights of all
    its atomic tasks".
    """
    return sum(weights[t] for t in tree_tasks(tree))


def tree_sources(tree: MSPG) -> List[str]:
    """Source tasks of the graph the tree denotes."""
    if isinstance(tree, EmptyGraph):
        return []
    if isinstance(tree, TaskNode):
        return [tree.task_id]
    if isinstance(tree, Series):
        return tree_sources(tree.children[0])
    out: List[str] = []
    for child in tree.children:
        out.extend(tree_sources(child))
    return out


def tree_sinks(tree: MSPG) -> List[str]:
    """Sink tasks of the graph the tree denotes."""
    if isinstance(tree, EmptyGraph):
        return []
    if isinstance(tree, TaskNode):
        return [tree.task_id]
    if isinstance(tree, Series):
        return tree_sinks(tree.children[-1])
    out: List[str] = []
    for child in tree.children:
        out.extend(tree_sinks(child))
    return out


def tree_edges(tree: MSPG) -> Set[Tuple[str, str]]:
    """The structural edge set of the graph the tree denotes.

    Serial composition contributes the complete bipartite product
    ``sinks(G_i) × sources(G_{i+1})`` between consecutive children
    (§II-A); parallel composition contributes nothing.
    """
    edges: Set[Tuple[str, str]] = set()

    def _walk(node: MSPG) -> None:
        if isinstance(node, Series):
            for child in node.children:
                _walk(child)
            for left, right in zip(node.children, node.children[1:]):
                for u in tree_sinks(left):
                    for v in tree_sources(right):
                        edges.add((u, v))
        elif isinstance(node, Parallel):
            for child in node.children:
                _walk(child)

    _walk(tree)
    return edges


def tree_depth(tree: MSPG) -> int:
    """Nesting depth of the tree (EMPTY and atoms have depth 0)."""
    if isinstance(tree, (EmptyGraph, TaskNode)):
        return 0
    return 1 + max(tree_depth(c) for c in tree.children)


def validate_canonical(tree: MSPG) -> None:
    """Assert the canonical-form invariants; raise ``WorkflowError`` if violated.

    Also checks that no task id appears twice (the operators compose
    *disjoint* graphs).
    """
    seen: Set[str] = set()

    def _walk(node: MSPG, parent: str) -> None:
        if isinstance(node, EmptyGraph):
            if parent != "root":
                raise WorkflowError("EMPTY may only appear as the whole tree")
            return
        if isinstance(node, TaskNode):
            if node.task_id in seen:
                raise WorkflowError(f"task {node.task_id!r} appears twice")
            seen.add(node.task_id)
            return
        if isinstance(node, Series):
            if parent == "series":
                raise WorkflowError("Series nested directly inside Series")
            if parent == "root_or_parallel_only" or len(node.children) < 2:
                raise WorkflowError("Series must have >= 2 children")
            for child in node.children:
                _walk(child, "series")
            return
        if isinstance(node, Parallel):
            if parent == "parallel":
                raise WorkflowError("Parallel nested directly inside Parallel")
            if len(node.children) < 2:
                raise WorkflowError("Parallel must have >= 2 children")
            for child in node.children:
                _walk(child, "parallel")
            return
        raise WorkflowError(f"unexpected node type {type(node).__name__}")

    _walk(tree, "root")
