"""Transitive reduction and the ``mspgify`` completion transform.

The paper's evaluation (§VI-A, footnote 2) notes that some generated LIGO
workflows are not M-SPGs "because of some incomplete bipartite graphs" and
handles them by extending those bipartite structures "with dummy
dependencies carrying empty files (which adds synchronizations but no data
transfers)".  The future-work section (§VIII) further points to *General
Series Parallel Graphs* — graphs whose transitive reduction is an M-SPG.

:func:`mspgify` implements both ideas as one transform that works for any
DAG workflow:

1. compute the **transitive reduction** of the task graph — redundant
   edges (e.g. Montage's ``mProjectPP → mBackground``, which is implied by
   the path through ``mDiffFit``/``mConcatFit``/``mBgModel``) are demoted
   to *data-only*: their files still participate in every cost computation,
   but they no longer constrain the structural decomposition;
2. recursively decompose the reduced graph like the exact recogniser, but
   accept **relaxed serial cuts** (crossing edges all run from prefix sinks
   to rest sources without forming the complete product) — precisely the
   cuts that can be completed with dummy edges;
3. where even relaxed cuts do not exist, fall back to **level
   synchronisation**: slice the component by longest-path level and treat
   each level as a parallel group (full bipartite synchronisation between
   consecutive levels);
4. materialise, as zero-data control edges on a copy of the workflow,
   exactly the structural edges of the resulting tree that the original
   workflow lacked.

The resulting tree is a canonical M-SPG whose partial order extends the
original workflow's partial order (asserted in tests), so any schedule of
the transformed workflow is a valid schedule of the original one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Sequence, Set, Tuple

from repro.errors import NotMSPGError
from repro.mspg.expr import (
    EMPTY,
    MSPG,
    TaskNode,
    parallel,
    series,
    tree_edges,
)
from repro.mspg.graph import OrderedFrozenSet, Workflow
from repro.mspg.recognize import serial_cut_candidates, weakly_connected_components
from repro.util.toposort import topological_order

__all__ = [
    "transitive_reduction",
    "descendants_bitsets",
    "mspgify",
    "MspgifyResult",
]


def descendants_bitsets(
    order: Sequence[str], succs: Mapping[str, FrozenSet[str]]
) -> Dict[str, int]:
    """Per-node descendant sets as big-int bitsets (node -> bitmask).

    ``desc[v]`` has bit ``i`` set iff ``order[i]`` is reachable from ``v``
    by a path of length >= 1.  Computed in reverse topological order with
    O(V·E/word) big-int unions.
    """
    index = {v: i for i, v in enumerate(order)}
    desc: Dict[str, int] = {}
    for v in reversed(order):
        bits = 0
        for w in succs[v]:
            bits |= desc[w] | (1 << index[w])
        desc[v] = bits
    return desc


def transitive_reduction(
    workflow: Workflow,
) -> Tuple[Dict[str, FrozenSet[str]], Set[Tuple[str, str]]]:
    """Reduced successor map and the set of removed (redundant) edges.

    An edge ``(u, v)`` is redundant iff some other successor ``w`` of ``u``
    reaches ``v``; for a DAG the transitive reduction is unique.
    """
    order = workflow.topological_order()
    succs = workflow.successor_map()
    index = {v: i for i, v in enumerate(order)}
    desc = descendants_bitsets(order, succs)

    reduced: Dict[str, FrozenSet[str]] = {}
    removed: Set[Tuple[str, str]] = set()
    for u in order:
        mask = 0
        for w in succs[u]:
            mask |= desc[w]
        keep = []
        for v in succs[u]:
            if (mask >> index[v]) & 1:
                removed.add((u, v))
            else:
                keep.append(v)
        reduced[u] = OrderedFrozenSet(keep)
    return reduced, removed


class MspgifyResult:
    """Outcome of :func:`mspgify`.

    Attributes
    ----------
    tree:
        Canonical M-SPG expression tree over the workflow's task ids.
    workflow:
        The *original* workflow (unmodified).  The tree drives scheduling;
        execution and makespan evaluation only need the original data
        dependencies, because every cross-superchain data dependency is
        stable-storage-mediated once superchain exits are checkpointed.
    added_edges:
        Dummy synchronisation edges (no data) the tree implies beyond the
        original edge set — the paper's footnote-2 "dummy dependencies
        carrying empty files".  Computed lazily: for wide parallel levels
        the complete bipartite product is quadratic.
    demoted_edges:
        Original edges absent from the tree structure (transitive or
        skip-level edges); their data still counts in every cost model and
        their ordering is implied transitively by the tree.
    exact:
        True iff the input was already an M-SPG: no dummy edges and no
        transitive edges were removed for the decomposition.
    """

    def __init__(self, tree: MSPG, workflow: Workflow, reduced_any: bool) -> None:
        self.tree = tree
        self.workflow = workflow
        self._reduced_any = reduced_any
        self._added: Tuple[Tuple[str, str], ...] = None  # type: ignore[assignment]
        self._demoted: Tuple[Tuple[str, str], ...] = None  # type: ignore[assignment]

    def _compute_diffs(self) -> None:
        if self._added is None:
            structural = tree_edges(self.tree)
            original = {(u, v) for u, v in self.workflow.edges()}
            self._added = tuple(sorted(structural - original))
            self._demoted = tuple(sorted(original - structural))

    @property
    def added_edges(self) -> Tuple[Tuple[str, str], ...]:
        self._compute_diffs()
        return self._added

    @property
    def demoted_edges(self) -> Tuple[Tuple[str, str], ...]:
        self._compute_diffs()
        return self._demoted

    @property
    def exact(self) -> bool:
        return not self._reduced_any and not self.added_edges

    def materialize(self) -> Workflow:
        """Copy of the workflow with every dummy edge added explicitly.

        Quadratic in the width of synchronised levels — intended for tests
        and small graphs, not for the scheduling pipeline (which consumes
        the tree directly).
        """
        out = self.workflow.copy()
        for u, v in self.added_edges:
            out.add_control_edge(u, v)
        return out


def _levels(
    topo: Sequence[str], preds: Mapping[str, FrozenSet[str]], node_set: Set[str]
) -> Dict[str, int]:
    """Longest-path level of each node within the induced subgraph."""
    level: Dict[str, int] = {}
    for v in topo:
        lv = 0
        for u in preds[v]:
            if u in node_set:
                lv = max(lv, level[u] + 1)
        level[v] = lv
    return level


def _mspgify_rec(
    topo: List[str],
    succs: Mapping[str, FrozenSet[str]],
    preds: Mapping[str, FrozenSet[str]],
) -> MSPG:
    if len(topo) == 1:
        return TaskNode(topo[0])
    node_set = set(topo)
    # Pass the ordered topo list, not node_set: component discovery (and
    # hence parallel-children order) follows the iteration order given.
    comps = weakly_connected_components(topo, succs, preds)
    if len(comps) > 1:
        pos = {v: i for i, v in enumerate(topo)}
        return parallel(
            *(
                _mspgify_rec(sorted(c, key=pos.__getitem__), succs, preds)
                for c in comps
            )
        )
    candidates = serial_cut_candidates(topo, succs, preds, relaxed=True)
    exact = [cut for cut, cost in candidates if cost == 0]
    if exact:
        # Exact cuts are free: take the finest exact decomposition.
        boundaries = [0] + exact + [len(topo)]
        return series(
            *(
                _mspgify_rec(topo[lo:hi], succs, preds)
                for lo, hi in zip(boundaries, boundaries[1:])
            )
        )
    if candidates:
        # No free cut: *binary-split* on the single cheapest relaxed cut
        # (fewest dummy edges; ties towards the middle).  Using every
        # relaxed cut at once would synchronise whole levels and sever
        # 1-1 chains (e.g. LIGO's TmpltBank_i -> Inspiral_i); splitting
        # one boundary at a time lets the recursion rediscover the
        # parallel fork-join groups inside each half.
        n = len(topo)
        cut = min(candidates, key=lambda c: (c[1], abs(c[0] - n / 2)))[0]
        return series(
            _mspgify_rec(topo[:cut], succs, preds),
            _mspgify_rec(topo[cut:], succs, preds),
        )
    # Level-synchronisation fallback: slice by longest-path level.  Each
    # level is an antichain, hence a parallel group of atoms; consecutive
    # levels become fully synchronised when the tree is materialised.
    level = _levels(topo, preds, node_set)
    n_levels = max(level.values()) + 1
    groups: List[List[str]] = [[] for _ in range(n_levels)]
    for v in topo:
        groups[level[v]].append(v)
    return series(
        *(parallel(*(TaskNode(v) for v in group)) for group in groups)
    )


def mspgify(workflow: Workflow) -> MspgifyResult:
    """Transform any DAG workflow into an M-SPG (tree + augmented copy).

    See the module docstring for the algorithm.  For workflows that are
    already M-SPGs (after transitive reduction) this is the identity up to
    edge demotion: no dummy edges are added.
    """
    order = workflow.topological_order()
    if not order:
        return MspgifyResult(EMPTY, workflow, False)

    reduced_succs, removed = transitive_reduction(workflow)
    reduced_preds: Dict[str, Set[str]] = {v: set() for v in order}
    for u, vs in reduced_succs.items():
        for v in vs:
            reduced_preds[v].add(u)
    frozen_preds = {v: OrderedFrozenSet(ps) for v, ps in reduced_preds.items()}

    tree = _mspgify_rec(list(order), reduced_succs, frozen_preds)
    return MspgifyResult(tree, workflow, bool(removed))
