"""File-grained workflow DAG model.

A :class:`Workflow` is a DAG of sequential :class:`Task` objects exchanging
named files, mirroring the paper's model (§II-A): task ``T_i`` has weight
``w_i`` (failure-free seconds) and every dependency ``(T_i, T_j)`` is backed
by one or more files whose size determines the data-transfer cost ``c_ij``.

Design notes
------------
* **Files are first-class.**  The paper's checkpoint cost model needs
  per-file deduplication ("when a task generates the same file for two
  successors, a checkpoint will save the file only once", §VI-A), so edges
  are *derived* from file producer/consumer relations rather than being the
  primary representation.
* **Control edges.**  The ``mspgify`` transform (footnote 2) adds dummy
  dependencies that carry empty files; these are represented as explicit
  control edges with no data.
* **Workflow inputs/outputs.**  Files without a producer are workflow
  inputs (read from stable storage by their consumers).  Files without any
  consumer are workflow outputs (optionally saved by a final checkpoint,
  see :mod:`repro.checkpoint.segments`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import (
    CycleError,
    UnknownFileError,
    UnknownTaskError,
    WorkflowError,
)
from repro.util.rng import SeedLike
from repro.util.toposort import random_topological_order, topological_order

__all__ = ["Task", "Workflow"]


class OrderedFrozenSet(FrozenSet[str]):
    """A frozenset whose iteration order is sorted, hence deterministic.

    Plain ``frozenset`` iteration follows string hashes, which are
    randomised per process (``PYTHONHASHSEED``): any algorithm that
    iterates adjacency or file sets — linearisation tie-breaking, M-SPG
    construction, I/O-cost accumulation — would produce slightly
    different (schedule- and ULP-level) results on every run.  The graph
    accessors return this subclass so results are reproducible across
    processes while set semantics (membership, difference, …) are
    preserved.  Operator results (``a - b`` etc.) degrade to plain
    ``frozenset``; re-wrap before iterating if order matters there.
    """

    __slots__ = ()

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(super().__iter__()))


@dataclass(frozen=True)
class Task:
    """A sequential workflow task.

    Attributes
    ----------
    id:
        Unique task identifier within its workflow.
    weight:
        Failure-free execution time in seconds (``w_i`` in the paper).
    category:
        Free-form task type (e.g. ``"mProjectPP"`` for Montage); used by
        generators and reporting, ignored by the algorithms.
    """

    id: str
    weight: float
    category: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.id, str) or not self.id:
            raise WorkflowError(f"task id must be a non-empty string, got {self.id!r}")
        if not (self.weight >= 0) or self.weight != self.weight:
            raise WorkflowError(
                f"task {self.id!r}: weight must be a finite number >= 0, "
                f"got {self.weight!r}"
            )


class Workflow:
    """A DAG of tasks exchanging files.

    The canonical mutation API is :meth:`add_task`, :meth:`add_file` and
    :meth:`add_input` (plus :meth:`add_control_edge` for data-less
    dependencies).  Edges are derived: ``u -> v`` exists iff ``v`` consumes
    a file produced by ``u`` or ``(u, v)`` is an explicit control edge.
    """

    def __init__(self, name: str = "workflow") -> None:
        self.name = name
        self._tasks: Dict[str, Task] = {}
        self._file_sizes: Dict[str, float] = {}
        self._producer: Dict[str, Optional[str]] = {}
        self._consumers: Dict[str, Set[str]] = {}
        self._outputs: Dict[str, Set[str]] = {}
        self._inputs: Dict[str, Set[str]] = {}
        self._control_edges: Set[Tuple[str, str]] = set()
        self._adj_cache: Optional[
            Tuple[Dict[str, Set[str]], Dict[str, Set[str]]]
        ] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def add_task(self, task_id: str, weight: float, category: str = "") -> Task:
        """Register a new task; returns the created :class:`Task`."""
        if task_id in self._tasks:
            raise WorkflowError(f"duplicate task id {task_id!r}")
        task = Task(task_id, float(weight), category)
        self._tasks[task_id] = task
        self._outputs[task_id] = set()
        self._inputs[task_id] = set()
        self._invalidate()
        return task

    def add_file(
        self, name: str, size: float, producer: Optional[str] = None
    ) -> None:
        """Register a file of ``size`` bytes, optionally produced by a task.

        ``producer=None`` declares a workflow input, available on stable
        storage before the execution starts.
        """
        if name in self._file_sizes:
            raise WorkflowError(f"duplicate file name {name!r}")
        if not (size >= 0) or size != size:
            raise WorkflowError(
                f"file {name!r}: size must be a finite number >= 0, got {size!r}"
            )
        if producer is not None:
            self._require_task(producer)
        self._file_sizes[name] = float(size)
        self._producer[name] = producer
        self._consumers[name] = set()
        if producer is not None:
            self._outputs[producer].add(name)
        self._invalidate()

    def add_input(self, task_id: str, file_name: str) -> None:
        """Declare that ``task_id`` consumes ``file_name``."""
        self._require_task(task_id)
        self._require_file(file_name)
        if self._producer[file_name] == task_id:
            raise WorkflowError(
                f"task {task_id!r} cannot consume its own output {file_name!r}"
            )
        self._inputs[task_id].add(file_name)
        self._consumers[file_name].add(task_id)
        self._invalidate()

    def add_control_edge(self, src: str, dst: str) -> None:
        """Add a data-less dependency ``src -> dst`` (a dummy sync edge)."""
        self._require_task(src)
        self._require_task(dst)
        if src == dst:
            raise WorkflowError(f"self-loop control edge on {src!r}")
        self._control_edges.add((src, dst))
        self._invalidate()

    def _require_task(self, task_id: str) -> None:
        if task_id not in self._tasks:
            raise UnknownTaskError(f"unknown task {task_id!r}")

    def _require_file(self, name: str) -> None:
        if name not in self._file_sizes:
            raise UnknownFileError(f"unknown file {name!r}")

    def _invalidate(self) -> None:
        self._adj_cache = None

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def n_tasks(self) -> int:
        """Number of tasks."""
        return len(self._tasks)

    @property
    def task_ids(self) -> List[str]:
        """Task ids in insertion order."""
        return list(self._tasks)

    def task(self, task_id: str) -> Task:
        """The :class:`Task` with the given id."""
        self._require_task(task_id)
        return self._tasks[task_id]

    def tasks(self) -> Iterator[Task]:
        """Iterate over tasks in insertion order."""
        return iter(self._tasks.values())

    def weight(self, task_id: str) -> float:
        """Failure-free execution time of a task (seconds)."""
        return self.task(task_id).weight

    @property
    def total_weight(self) -> float:
        """Sum of all task weights (sequential compute time)."""
        return sum(t.weight for t in self._tasks.values())

    @property
    def mean_weight(self) -> float:
        """Average task weight ``w̄`` used to derive λ from pfail (§VI-A)."""
        if not self._tasks:
            raise WorkflowError("mean weight of an empty workflow is undefined")
        return self.total_weight / len(self._tasks)

    # -- files ---------------------------------------------------------- #

    @property
    def file_names(self) -> List[str]:
        """All registered file names, in insertion order."""
        return list(self._file_sizes)

    def file_size(self, name: str) -> float:
        """Size of a file in bytes."""
        self._require_file(name)
        return self._file_sizes[name]

    def producer(self, name: str) -> Optional[str]:
        """The task producing ``name`` (``None`` for workflow inputs)."""
        self._require_file(name)
        return self._producer[name]

    def consumers(self, name: str) -> FrozenSet[str]:
        """Tasks consuming ``name``."""
        self._require_file(name)
        return OrderedFrozenSet(self._consumers[name])

    def outputs(self, task_id: str) -> FrozenSet[str]:
        """Files produced by ``task_id``."""
        self._require_task(task_id)
        return OrderedFrozenSet(self._outputs[task_id])

    def inputs(self, task_id: str) -> FrozenSet[str]:
        """Files consumed by ``task_id``."""
        self._require_task(task_id)
        return OrderedFrozenSet(self._inputs[task_id])

    def workflow_inputs(self) -> List[str]:
        """Files with no producer (read from storage at the start)."""
        return [f for f, p in self._producer.items() if p is None]

    def workflow_outputs(self) -> List[str]:
        """Produced files with no consumer (final results)."""
        return [
            f
            for f, p in self._producer.items()
            if p is not None and not self._consumers[f]
        ]

    @property
    def total_file_bytes(self) -> float:
        """Total bytes over all distinct files (each counted once).

        This is the paper's "total file size" used in the CCR definition
        (input, output and intermediate files; §VI-A).
        """
        return sum(self._file_sizes.values())

    # -- edges ----------------------------------------------------------- #

    def _adjacency(self) -> Tuple[Dict[str, Set[str]], Dict[str, Set[str]]]:
        if self._adj_cache is None:
            succs: Dict[str, Set[str]] = {t: set() for t in self._tasks}
            preds: Dict[str, Set[str]] = {t: set() for t in self._tasks}
            for fname, producer in self._producer.items():
                if producer is None:
                    continue
                for consumer in self._consumers[fname]:
                    succs[producer].add(consumer)
                    preds[consumer].add(producer)
            for u, v in self._control_edges:
                succs[u].add(v)
                preds[v].add(u)
            self._adj_cache = (succs, preds)
        return self._adj_cache

    def succs(self, task_id: str) -> FrozenSet[str]:
        """Immediate successors of a task (data or control)."""
        self._require_task(task_id)
        return OrderedFrozenSet(self._adjacency()[0][task_id])

    def preds(self, task_id: str) -> FrozenSet[str]:
        """Immediate predecessors of a task (data or control)."""
        self._require_task(task_id)
        return OrderedFrozenSet(self._adjacency()[1][task_id])

    def successor_map(self) -> Dict[str, FrozenSet[str]]:
        """Full successor adjacency as an immutable-valued dict."""
        succs, _ = self._adjacency()
        return {u: OrderedFrozenSet(vs) for u, vs in succs.items()}

    def predecessor_map(self) -> Dict[str, FrozenSet[str]]:
        """Full predecessor adjacency as an immutable-valued dict."""
        _, preds = self._adjacency()
        return {u: OrderedFrozenSet(vs) for u, vs in preds.items()}

    def edges(self) -> List[Tuple[str, str]]:
        """All edges ``(u, v)`` in a deterministic order."""
        succs, _ = self._adjacency()
        return [(u, v) for u in self._tasks for v in sorted(succs[u])]

    @property
    def n_edges(self) -> int:
        """Number of distinct edges."""
        succs, _ = self._adjacency()
        return sum(len(vs) for vs in succs.values())

    def edge_files(self, src: str, dst: str) -> FrozenSet[str]:
        """Files flowing along edge ``src -> dst`` (empty for control edges)."""
        self._require_task(src)
        self._require_task(dst)
        return OrderedFrozenSet(
            f for f in self._outputs[src] if dst in self._consumers[f]
        )

    def has_edge(self, src: str, dst: str) -> bool:
        """Whether ``src -> dst`` exists (data or control)."""
        self._require_task(src)
        self._require_task(dst)
        return dst in self._adjacency()[0][src]

    def is_control_edge(self, src: str, dst: str) -> bool:
        """Whether ``src -> dst`` is a pure control edge with no data."""
        return (src, dst) in self._control_edges and not self.edge_files(src, dst)

    def control_edges(self) -> List[Tuple[str, str]]:
        """All explicit control edges in a deterministic order."""
        return sorted(self._control_edges)

    def sources(self) -> List[str]:
        """Tasks with no predecessor, in insertion order."""
        _, preds = self._adjacency()
        return [t for t in self._tasks if not preds[t]]

    def sinks(self) -> List[str]:
        """Tasks with no successor, in insertion order."""
        succs, _ = self._adjacency()
        return [t for t in self._tasks if not succs[t]]

    # ------------------------------------------------------------------ #
    # orders / validation
    # ------------------------------------------------------------------ #

    def _sorted_adjacency(self) -> Dict[str, List[str]]:
        """Successor lists in sorted order, for order-sensitive consumers.

        The raw adjacency stores plain sets whose iteration follows the
        per-process string-hash seed; anything whose *result* depends on
        visit order (Kahn tie-breaking, rng-stream mapping) must consume
        this view to stay reproducible across processes.
        """
        succs, _ = self._adjacency()
        return {u: sorted(vs) for u, vs in succs.items()}

    def topological_order(self) -> List[str]:
        """Deterministic topological order of all tasks."""
        return topological_order(self.task_ids, self._sorted_adjacency())

    def random_topological_order(self, seed: SeedLike = None) -> List[str]:
        """Random topological order (uniform ready-task tie-breaking)."""
        return random_topological_order(
            self.task_ids, self._sorted_adjacency(), seed
        )

    def validate(self) -> None:
        """Raise :class:`~repro.errors.WorkflowError` on inconsistencies.

        Checks acyclicity and that every consumed file either has a
        producer or is a declared workflow input (always true by
        construction, but cheap to re-assert for deserialised workflows).
        """
        self.topological_order()  # raises CycleError on cycles
        for fname, consumers in self._consumers.items():
            producer = self._producer[fname]
            if producer is not None and producer in consumers:
                raise WorkflowError(
                    f"file {fname!r} is consumed by its producer {producer!r}"
                )

    # ------------------------------------------------------------------ #
    # transforms
    # ------------------------------------------------------------------ #

    def copy(self, name: Optional[str] = None) -> "Workflow":
        """Deep copy (task/file registries are copied, not shared)."""
        wf = Workflow(name or self.name)
        wf._tasks = dict(self._tasks)
        wf._file_sizes = dict(self._file_sizes)
        wf._producer = dict(self._producer)
        wf._consumers = {f: set(c) for f, c in self._consumers.items()}
        wf._outputs = {t: set(o) for t, o in self._outputs.items()}
        wf._inputs = {t: set(i) for t, i in self._inputs.items()}
        wf._control_edges = set(self._control_edges)
        return wf

    def scale_file_sizes(self, factor: float) -> "Workflow":
        """A copy with every file size multiplied by ``factor``.

        This is the paper's CCR-control mechanism (§VI-A): rather than
        varying the storage bandwidth, file sizes are scaled by a common
        factor, which changes checkpoint/recovery costs coherently across
        workflow classes.
        """
        if not (factor >= 0) or factor != factor:
            raise WorkflowError(f"scale factor must be >= 0, got {factor!r}")
        wf = self.copy()
        wf._file_sizes = {f: s * factor for f, s in self._file_sizes.items()}
        return wf

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #

    def __contains__(self, task_id: object) -> bool:
        return task_id in self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    def __repr__(self) -> str:
        return (
            f"Workflow({self.name!r}, tasks={self.n_tasks}, "
            f"edges={self.n_edges}, files={len(self._file_sizes)})"
        )
