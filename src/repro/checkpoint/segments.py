"""Segment cost model: ``R_i^j``, ``W_i^j``, ``C_i^j`` (§IV-B).

For a contiguous slice ``[i..j]`` of a superchain:

* ``R_i^j`` — seconds to read from stable storage every *distinct* file
  consumed by a task of the slice but produced outside it (by an earlier
  segment, another superchain — always already checkpointed, see §IV-A —
  or a workflow input);
* ``W_i^j`` — the slice's total task weight;
* ``C_i^j`` — seconds to checkpoint every *distinct* file produced inside
  the slice and still needed by a task outside it (later in this
  superchain or anywhere else).  With ``save_final_outputs`` (default, the
  production-WMS semantics), workflow output files count as needed.

Deduplication follows the paper (§VI-A): "a task may generate the same
file for two successors — a checkpoint will save the file only once"; we
apply the same rule to reads within one segment.

The model exposes an ``O(n²)`` table of the first-order expected times
``T(i, j)`` of Equation (2), built with two incremental sweeps per start
index (reads only ever grow with ``j``; checkpoint contents are maintained
with per-file outside-consumer counters), so the whole table costs
``O(n·F)`` set operations where ``F`` is the file-degree of the chain.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CheckpointError
from repro.makespan.two_state import first_order_expected_time
from repro.mspg.graph import Workflow
from repro.platform import Platform
from repro.scheduling.schedule import Superchain

__all__ = ["SuperchainCostModel"]


class SuperchainCostModel:
    """Costs of contiguous segments ``[i..j]`` of one superchain.

    Indices are positions within ``superchain.tasks`` (0-based, inclusive).
    """

    def __init__(
        self,
        workflow: Workflow,
        superchain: Superchain,
        platform: Platform,
        save_final_outputs: bool = True,
    ) -> None:
        self.workflow = workflow
        self.superchain = superchain
        self.platform = platform
        self.save_final_outputs = save_final_outputs

        self.tasks: Tuple[str, ...] = superchain.tasks
        self.n = len(self.tasks)
        self._pos = {t: k for k, t in enumerate(self.tasks)}

        self._weights = np.array(
            [workflow.weight(t) for t in self.tasks], dtype=float
        )
        self._wprefix = np.concatenate(([0.0], np.cumsum(self._weights)))

        # Per-task input/output file lists, resolved once.
        self._inputs: List[List[str]] = [
            sorted(workflow.inputs(t)) for t in self.tasks
        ]
        self._outputs: List[List[str]] = [
            sorted(workflow.outputs(t)) for t in self.tasks
        ]

    # ------------------------------------------------------------------ #
    # elementary costs
    # ------------------------------------------------------------------ #

    def compute(self, i: int, j: int) -> float:
        """``W_i^j``: failure-free compute seconds of slice ``[i..j]``."""
        self._check(i, j)
        return float(self._wprefix[j + 1] - self._wprefix[i])

    def read_cost(self, i: int, j: int) -> float:
        """``R_i^j``: seconds reading the slice's external inputs."""
        self._check(i, j)
        return self._read_bytes(i, j) / self.platform.bandwidth

    def ckpt_cost(self, i: int, j: int) -> float:
        """``C_i^j``: seconds checkpointing the slice's live outputs."""
        self._check(i, j)
        return self._ckpt_bytes(i, j) / self.platform.bandwidth

    def span(self, i: int, j: int) -> float:
        """``X = R + W + C`` of slice ``[i..j]`` (seconds)."""
        return self.read_cost(i, j) + self.compute(i, j) + self.ckpt_cost(i, j)

    def expected_time(self, i: int, j: int) -> float:
        """``T(i, j)`` of Equation (2): first-order expected slice time."""
        return first_order_expected_time(
            self.span(i, j), self.platform.failure_rate
        )

    def _check(self, i: int, j: int) -> None:
        if not (0 <= i <= j < self.n):
            raise CheckpointError(
                f"invalid slice [{i}..{j}] of superchain with {self.n} tasks"
            )

    def _read_bytes(self, i: int, j: int) -> float:
        inside = set(self.tasks[i : j + 1])
        seen: set = set()
        total = 0.0
        wf = self.workflow
        for k in range(i, j + 1):
            for f in self._inputs[k]:
                if f in seen:
                    continue
                producer = wf.producer(f)
                if producer is None or producer not in inside:
                    seen.add(f)
                    total += wf.file_size(f)
        return total

    def _ckpt_bytes(self, i: int, j: int) -> float:
        inside = set(self.tasks[i : j + 1])
        total = 0.0
        wf = self.workflow
        for k in range(i, j + 1):
            for f in self._outputs[k]:
                consumers = wf.consumers(f)
                if consumers - inside:
                    total += wf.file_size(f)
                elif not consumers and self.save_final_outputs:
                    total += wf.file_size(f)
        return total

    # ------------------------------------------------------------------ #
    # table construction (incremental sweeps)
    # ------------------------------------------------------------------ #

    def span_table(self) -> np.ndarray:
        """``X(i, j)`` for all ``i <= j`` (upper-triangular, else NaN)."""
        n = self.n
        wf = self.workflow
        sizes = {f: wf.file_size(f) for f in wf.file_names}
        spans = np.full((n, n), np.nan)
        for i in range(n):
            read_b = 0.0
            ckpt_b = 0.0
            read_seen: set = set()
            # live[f] = remaining consumers of f outside the current slice
            # (a virtual consumer stands in for workflow outputs).
            live: Dict[str, int] = {}
            produced_at: Dict[str, int] = {}
            for j in range(i, n):
                t = self.tasks[j]
                # Inputs: count files produced outside [i..j].  A file
                # produced inside would have producer position in [i..j-1]
                # (producers precede consumers in the chain).
                for f in self._inputs[j]:
                    if f in produced_at:
                        # produced inside this slice: consumed from memory,
                        # and one fewer outside consumer to checkpoint for.
                        live[f] -= 1
                        if live[f] == 0:
                            ckpt_b -= sizes[f]
                        continue
                    if f not in read_seen:
                        read_seen.add(f)
                        read_b += sizes[f]
                # Outputs: enter the checkpoint set if anyone outside
                # still needs them.
                for f in self._outputs[j]:
                    produced_at[f] = j
                    consumers = wf.consumers(f)
                    count = len(consumers)
                    if count == 0:
                        count = 1 if self.save_final_outputs else 0
                    live[f] = count
                    if count > 0:
                        ckpt_b += sizes[f]
                spans[i, j] = (
                    (read_b + ckpt_b) / self.platform.bandwidth
                    + self._wprefix[j + 1]
                    - self._wprefix[i]
                )
        return spans

    def expected_time_table(self) -> np.ndarray:
        """``T(i, j)`` of Equation (2) for all ``i <= j``."""
        spans = self.span_table()
        lam = self.platform.failure_rate
        with np.errstate(invalid="ignore"):
            p = np.clip(lam * spans, 0.0, 1.0 - 1e-12)
            return spans * (1.0 + 0.5 * p)
