"""Checkpoint placement in superchains (§IV of the paper).

* :mod:`repro.checkpoint.segments` — the ``R_i^j`` / ``W_i^j`` / ``C_i^j``
  cost model with per-file deduplication (§IV-B, Equation (2));
* :mod:`repro.checkpoint.dp` — Algorithm 2, the ``O(n²)`` dynamic program
  choosing the optimal checkpoint positions of one superchain;
* :mod:`repro.checkpoint.toueg_babaoglu` — the classic chain algorithm the
  paper extends (Toueg & Babaoğlu 1984), used as a differential oracle;
* :mod:`repro.checkpoint.plan` — :class:`Segment` / :class:`CheckpointPlan`
  datatypes;
* :mod:`repro.checkpoint.strategies` — the CKPTALL / CKPTSOME strategies
  producing plans (CKPTNONE has no plan: see
  :mod:`repro.makespan.ckptnone` and the simulator's restart model).
"""

from repro.checkpoint.plan import CheckpointPlan, Segment
from repro.checkpoint.segments import SuperchainCostModel
from repro.checkpoint.dp import optimal_checkpoint_positions
from repro.checkpoint.toueg_babaoglu import toueg_babaoglu_chain
from repro.checkpoint.strategies import (
    STRATEGIES,
    ckpt_all_plan,
    ckpt_some_plan,
    plan_for_strategy,
)

__all__ = [
    "CheckpointPlan",
    "Segment",
    "SuperchainCostModel",
    "optimal_checkpoint_positions",
    "toueg_babaoglu_chain",
    "ckpt_all_plan",
    "ckpt_some_plan",
    "plan_for_strategy",
    "STRATEGIES",
]
