"""Checkpoint strategies: CKPTALL and CKPTSOME (§I, §II-C).

* **CKPTALL** — the production default: every task's output is saved, every
  input read from stable storage; each task is its own segment.
* **CKPTSOME** — the paper's contribution: Algorithm 2 picks the optimal
  checkpoint positions inside every superchain (the superchain's last task
  is always checkpointed, which removes crossover dependencies).
* **CKPTNONE** — no plan exists by design: nothing is checkpointed and the
  expected makespan is estimated with Theorem 1
  (:mod:`repro.makespan.ckptnone`) or simulated with the restart model
  (:mod:`repro.simulation`).

Both plan builders share the segment cost model, so CKPTALL is exactly the
"all segments are singletons" point of CKPTSOME's search space; Algorithm 2
can therefore never produce a superchain whose expected time exceeds
CKPTALL's (tested property).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.checkpoint.dp import optimal_checkpoint_positions
from repro.checkpoint.plan import CheckpointPlan
from repro.checkpoint.segments import SuperchainCostModel
from repro.errors import CheckpointError
from repro.mspg.graph import Workflow
from repro.platform import Platform
from repro.scheduling.schedule import Schedule

__all__ = [
    "ckpt_all_plan",
    "ckpt_some_plan",
    "plan_for_strategy",
    "STRATEGIES",
]


def _emit_segments(
    plan: CheckpointPlan,
    cost: SuperchainCostModel,
    positions: List[int],
) -> None:
    start = 0
    sc = cost.superchain
    for end in positions:
        plan.add_segment(
            superchain_index=sc.index,
            processor=sc.processor,
            tasks=sc.tasks[start : end + 1],
            read_cost=cost.read_cost(start, end),
            compute=cost.compute(start, end),
            ckpt_cost=cost.ckpt_cost(start, end),
        )
        start = end + 1
    if start != len(sc.tasks):
        raise CheckpointError(
            f"checkpoint positions {positions} do not cover superchain "
            f"{sc.index} of length {len(sc.tasks)}"
        )


def ckpt_all_plan(
    workflow: Workflow,
    schedule: Schedule,
    platform: Platform,
    save_final_outputs: bool = True,
) -> CheckpointPlan:
    """CKPTALL: one segment (and one checkpoint) per task."""
    plan = CheckpointPlan("ckpt_all")
    for sc in schedule.superchains:
        cost = SuperchainCostModel(
            workflow, sc, platform, save_final_outputs=save_final_outputs
        )
        _emit_segments(plan, cost, list(range(len(sc.tasks))))
    return plan


def ckpt_some_plan(
    workflow: Workflow,
    schedule: Schedule,
    platform: Platform,
    save_final_outputs: bool = True,
) -> CheckpointPlan:
    """CKPTSOME: Algorithm 2 per superchain."""
    plan = CheckpointPlan("ckpt_some")
    for sc in schedule.superchains:
        cost = SuperchainCostModel(
            workflow, sc, platform, save_final_outputs=save_final_outputs
        )
        positions, _ = optimal_checkpoint_positions(cost)
        _emit_segments(plan, cost, positions)
    return plan


STRATEGIES: Dict[str, Callable[..., CheckpointPlan]] = {
    "ckpt_all": ckpt_all_plan,
    "ckpt_some": ckpt_some_plan,
}


def plan_for_strategy(
    strategy: str,
    workflow: Workflow,
    schedule: Schedule,
    platform: Platform,
    save_final_outputs: bool = True,
) -> CheckpointPlan:
    """Build the plan of the named strategy (``ckpt_all`` or ``ckpt_some``)."""
    try:
        builder = STRATEGIES[strategy]
    except KeyError:
        raise CheckpointError(
            f"unknown strategy {strategy!r}; choose from {sorted(STRATEGIES)} "
            f"(ckpt_none has no checkpoint plan)"
        ) from None
    return builder(
        workflow, schedule, platform, save_final_outputs=save_final_outputs
    )
