"""Algorithm 2: optimal checkpoint positions in a superchain.

The dynamic program minimises the expected time to execute tasks
``T_a..T_b`` with a mandatory checkpoint after ``T_b`` (which removes
crossover dependencies, §IV-A):

.. math::

   ETime(j) = \\min\\Big(T(a, j),\\; \\min_{a \\le i < j}
   \\{ETime(i) + T(i{+}1, j)\\}\\Big)

where ``T(i, j)`` is the first-order expected time of segment ``[i..j]``
(Equation (2), provided by
:class:`repro.checkpoint.segments.SuperchainCostModel`).  Since each entry
scans ``O(n)`` predecessors over an ``O(n²)`` precomputed cost table, the
total cost is ``O(n²)``, matching the paper's bound.

The paper's pseudo-code backtracks with a sentinel ``last_ckpt = 0``; we
use ``-1`` ("no earlier checkpoint") to keep 0 a valid position.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.checkpoint.segments import SuperchainCostModel
from repro.errors import CheckpointError

__all__ = ["optimal_checkpoint_positions", "dp_from_table"]


def dp_from_table(table: np.ndarray) -> Tuple[List[int], float]:
    """Run the DP on a precomputed ``T(i, j)`` table.

    Returns ``(positions, expected_time)`` where ``positions`` are the
    0-based indices *after which* a checkpoint is taken, in increasing
    order; the last index ``n-1`` is always included.
    """
    n = table.shape[0]
    if n == 0:
        return [], 0.0
    if table.shape != (n, n):
        raise CheckpointError(f"cost table must be square, got {table.shape}")

    etime = np.empty(n)
    last = np.empty(n, dtype=int)
    for j in range(n):
        best = float(table[0, j])
        arg = -1
        for i in range(j):
            cand = etime[i] + float(table[i + 1, j])
            if cand < best:
                best = cand
                arg = i
        etime[j] = best
        last[j] = arg

    positions: List[int] = []
    j = n - 1
    while j >= 0:
        positions.append(j)
        j = int(last[j])
    positions.reverse()
    return positions, float(etime[n - 1])


def optimal_checkpoint_positions(
    cost: SuperchainCostModel,
) -> Tuple[List[int], float]:
    """Optimal checkpoint positions for one superchain (Algorithm 2).

    Returns the 0-based positions after which to checkpoint (always
    including the final task) and the superchain's optimal expected time
    ``ETime(b)``.
    """
    table = cost.expected_time_table()
    return dp_from_table(table)
