"""The classic Toueg–Babaoğlu chain checkpointing DP (1984).

The paper's Algorithm 2 extends Toueg & Babaoğlu's optimal checkpoint
selection for *linear chains* to superchains (linearised sub-M-SPGs whose
recovery may have to follow several reverse paths).  We keep the original
chain algorithm as an independent implementation: on a workflow that
really is a chain — each task feeding only its immediate successor — the
general cost model collapses to the chain model and both algorithms must
agree exactly (a differential test in ``tests/checkpoint``).

Chain model: task ``k`` has weight ``w_k``; ``in_cost[k]`` is the time to
load task ``k``'s input from stable storage (recovery source) and
``out_cost[k]`` the time to checkpoint its output.  A segment ``[i..j]``
costs ``X = in_cost[i] + Σ w + out_cost[j]`` and its first-order expected
time is Equation (2)'s ``X·(1 + λX/2)``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.checkpoint.dp import dp_from_table
from repro.errors import CheckpointError
from repro.makespan.two_state import first_order_expected_time

__all__ = ["toueg_babaoglu_chain"]


def toueg_babaoglu_chain(
    weights: Sequence[float],
    in_costs: Sequence[float],
    out_costs: Sequence[float],
    failure_rate: float,
) -> Tuple[List[int], float]:
    """Optimal checkpoints for a linear chain of tasks.

    Returns ``(positions, expected_time)`` with the same conventions as
    :func:`repro.checkpoint.dp.dp_from_table`.
    """
    n = len(weights)
    if not (len(in_costs) == len(out_costs) == n):
        raise CheckpointError(
            "weights, in_costs and out_costs must have equal lengths"
        )
    if n == 0:
        return [], 0.0

    w = np.asarray(weights, dtype=float)
    wprefix = np.concatenate(([0.0], np.cumsum(w)))
    table = np.full((n, n), np.nan)
    for i in range(n):
        for j in range(i, n):
            span = (
                float(in_costs[i])
                + float(wprefix[j + 1] - wprefix[i])
                + float(out_costs[j])
            )
            table[i, j] = first_order_expected_time(span, failure_rate)
    return dp_from_table(table)
