"""Publication-aware refinement of CKPTSOME plans (library extension).

Algorithm 2 is optimal *per superchain*: it minimises the expected time to
execute one superchain in isolation. It is blind to one global effect —
a coalesced segment only publishes its outputs when its final checkpoint
completes, so merging a task whose data other processors are waiting for
behind a long computation can delay the whole schedule even though it
saves local I/O. (We observed exactly this while reproducing Figure 7:
at ``p = 3`` the DP can merge LIGO coincidence joins behind a 460-second
Inspiral, costing ~11% of global expected makespan; see EXPERIMENTS.md.)

:func:`refine_plan` is a greedy global repair pass on top of the DP:

1. rank segments by *blocking potential* — a segment is suspect when a
   non-final task has consumers outside the segment (its publication is
   delayed by the tasks that follow it in the segment);
2. for each suspect segment, try splitting it after each delayed
   publisher; keep a split iff it lowers the global expected makespan
   (estimated with PathApprox on the rebuilt segment DAG);
3. iterate until no single split helps (or ``max_rounds`` is hit).

Splitting only ever *adds* checkpoints, so the refined plan keeps every
crossover-freedom property of the original (§IV-A). The refinement is an
extension beyond the paper — benchmark
``benchmarks/bench_ablation_refine.py`` quantifies when it matters.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.checkpoint.plan import CheckpointPlan
from repro.checkpoint.segments import SuperchainCostModel
from repro.errors import CheckpointError
from repro.makespan.pathapprox import pathapprox
from repro.makespan.segment_dag import build_segment_dag
from repro.mspg.graph import Workflow
from repro.platform import Platform
from repro.scheduling.schedule import Schedule

__all__ = ["refine_plan", "delayed_publishers"]


def delayed_publishers(plan: CheckpointPlan, workflow: Workflow) -> List[Tuple[int, int]]:
    """``(segment index, position)`` pairs whose publication is delayed.

    A pair ``(s, i)`` means: task ``i`` of segment ``s`` (not the last
    task) produces data consumed outside the segment, so its consumers
    wait for the whole segment instead of just the prefix up to ``i``.
    """
    out: List[Tuple[int, int]] = []
    for seg in plan.segments:
        if len(seg.tasks) < 2:
            continue
        inside = set(seg.tasks)
        for pos, task in enumerate(seg.tasks[:-1]):
            if workflow.succs(task) - inside:
                out.append((seg.index, pos))
    return out


def _rebuild_with_split(
    plan: CheckpointPlan,
    split: Optional[Tuple[int, int]],
    workflow: Workflow,
    schedule: Schedule,
    platform: Platform,
    save_final_outputs: bool,
) -> CheckpointPlan:
    """Copy ``plan``, optionally splitting one segment after a position."""
    models = {}
    out = CheckpointPlan(plan.strategy)
    for seg in plan.segments:
        sc = schedule.superchains[seg.superchain_index]
        pieces: List[Tuple[int, int]]
        # positions of this segment within its superchain
        start = sc.tasks.index(seg.tasks[0])
        end = start + len(seg.tasks) - 1
        if split is not None and split[0] == seg.index:
            cut = start + split[1]
            pieces = [(start, cut), (cut + 1, end)]
        else:
            pieces = [(start, end)]
        if sc.index not in models:
            models[sc.index] = SuperchainCostModel(
                workflow, sc, platform, save_final_outputs=save_final_outputs
            )
        model = models[sc.index]
        for lo, hi in pieces:
            out.add_segment(
                superchain_index=sc.index,
                processor=sc.processor,
                tasks=sc.tasks[lo : hi + 1],
                read_cost=model.read_cost(lo, hi),
                compute=model.compute(lo, hi),
                ckpt_cost=model.ckpt_cost(lo, hi),
            )
    return out


def refine_plan(
    plan: CheckpointPlan,
    workflow: Workflow,
    schedule: Schedule,
    platform: Platform,
    save_final_outputs: bool = True,
    max_rounds: int = 8,
    rtol: float = 1e-6,
) -> Tuple[CheckpointPlan, float, int]:
    """Greedy publication-aware split refinement of a checkpoint plan.

    Returns ``(refined plan, its PathApprox expected makespan, number of
    splits applied)``.  The input plan is not modified.
    """
    if plan.n_tasks != workflow.n_tasks:
        raise CheckpointError(
            f"plan covers {plan.n_tasks} of {workflow.n_tasks} tasks"
        )
    current = plan
    best_em = pathapprox(
        build_segment_dag(workflow, schedule, current, platform)
    )
    applied = 0
    for _ in range(max_rounds):
        candidates = delayed_publishers(current, workflow)
        if not candidates:
            break
        best_split = None
        best_split_em = best_em
        for split in candidates:
            trial = _rebuild_with_split(
                current, split, workflow, schedule, platform, save_final_outputs
            )
            em = pathapprox(build_segment_dag(workflow, schedule, trial, platform))
            if em < best_split_em * (1.0 - rtol):
                best_split = split
                best_split_em = em
        if best_split is None:
            break
        current = _rebuild_with_split(
            current, best_split, workflow, schedule, platform, save_final_outputs
        )
        best_em = best_split_em
        applied += 1
    return current, best_em, applied
