"""Checkpoint plan datatypes.

A :class:`CheckpointPlan` cuts every superchain of a schedule into
contiguous **segments**, each ended by a checkpoint.  A segment's cost
decomposes into the paper's ``R`` (read recovered inputs from stable
storage), ``W`` (compute) and ``C`` (write the checkpoint); the segment is
the atomic re-execution unit — a failure inside it restarts it from its
first task (§IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from repro.errors import CheckpointError

__all__ = ["Segment", "CheckpointPlan"]


@dataclass(frozen=True)
class Segment:
    """A contiguous checkpointed slice of one superchain.

    Attributes
    ----------
    index:
        Global segment index (creation order; per-processor execution
        order is increasing in it).
    superchain_index / processor:
        Where the segment lives.
    tasks:
        The slice's tasks, in execution order.
    read_cost / compute / ckpt_cost:
        ``R`` / ``W`` / ``C`` of Equation (2), seconds.
    """

    index: int
    superchain_index: int
    processor: int
    tasks: Tuple[str, ...]
    read_cost: float
    compute: float
    ckpt_cost: float

    def __post_init__(self) -> None:
        if not self.tasks:
            raise CheckpointError("segment must contain at least one task")
        for name, v in (
            ("read_cost", self.read_cost),
            ("compute", self.compute),
            ("ckpt_cost", self.ckpt_cost),
        ):
            if not (v >= 0) or v != v:
                raise CheckpointError(f"segment {name} must be >= 0, got {v!r}")

    @property
    def span(self) -> float:
        """Total failure-free cost ``X = R + W + C`` (seconds)."""
        return self.read_cost + self.compute + self.ckpt_cost

    def __len__(self) -> int:
        return len(self.tasks)


class CheckpointPlan:
    """Segments for every superchain of a schedule."""

    def __init__(self, strategy: str) -> None:
        self.strategy = strategy
        self.segments: List[Segment] = []
        self._by_superchain: Dict[int, List[Segment]] = {}
        self._segment_of_task: Dict[str, int] = {}

    def add_segment(
        self,
        superchain_index: int,
        processor: int,
        tasks: Sequence[str],
        read_cost: float,
        compute: float,
        ckpt_cost: float,
    ) -> Segment:
        """Append a segment (must follow its superchain's task order)."""
        seg = Segment(
            index=len(self.segments),
            superchain_index=superchain_index,
            processor=processor,
            tasks=tuple(tasks),
            read_cost=read_cost,
            compute=compute,
            ckpt_cost=ckpt_cost,
        )
        for t in seg.tasks:
            if t in self._segment_of_task:
                raise CheckpointError(f"task {t!r} appears in two segments")
            self._segment_of_task[t] = seg.index
        self.segments.append(seg)
        self._by_superchain.setdefault(superchain_index, []).append(seg)
        return seg

    @property
    def n_segments(self) -> int:
        """Number of segments (== number of checkpoints taken)."""
        return len(self.segments)

    @property
    def n_tasks(self) -> int:
        """Number of tasks covered by the plan."""
        return len(self._segment_of_task)

    def segments_of_superchain(self, superchain_index: int) -> List[Segment]:
        """Segments of one superchain in execution order."""
        return list(self._by_superchain.get(superchain_index, []))

    def segment_of(self, task_id: str) -> Segment:
        """The segment containing ``task_id``."""
        try:
            return self.segments[self._segment_of_task[task_id]]
        except KeyError:
            raise CheckpointError(f"task {task_id!r} is not in the plan") from None

    def checkpointed_tasks(self) -> List[str]:
        """Tasks immediately followed by a checkpoint (segment tails)."""
        return [seg.tasks[-1] for seg in self.segments]

    @property
    def total_io_seconds(self) -> float:
        """Total read + checkpoint seconds over all segments."""
        return sum(s.read_cost + s.ckpt_cost for s in self.segments)

    @property
    def total_compute_seconds(self) -> float:
        """Total compute seconds over all segments."""
        return sum(s.compute for s in self.segments)

    def __iter__(self) -> Iterator[Segment]:
        return iter(self.segments)

    def __repr__(self) -> str:
        return (
            f"CheckpointPlan({self.strategy!r}, segments={self.n_segments}, "
            f"tasks={self.n_tasks})"
        )
