"""Automated verification of the paper's qualitative claims (§VI-C).

Given the cells of a figure grid, each checker returns a
:class:`ClaimResult` stating whether the measured data supports one of
the paper's observations.  The benchmark harness and EXPERIMENTS.md are
generated from these, so "the shape holds" is a computed statement, not
an eyeballed one.

Claims covered:

* C1 — "CKPTSOME always outperforms CKPTALL" (ratio ≥ 1 up to tolerance);
* C2 — "as the CCR decreases, the relative expected makespan of CKPTALL
  decreases and converges to 1";
* C3 — "the relative expected makespan of CKPTNONE increases as the CCR
  decreases";
* C4 — "CKPTNONE becomes worse when the failure rate increases";
* C5 — "CKPTNONE becomes worse when the number of tasks increases";
* C6 — "CKPTSOME is only outperformed by CKPTNONE when checkpoints are
  expensive and/or failures are rare" (crossovers only at the high-CCR /
  low-pfail corner).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.engine.records import CellResult
from repro.engine.sweep import SweepSpec, run_sweep

__all__ = [
    "ClaimResult",
    "check_all_claims",
    "sweep_and_check",
    "CLAIM_CHECKERS",
]

#: Relative tolerance on ratio comparisons (first-order model noise).
TOL = 0.02


@dataclass(frozen=True)
class ClaimResult:
    """Outcome of checking one paper claim against measured cells."""

    claim: str
    description: str
    holds: bool
    detail: str


def _configs(cells: Sequence[CellResult]) -> Dict[Tuple, List[CellResult]]:
    by_config: Dict[Tuple, List[CellResult]] = {}
    for c in cells:
        key = (c.family, c.ntasks_requested, c.processors, c.pfail)
        by_config.setdefault(key, []).append(c)
    return {
        k: sorted(v, key=lambda c: c.ccr) for k, v in by_config.items()
    }


def check_c1_some_beats_all(cells: Sequence[CellResult]) -> ClaimResult:
    """C1: CKPTSOME never loses to CKPTALL (within tolerance)."""
    worst = min(cells, key=lambda c: c.ratio_all)
    holds = worst.ratio_all >= 1.0 - TOL
    return ClaimResult(
        "C1",
        "CKPTSOME always outperforms CKPTALL",
        holds,
        f"min ratio_all = {worst.ratio_all:.4f} at "
        f"(n={worst.ntasks}, p={worst.processors}, pfail={worst.pfail}, "
        f"ccr={worst.ccr:.3g})",
    )


def check_c2_ratio_all_converges(cells: Sequence[CellResult]) -> ClaimResult:
    """C2: ratio_all decreases towards 1 as CCR decreases."""
    failures = []
    for key, sub in _configs(cells).items():
        lo, hi = sub[0], sub[-1]
        if abs(lo.ratio_all - 1.0) > abs(hi.ratio_all - 1.0) + TOL:
            failures.append(key)
        if lo.ratio_all > 1.0 + 2 * TOL:
            failures.append(key)
    return ClaimResult(
        "C2",
        "ratio CKPTALL/CKPTSOME converges to 1 as CCR -> 0",
        not failures,
        f"{len(failures)} of {len(_configs(cells))} configurations violate"
        if failures
        else "all configurations converge",
    )


def check_c3_none_grows_as_ccr_drops(cells: Sequence[CellResult]) -> ClaimResult:
    """C3: ratio_none increases as CCR decreases."""
    failures = [
        key
        for key, sub in _configs(cells).items()
        if sub[0].ratio_none < sub[-1].ratio_none - TOL
    ]
    return ClaimResult(
        "C3",
        "ratio CKPTNONE/CKPTSOME increases as CCR decreases",
        not failures,
        f"{len(failures)} of {len(_configs(cells))} configurations violate"
        if failures
        else "monotone in every configuration",
    )


def check_c4_none_worse_at_high_pfail(cells: Sequence[CellResult]) -> ClaimResult:
    """C4: at fixed (family, n, p, CCR), higher pfail hurts CKPTNONE more."""
    groups: Dict[Tuple, List[CellResult]] = {}
    for c in cells:
        groups.setdefault(
            (c.family, c.ntasks_requested, c.processors, c.ccr), []
        ).append(c)
    checked = violated = 0
    for sub in groups.values():
        sub = sorted(sub, key=lambda c: c.pfail)
        if len(sub) < 2:
            continue
        checked += 1
        if sub[-1].ratio_none < sub[0].ratio_none - TOL:
            violated += 1
    return ClaimResult(
        "C4",
        "CKPTNONE degrades as the failure probability increases",
        violated == 0 and checked > 0,
        f"{violated} of {checked} (family,n,p,CCR) groups violate",
    )


def check_c5_none_worse_for_larger_n(cells: Sequence[CellResult]) -> ClaimResult:
    """C5: larger workflows make CKPTNONE comparatively worse.

    Compared at each (pfail, CCR) between the smallest and largest sizes,
    averaging over processor counts.
    """
    sizes = sorted({c.ntasks_requested for c in cells})
    if len(sizes) < 2:
        return ClaimResult("C5", "CKPTNONE degrades with workflow size", True,
                           "single size in grid — not applicable")
    lo_n, hi_n = sizes[0], sizes[-1]
    checked = violated = 0
    points = {(c.pfail, c.ccr) for c in cells}
    for pfail, ccr in points:
        lo = [c.ratio_none for c in cells
              if (c.pfail, c.ccr, c.ntasks_requested) == (pfail, ccr, lo_n)]
        hi = [c.ratio_none for c in cells
              if (c.pfail, c.ccr, c.ntasks_requested) == (pfail, ccr, hi_n)]
        if not lo or not hi:
            continue
        checked += 1
        if sum(hi) / len(hi) < sum(lo) / len(lo) - TOL:
            violated += 1
    return ClaimResult(
        "C5",
        "CKPTNONE degrades with workflow size",
        violated <= checked // 10,
        f"{violated} of {checked} (pfail,CCR) points violate",
    )


def check_c6_none_wins_only_in_corner(cells: Sequence[CellResult]) -> ClaimResult:
    """C6: CKPTNONE wins only at high CCR and/or low pfail."""
    winners = [c for c in cells if c.ratio_none < 1.0 - TOL]
    max_ccr = max(c.ccr for c in cells)
    min_pfail = min(c.pfail for c in cells)
    offenders = [
        c
        for c in winners
        if not (c.ccr >= max_ccr / 100.0 or c.pfail <= min_pfail * 10)
    ]
    return ClaimResult(
        "C6",
        "CKPTNONE only wins when checkpoints are expensive and/or "
        "failures are rare",
        not offenders,
        f"{len(winners)} winning cells, {len(offenders)} outside the "
        f"high-CCR/low-pfail corner",
    )


CLAIM_CHECKERS: Dict[str, Callable[[Sequence[CellResult]], ClaimResult]] = {
    "C1": check_c1_some_beats_all,
    "C2": check_c2_ratio_all_converges,
    "C3": check_c3_none_grows_as_ccr_drops,
    "C4": check_c4_none_worse_at_high_pfail,
    "C5": check_c5_none_worse_for_larger_n,
    "C6": check_c6_none_wins_only_in_corner,
}


def check_all_claims(cells: Sequence[CellResult]) -> List[ClaimResult]:
    """Run every claim checker; returns the results in claim order."""
    return [checker(cells) for checker in CLAIM_CHECKERS.values()]


def sweep_and_check(
    spec: SweepSpec, jobs: int = 1
) -> Tuple[List[CellResult], List[ClaimResult]]:
    """Execute a sweep through the engine and check every claim on it.

    One-stop entry point for the benchmark harness: returns the cells
    (grid order) together with the claim verdicts.
    """
    cells = run_sweep(spec, jobs=jobs)
    return cells, check_all_claims(cells)


def render_claims(results: Sequence[ClaimResult]) -> str:
    """Human-readable claim report."""
    lines = []
    for r in results:
        status = "HOLDS " if r.holds else "BROKEN"
        lines.append(f"[{status}] {r.claim}: {r.description}")
        lines.append(f"         {r.detail}")
    return "\n".join(lines)
