"""The paper's Figure 5/6/7 grids (§VI-C).

Each figure compares the relative expected makespan of CKPTALL and of
CKPTNONE against CKPTSOME for one workflow family, sweeping:

* workflow size ∈ {50, 300, 1000} tasks,
* per-task failure probability pfail ∈ {0.01, 0.001, 0.0001},
* processor count per size — {3, 5, 7, 10} / {18, 35, 52, 70} /
  {61, 123, 184, 245} (the paper's values),
* CCR over a log grid — GENOME over ``[1e-4, 1e-2]`` (it is compute-
  heavy), MONTAGE and LIGO over ``[1e-3, 1e0]``.

Methodology mirrors §VI-A: one workflow instance per (family, size) seed;
one schedule per (instance, p) — the scheduler ignores storage costs, so
schedules are CCR-independent and reused across the sweep; λ is chosen so
a task of average weight fails with probability pfail; checkpoint plans
and evaluations are redone per CCR point (CKPTNONE's estimator contains
no I/O and is evaluated once per schedule).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.checkpoint.strategies import ckpt_all_plan, ckpt_some_plan
from repro.errors import ExperimentError
from repro.experiments.ccr import scale_to_ccr
from repro.experiments.results import CellResult
from repro.generators import generate
from repro.makespan.api import expected_makespan
from repro.makespan.ckptnone import ckptnone_expected_makespan
from repro.makespan.segment_dag import build_segment_dag
from repro.mspg.transform import mspgify
from repro.platform import Platform, lambda_from_pfail
from repro.scheduling.allocate import allocate
from repro.util.rng import stable_seed

__all__ = ["FigureSpec", "PAPER_FIGURES", "run_cell", "run_figure", "log_grid"]


def log_grid(lo: float, hi: float, points: int) -> Tuple[float, ...]:
    """``points`` log-spaced values spanning ``[lo, hi]``."""
    if not (0 < lo <= hi) or points < 1:
        raise ExperimentError(f"bad log grid ({lo}, {hi}, {points})")
    if points == 1:
        return (lo,)
    return tuple(
        float(v) for v in np.logspace(math.log10(lo), math.log10(hi), points)
    )


#: The paper's processor counts per workflow size.
PAPER_PROCESSORS: Dict[int, Tuple[int, ...]] = {
    50: (3, 5, 7, 10),
    300: (18, 35, 52, 70),
    1000: (61, 123, 184, 245),
}

#: The paper's per-task failure probabilities.
PAPER_PFAILS: Tuple[float, ...] = (0.01, 0.001, 0.0001)


@dataclass(frozen=True)
class FigureSpec:
    """One figure's full parameter grid."""

    name: str
    family: str
    sizes: Tuple[int, ...] = (50, 300, 1000)
    pfails: Tuple[float, ...] = PAPER_PFAILS
    ccrs: Tuple[float, ...] = ()
    processors: Mapping[int, Tuple[int, ...]] = field(
        default_factory=lambda: dict(PAPER_PROCESSORS)
    )
    method: str = "pathapprox"
    seed: int = 2017  # CLUSTER 2017 vintage
    bandwidth: float = 100e6

    def shrink(
        self,
        sizes: Optional[Sequence[int]] = None,
        pfails: Optional[Sequence[float]] = None,
        ccr_points: Optional[int] = None,
        processors_per_size: Optional[int] = None,
    ) -> "FigureSpec":
        """A reduced grid (used by the CI-sized benchmark defaults)."""
        new_sizes = tuple(sizes) if sizes is not None else self.sizes
        new_pfails = tuple(pfails) if pfails is not None else self.pfails
        new_ccrs = self.ccrs
        if ccr_points is not None and self.ccrs:
            new_ccrs = log_grid(min(self.ccrs), max(self.ccrs), ccr_points)
        procs = {k: tuple(v) for k, v in self.processors.items()}
        if processors_per_size is not None:
            procs = {
                k: tuple(v[:processors_per_size]) for k, v in procs.items()
            }
        return replace(
            self, sizes=new_sizes, pfails=new_pfails, ccrs=new_ccrs, processors=procs
        )


#: The three paper figures with their published grids.
PAPER_FIGURES: Dict[str, FigureSpec] = {
    "fig5": FigureSpec(name="fig5", family="genome", ccrs=log_grid(1e-4, 1e-2, 7)),
    "fig6": FigureSpec(name="fig6", family="montage", ccrs=log_grid(1e-3, 1e0, 7)),
    "fig7": FigureSpec(name="fig7", family="ligo", ccrs=log_grid(1e-3, 1e0, 7)),
}


def run_cell(
    family: str,
    ntasks: int,
    processors: int,
    pfail: float,
    ccr: float,
    seed: int = 2017,
    method: str = "pathapprox",
    bandwidth: float = 100e6,
    save_final_outputs: bool = True,
) -> CellResult:
    """Run one experiment cell from scratch (convenience entry point).

    ``run_figure`` amortises generation/scheduling across the grid; this
    standalone version regenerates everything and is what the CLI's
    ``evaluate`` sub-command and the quickstart example call.
    """
    wf_seed = stable_seed(seed, family, ntasks)
    workflow = generate(family, ntasks, wf_seed)
    tree = mspgify(workflow).tree
    lam = lambda_from_pfail(pfail, workflow.mean_weight)
    platform = Platform(processors, failure_rate=lam, bandwidth=bandwidth)
    schedule = allocate(
        workflow, tree, processors, seed=stable_seed(seed, family, ntasks, processors)
    )
    return _evaluate_cell(
        family,
        ntasks,
        workflow,
        schedule,
        platform,
        pfail,
        ccr,
        method,
        wf_seed,
        save_final_outputs,
    )


def _evaluate_cell(
    family: str,
    ntasks_requested: int,
    workflow,
    schedule,
    platform: Platform,
    pfail: float,
    ccr: float,
    method: str,
    seed: int,
    save_final_outputs: bool = True,
) -> CellResult:
    scaled = scale_to_ccr(workflow, platform, ccr)
    plan_some = ckpt_some_plan(
        scaled, schedule, platform, save_final_outputs=save_final_outputs
    )
    plan_all = ckpt_all_plan(
        scaled, schedule, platform, save_final_outputs=save_final_outputs
    )
    dag_some = build_segment_dag(scaled, schedule, plan_some, platform)
    dag_all = build_segment_dag(scaled, schedule, plan_all, platform)
    em_some = expected_makespan(dag_some, method)
    em_all = expected_makespan(dag_all, method)
    em_none = ckptnone_expected_makespan(scaled, schedule, platform)
    return CellResult(
        family=family,
        ntasks_requested=ntasks_requested,
        ntasks=workflow.n_tasks,
        processors=platform.processors,
        pfail=pfail,
        ccr=ccr,
        em_some=em_some,
        em_all=em_all,
        em_none=em_none,
        checkpoints_some=plan_some.n_segments,
        checkpoints_all=plan_all.n_segments,
        superchains=len(schedule.superchains),
        seed=seed,
    )


def run_figure(
    spec: FigureSpec,
    progress: Optional[Callable[[str], None]] = None,
) -> List[CellResult]:
    """Run a full figure grid; returns one :class:`CellResult` per point.

    Workflow generation is amortised per (family, size) and scheduling per
    (size, p); the CKPTNONE estimate is reused across the CCR sweep (it
    contains no I/O term).
    """
    cells: List[CellResult] = []
    for ntasks in spec.sizes:
        wf_seed = stable_seed(spec.seed, spec.family, ntasks)
        workflow = generate(spec.family, ntasks, wf_seed)
        tree = mspgify(workflow).tree
        try:
            proc_counts = spec.processors[ntasks]
        except KeyError:
            raise ExperimentError(
                f"no processor counts configured for size {ntasks}"
            ) from None
        for p in proc_counts:
            schedule = allocate(
                workflow,
                tree,
                p,
                seed=stable_seed(spec.seed, spec.family, ntasks, p),
            )
            for pfail in spec.pfails:
                lam = lambda_from_pfail(pfail, workflow.mean_weight)
                platform = Platform(p, failure_rate=lam, bandwidth=spec.bandwidth)
                for ccr in spec.ccrs:
                    cell = _evaluate_cell(
                        spec.family,
                        ntasks,
                        workflow,
                        schedule,
                        platform,
                        pfail,
                        ccr,
                        spec.method,
                        wf_seed,
                    )
                    cells.append(cell)
                    if progress is not None:
                        progress(
                            f"{spec.name} n={ntasks} p={p} pfail={pfail} "
                            f"ccr={ccr:.2e}: all/some={cell.ratio_all:.3f} "
                            f"none/some={cell.ratio_none:.3f}"
                        )
    return cells
