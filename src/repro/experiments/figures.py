"""The paper's Figure 5/6/7 grids (§VI-C), executed by the pipeline engine.

Each figure compares the relative expected makespan of CKPTALL and of
CKPTNONE against CKPTSOME for one workflow family, sweeping:

* workflow size ∈ {50, 300, 1000} tasks,
* per-task failure probability pfail ∈ {0.01, 0.001, 0.0001},
* processor count per size — {3, 5, 7, 10} / {18, 35, 52, 70} /
  {61, 123, 184, 245} (the paper's values),
* CCR over a log grid — GENOME over ``[1e-4, 1e-2]`` (it is compute-
  heavy), MONTAGE and LIGO over ``[1e-3, 1e0]``.

Methodology mirrors §VI-A: one workflow instance per (family, size) seed;
one schedule per (instance, p) — the scheduler ignores storage costs, so
schedules are CCR-independent and reused across the sweep; λ is chosen so
a task of average weight fails with probability pfail; checkpoint plans
and evaluations are redone per CCR point (CKPTNONE's estimator contains
no I/O and is evaluated once per schedule).

Since the engine refactor, :func:`run_figure` is a declarative adapter:
the grid is converted to a :class:`repro.engine.SweepSpec` (with the
historical ``stable_seed`` derivation, so figure numbers are unchanged)
and executed by :func:`repro.engine.run_sweep` — pass ``jobs>1`` to fan
the grid out over a process pool.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.engine.pipeline import Pipeline
from repro.engine.records import CellResult
from repro.engine.sweep import SweepSpec, run_sweep
from repro.errors import ExperimentError
from repro.util.rng import stable_seed

__all__ = ["FigureSpec", "PAPER_FIGURES", "run_cell", "run_figure", "log_grid"]


def log_grid(lo: float, hi: float, points: int) -> Tuple[float, ...]:
    """``points`` log-spaced values spanning ``[lo, hi]``."""
    if not (0 < lo <= hi) or points < 1:
        raise ExperimentError(f"bad log grid ({lo}, {hi}, {points})")
    if points == 1:
        return (lo,)
    return tuple(
        float(v) for v in np.logspace(math.log10(lo), math.log10(hi), points)
    )


#: The paper's processor counts per workflow size.
PAPER_PROCESSORS: Dict[int, Tuple[int, ...]] = {
    50: (3, 5, 7, 10),
    300: (18, 35, 52, 70),
    1000: (61, 123, 184, 245),
}

#: The paper's per-task failure probabilities.
PAPER_PFAILS: Tuple[float, ...] = (0.01, 0.001, 0.0001)


@dataclass(frozen=True)
class FigureSpec:
    """One figure's full parameter grid."""

    name: str
    family: str
    sizes: Tuple[int, ...] = (50, 300, 1000)
    pfails: Tuple[float, ...] = PAPER_PFAILS
    ccrs: Tuple[float, ...] = ()
    processors: Mapping[int, Tuple[int, ...]] = field(
        default_factory=lambda: dict(PAPER_PROCESSORS)
    )
    method: str = "pathapprox"
    seed: int = 2017  # CLUSTER 2017 vintage
    bandwidth: float = 100e6

    def shrink(
        self,
        sizes: Optional[Sequence[int]] = None,
        pfails: Optional[Sequence[float]] = None,
        ccr_points: Optional[int] = None,
        processors_per_size: Optional[int] = None,
    ) -> "FigureSpec":
        """A reduced grid (used by the CI-sized benchmark defaults)."""
        new_sizes = tuple(sizes) if sizes is not None else self.sizes
        new_pfails = tuple(pfails) if pfails is not None else self.pfails
        new_ccrs = self.ccrs
        if ccr_points is not None and self.ccrs:
            new_ccrs = log_grid(min(self.ccrs), max(self.ccrs), ccr_points)
        procs = {k: tuple(v) for k, v in self.processors.items()}
        if processors_per_size is not None:
            procs = {
                k: tuple(v[:processors_per_size]) for k, v in procs.items()
            }
        return replace(
            self, sizes=new_sizes, pfails=new_pfails, ccrs=new_ccrs, processors=procs
        )


#: The three paper figures with their published grids.
PAPER_FIGURES: Dict[str, FigureSpec] = {
    "fig5": FigureSpec(name="fig5", family="genome", ccrs=log_grid(1e-4, 1e-2, 7)),
    "fig6": FigureSpec(name="fig6", family="montage", ccrs=log_grid(1e-3, 1e0, 7)),
    "fig7": FigureSpec(name="fig7", family="ligo", ccrs=log_grid(1e-3, 1e0, 7)),
}


def run_cell(
    family: str,
    ntasks: int,
    processors: int,
    pfail: float,
    ccr: float,
    seed: int = 2017,
    method: str = "pathapprox",
    bandwidth: float = 100e6,
    save_final_outputs: bool = True,
) -> CellResult:
    """Run one experiment cell from scratch (convenience entry point).

    :func:`run_figure` amortises generation/scheduling across the grid;
    this standalone version runs a fresh pipeline end to end and is what
    the CLI's ``evaluate`` sub-command and the quickstart example call.
    """
    pipe = Pipeline()
    wf_seed = stable_seed(seed, family, ntasks)
    workflow = pipe.prepare(family, ntasks, wf_seed)
    tree = pipe.mspg_tree(workflow)
    platform = pipe.platform_for(workflow, processors, pfail, bandwidth)
    schedule = pipe.schedule_for(
        workflow,
        processors,
        seed=stable_seed(seed, family, ntasks, processors),
        tree=tree,
    )
    return pipe.evaluate_cell(
        family=family,
        ntasks_requested=ntasks,
        workflow=workflow,
        schedule=schedule,
        platform=platform,
        pfail=pfail,
        ccr=ccr,
        method=method,
        seed=wf_seed,
        save_final_outputs=save_final_outputs,
    )


def run_figure(
    spec: FigureSpec,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
) -> List[CellResult]:
    """Run a full figure grid; returns one :class:`CellResult` per point.

    Workflow generation is amortised per (family, size) and scheduling per
    (size, p) by the engine's artifact cache; the CKPTNONE estimate is
    reused across the CCR sweep (it contains no I/O).  ``jobs`` selects
    the engine's process-pool width (``1`` = in-process serial; records
    are identical either way).
    """
    return run_sweep(SweepSpec.from_figure(spec), jobs=jobs, progress=progress)
