"""The §VI-B accuracy study: MONTECARLO vs DODIN vs NORMAL vs PATHAPPROX.

The paper evaluates the accuracy of the four expected-makespan estimators
on the workflows under study before trusting one for the main experiment;
a huge-trial Monte Carlo run (300,000 samples) serves as ground truth.
Conclusion reproduced here: PATHAPPROX is both faster and more accurate
than DODIN and NORMAL, and becomes the method of choice.

Estimates are produced on CKPTALL segment DAGs (the §II-B setting: "if
each task were checkpointed, we could use these four algorithms"), but
``plan="some"`` evaluates on CKPTSOME DAGs as well.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.pipeline import Pipeline
from repro.errors import ExperimentError
from repro.makespan.api import EVALUATORS
from repro.makespan.montecarlo import montecarlo_result
from repro.util.rng import stable_seed
from repro.util.tables import format_table

__all__ = ["AccuracyRow", "run_accuracy", "render_accuracy"]

#: Estimators compared against the Monte Carlo ground truth.
METHODS: Tuple[str, ...] = ("pathapprox", "normal", "dodin")


@dataclass(frozen=True)
class AccuracyRow:
    """One (configuration, method) accuracy measurement."""

    family: str
    ntasks: int
    processors: int
    pfail: float
    ccr: float
    method: str
    estimate: float
    reference: float  # Monte Carlo ground truth
    reference_stderr: float
    runtime_seconds: float

    @property
    def relative_error(self) -> float:
        """``estimate/reference − 1`` (signed)."""
        return self.estimate / self.reference - 1.0


def run_accuracy(
    families: Sequence[str] = ("genome", "montage", "ligo"),
    ntasks: int = 50,
    processors: int = 10,
    pfails: Sequence[float] = (0.01, 0.001),
    ccr: float = 0.01,
    mc_trials: int = 300_000,
    seed: int = 2017,
    plan: str = "all",
    methods: Sequence[str] = METHODS,
) -> List[AccuracyRow]:
    """Run the accuracy study; returns one row per (config, method).

    A Monte Carlo row (with its own runtime) is included for each
    configuration so speed comparisons cover all four §VI-B methods.
    """
    if plan not in ("all", "some"):
        raise ExperimentError(f"plan must be 'all' or 'some', got {plan!r}")
    rows: List[AccuracyRow] = []
    pipe = Pipeline()
    for family in families:
        wf_seed = stable_seed(seed, family, ntasks)
        workflow = pipe.prepare(family, ntasks, wf_seed)
        tree = pipe.mspg_tree(workflow)
        schedule = pipe.schedule_for(
            workflow,
            processors,
            seed=stable_seed(seed, family, processors),
            tree=tree,
        )
        for pfail in pfails:
            platform = pipe.platform_for(workflow, processors, pfail)
            scaled = pipe.scale(workflow, platform, ccr)
            cplan = pipe.plan(scaled, schedule, platform, strategy=plan)
            dag = pipe.segment_dag(scaled, schedule, cplan, platform)

            t0 = time.perf_counter()
            mc = montecarlo_result(dag, trials=mc_trials, seed=wf_seed)
            mc_time = time.perf_counter() - t0
            rows.append(
                AccuracyRow(
                    family,
                    workflow.n_tasks,
                    processors,
                    pfail,
                    ccr,
                    f"montecarlo[{mc_trials}]",
                    mc.mean,
                    mc.mean,
                    mc.stderr,
                    mc_time,
                )
            )
            for method in methods:
                fn = EVALUATORS[method]
                t0 = time.perf_counter()
                est = fn(dag)
                dt = time.perf_counter() - t0
                rows.append(
                    AccuracyRow(
                        family,
                        workflow.n_tasks,
                        processors,
                        pfail,
                        ccr,
                        method,
                        est,
                        mc.mean,
                        mc.stderr,
                        dt,
                    )
                )
    return rows


def render_accuracy(rows: Sequence[AccuracyRow], title: str = "") -> str:
    """Fixed-width table of the accuracy study."""
    headers = [
        "family",
        "n",
        "p",
        "pfail",
        "method",
        "estimate",
        "MC ref",
        "rel.err %",
        "runtime s",
    ]
    table_rows = [
        [
            r.family,
            r.ntasks,
            r.processors,
            r.pfail,
            r.method,
            r.estimate,
            r.reference,
            100.0 * r.relative_error,
            r.runtime_seconds,
        ]
        for r in rows
    ]
    return format_table(headers, table_rows, title=title)
