"""Result rendering (tables + ASCII panels) over the engine's records.

The record type itself and its CSV/JSONL serialisation live in
:mod:`repro.engine.records` (one schema shared by experiments, CLI and
benchmarks); this module re-exports them for backward compatibility and
adds the terminal renderers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.records import (
    CellResult,
    records_from_jsonl,
    records_to_csv,
    records_to_jsonl,
)
from repro.util.asciiplot import ascii_xy_plot
from repro.util.tables import format_table

#: Backward-compatible name for :func:`repro.engine.records.records_to_csv`.
results_to_csv = records_to_csv

__all__ = [
    "CellResult",
    "results_to_csv",
    "records_to_csv",
    "records_to_jsonl",
    "records_from_jsonl",
    "render_figure",
    "render_cells_table",
]


def render_cells_table(cells: Sequence[CellResult], title: str = "") -> str:
    """Fixed-width table of cells (one row per CCR point)."""
    headers = [
        "family",
        "n",
        "p",
        "pfail",
        "CCR",
        "EM(some)",
        "EM(all)",
        "EM(none)",
        "all/some",
        "none/some",
        "#ckpt some",
    ]
    rows = [
        [
            c.family,
            c.ntasks,
            c.processors,
            c.pfail,
            c.ccr,
            c.em_some,
            c.em_all,
            c.em_none,
            c.ratio_all,
            c.ratio_none,
            c.checkpoints_some,
        ]
        for c in cells
    ]
    return format_table(headers, rows, title=title)


def render_figure(
    cells: Sequence[CellResult],
    title: str = "",
    ybounds: Optional[Tuple[float, float]] = None,
) -> str:
    """Paper-style panel: relative expected makespan vs CCR (log x).

    One sub-plot per (ntasks, pfail) combination, with one series per
    (strategy, processor count) — the layout of the paper's Figures 5-7.
    """
    combos = sorted({(c.ntasks_requested, c.pfail) for c in cells})
    blocks: List[str] = []
    for ntasks, pfail in combos:
        sub = [c for c in cells if (c.ntasks_requested, c.pfail) == (ntasks, pfail)]
        series: Dict[str, List[Tuple[float, float]]] = {}
        for c in sorted(sub, key=lambda c: (c.processors, c.ccr)):
            series.setdefault(f"all/some p={c.processors}", []).append(
                (c.ccr, c.ratio_all)
            )
            series.setdefault(f"none/some p={c.processors}", []).append(
                (c.ccr, c.ratio_none)
            )
        blocks.append(
            ascii_xy_plot(
                series,
                logx=True,
                title=f"{title} — {ntasks} tasks, pfail={pfail}",
                hline=1.0,
                ybounds=ybounds,
            )
        )
    return "\n\n".join(blocks)
