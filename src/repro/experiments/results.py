"""Result records, CSV emission and terminal rendering."""

from __future__ import annotations

import csv
import io
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.util.asciiplot import ascii_xy_plot
from repro.util.tables import format_table

__all__ = ["CellResult", "results_to_csv", "render_figure", "render_cells_table"]


@dataclass(frozen=True)
class CellResult:
    """One experiment cell: a (family, size, p, pfail, CCR) configuration.

    ``ratio_all`` / ``ratio_none`` are the paper's *relative expected
    makespans*: ``EM(CKPTALL)/EM(CKPTSOME)`` and
    ``EM(CKPTNONE)/EM(CKPTSOME)`` — values above 1 mean CKPTSOME wins.
    """

    family: str
    ntasks_requested: int
    ntasks: int
    processors: int
    pfail: float
    ccr: float
    em_some: float
    em_all: float
    em_none: float
    checkpoints_some: int
    checkpoints_all: int
    superchains: int
    seed: int

    @property
    def ratio_all(self) -> float:
        """``EM(CKPTALL) / EM(CKPTSOME)``."""
        return self.em_all / self.em_some

    @property
    def ratio_none(self) -> float:
        """``EM(CKPTNONE) / EM(CKPTSOME)``."""
        return self.em_none / self.em_some


def results_to_csv(
    cells: Sequence[CellResult], path: Optional[Union[str, Path]] = None
) -> str:
    """Serialise cells to CSV (returned; also written if ``path`` given)."""
    buf = io.StringIO()
    names = [f.name for f in fields(CellResult)] + ["ratio_all", "ratio_none"]
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(names)
    for c in cells:
        row = [getattr(c, n) for n in names]
        writer.writerow(row)
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def render_cells_table(cells: Sequence[CellResult], title: str = "") -> str:
    """Fixed-width table of cells (one row per CCR point)."""
    headers = [
        "family",
        "n",
        "p",
        "pfail",
        "CCR",
        "EM(some)",
        "EM(all)",
        "EM(none)",
        "all/some",
        "none/some",
        "#ckpt some",
    ]
    rows = [
        [
            c.family,
            c.ntasks,
            c.processors,
            c.pfail,
            c.ccr,
            c.em_some,
            c.em_all,
            c.em_none,
            c.ratio_all,
            c.ratio_none,
            c.checkpoints_some,
        ]
        for c in cells
    ]
    return format_table(headers, rows, title=title)


def render_figure(
    cells: Sequence[CellResult],
    title: str = "",
    ybounds: Optional[Tuple[float, float]] = None,
) -> str:
    """Paper-style panel: relative expected makespan vs CCR (log x).

    One sub-plot per (ntasks, pfail) combination, with one series per
    (strategy, processor count) — the layout of the paper's Figures 5-7.
    """
    combos = sorted({(c.ntasks_requested, c.pfail) for c in cells})
    blocks: List[str] = []
    for ntasks, pfail in combos:
        sub = [c for c in cells if (c.ntasks_requested, c.pfail) == (ntasks, pfail)]
        series: Dict[str, List[Tuple[float, float]]] = {}
        for c in sorted(sub, key=lambda c: (c.processors, c.ccr)):
            series.setdefault(f"all/some p={c.processors}", []).append(
                (c.ccr, c.ratio_all)
            )
            series.setdefault(f"none/some p={c.processors}", []).append(
                (c.ccr, c.ratio_none)
            )
        blocks.append(
            ascii_xy_plot(
                series,
                logx=True,
                title=f"{title} — {ntasks} tasks, pfail={pfail}",
                hline=1.0,
                ybounds=ybounds,
            )
        )
    return "\n\n".join(blocks)
