"""The paper's experimental harness (§VI).

* :mod:`repro.experiments.ccr` — Communication-to-Computation Ratio
  computation and file-size rescaling (§VI-A);
* :mod:`repro.experiments.figures` — the Figure 5/6/7 grids: relative
  expected makespan of CKPTALL and CKPTNONE over CKPTSOME across CCR,
  failure probability, workflow size and processor count;
* :mod:`repro.experiments.accuracy` — the §VI-B evaluation-method
  accuracy/runtime study (MONTECARLO vs DODIN vs NORMAL vs PATHAPPROX);
* :mod:`repro.experiments.results` — result rendering (tables + ASCII
  plots) over the engine's record schema.

Grid execution is delegated to :mod:`repro.engine`: the staged pipeline
(artifact cache) plus the parallel sweep executor.  The record type
(:class:`~repro.engine.records.CellResult`) and its CSV/JSONL
serialisation live there and are re-exported here for compatibility.
"""

from repro.experiments.ccr import ccr_of, scale_to_ccr
from repro.experiments.figures import (
    PAPER_FIGURES,
    FigureSpec,
    run_cell,
    run_figure,
)
from repro.experiments.accuracy import AccuracyRow, run_accuracy
from repro.experiments.claims import ClaimResult, check_all_claims, sweep_and_check
from repro.experiments.results import CellResult, render_figure, results_to_csv

__all__ = [
    "sweep_and_check",
    "ccr_of",
    "scale_to_ccr",
    "PAPER_FIGURES",
    "FigureSpec",
    "run_cell",
    "run_figure",
    "AccuracyRow",
    "run_accuracy",
    "ClaimResult",
    "check_all_claims",
    "CellResult",
    "render_figure",
    "results_to_csv",
]
