"""Backward-compatible alias of :mod:`repro.ccr`.

The CCR machinery moved to the top level when the staged pipeline engine
(:mod:`repro.engine`) started depending on it; importing it from
``repro.experiments.ccr`` keeps working.
"""

from __future__ import annotations

from repro.ccr import ccr_of, scale_to_ccr

__all__ = ["ccr_of", "scale_to_ccr"]
