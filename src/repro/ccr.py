"""Communication-to-Computation Ratio machinery (§VI-A).

The paper defines the CCR of a workflow as *the time needed to store all
the files handled by the workflow (input, output and intermediate files)
divided by the time needed to perform all its computations on a single
processor*.  Rather than varying storage bandwidth (whose absolute value
would mean different things for different workflows), the experiments
scale all file sizes by a common factor to reach each target CCR — we do
exactly the same.

This lives at the top level (rather than under :mod:`repro.experiments`)
because CCR rescaling is a pipeline-stage transformation used by the
:mod:`repro.engine` as well as by the experiment harness;
:mod:`repro.experiments.ccr` re-exports it for backward compatibility.
"""

from __future__ import annotations

from repro.errors import ExperimentError
from repro.mspg.graph import Workflow
from repro.platform import Platform

__all__ = ["ccr_of", "scale_to_ccr"]


def ccr_of(workflow: Workflow, platform: Platform) -> float:
    """CCR of a workflow on a platform (total store time / total compute)."""
    compute = workflow.total_weight
    if compute <= 0:
        raise ExperimentError("CCR undefined for a zero-compute workflow")
    return platform.io_seconds(workflow.total_file_bytes) / compute


def scale_to_ccr(
    workflow: Workflow, platform: Platform, target_ccr: float
) -> Workflow:
    """A copy of the workflow whose file sizes realise ``target_ccr``."""
    if target_ccr < 0:
        raise ExperimentError(f"target CCR must be >= 0, got {target_ccr}")
    current = ccr_of(workflow, platform)
    if current == 0:
        raise ExperimentError(
            "cannot rescale a workflow with no file data to a positive CCR"
        )
    return workflow.scale_file_sizes(target_ccr / current)
