"""repro — reproduction of *Checkpointing Workflows for Fail-Stop Errors*.

Han, Canon, Casanova, Robert, Vivien — IEEE CLUSTER 2017.

Public API overview
-------------------
* :class:`repro.mspg.Workflow` — file-grained workflow DAGs.
* :func:`repro.mspg.recognize` / :func:`repro.mspg.mspgify` — M-SPG
  structure extraction.
* :mod:`repro.generators` — Pegasus-style synthetic workflow families
  (MONTAGE, GENOME, LIGO, …) and DAX I/O.
* :func:`repro.scheduling.allocate` — Algorithm 1 (list scheduling with
  proportional mapping), producing superchain schedules.
* :mod:`repro.checkpoint` — Algorithm 2 (optimal checkpoint placement in
  superchains) and the CKPTALL / CKPTSOME / CKPTNONE strategies.
* :mod:`repro.makespan` — expected-makespan evaluation of 2-state
  probabilistic DAGs (MonteCarlo, Dodin, Normal, PathApprox, exact).
* :mod:`repro.simulation` — failure-injecting execution simulation.
* :mod:`repro.engine` — the staged pipeline engine: explicit stages over
  a keyed artifact cache, the parallel grid-sweep executor, and the
  shared result-record schema (JSONL/CSV).
* :mod:`repro.experiments` — the paper's experimental harness
  (Figures 5-7, the §VI-B accuracy study, CCR machinery), a thin layer
  over the engine.
"""

from repro.platform import Platform, lambda_from_pfail, pfail_from_lambda

__version__ = "1.0.0"

__all__ = [
    "Platform",
    "lambda_from_pfail",
    "pfail_from_lambda",
    "__version__",
]
