"""repro — reproduction of *Checkpointing Workflows for Fail-Stop Errors*.

Han, Canon, Casanova, Robert, Vivien — IEEE CLUSTER 2017.

Public API overview
-------------------
* :class:`repro.mspg.Workflow` — file-grained workflow DAGs.
* :func:`repro.mspg.recognize` / :func:`repro.mspg.mspgify` — M-SPG
  structure extraction.
* :mod:`repro.generators` — Pegasus-style synthetic workflow families
  (MONTAGE, GENOME, LIGO, …) and DAX I/O.
* :mod:`repro.workloads` — workflow sources: synthetic family
  generation and external ``.dax``/``.json`` files (content-hash
  addressed) behind one :class:`~repro.workloads.WorkflowSource`
  abstraction, plus the registry the service loads file sources into.
* :func:`repro.scheduling.allocate` — Algorithm 1 (list scheduling with
  proportional mapping), producing superchain schedules.
* :mod:`repro.checkpoint` — Algorithm 2 (optimal checkpoint placement in
  superchains) and the CKPTALL / CKPTSOME / CKPTNONE strategies.
* :mod:`repro.makespan` — expected-makespan evaluation of 2-state
  probabilistic DAGs (MonteCarlo, Dodin, Normal, PathApprox, exact).
* :mod:`repro.simulation` — failure-injecting execution simulation.
* :mod:`repro.engine` — the staged pipeline engine: explicit stages over
  a keyed artifact cache, the parallel grid-sweep executor (plus the
  :func:`~repro.engine.sweep.run_specs` batch entry point), and the
  shared result-record schema (JSONL/CSV, both directions).
* :mod:`repro.service` — the persistent evaluation service: canonical
  request fingerprints, a durable SQLite result store, a coalescing
  batch scheduler, and a stdlib HTTP server/client pair
  (``repro serve`` / ``repro submit``).
* :mod:`repro.experiments` — the paper's experimental harness
  (Figures 5-7, the §VI-B accuracy study, CCR machinery), a thin layer
  over the engine.
"""

from repro.platform import Platform, lambda_from_pfail, pfail_from_lambda

__version__ = "1.1.0"

__all__ = [
    "Platform",
    "lambda_from_pfail",
    "pfail_from_lambda",
    "EvalRequest",
    "fingerprint",
    "ResultStore",
    "BatchScheduler",
    "ReproService",
    "ServiceClient",
    "FamilySource",
    "FileSource",
    "SourceRegistry",
    "WorkflowSource",
    "load_source",
    "workflow_hash",
    "__version__",
]

#: Service-layer names re-exported lazily: ``repro.service`` pulls in the
#: engine and the HTTP stack, which plain algorithmic imports (``from
#: repro import Platform``) should not pay for — and ``server.py`` reads
#: ``repro.__version__`` back, so an eager import would be circular.
_SERVICE_EXPORTS = {
    "EvalRequest",
    "fingerprint",
    "ResultStore",
    "BatchScheduler",
    "ReproService",
    "ServiceClient",
}

#: Workflow-source names, re-exported lazily for the same reason (the
#: workloads module pulls in the generator package).
_WORKLOAD_EXPORTS = {
    "FamilySource",
    "FileSource",
    "SourceRegistry",
    "WorkflowSource",
    "load_source",
    "workflow_hash",
}


def __getattr__(name: str):
    if name in _SERVICE_EXPORTS:
        import repro.service as _service

        return getattr(_service, name)
    if name in _WORKLOAD_EXPORTS:
        import repro.workloads as _workloads

        return getattr(_workloads, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
