"""High-level one-call pipeline: generate/transform → schedule → checkpoint
→ evaluate all three strategies.

This is the facade the examples and the CLI use; each stage remains
available individually for finer control (see the package docs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.checkpoint.plan import CheckpointPlan
from repro.checkpoint.strategies import ckpt_all_plan, ckpt_some_plan
from repro.experiments.ccr import ccr_of, scale_to_ccr
from repro.makespan.api import expected_makespan
from repro.makespan.ckptnone import ckptnone_expected_makespan
from repro.makespan.probdag import ProbDAG
from repro.makespan.segment_dag import build_segment_dag
from repro.mspg.expr import MSPG
from repro.mspg.graph import Workflow
from repro.mspg.transform import mspgify
from repro.platform import Platform, lambda_from_pfail
from repro.scheduling.allocate import allocate
from repro.scheduling.schedule import Schedule
from repro.util.rng import SeedLike

__all__ = ["StrategyOutcome", "run_strategies"]


@dataclass
class StrategyOutcome:
    """Everything produced by one :func:`run_strategies` call."""

    workflow: Workflow
    platform: Platform
    tree: MSPG
    schedule: Schedule
    plan_some: CheckpointPlan
    plan_all: CheckpointPlan
    dag_some: ProbDAG
    dag_all: ProbDAG
    em_some: float
    em_all: float
    em_none: float

    @property
    def ratio_all(self) -> float:
        """``EM(CKPTALL) / EM(CKPTSOME)`` — > 1 means CKPTSOME wins."""
        return self.em_all / self.em_some

    @property
    def ratio_none(self) -> float:
        """``EM(CKPTNONE) / EM(CKPTSOME)`` — > 1 means CKPTSOME wins."""
        return self.em_none / self.em_some

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        wf, plat = self.workflow, self.platform
        lines = [
            f"workflow  : {wf.name} ({wf.n_tasks} tasks, {wf.n_edges} edges, "
            f"CCR={ccr_of(wf, plat):.4g})",
            f"platform  : p={plat.processors}, λ={plat.failure_rate:.3g}/s, "
            f"bw={plat.bandwidth:.3g} B/s",
            f"schedule  : {len(self.schedule.superchains)} superchains on "
            f"{len(self.schedule.used_processors())} processors",
            f"checkpoints: CKPTSOME {self.plan_some.n_segments} / "
            f"CKPTALL {self.plan_all.n_segments}",
            f"E[makespan]: some={self.em_some:.6g}s  all={self.em_all:.6g}s  "
            f"none={self.em_none:.6g}s",
            f"relative  : all/some={self.ratio_all:.4f}  "
            f"none/some={self.ratio_none:.4f}",
        ]
        return "\n".join(lines)


def run_strategies(
    workflow: Workflow,
    processors: int,
    pfail: float = 1e-3,
    ccr: Optional[float] = None,
    seed: SeedLike = None,
    method: str = "pathapprox",
    bandwidth: float = 100e6,
    linearizer: str = "random",
    save_final_outputs: bool = True,
) -> StrategyOutcome:
    """Run the full paper pipeline on one workflow.

    Parameters mirror §VI-A: ``pfail`` fixes λ via the workflow's mean
    task weight; ``ccr`` (if given) rescales file sizes to the target
    Communication-to-Computation Ratio; ``method`` selects the
    expected-makespan estimator.
    """
    lam = lambda_from_pfail(pfail, workflow.mean_weight)
    platform = Platform(processors, failure_rate=lam, bandwidth=bandwidth)
    if ccr is not None:
        workflow = scale_to_ccr(workflow, platform, ccr)
    tree = mspgify(workflow).tree
    schedule = allocate(
        workflow, tree, processors, seed=seed, linearizer=linearizer
    )
    plan_some = ckpt_some_plan(
        workflow, schedule, platform, save_final_outputs=save_final_outputs
    )
    plan_all = ckpt_all_plan(
        workflow, schedule, platform, save_final_outputs=save_final_outputs
    )
    dag_some = build_segment_dag(workflow, schedule, plan_some, platform)
    dag_all = build_segment_dag(workflow, schedule, plan_all, platform)
    return StrategyOutcome(
        workflow=workflow,
        platform=platform,
        tree=tree,
        schedule=schedule,
        plan_some=plan_some,
        plan_all=plan_all,
        dag_some=dag_some,
        dag_all=dag_all,
        em_some=expected_makespan(dag_some, method),
        em_all=expected_makespan(dag_all, method),
        em_none=ckptnone_expected_makespan(workflow, schedule, platform),
    )
