"""High-level one-call pipeline: generate/transform → schedule → checkpoint
→ evaluate all three strategies.

This is the back-compat facade the examples and the CLI use; since the
engine refactor it is a thin wrapper over the staged
:class:`repro.engine.Pipeline` — each stage remains available
individually there, and sweep-shaped workloads should use
:func:`repro.engine.run_sweep`, which reuses the M-SPG tree and schedule
across grid cells instead of recomputing them per call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ccr import ccr_of
from repro.checkpoint.plan import CheckpointPlan
from repro.engine.pipeline import Pipeline
from repro.makespan.probdag import ProbDAG
from repro.mspg.expr import MSPG
from repro.mspg.graph import Workflow
from repro.platform import Platform
from repro.scheduling.schedule import Schedule
from repro.util.rng import SeedLike

__all__ = ["StrategyOutcome", "run_strategies"]


@dataclass
class StrategyOutcome:
    """Everything produced by one :func:`run_strategies` call."""

    workflow: Workflow
    platform: Platform
    tree: MSPG
    schedule: Schedule
    plan_some: CheckpointPlan
    plan_all: CheckpointPlan
    dag_some: ProbDAG
    dag_all: ProbDAG
    em_some: float
    em_all: float
    em_none: float

    @property
    def ratio_all(self) -> float:
        """``EM(CKPTALL) / EM(CKPTSOME)`` — > 1 means CKPTSOME wins."""
        return self.em_all / self.em_some

    @property
    def ratio_none(self) -> float:
        """``EM(CKPTNONE) / EM(CKPTSOME)`` — > 1 means CKPTSOME wins."""
        return self.em_none / self.em_some

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        wf, plat = self.workflow, self.platform
        lines = [
            f"workflow  : {wf.name} ({wf.n_tasks} tasks, {wf.n_edges} edges, "
            f"CCR={ccr_of(wf, plat):.4g})",
            f"platform  : p={plat.processors}, λ={plat.failure_rate:.3g}/s, "
            f"bw={plat.bandwidth:.3g} B/s",
            f"schedule  : {len(self.schedule.superchains)} superchains on "
            f"{len(self.schedule.used_processors())} processors",
            f"checkpoints: CKPTSOME {self.plan_some.n_segments} / "
            f"CKPTALL {self.plan_all.n_segments}",
            f"E[makespan]: some={self.em_some:.6g}s  all={self.em_all:.6g}s  "
            f"none={self.em_none:.6g}s",
            f"relative  : all/some={self.ratio_all:.4f}  "
            f"none/some={self.ratio_none:.4f}",
        ]
        return "\n".join(lines)


def run_strategies(
    workflow: Workflow,
    processors: int,
    pfail: float = 1e-3,
    ccr: Optional[float] = None,
    seed: SeedLike = None,
    method: str = "pathapprox",
    bandwidth: float = 100e6,
    linearizer: str = "random",
    save_final_outputs: bool = True,
    pipeline: Optional[Pipeline] = None,
    eval_seed: Optional[int] = None,
) -> StrategyOutcome:
    """Run the full paper pipeline on one workflow.

    Parameters mirror §VI-A: ``pfail`` fixes λ via the workflow's mean
    task weight; ``ccr`` (if given) rescales file sizes to the target
    Communication-to-Computation Ratio; ``method`` selects the
    expected-makespan estimator.  ``eval_seed`` pins the sampling
    stream of stochastic estimators (Monte Carlo); the default ``None``
    keeps the historical fresh-entropy draw (closed-form methods ignore
    it either way).  ``repro evaluate --eval-seed-policy content``
    derives it through the :func:`repro.engine.sweep.cell_eval_seed`
    contract.

    Pass an existing :class:`repro.engine.Pipeline` via ``pipeline`` to
    share its artifact cache across calls: repeat calls on the same
    workflow then skip the ``mspgify`` stage, and — when ``seed`` is an
    int — the ``allocate`` stage too (``seed=None`` asks for a fresh
    random schedule, which is never cached).  By default each call runs
    on a fresh pipeline and behaves exactly like the historical
    monolithic implementation.
    """
    pipe = pipeline if pipeline is not None else Pipeline()
    base = workflow  # unscaled: keys the CCR-invariant stage caches
    platform = pipe.platform_for(workflow, processors, pfail, bandwidth)
    if ccr is not None:
        workflow = pipe.scale(workflow, platform, ccr)
    # The tree and schedule are file-size-invariant (the M-SPG is pure
    # structure; the scheduler ignores storage costs), so they are built
    # from — and cached against — the unscaled workflow: a CCR sweep
    # over a shared pipeline reuses both across the axis, exactly like
    # the engine's sweep executor.
    tree = pipe.mspg_tree(base)
    schedule = pipe.schedule_for(
        base, processors, seed=seed, linearizer=linearizer, tree=tree
    )
    plan_some, plan_all = pipe.plans(
        workflow, schedule, platform, save_final_outputs
    )
    dag_some = pipe.segment_dag(workflow, schedule, plan_some, platform)
    dag_all = pipe.segment_dag(workflow, schedule, plan_all, platform)
    return StrategyOutcome(
        workflow=workflow,
        platform=platform,
        tree=tree,
        schedule=schedule,
        plan_some=plan_some,
        plan_all=plan_all,
        dag_some=dag_some,
        dag_all=dag_all,
        em_some=pipe.evaluate(dag_some, method, eval_seed),
        em_all=pipe.evaluate(dag_all, method, eval_seed),
        em_none=pipe.evaluate_none(
            base, workflow, schedule, platform,
            cacheable=isinstance(seed, int),
        ),
    )
