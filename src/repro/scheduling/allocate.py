"""Recursive list scheduling (procedure ``Allocate`` of Algorithm 1).

``Allocate(G, P)`` decomposes the M-SPG as
``G = C ;→ (G1 ‖ … ‖ Gn) ;→ G_{n+1}`` with ``C`` the longest possible
chain (the paper notes this choice avoids infinitely-recursing
decompositions), then:

* schedules the chain ``C`` on the first processor (one superchain);
* if a single processor is available, linearises the whole parallel part
  on it (one superchain); otherwise calls ``PropMap`` and recurses on each
  component with its processor share;
* recurses on the tail ``G_{n+1}`` with the full processor set.

On canonical expression trees (see :mod:`repro.mspg.expr`) the
decomposition is a pattern match: a :class:`Series`' children alternate
between atoms (the chain prefix) and :class:`Parallel` nodes, so the head
chain is the maximal run of leading atoms and the parallel part is the
next child's components.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import SchedulingError
from repro.mspg.expr import (
    EMPTY,
    MSPG,
    EmptyGraph,
    Parallel,
    Series,
    TaskNode,
    parallel,
    series,
    tree_tasks,
)
from repro.mspg.graph import Workflow
from repro.mspg.transform import mspgify
from repro.scheduling.linearize import linearize
from repro.scheduling.propmap import propmap
from repro.scheduling.schedule import Schedule
from repro.util.rng import SeedLike, as_rng

__all__ = ["decompose_head", "allocate", "schedule_workflow"]


def decompose_head(tree: MSPG) -> Tuple[List[str], List[MSPG], MSPG]:
    """Split ``tree`` into ``(chain C, parallel components, tail)``.

    ``C`` is the longest chain of atomic tasks at the head of the series
    decomposition; the parallel components are the children of the first
    non-atom child (a :class:`Parallel` in canonical form); the tail is
    the series of the remaining children.
    """
    if isinstance(tree, EmptyGraph):
        return [], [], EMPTY
    if isinstance(tree, TaskNode):
        return [tree.task_id], [], EMPTY
    if isinstance(tree, Parallel):
        return [], list(tree.children), EMPTY
    if not isinstance(tree, Series):
        raise SchedulingError(f"unexpected tree node {type(tree).__name__}")

    chain: List[str] = []
    i = 0
    children = tree.children
    while i < len(children) and isinstance(children[i], TaskNode):
        chain.append(children[i].task_id)  # type: ignore[union-attr]
        i += 1
    if i == len(children):
        return chain, [], EMPTY
    head = children[i]
    if not isinstance(head, Parallel):
        raise SchedulingError(
            "non-canonical tree: Series child is neither atom nor Parallel"
        )
    tail = series(*children[i + 1 :])
    return chain, list(head.children), tail


def allocate(
    workflow: Workflow,
    tree: MSPG,
    processors: int,
    seed: SeedLike = None,
    linearizer: str = "random",
) -> Schedule:
    """Schedule ``tree`` (over ``workflow``'s tasks) on ``processors``.

    Returns a :class:`~repro.scheduling.schedule.Schedule` of superchains.
    ``seed`` controls the random linearisation; reuse the same seed to
    reproduce the paper's "one schedule per configuration" methodology.
    """
    if processors < 1:
        raise SchedulingError(f"need >= 1 processor, got {processors}")
    rng = as_rng(seed)
    weights = {t.id: t.weight for t in workflow.tasks()}
    schedule = Schedule(processors)

    def on_one_processor(sub: MSPG, proc: int) -> None:
        tasks = list(tree_tasks(sub))
        if not tasks:
            return
        order = linearize(tasks, workflow, method=linearizer, seed=rng)
        schedule.add_superchain(proc, order)

    def _allocate(sub: MSPG, procs: Sequence[int]) -> None:
        if isinstance(sub, EmptyGraph):
            return
        if len(procs) == 1:
            # A sub-M-SPG on a single processor is linearised wholesale
            # into ONE superchain (the paper's Figure 3: the box
            # {T2, T5, T6, T10} including its head chain and tail), so
            # Algorithm 2 may keep data in memory across its internal
            # chain/parallel boundaries.
            on_one_processor(sub, procs[0])
            return
        chain, components, tail = decompose_head(sub)
        if chain:
            schedule.add_superchain(procs[0], chain)
        if components:
            graphs, counts = propmap(components, len(procs), weights)
            i = 0
            for graph, count in zip(graphs, counts):
                _allocate(graph, procs[i : i + count])
                i += count
        _allocate(tail, procs)

    _allocate(tree, list(range(processors)))
    if schedule.n_tasks != workflow.n_tasks:
        raise SchedulingError(
            f"allocate scheduled {schedule.n_tasks} of {workflow.n_tasks} tasks"
        )
    return schedule


def schedule_workflow(
    workflow: Workflow,
    processors: int,
    seed: SeedLike = None,
    linearizer: str = "random",
    tree: Optional[MSPG] = None,
) -> Tuple[Schedule, MSPG]:
    """Convenience wrapper: ``mspgify`` (if needed) then :func:`allocate`.

    Returns the schedule and the M-SPG tree that produced it.
    """
    if tree is None:
        tree = mspgify(workflow).tree
    return allocate(workflow, tree, processors, seed=seed, linearizer=linearizer), tree
