"""List scheduling of M-SPG workflows (Algorithm 1 of the paper).

* :mod:`repro.scheduling.schedule` — :class:`Superchain` / :class:`Schedule`
  datatypes;
* :mod:`repro.scheduling.propmap` — the proportional-mapping processor
  allocation (procedure ``PropMap``);
* :mod:`repro.scheduling.linearize` — superchain linearization
  (procedure ``OnOneProcessor``), random topological sort plus the
  min-live-volume heuristic sketched in the paper's future work (§VIII);
* :mod:`repro.scheduling.allocate` — the recursive ``Allocate`` procedure
  tying everything together.
"""

from repro.scheduling.schedule import Schedule, Superchain, validate_schedule
from repro.scheduling.propmap import propmap
from repro.scheduling.linearize import linearize, LINEARIZERS
from repro.scheduling.allocate import allocate, decompose_head, schedule_workflow

__all__ = [
    "Schedule",
    "Superchain",
    "validate_schedule",
    "propmap",
    "linearize",
    "LINEARIZERS",
    "allocate",
    "decompose_head",
    "schedule_workflow",
]
