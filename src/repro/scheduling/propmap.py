"""Proportional mapping (procedure ``PropMap`` of Algorithm 1).

Allocates ``p`` processors to ``n`` parallel M-SPG components
proportionally to their total task weight, following the "proportional
mapping" heuristic of Pothen & Sun that the paper adopts (§II-C):

* ``n >= p`` — components are sorted by non-increasing weight and greedily
  merged (longest-processing-time-first binning) into ``p`` groups, each
  executing on one processor;
* ``n < p`` — each component gets its own partition, and the ``p - n``
  surplus processors are handed one at a time to the currently heaviest
  component, whose effective weight is divided accordingly
  (``W ← W · (1 − 1/procs)``, i.e. ``W = weight / procs`` — the linear
  speedup assumption of the heuristic).

Ties broken by lowest index, matching a deterministic reading of the
paper's ``argmin``/``argmax``.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple

from repro.errors import SchedulingError
from repro.mspg.expr import EMPTY, MSPG, EmptyGraph, parallel, tree_weight

__all__ = ["propmap"]


def propmap(
    graphs: Sequence[MSPG],
    p: int,
    weights: Mapping[str, float],
) -> Tuple[List[MSPG], List[int]]:
    """Partition parallel components over ``p`` processors.

    Returns ``(Graphs, procNums)`` with ``len(Graphs) == len(procNums) ==
    min(n, p)`` and ``sum(procNums) <= p`` (equality when ``n < p``).
    ``weights`` maps task ids to weights (typically
    ``{t.id: t.weight for t in workflow.tasks()}``).
    """
    graphs = [g for g in graphs if not isinstance(g, EmptyGraph)]
    n = len(graphs)
    if p < 1:
        raise SchedulingError(f"propmap needs p >= 1, got {p}")
    if n == 0:
        return [], []

    k = min(n, p)
    out: List[MSPG] = [EMPTY] * k
    proc_nums: List[int] = [1] * k
    w: List[float] = [0.0] * k

    order = sorted(
        range(n), key=lambda i: (-tree_weight(graphs[i], weights), i)
    )

    if n >= p:
        for i in order:
            j = min(range(k), key=lambda q: (w[q], q))
            w[j] += tree_weight(graphs[i], weights)
            out[j] = parallel(out[j], graphs[i])
    else:
        for slot, i in enumerate(order):
            out[slot] = graphs[i]
            w[slot] = tree_weight(graphs[i], weights)
        surplus = p - n
        while surplus:
            j = max(range(k), key=lambda q: (w[q], -q))
            proc_nums[j] += 1
            w[j] *= 1.0 - 1.0 / proc_nums[j]
            surplus -= 1
    return out, proc_nums
