"""Schedule and superchain datatypes.

A **superchain** (§II-C) is the task set of a sub-M-SPG that was assigned
to a single processor, linearised into an execution sequence.  Its *entry
tasks* have predecessors outside the superchain; its *exit tasks* have
successors outside.  The M-SPG structure guarantees that predecessors of
entry tasks are exit tasks of earlier superchains, which is what makes the
"checkpoint every superchain" rule remove all crossover dependencies.

A :class:`Schedule` is an ordered list of superchains per processor.  It
deliberately stores only task ids: the owning workflow provides weights
and data, so one schedule can be re-costed under rescaled file sizes (the
CCR sweeps re-use one schedule per configuration, as the paper does —
"communications with stable storage are ignored in this phase", §II-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Sequence, Set, Tuple

from repro.errors import SchedulingError
from repro.mspg.graph import Workflow
from repro.util.toposort import is_topological_order, topological_order

__all__ = ["Superchain", "Schedule", "validate_schedule"]


@dataclass(frozen=True)
class Superchain:
    """A linearised sub-M-SPG assigned to one processor.

    ``index`` is the global creation index; superchains on one processor
    execute in increasing ``index`` order.
    """

    index: int
    processor: int
    tasks: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.tasks:
            raise SchedulingError("superchain must contain at least one task")
        if len(set(self.tasks)) != len(self.tasks):
            raise SchedulingError("superchain contains a duplicated task")

    def __len__(self) -> int:
        return len(self.tasks)

    def entry_tasks(self, workflow: Workflow) -> List[str]:
        """Tasks with at least one predecessor outside the superchain."""
        inside = set(self.tasks)
        return [t for t in self.tasks if workflow.preds(t) - inside]

    def exit_tasks(self, workflow: Workflow) -> List[str]:
        """Tasks with at least one successor outside the superchain."""
        inside = set(self.tasks)
        return [t for t in self.tasks if workflow.succs(t) - inside]


class Schedule:
    """An ordered assignment of superchains to processors."""

    def __init__(self, n_processors: int) -> None:
        if n_processors < 1:
            raise SchedulingError(
                f"schedule needs >= 1 processor, got {n_processors}"
            )
        self.n_processors = n_processors
        self.superchains: List[Superchain] = []
        self._by_processor: List[List[Superchain]] = [
            [] for _ in range(n_processors)
        ]
        self._task_location: Dict[str, Tuple[int, int]] = {}

    def add_superchain(self, processor: int, tasks: Sequence[str]) -> Superchain:
        """Append a superchain to ``processor``'s execution sequence."""
        if not (0 <= processor < self.n_processors):
            raise SchedulingError(
                f"processor {processor} out of range [0, {self.n_processors})"
            )
        sc = Superchain(len(self.superchains), processor, tuple(tasks))
        for pos, t in enumerate(sc.tasks):
            if t in self._task_location:
                raise SchedulingError(f"task {t!r} scheduled twice")
            self._task_location[t] = (sc.index, pos)
        self.superchains.append(sc)
        self._by_processor[processor].append(sc)
        return sc

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def n_tasks(self) -> int:
        """Total number of scheduled tasks."""
        return len(self._task_location)

    def processor_sequence(self, processor: int) -> List[Superchain]:
        """Superchains of ``processor`` in execution order."""
        if not (0 <= processor < self.n_processors):
            raise SchedulingError(
                f"processor {processor} out of range [0, {self.n_processors})"
            )
        return list(self._by_processor[processor])

    def location(self, task_id: str) -> Tuple[int, int]:
        """``(superchain index, position)`` of a task."""
        try:
            return self._task_location[task_id]
        except KeyError:
            raise SchedulingError(f"task {task_id!r} is not scheduled") from None

    def superchain_of(self, task_id: str) -> Superchain:
        """The superchain containing ``task_id``."""
        return self.superchains[self.location(task_id)[0]]

    def processor_of(self, task_id: str) -> int:
        """The processor executing ``task_id``."""
        return self.superchain_of(task_id).processor

    def task_sequence(self, processor: int) -> List[str]:
        """All tasks of ``processor`` in execution order."""
        out: List[str] = []
        for sc in self._by_processor[processor]:
            out.extend(sc.tasks)
        return out

    def used_processors(self) -> List[int]:
        """Processors with at least one superchain."""
        return [p for p in range(self.n_processors) if self._by_processor[p]]

    def __iter__(self) -> Iterator[Superchain]:
        return iter(self.superchains)

    def __repr__(self) -> str:
        return (
            f"Schedule(p={self.n_processors}, superchains={len(self.superchains)}, "
            f"tasks={self.n_tasks})"
        )


def validate_schedule(schedule: Schedule, workflow: Workflow) -> None:
    """Assert a schedule is a legal execution of the workflow.

    Checks:

    1. every workflow task is scheduled exactly once;
    2. within each superchain, the linearisation respects the workflow
       dependencies among the superchain's tasks;
    3. the superchain-level precedence graph (data dependencies between
       superchains plus per-processor sequencing) is acyclic, i.e. the
       execution cannot deadlock.
    """
    scheduled = set()
    for sc in schedule.superchains:
        scheduled.update(sc.tasks)
    missing = set(workflow.task_ids) - scheduled
    extra = scheduled - set(workflow.task_ids)
    if missing or extra:
        raise SchedulingError(
            f"schedule/workflow mismatch: missing={sorted(missing)[:5]} "
            f"extra={sorted(extra)[:5]}"
        )

    for sc in schedule.superchains:
        inside = set(sc.tasks)
        succs = {
            t: [v for v in workflow.succs(t) if v in inside] for t in sc.tasks
        }
        if not is_topological_order(sc.tasks, succs):
            raise SchedulingError(
                f"superchain {sc.index} linearisation violates dependencies"
            )

    # Superchain-level acyclicity.
    n = len(schedule.superchains)
    succs_sc: Dict[int, Set[int]] = {i: set() for i in range(n)}
    for sc in schedule.superchains:
        for t in sc.tasks:
            for v in workflow.succs(t):
                j = schedule.location(v)[0]
                if j != sc.index:
                    succs_sc[sc.index].add(j)
    for p in range(schedule.n_processors):
        seq = schedule.processor_sequence(p)
        for a, b in zip(seq, seq[1:]):
            succs_sc[a.index].add(b.index)
    topological_order(list(range(n)), succs_sc)  # raises CycleError on cycle
