"""Superchain linearisation (procedure ``OnOneProcessor``).

The paper linearises a sub-M-SPG on a single processor with a *random*
topological sort (Algorithm 1, line 39) and notes in its future work
(§VIII) that a smarter order could "reduce the total volume of output
files, in the hope of reducing the total checkpointing cost" — a relative
of the NP-complete *sum cut* problem.

Three linearisers are provided:

* ``"random"`` — the paper's choice: uniform ready-task tie-breaking;
* ``"deterministic"`` — FIFO Kahn order (reproducible without a seed);
* ``"minlive"`` — the future-work heuristic: greedily pick the ready task
  that minimises the volume of live (produced but not yet fully consumed)
  data, breaking ties at random.  Benchmark
  ``benchmarks/bench_ablation_linearize.py`` measures its effect.

Only dependencies *within* the superchain's task set constrain the order;
cross-superchain data always transits through stable storage.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.errors import SchedulingError
from repro.mspg.graph import Workflow
from repro.util.rng import SeedLike, as_rng
from repro.util.toposort import random_topological_order, topological_order

__all__ = ["linearize", "LINEARIZERS"]


def _induced_succs(
    tasks: Sequence[str], workflow: Workflow
) -> Dict[str, List[str]]:
    inside = set(tasks)
    return {t: [v for v in workflow.succs(t) if v in inside] for t in tasks}


def _linearize_random(
    tasks: Sequence[str], workflow: Workflow, seed: SeedLike
) -> List[str]:
    return random_topological_order(tasks, _induced_succs(tasks, workflow), seed)


def _linearize_deterministic(
    tasks: Sequence[str], workflow: Workflow, seed: SeedLike
) -> List[str]:
    return topological_order(tasks, _induced_succs(tasks, workflow))


def _linearize_minlive(
    tasks: Sequence[str], workflow: Workflow, seed: SeedLike
) -> List[str]:
    """Greedy min-live-volume topological order.

    The live volume after scheduling a prefix is the total size of files
    produced by the prefix that still have an unscheduled consumer within
    the superchain.  At each step we pick the ready task minimising the
    resulting live volume (its own outputs enter; any file whose last
    in-chain consumer it is leaves).
    """
    rng = as_rng(seed)
    inside = set(tasks)
    succs = _induced_succs(tasks, workflow)
    indeg = {t: 0 for t in tasks}
    for t in tasks:
        for v in succs[t]:
            indeg[v] += 1

    # remaining in-chain consumers per file
    remaining: Dict[str, int] = {}
    for t in tasks:
        for f in workflow.inputs(t):
            producer = workflow.producer(f)
            if producer in inside:
                remaining[f] = remaining.get(f, 0) + 1

    def delta(v: str) -> Tuple[float, float]:
        gain = sum(
            workflow.file_size(f)
            for f in workflow.outputs(v)
            if remaining.get(f, 0) > 0
        )
        released = sum(
            workflow.file_size(f)
            for f in workflow.inputs(v)
            if remaining.get(f, 0) == 1
        )
        # Net change first; gross new volume breaks the frequent 0-net ties
        # (pass-through tasks) in favour of small intermediates.
        return (gain - released, gain)

    ready = [t for t in tasks if indeg[t] == 0]
    out: List[str] = []
    while ready:
        scores = [delta(v) for v in ready]
        best = min(scores)
        candidates = [i for i, s in enumerate(scores) if s == best]
        i = candidates[int(rng.integers(0, len(candidates)))]
        ready[i], ready[-1] = ready[-1], ready[i]
        v = ready.pop()
        out.append(v)
        for f in workflow.inputs(v):
            if f in remaining:
                remaining[f] -= 1
        for w in succs[v]:
            indeg[w] -= 1
            if indeg[w] == 0:
                ready.append(w)
    if len(out) != len(tasks):
        raise SchedulingError("cycle among superchain tasks")
    return out


LINEARIZERS: Dict[str, Callable[[Sequence[str], Workflow, SeedLike], List[str]]] = {
    "random": _linearize_random,
    "deterministic": _linearize_deterministic,
    "minlive": _linearize_minlive,
}


def linearize(
    tasks: Sequence[str],
    workflow: Workflow,
    method: str = "random",
    seed: SeedLike = None,
) -> List[str]:
    """Linearise ``tasks`` (a sub-M-SPG's atoms) for one processor."""
    try:
        fn = LINEARIZERS[method]
    except KeyError:
        raise SchedulingError(
            f"unknown linearizer {method!r}; choose from {sorted(LINEARIZERS)}"
        ) from None
    return fn(tasks, workflow, seed)
