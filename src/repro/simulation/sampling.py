"""Sampling of segment execution times under exponential failures.

A segment of failure-free cost ``X`` on a processor with exponential
failure rate ``λ`` (no downtime, as in the paper's model) executes as a
sequence of attempts: each attempt fails within its ``X``-second window
with probability ``1 − e^{−λX}``; a failed attempt wastes a
truncated-exponential amount of time on ``[0, X]``, and the segment
completes at the first successful attempt:

.. math:: T = X + \\sum_{i=1}^{K} L_i,\\qquad K \\sim \\mathrm{Geom},\\;
          L_i \\sim \\mathrm{TruncExp}(λ; X)

with ``E[T] = (e^{λX} − 1)/λ`` — the classical result the first-order
model (Equation (1)) truncates at order ``λ²``.

Sampling is vectorised: failure *counts* come from one geometric draw per
matrix cell, and the (rare) loss times are drawn in a single flat batch
and scattered back with ``np.add.at``.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from repro.errors import SimulationError
from repro.util.rng import SeedLike, as_rng

__all__ = [
    "sample_segment_times",
    "expected_exponential_time",
    "truncated_exponential",
]


def expected_exponential_time(span: float, failure_rate: float) -> float:
    """Exact expected execution time ``(e^{λX} − 1)/λ`` of a segment.

    Tends to ``X·(1 + λX/2)`` (Equation (2)) as ``λX → 0``.
    """
    if span < 0:
        raise SimulationError(f"span must be >= 0, got {span}")
    if failure_rate == 0 or span == 0:
        return span
    lx = failure_rate * span
    # expm1 keeps precision for small λX.
    return math.expm1(lx) / failure_rate


def truncated_exponential(
    rng: np.random.Generator, rate: float, upper: Union[float, np.ndarray], size: int
) -> np.ndarray:
    """Draw ``size`` samples of Exp(rate) conditioned on being < ``upper``.

    Inverse-CDF: ``F(t) = (1 − e^{−rate·t}) / (1 − e^{−rate·upper})``.
    """
    u = rng.random(size)
    scale = -np.expm1(-rate * np.asarray(upper, dtype=float))
    return -np.log1p(-u * scale) / rate


def sample_segment_times(
    spans: np.ndarray,
    failure_rate: float,
    trials: int,
    seed: SeedLike = None,
) -> np.ndarray:
    """Sample a ``(trials, n)`` matrix of segment execution times.

    ``spans`` holds each segment's failure-free cost ``X``; each matrix
    cell is an independent execution (attempts until success).
    """
    spans = np.asarray(spans, dtype=float)
    if spans.ndim != 1:
        raise SimulationError(f"spans must be 1-D, got shape {spans.shape}")
    if np.any(spans < 0):
        raise SimulationError("spans must be >= 0")
    if trials < 1:
        raise SimulationError(f"trials must be >= 1, got {trials}")
    rng = as_rng(seed)
    n = spans.size
    out = np.tile(spans, (trials, 1))
    if failure_rate == 0 or n == 0:
        return out

    # Failure count per cell: geometric number of attempts (>= 1) minus
    # the final success.
    success_p = np.exp(-failure_rate * spans)
    # rng.geometric requires p > 0; λX is finite so success_p > 0.
    attempts = rng.geometric(np.broadcast_to(success_p, out.shape))
    failures = attempts - 1
    total_failures = int(failures.sum())
    if total_failures == 0:
        return out

    rows, cols = np.nonzero(failures)
    counts = failures[rows, cols]
    flat_rows = np.repeat(rows, counts)
    flat_cols = np.repeat(cols, counts)
    losses = truncated_exponential(
        rng, failure_rate, spans[flat_cols], flat_rows.size
    )
    np.add.at(out, (flat_rows, flat_cols), losses)
    return out
