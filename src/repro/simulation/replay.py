"""Single-trajectory replay with a full event log.

Unlike the batch simulator (which only returns makespans),
:func:`replay_plan` walks one execution and records every attempt,
failure and completion, giving a timeline that examples can render as a
Gantt-style report: *when* each segment ran, how often it was hit, and
how much time recovery wasted.  The stochastic model is identical to
:mod:`repro.simulation.batch` (exponential failures, truncated-
exponential losses, instantaneous reboot).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.checkpoint.plan import CheckpointPlan
from repro.errors import SimulationError
from repro.mspg.graph import Workflow
from repro.platform import Platform
from repro.scheduling.schedule import Schedule
from repro.simulation.events import Event
from repro.util.rng import SeedLike, as_rng
from repro.util.toposort import topological_order

__all__ = ["ExecutionTrace", "replay_plan"]


@dataclass
class ExecutionTrace:
    """Outcome of one replayed execution."""

    makespan: float
    events: List[Event] = field(default_factory=list)
    n_failures: int = 0
    wasted_seconds: float = 0.0
    segment_finish: Dict[int, float] = field(default_factory=dict)

    def failures_by_processor(self) -> Dict[int, int]:
        """Failure counts per processor."""
        out: Dict[int, int] = {}
        for e in self.events:
            if e.kind == "failure":
                out[e.processor] = out.get(e.processor, 0) + 1
        return out

    def gantt_lines(self, width: int = 72) -> List[str]:
        """Crude per-processor timeline (``#`` running, ``x`` failure)."""
        if not self.events:
            return []
        procs = sorted({e.processor for e in self.events})
        scale = width / max(self.makespan, 1e-9)
        lines = []
        for p in procs:
            row = [" "] * width
            for e in self.events:
                if e.processor != p:
                    continue
                c = min(width - 1, int(e.time * scale))
                if e.kind == "attempt":
                    row[c] = "#" if row[c] != "x" else row[c]
                elif e.kind == "failure":
                    row[c] = "x"
            lines.append(f"P{p:<3d} |" + "".join(row) + "|")
        return lines


def replay_plan(
    workflow: Workflow,
    schedule: Schedule,
    plan: CheckpointPlan,
    platform: Platform,
    seed: SeedLike = None,
) -> ExecutionTrace:
    """Replay one failure-injected execution of a checkpointed schedule."""
    rng = as_rng(seed)
    lam = platform.failure_rate

    # Segment-level dependency structure (same construction as the
    # segment DAG, kept explicit here to attach ready-time semantics).
    nseg = plan.n_segments
    preds: Dict[int, List[int]] = {i: [] for i in range(nseg)}
    succs: Dict[int, List[int]] = {i: [] for i in range(nseg)}

    def add_edge(a: int, b: int) -> None:
        succs[a].append(b)
        preds[b].append(a)

    proc_last: Dict[int, int] = {}
    for seg in plan.segments:
        prev = proc_last.get(seg.processor)
        if prev is not None:
            add_edge(prev, seg.index)
        proc_last[seg.processor] = seg.index
    for u, v in workflow.edges():
        su, sv = plan.segment_of(u).index, plan.segment_of(v).index
        if su != sv and sv not in succs[su]:
            add_edge(su, sv)

    order = topological_order(list(range(nseg)), succs)
    trace = ExecutionTrace(makespan=0.0)
    proc_free: Dict[int, float] = {}
    finish: Dict[int, float] = {}

    for idx in order:
        seg = plan.segments[idx]
        ready = max((finish[q] for q in preds[idx]), default=0.0)
        start = max(ready, proc_free.get(seg.processor, 0.0))
        t = start
        span = seg.span
        while True:
            trace.events.append(
                Event(t, "attempt", seg.processor, idx, f"span={span:.3f}s")
            )
            if lam > 0.0:
                failure_at = float(rng.exponential(1.0 / lam))
            else:
                failure_at = math.inf
            if failure_at < span:
                t += failure_at
                trace.n_failures += 1
                trace.wasted_seconds += failure_at
                trace.events.append(
                    Event(
                        t,
                        "failure",
                        seg.processor,
                        idx,
                        f"lost={failure_at:.3f}s",
                    )
                )
                continue
            t += span
            trace.events.append(
                Event(t, "complete", seg.processor, idx, f"tasks={len(seg.tasks)}")
            )
            break
        finish[idx] = t
        proc_free[seg.processor] = t
        trace.segment_finish[idx] = t
        trace.makespan = max(trace.makespan, t)
    return trace
