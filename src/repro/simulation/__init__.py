"""Failure-injecting execution simulation.

The paper validates its first-order estimates with Monte Carlo sampling
of the 2-state model.  This package goes one step further and simulates
the *true* exponential-failure execution (any number of failures per
segment, exact truncated-exponential loss times):

* :mod:`repro.simulation.sampling` — vectorised sampling of segment
  execution times under exponential fail-stop failures;
* :mod:`repro.simulation.batch` — batch simulation of checkpointed
  schedules (CKPTALL/CKPTSOME plans) and of the CKPTNONE restart model;
* :mod:`repro.simulation.replay` — single-trajectory replay with a full
  event log (attempts, failures, recoveries), for inspection and examples.

Agreement between the batch simulator and the first-order estimators as
``λ → 0`` is asserted in the test suite; the gap at higher ``λ``
quantifies the quality of the paper's approximation.
"""

from repro.simulation.sampling import sample_segment_times, expected_exponential_time
from repro.simulation.batch import (
    SimulationResult,
    simulate_plan,
    simulate_ckptnone,
)
from repro.simulation.replay import replay_plan, ExecutionTrace
from repro.simulation.events import Event

__all__ = [
    "sample_segment_times",
    "expected_exponential_time",
    "SimulationResult",
    "simulate_plan",
    "simulate_ckptnone",
    "replay_plan",
    "ExecutionTrace",
    "Event",
]
