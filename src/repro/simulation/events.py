"""Event datatypes for single-trajectory replay."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["Event", "EVENT_KINDS"]

#: ``attempt`` — a segment attempt starts; ``failure`` — the attempt was
#: killed by a processor failure; ``complete`` — the attempt succeeded and
#: the segment's checkpoint (if any) is on stable storage.
EVENT_KINDS = ("attempt", "failure", "complete")


@dataclass(frozen=True)
class Event:
    """One timestamped occurrence during a replayed execution."""

    time: float
    kind: str
    processor: int
    segment: int
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")
        if self.time < 0:
            raise ValueError(f"negative event time {self.time}")
