"""Batch simulation of checkpointed executions and the CKPTNONE restart model.

``simulate_plan`` is the library's ground truth for CKPTALL/CKPTSOME: it
samples every segment's execution time under *exponential* failures (any
number of retries, exact truncated-exponential losses — strictly more
faithful than the 2-state model) and propagates completion times through
the segment DAG with the shared longest-path kernel.

``simulate_ckptnone`` implements the restart model underlying Theorem 1:
the whole schedule is one atomic unit of failure-free length ``W_par``
exposed to the union of the used processors' failure processes (rate
``p·λ``); any failure restarts it from scratch.  (The true CKPTNONE
execution could restart only the affected crossover closure, but
evaluating that is the paper's #P-complete result — the restart model is
the semantics the paper's estimator prices.)
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt
from typing import Optional, Tuple

import numpy as np

from repro.checkpoint.plan import CheckpointPlan
from repro.errors import SimulationError
from repro.makespan.ckptnone import failure_free_makespan
from repro.makespan.probdag import ProbDAG
from repro.makespan.segment_dag import build_segment_dag
from repro.mspg.graph import Workflow
from repro.platform import Platform
from repro.scheduling.schedule import Schedule
from repro.simulation.sampling import sample_segment_times, truncated_exponential
from repro.util.rng import SeedLike, as_rng

__all__ = ["SimulationResult", "simulate_plan", "simulate_ckptnone"]


@dataclass(frozen=True)
class SimulationResult:
    """Summary of a batch of simulated executions."""

    mean: float
    stderr: float
    trials: int
    samples: np.ndarray

    @property
    def ci95(self) -> Tuple[float, float]:
        """Approximate 95% confidence interval for the expected makespan."""
        delta = 1.96 * self.stderr
        return (self.mean - delta, self.mean + delta)


def _summarise(samples: np.ndarray) -> SimulationResult:
    trials = samples.size
    mean = float(samples.mean())
    stderr = (
        float(samples.std(ddof=1)) / sqrt(trials) if trials > 1 else 0.0
    )
    return SimulationResult(mean=mean, stderr=stderr, trials=trials, samples=samples)


def simulate_plan(
    workflow: Workflow,
    schedule: Schedule,
    plan: CheckpointPlan,
    platform: Platform,
    trials: int = 10_000,
    seed: SeedLike = None,
    dag: Optional[ProbDAG] = None,
    batch: int = 8192,
) -> SimulationResult:
    """Simulate a checkpointed execution under exponential failures.

    ``dag`` may pass a prebuilt segment DAG (structure only; its 2-state
    probabilities are ignored — durations are sampled exactly).
    """
    if dag is None:
        dag = build_segment_dag(workflow, schedule, plan, platform)
    # Segment spans in the DAG's topological node order.
    spans = dag.base
    rng = as_rng(seed)
    out = np.empty(trials)
    done = 0
    while done < trials:
        m = min(batch, trials - done)
        durations = sample_segment_times(spans, platform.failure_rate, m, rng)
        out[done : done + m] = dag.makespans(durations)
        done += m
    return _summarise(out)


def simulate_ckptnone(
    workflow: Workflow,
    schedule: Schedule,
    platform: Platform,
    trials: int = 10_000,
    seed: SeedLike = None,
    count_idle_processors: bool = False,
) -> SimulationResult:
    """Simulate the CKPTNONE restart model (semantics of Theorem 1).

    One attempt lasts ``W_par``; failures arrive at the aggregate rate
    ``p·λ``; each failed attempt wastes a truncated-exponential time and
    the execution restarts from scratch.
    """
    wpar = failure_free_makespan(workflow, schedule)
    p = (
        platform.processors
        if count_idle_processors
        else len(schedule.used_processors())
    )
    rate = p * platform.failure_rate
    rng = as_rng(seed)
    if rate == 0.0 or wpar == 0.0:
        return _summarise(np.full(trials, wpar))
    samples = sample_segment_times(
        np.array([wpar]), rate, trials, rng
    ).ravel()
    return _summarise(samples)
