"""Tests for M-SPG expression trees (repro.mspg.expr)."""

import pytest

from repro.errors import WorkflowError
from repro.mspg.expr import (
    EMPTY,
    EmptyGraph,
    Parallel,
    Series,
    TaskNode,
    chain,
    parallel,
    series,
    tree_depth,
    tree_edges,
    tree_sinks,
    tree_size,
    tree_sources,
    tree_tasks,
    tree_weight,
    validate_canonical,
)


def T(x):
    return TaskNode(x)


class TestSmartConstructors:
    def test_empty_series(self):
        assert series() is EMPTY

    def test_empty_parallel(self):
        assert parallel() is EMPTY

    def test_singleton_unwrapped(self):
        assert series(T("a")) == T("a")
        assert parallel(T("a")) == T("a")

    def test_empty_dropped(self):
        assert series(EMPTY, T("a"), EMPTY) == T("a")

    def test_series_flattens(self):
        t = series(series(T("a"), T("b")), T("c"))
        assert isinstance(t, Series)
        assert len(t.children) == 3

    def test_parallel_flattens(self):
        t = parallel(parallel(T("a"), T("b")), T("c"))
        assert isinstance(t, Parallel)
        assert len(t.children) == 3

    def test_no_series_in_series(self):
        t = series(T("a"), series(T("b"), parallel(T("c"), T("d"))))
        validate_canonical(t)

    def test_chain(self):
        t = chain("a", "b", "c")
        assert isinstance(t, Series)
        assert list(tree_tasks(t)) == ["a", "b", "c"]

    def test_empty_singleton(self):
        assert EmptyGraph() is EMPTY


class TestQueries:
    def setup_method(self):
        # (a ; (b || (c ; d)) ; e)
        self.t = series(T("a"), parallel(T("b"), series(T("c"), T("d"))), T("e"))

    def test_tasks_in_order(self):
        assert list(tree_tasks(self.t)) == ["a", "b", "c", "d", "e"]

    def test_size(self):
        assert tree_size(self.t) == 5
        assert tree_size(EMPTY) == 0

    def test_weight(self):
        w = {k: i + 1.0 for i, k in enumerate("abcde")}
        assert tree_weight(self.t, w) == pytest.approx(15.0)

    def test_sources_sinks(self):
        assert tree_sources(self.t) == ["a"]
        assert tree_sinks(self.t) == ["e"]
        par = parallel(T("x"), T("y"))
        assert set(tree_sources(par)) == {"x", "y"}
        assert set(tree_sinks(par)) == {"x", "y"}

    def test_edges(self):
        edges = tree_edges(self.t)
        assert ("a", "b") in edges and ("a", "c") in edges
        assert ("b", "e") in edges and ("d", "e") in edges
        assert ("c", "d") in edges
        assert ("c", "e") not in edges  # c is not a sink of the parallel part
        assert len(edges) == 5

    def test_edges_bipartite(self):
        # (a || b) ; (c || d) must produce the complete 2x2 product (§II-A)
        t = series(parallel(T("a"), T("b")), parallel(T("c"), T("d")))
        assert tree_edges(t) == {("a", "c"), ("a", "d"), ("b", "c"), ("b", "d")}

    def test_depth(self):
        assert tree_depth(EMPTY) == 0
        assert tree_depth(T("a")) == 0
        assert tree_depth(self.t) == 3  # Series > Parallel > Series > atoms

    def test_repr_smoke(self):
        assert "||" in repr(parallel(T("a"), T("b")))
        assert ";" in repr(chain("a", "b"))


class TestValidateCanonical:
    def test_accepts_canonical(self):
        validate_canonical(series(T("a"), parallel(T("b"), T("c"))))
        validate_canonical(EMPTY)
        validate_canonical(T("a"))

    def test_rejects_duplicate_task(self):
        with pytest.raises(WorkflowError):
            validate_canonical(Series((T("a"), T("a"))))

    def test_rejects_nested_series(self):
        bad = Series((Series((T("a"), T("b"))), T("c")))
        with pytest.raises(WorkflowError):
            validate_canonical(bad)

    def test_rejects_nested_parallel(self):
        bad = Parallel((Parallel((T("a"), T("b"))), T("c")))
        with pytest.raises(WorkflowError):
            validate_canonical(bad)

    def test_rejects_short_parallel(self):
        with pytest.raises(WorkflowError):
            validate_canonical(Parallel((T("a"),)))
