"""Tests for the Workflow data model (repro.mspg.graph)."""

import pytest

from repro.errors import (
    CycleError,
    UnknownFileError,
    UnknownTaskError,
    WorkflowError,
)
from repro.mspg.graph import Task, Workflow
from tests.conftest import add_data_edge, make_chain


class TestTask:
    def test_valid(self):
        t = Task("a", 1.5, "cat")
        assert t.weight == 1.5 and t.category == "cat"

    def test_negative_weight(self):
        with pytest.raises(WorkflowError):
            Task("a", -1.0)

    def test_nan_weight(self):
        with pytest.raises(WorkflowError):
            Task("a", float("nan"))

    def test_empty_id(self):
        with pytest.raises(WorkflowError):
            Task("", 1.0)


class TestConstruction:
    def test_duplicate_task(self):
        wf = Workflow()
        wf.add_task("a", 1.0)
        with pytest.raises(WorkflowError):
            wf.add_task("a", 2.0)

    def test_duplicate_file(self):
        wf = Workflow()
        wf.add_task("a", 1.0)
        wf.add_file("f", 10.0, producer="a")
        with pytest.raises(WorkflowError):
            wf.add_file("f", 20.0)

    def test_unknown_producer(self):
        wf = Workflow()
        with pytest.raises(UnknownTaskError):
            wf.add_file("f", 1.0, producer="ghost")

    def test_unknown_file_input(self):
        wf = Workflow()
        wf.add_task("a", 1.0)
        with pytest.raises(UnknownFileError):
            wf.add_input("a", "ghost")

    def test_self_consumption_rejected(self):
        wf = Workflow()
        wf.add_task("a", 1.0)
        wf.add_file("f", 1.0, producer="a")
        with pytest.raises(WorkflowError):
            wf.add_input("a", "f")

    def test_self_control_edge_rejected(self):
        wf = Workflow()
        wf.add_task("a", 1.0)
        with pytest.raises(WorkflowError):
            wf.add_control_edge("a", "a")

    def test_negative_file_size_rejected(self):
        wf = Workflow()
        with pytest.raises(WorkflowError):
            wf.add_file("f", -5.0)


class TestAccessors:
    def test_weights(self, chain5):
        assert chain5.total_weight == pytest.approx(50.0)
        assert chain5.mean_weight == pytest.approx(10.0)

    def test_mean_weight_empty_raises(self):
        with pytest.raises(WorkflowError):
            Workflow().mean_weight

    def test_edges_derived_from_files(self):
        wf = Workflow()
        wf.add_task("a", 1.0)
        wf.add_task("b", 1.0)
        add_data_edge(wf, "a", "b")
        assert wf.has_edge("a", "b")
        assert wf.succs("a") == frozenset({"b"})
        assert wf.preds("b") == frozenset({"a"})

    def test_edge_files(self):
        wf = Workflow()
        wf.add_task("a", 1.0)
        wf.add_task("b", 1.0)
        f = add_data_edge(wf, "a", "b")
        assert wf.edge_files("a", "b") == frozenset({f})
        assert wf.edge_files("b", "a") == frozenset()

    def test_control_edge_has_no_files(self):
        wf = Workflow()
        wf.add_task("a", 1.0)
        wf.add_task("b", 1.0)
        wf.add_control_edge("a", "b")
        assert wf.has_edge("a", "b")
        assert wf.is_control_edge("a", "b")
        assert wf.edge_files("a", "b") == frozenset()

    def test_shared_file_two_consumers_one_edge_each(self):
        wf = Workflow()
        for t in ("a", "b", "c"):
            wf.add_task(t, 1.0)
        wf.add_file("f", 7.0, producer="a")
        wf.add_input("b", "f")
        wf.add_input("c", "f")
        assert wf.succs("a") == frozenset({"b", "c"})
        assert wf.total_file_bytes == pytest.approx(7.0)  # counted once

    def test_workflow_inputs_outputs(self, chain5):
        assert chain5.workflow_inputs() == ["input"]
        assert chain5.workflow_outputs() == ["result"]

    def test_sources_sinks(self, fig2_workflow):
        assert fig2_workflow.sources() == ["T1"]
        assert fig2_workflow.sinks() == ["T13"]

    def test_n_edges(self, fig2_workflow):
        assert fig2_workflow.n_edges == 22

    def test_contains_len_repr(self, chain5):
        assert "T1" in chain5
        assert "nope" not in chain5
        assert len(chain5) == 5
        assert "chain-5" in repr(chain5)


class TestOrdersAndValidation:
    def test_topological_order_valid(self, fig2_workflow):
        order = fig2_workflow.topological_order()
        pos = {t: i for i, t in enumerate(order)}
        for u, v in fig2_workflow.edges():
            assert pos[u] < pos[v]

    def test_random_topological_order_seeded(self, fig2_workflow):
        a = fig2_workflow.random_topological_order(3)
        b = fig2_workflow.random_topological_order(3)
        assert a == b

    def test_cycle_detected(self):
        wf = Workflow()
        wf.add_task("a", 1.0)
        wf.add_task("b", 1.0)
        wf.add_control_edge("a", "b")
        wf.add_control_edge("b", "a")
        with pytest.raises(CycleError):
            wf.validate()

    def test_validate_ok(self, fig2_workflow):
        fig2_workflow.validate()


class TestTransforms:
    def test_copy_independent(self, chain5):
        cp = chain5.copy()
        cp.add_task("extra", 1.0)
        assert "extra" not in chain5
        assert chain5.n_tasks == 5 and cp.n_tasks == 6

    def test_scale_file_sizes(self, chain5):
        scaled = chain5.scale_file_sizes(2.0)
        assert scaled.total_file_bytes == pytest.approx(
            2.0 * chain5.total_file_bytes
        )
        # weights untouched
        assert scaled.total_weight == chain5.total_weight

    def test_scale_zero(self, chain5):
        assert chain5.scale_file_sizes(0.0).total_file_bytes == 0.0

    def test_scale_negative_rejected(self, chain5):
        with pytest.raises(WorkflowError):
            chain5.scale_file_sizes(-1.0)
