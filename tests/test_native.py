"""Tests for the compiled distribution kernels (repro.makespan.native).

Four contracts are pinned here:

* **bit-identity** — every native primitive (adaptive convolve / max /
  truncate and the shared rect row binning) returns atom-for-atom the
  arrays the pure-python numpy reference produces, across ragged
  sizes, duplicate supports, infinite atoms, zero-mass pads and
  degenerate pfail=0 cells; inputs the compiled kernel declines fall
  back to the reference (including its error behaviour).
* **golden records** — six baseline family grids sweep to records
  byte-identical to PR 9 HEAD (values pinned as hex float literals),
  with the native kernels on and off.
* **graceful degradation** — a failed build warns once on stderr,
  names the fallback, and leaves every operation serving from the
  python path; ``repro kernels`` and ``native.status()`` report which
  backend is live and why.
* **CLI surface** — ``repro kernels`` renders the per-op table and
  ``repro store export`` / ``repro store import`` round-trip a result
  store through JSONL.
"""

import os
import pickle
import sys

import numpy as np
import pytest

from repro.cli import main
from repro.engine import SweepSpec, run_sweep
from repro.makespan import native
from repro.makespan import profile as kernel_profile
from repro.makespan.distribution import (
    MODE_ADAPTIVE,
    MODE_RECT,
    DiscreteDistribution,
    _rect_bin_rows,
    _rect_bin_rows_py,
)

HAVE_NATIVE = native.available()

needs_native = pytest.mark.skipif(
    not HAVE_NATIVE, reason="no C compiler available in this environment"
)


@pytest.fixture(autouse=True)
def restore_native_state():
    """Snapshot the runtime switch and env around every test."""
    env = os.environ.get("REPRO_NATIVE")
    yield
    native._reset_for_tests()
    if env is None:
        os.environ.pop("REPRO_NATIVE", None)
    else:
        os.environ["REPRO_NATIVE"] = env


def both_backends(fn):
    """Run ``fn`` natively and on the python path; return both results.

    Exceptions are part of the contract: both paths must raise the
    same error text or both succeed.
    """
    native.set_enabled(True)
    try:
        got = fn()
        got_err = None
    except Exception as exc:  # noqa: BLE001 — compared, not hidden
        got, got_err = None, str(exc)
    native.set_enabled(False)
    try:
        ref = fn()
        ref_err = None
    except Exception as exc:  # noqa: BLE001
        ref, ref_err = None, str(exc)
    assert got_err == ref_err
    return got, ref


def assert_dist_equal(got: DiscreteDistribution, ref: DiscreteDistribution):
    assert np.array_equal(got.values, ref.values, equal_nan=True)
    assert np.array_equal(got.probs, ref.probs)


def random_dist(rng, n, inf_atom=False):
    v = rng.normal(50.0, 20.0, n)
    if inf_atom and n > 1:
        v[int(rng.integers(0, n))] = np.inf
    return DiscreteDistribution(v, rng.random(n) + 1e-9)


class TestBitIdentity:
    """Native results equal the numpy reference, atom for atom."""

    @pytest.mark.parametrize("na,nb", [(1, 1), (1, 40), (33, 7), (64, 64)])
    @pytest.mark.parametrize("max_atoms", [1, 2, 16, 64])
    @pytest.mark.parametrize("op", ["convolve", "max"])
    def test_binary_ops_ragged(self, op, na, nb, max_atoms):
        rng = np.random.default_rng(hash((op, na, nb, max_atoms)) % 2**32)
        a = random_dist(rng, na)
        b = random_dist(rng, nb)
        fn = getattr(a, "convolve" if op == "convolve" else "max_with")
        got, ref = both_backends(lambda: fn(b, max_atoms, MODE_ADAPTIVE))
        assert_dist_equal(got, ref)

    @pytest.mark.parametrize("n,max_atoms", [(5, 4), (100, 16), (700, 64)])
    def test_truncate(self, n, max_atoms):
        rng = np.random.default_rng(n * 1000 + max_atoms)
        d = random_dist(rng, n)
        got, ref = both_backends(lambda: d.truncate(max_atoms, MODE_ADAPTIVE))
        assert_dist_equal(got, ref)

    @pytest.mark.parametrize("op", ["convolve", "max", "truncate"])
    def test_infinite_atoms(self, op):
        """±inf supports: served when exact, reference when NaN-prone."""
        rng = np.random.default_rng(7)
        for trial in range(10):
            a = random_dist(rng, 20, inf_atom=True)
            b = random_dist(rng, 15, inf_atom=trial % 2 == 0)
            if op == "truncate":
                got, ref = both_backends(lambda: a.truncate(8, MODE_ADAPTIVE))
            else:
                fn = getattr(a, "convolve" if op == "convolve" else "max_with")
                got, ref = both_backends(lambda: fn(b, 8, MODE_ADAPTIVE))
            if ref is not None:
                assert_dist_equal(got, ref)

    def test_duplicate_supports(self):
        """Exactly-equal sums exercise the canonicalising tie path."""
        a = DiscreteDistribution([1.0, 2.0, 3.0], [0.2, 0.3, 0.5])
        b = DiscreteDistribution([1.0, 2.0, 3.0], [0.5, 0.25, 0.25])
        got, ref = both_backends(lambda: a.convolve(b, 64, MODE_ADAPTIVE))
        assert_dist_equal(got, ref)
        got, ref = both_backends(lambda: a.max_with(b, 64, MODE_ADAPTIVE))
        assert_dist_equal(got, ref)

    def test_point_masses(self):
        """Degenerate pfail=0 cells collapse to point distributions."""
        p = DiscreteDistribution.point(5.0)
        q = DiscreteDistribution.point(3.0)
        got, ref = both_backends(lambda: p.convolve(q, 4, MODE_ADAPTIVE))
        assert_dist_equal(got, ref)
        assert got.values.tolist() == [8.0]
        got, ref = both_backends(lambda: p.max_with(q, 4, MODE_ADAPTIVE))
        assert_dist_equal(got, ref)
        assert got.values.tolist() == [5.0]

    def test_two_state_pfail_zero(self):
        """pfail=0 two-state laws are Dirac; the algebra must keep them."""
        d = DiscreteDistribution.two_state(10.0, 30.0, 0.0)
        got, ref = both_backends(lambda: d.convolve(d, 8, MODE_ADAPTIVE))
        assert_dist_equal(got, ref)

    @pytest.mark.parametrize("c,n,max_atoms", [(1, 20, 8), (5, 77, 16), (3, 500, 64)])
    def test_rect_bin_rows(self, c, n, max_atoms):
        rng = np.random.default_rng(c * n)
        values = np.sort(rng.normal(50.0, 20.0, (c, n)), axis=1)
        probs = rng.random((c, n))
        probs /= probs.sum(axis=1, keepdims=True)
        native.set_enabled(True)
        gv, gp = _rect_bin_rows(values, probs, max_atoms)
        rv, rp = _rect_bin_rows_py(values, probs, max_atoms)
        # Empty bins divide 0/0 → NaN centres in both implementations.
        assert np.array_equal(gv, rv, equal_nan=True)
        assert np.array_equal(gp, rp)

    def test_rect_mode_truncate_with_zero_mass_pads(self):
        """Rect rows carry zero-mass pad atoms; binning must keep parity."""
        base = DiscreteDistribution(
            np.arange(1.0, 41.0), np.r_[np.full(30, 1 / 30.0), np.zeros(10)]
        )
        got, ref = both_backends(lambda: base.truncate(8, MODE_RECT))
        assert_dist_equal(got, ref)

    @needs_native
    def test_pooled_convolve_matches_scalar(self):
        """One pooled C call per uniform group equals per-pair results."""
        rng = np.random.default_rng(11)
        pairs = [
            (random_dist(rng, 24), random_dist(rng, 17)) for _ in range(9)
        ]
        native.set_enabled(True)
        outs = native.convolve_dists_many(pairs, 32)
        assert outs is not None and all(o is not None for o in outs)
        native.set_enabled(False)
        for (a, b), out in zip(pairs, outs):
            assert_dist_equal(out, a.convolve(b, 32, MODE_ADAPTIVE))

    @needs_native
    def test_native_actually_served(self):
        """With a compiler present the adaptive ops really go native."""
        rng = np.random.default_rng(3)
        a = random_dist(rng, 30)
        b = random_dist(rng, 30)
        native.set_enabled(True)
        prof = kernel_profile.enable()
        try:
            a.convolve(b, 16, MODE_ADAPTIVE)
            a.max_with(b, 16, MODE_ADAPTIVE)
            snap = prof.snapshot()
        finally:
            kernel_profile.disable()
        assert snap["native_rows"] >= 2
        assert snap["native_miss_rows"] == 0
        assert snap["native_ratio"] == 1.0


#: Six baseline grids, golden em_some/em_all/em_none pinned from PR 9
#: HEAD (commit a053fa4) as hex float literals — byte-identity, not
#: approximate agreement.  Two cells per grid: ccr 0.01 and 0.1.
GOLDEN_GRIDS = {
    ("montage", 30, 3, 0.01): [
        ("0x1.e931e58c391b6p+9", "0x1.eaf4013646b37p+9", "0x1.43fa358db51a4p+10"),
        ("0x1.0c15d1a06e9b5p+10", "0x1.1ae51105e5541p+10", "0x1.43fa358db51a4p+10"),
    ],
    ("genome", 30, 3, 0.01): [
        ("0x1.5902b85227983p+9", "0x1.5b0ed3ae73001p+9", "0x1.9d97152da2525p+9"),
        ("0x1.72a5881805ec6p+9", "0x1.8d82c6def7dbcp+9", "0x1.9d97152da2525p+9"),
    ],
    ("ligo", 30, 3, 0.01): [
        ("0x1.a8f7713a2b15ep+11", "0x1.aae3abf79e204p+11", "0x1.0097a64567131p+12"),
        ("0x1.c7e0d1b81c055p+11", "0x1.f079b8fba00e2p+11", "0x1.0097a64567131p+12"),
    ],
    ("cybershake", 30, 3, 0.01): [
        ("0x1.c6121f5e2b4e1p+8", "0x1.c4b54605b3144p+8", "0x1.fce399eaae93fp+8"),
        ("0x1.0e48030e3051dp+9", "0x1.4c716026262dcp+9", "0x1.fce399eaae93fp+8"),
    ],
    ("sipht", 30, 3, 0.01): [
        ("0x1.024694f23aec7p+12", "0x1.024694f23aec7p+12", "0x1.402b4912d0c6cp+12"),
        ("0x1.24a98721244f7p+12", "0x1.c248383ddf115p+12", "0x1.402b4912d0c6cp+12"),
    ],
    ("montage", 50, 5, 0.001): [
        ("0x1.11cf6229f75d0p+10", "0x1.12c66e1e84effp+10", "0x1.29d009506dc76p+10"),
        ("0x1.314299f14d6a4p+10", "0x1.3aff26395d60fp+10", "0x1.29d009506dc76p+10"),
    ],
}


class TestGoldenRecords:
    """Default-mode sweeps stay byte-identical to PR 9 HEAD."""

    @pytest.mark.parametrize(
        "family,size,procs,pfail", sorted(GOLDEN_GRIDS), ids=lambda v: str(v)
    )
    @pytest.mark.parametrize("use_native", [True, False], ids=["native", "python"])
    def test_grid(self, family, size, procs, pfail, use_native):
        native.set_enabled(use_native)
        spec = SweepSpec(
            family=family,
            sizes=(size,),
            processors={size: (procs,)},
            pfails=(pfail,),
            ccrs=(0.01, 0.1),
            seed=2017,
            seed_policy="stable",
            name=f"golden-{family}-{size}",
        )
        records = run_sweep(spec, jobs=1)
        golden = GOLDEN_GRIDS[(family, size, procs, pfail)]
        assert len(records) == len(golden)
        for record, (em_some, em_all, em_none) in zip(records, golden):
            assert record.em_some == float.fromhex(em_some)
            assert record.em_all == float.fromhex(em_all)
            assert record.em_none == float.fromhex(em_none)


class TestGracefulDegradation:
    """No compiler → one stderr warning, python fallback, same results."""

    def _break_build(self, monkeypatch, tmp_path):
        native._reset_for_tests()
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "cache"))
        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        monkeypatch.setattr(native, "_find_compiler", lambda: None)

    def test_build_failure_warns_once_and_falls_back(
        self, monkeypatch, tmp_path, capsys
    ):
        self._break_build(monkeypatch, tmp_path)
        assert native.available() is False
        assert native.enabled() is False
        a = DiscreteDistribution([1.0, 2.0], [0.5, 0.5])
        out = a.convolve(a, 4, MODE_ADAPTIVE)
        assert out.mean() == pytest.approx(3.0)
        err = capsys.readouterr().err
        warnings = [
            line
            for line in err.splitlines()
            if "native kernels unavailable" in line
        ]
        assert len(warnings) == 1
        assert "falling back to the pure-python kernels" in warnings[0]
        # The warning names the reason, one line, once.
        assert "no C compiler found" in warnings[0]
        a.convolve(a, 4, MODE_ADAPTIVE)
        assert "unavailable" not in capsys.readouterr().err

    def test_status_reports_build_failure(self, monkeypatch, tmp_path):
        self._break_build(monkeypatch, tmp_path)
        status = native.status()
        assert status["backend"] == "python"
        assert status["available"] is False
        assert status["disabled_by"] == "build"
        assert status["build_error"]
        assert all(v == "python" for v in status["ops"].values())

    def test_env_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        native._reset_for_tests()
        assert native.enabled() is False
        assert native.status()["disabled_by"] == "env"

    @needs_native
    def test_runtime_switch_round_trip(self):
        native.set_enabled(False)
        assert native.status()["disabled_by"] == "flag"
        assert os.environ["REPRO_NATIVE"] == "0"
        native.set_enabled(True)
        assert native.enabled() is True
        assert native.status()["backend"] == "native"


class TestDistributionStateContract:
    """The pointer cache never leaks across pickling."""

    @needs_native
    def test_pickle_drops_address_cache(self):
        rng = np.random.default_rng(5)
        native.set_enabled(True)
        d = random_dist(rng, 20).convolve(random_dist(rng, 20), 16, MODE_ADAPTIVE)
        assert d._addrs is not None  # native outputs pre-seed the cache
        clone = pickle.loads(pickle.dumps(d))
        assert clone._addrs is None
        assert_dist_equal(clone, d)

    def test_constructed_dists_start_unresolved(self):
        d = DiscreteDistribution([1.0, 2.0], [0.5, 0.5])
        assert d._addrs is None


class TestKernelsCli:
    def test_table(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "distribution kernel backends" in out
        for op in ("convolve", "max", "truncate", "rect_bin"):
            assert op in out
        assert "backend:" in out

    def test_json(self, capsys):
        import json

        assert main(["kernels", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] in ("native", "python")
        assert set(payload["ops"]) == {"convolve", "max", "truncate", "rect_bin"}

    def test_reflects_env_off(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        native._reset_for_tests()
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "disabled by: env" in out


class TestStoreCli:
    def _fill_store(self, path):
        argv = [
            "submit", "--local", "--store", str(path),
            "--family", "genome", "--ntasks", "20", "--processors", "3",
        ]
        assert main(argv) == 0

    def test_export_import_round_trip(self, tmp_path, capsys):
        src = tmp_path / "src.db"
        dst = tmp_path / "dst.db"
        dump = tmp_path / "dump.jsonl"
        self._fill_store(src)
        capsys.readouterr()
        assert main(["store", "export", "--store", str(src), "--out", str(dump)]) == 0
        assert "exported 1 entries" in capsys.readouterr().out
        assert main(["store", "import", str(dump), "--store", str(dst)]) == 0
        assert "imported 1 new entries" in capsys.readouterr().out
        # Re-import is idempotent: fingerprints dedupe.
        assert main(["store", "import", str(dump), "--store", str(dst)]) == 0
        assert "imported 0 new entries" in capsys.readouterr().out
        from repro.service.store import ResultStore

        with ResultStore(src) as a, ResultStore(dst) as b:
            assert a.export_jsonl() == b.export_jsonl()

    def test_export_to_stdout(self, tmp_path, capsys):
        src = tmp_path / "src.db"
        self._fill_store(src)
        capsys.readouterr()
        assert main(["store", "export", "--store", str(src)]) == 0
        line = capsys.readouterr().out.strip().splitlines()[0]
        import json

        payload = json.loads(line)
        assert {"fingerprint", "request", "record"} <= set(payload)

    def test_export_missing_store(self, tmp_path, capsys):
        assert main(["store", "export", "--store", str(tmp_path / "no.db")]) == 2
        assert "no store at" in capsys.readouterr().err

    def test_import_missing_dump(self, tmp_path, capsys):
        assert main(["store", "import", str(tmp_path / "no.jsonl")]) == 2
        assert "no dump at" in capsys.readouterr().err

    def test_import_rejects_tampered_dump(self, tmp_path, capsys):
        src = tmp_path / "src.db"
        dump = tmp_path / "dump.jsonl"
        self._fill_store(src)
        capsys.readouterr()
        assert main(["store", "export", "--store", str(src), "--out", str(dump)]) == 0
        text = dump.read_text().replace('"ccr": 0.01', '"ccr": 0.02')
        dump.write_text(text)
        assert main(["store", "import", str(dump), "--store", str(tmp_path / "d.db")]) == 2
        assert "import failed" in capsys.readouterr().err


class TestSweepNoNativeFlag:
    def test_records_identical_and_env_mirrored(self, tmp_path, capsys):
        on = tmp_path / "on.jsonl"
        off = tmp_path / "off.jsonl"
        base = [
            "sweep", "--family", "genome", "--sizes", "20",
            "--processors", "3", "--pfails", "0.01",
            "--ccrs", "0.05", "--quiet",
        ]
        assert main(base + ["--out", str(on)]) == 0
        assert main(base + ["--no-native", "--out", str(off)]) == 0
        assert on.read_text() == off.read_text()
        assert os.environ["REPRO_NATIVE"] == "0"
