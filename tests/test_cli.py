"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestGenerate:
    def test_json(self, tmp_path, capsys):
        out = tmp_path / "wf.json"
        assert main(
            ["generate", "--family", "genome", "--ntasks", "50", "--out", str(out)]
        ) == 0
        assert out.exists()
        from repro.generators.serialization import load_workflow

        assert load_workflow(out).n_tasks > 0

    def test_dax(self, tmp_path):
        out = tmp_path / "wf.dax"
        assert main(
            ["generate", "--family", "ligo", "--ntasks", "50", "--out", str(out)]
        ) == 0
        from repro.generators.dax import read_dax

        assert read_dax(out).n_tasks > 0

    def test_bad_extension(self, tmp_path, capsys):
        out = tmp_path / "wf.yaml"
        assert main(
            ["generate", "--family", "genome", "--out", str(out)]
        ) == 2


class TestEvaluate:
    def test_prints_summary(self, capsys):
        rc = main(
            [
                "evaluate",
                "--family",
                "genome",
                "--ntasks",
                "50",
                "--processors",
                "5",
                "--pfail",
                "0.001",
                "--ccr",
                "0.01",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "E[makespan]" in out
        assert "all/some=" in out


class TestMethods:
    def test_lists_registered_evaluators(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        for name in ("montecarlo", "dodin", "normal", "pathapprox", "exact"):
            assert name in out
        assert "stochastic" in out and "deterministic" in out
        # declared options surface, replacing the error-path-only
        # discoverability of the old inspect cache
        assert "trials=100000" in out and "k=None" in out

    def test_json_shape(self, capsys):
        import json

        assert main(["methods", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["montecarlo"]["deterministic"] is False
        assert payload["montecarlo"]["supports_batch"] is False
        assert payload["pathapprox"]["supports_batch"] is True
        option_names = [o["name"] for o in payload["pathapprox"]["options"]]
        assert option_names == ["k", "max_atoms", "factor_common", "rtol"]


class TestSweep:
    BASE = [
        "sweep",
        "--family",
        "genome",
        "--sizes",
        "50",
        "--processors",
        "3",
        "--pfails",
        "0.001",
        "--ccrs",
        "0.001",
        "0.01",
        "--quiet",
    ]

    def test_runs_and_prints_table(self, capsys):
        assert main(self.BASE) == 0
        out = capsys.readouterr().out
        assert "all/some" in out and "genome" in out

    def test_writes_jsonl(self, tmp_path, capsys):
        out_path = tmp_path / "records.jsonl"
        assert main(self.BASE + ["--out", str(out_path)]) == 0
        from repro.engine.records import records_from_jsonl

        records = records_from_jsonl(out_path)
        assert len(records) == 2
        assert {r.ccr for r in records} == {0.001, 0.01}

    def test_writes_csv(self, tmp_path):
        out_path = tmp_path / "records.csv"
        assert main(self.BASE + ["--out", str(out_path)]) == 0
        assert out_path.read_text().startswith("family,")

    def test_bad_records_extension(self, tmp_path):
        assert main(self.BASE + ["--out", str(tmp_path / "r.yaml")]) == 2

    def test_missing_output_directory(self, tmp_path):
        missing = tmp_path / "nope" / "r.jsonl"
        assert main(self.BASE + ["--out", str(missing)]) == 2

    def test_conflicting_ccr_flags(self):
        assert main(self.BASE + ["--ccr-grid", "0.001", "0.1", "3"]) == 2

    def test_invalid_ccr_grid_exits_2(self, capsys):
        args = self.BASE[: self.BASE.index("--ccrs")] + ["--quiet"]
        assert main(args + ["--ccr-grid", "0", "1", "3"]) == 2
        assert "invalid sweep grid" in capsys.readouterr().err

    def test_jobs_flag_identical_records(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert main(self.BASE + ["--out", str(a)]) == 0
        assert main(self.BASE + ["--jobs", "2", "--out", str(b)]) == 0
        assert a.read_text() == b.read_text()

    def test_no_batch_eval_identical_records(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert main(self.BASE + ["--out", str(a)]) == 0
        assert main(self.BASE + ["--no-batch-eval", "--out", str(b)]) == 0
        assert a.read_text() == b.read_text()

    def test_ccr_grid_default(self, capsys):
        args = self.BASE[: self.BASE.index("--ccrs")] + ["--quiet"]
        assert main(args + ["--ccr-grid", "0.001", "0.1", "3"]) == 0
        out = capsys.readouterr().out
        assert "genome" in out


class TestFigure:
    def test_tiny_grid_with_csv(self, tmp_path, capsys):
        csv = tmp_path / "fig5.csv"
        rc = main(
            [
                "figure",
                "fig5",
                "--sizes",
                "50",
                "--pfails",
                "0.001",
                "--ccr-points",
                "2",
                "--processors-per-size",
                "1",
                "--csv",
                str(csv),
                "--quiet",
            ]
        )
        assert rc == 0
        assert csv.exists()
        out = capsys.readouterr().out
        assert "all/some" in out


class TestAccuracy:
    def test_runs(self, capsys):
        rc = main(
            [
                "accuracy",
                "--families",
                "genome",
                "--ntasks",
                "50",
                "--processors",
                "3",
                "--pfails",
                "0.001",
                "--mc-trials",
                "5000",
            ]
        )
        assert rc == 0
        assert "pathapprox" in capsys.readouterr().out


class TestArgumentValidation:
    """Bad numeric arguments exit 2 with a one-line parser error, not a
    deep traceback."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["sweep", "--family", "genome", "--jobs", "0"],
            ["sweep", "--family", "genome", "--jobs", "-2"],
            ["sweep", "--family", "genome", "--pfails", "-0.1"],
            ["sweep", "--family", "genome", "--pfails", "1.5"],
            ["sweep", "--family", "genome", "--ccrs", "-1"],
            ["sweep", "--family", "genome", "--sizes", "0"],
            ["sweep", "--family", "genome", "--processors", "-3"],
            ["figure", "fig5", "--jobs", "0"],
            ["figure", "fig5", "--ccr-points", "0"],
            ["evaluate", "--family", "genome", "--pfail", "-0.5"],
            ["evaluate", "--family", "genome", "--ccr", "-0.01"],
            ["evaluate", "--family", "genome", "--ntasks", "0"],
            ["evaluate", "--family", "genome", "--pfail", "nope"],
            ["evaluate", "--family", "genome", "--pfail", "nan"],
            ["evaluate", "--family", "genome", "--ccr", "nan"],
            ["evaluate", "--family", "genome", "--ccr", "inf"],
            ["sweep", "--family", "genome", "--seed", "-1"],
            ["submit", "--family", "genome", "--seed", "-1"],
            ["simulate", "--family", "genome", "--pfail", "1.0"],
            ["accuracy", "--mc-trials", "0"],
            ["submit", "--family", "genome", "--processors", "0"],
        ],
    )
    def test_rejected_with_exit_2(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    def test_jobs_one_still_accepted(self, capsys):
        assert main(TestSweep.BASE + ["--jobs", "1"]) == 0


class TestSubmitLocal:
    ARGS = [
        "submit",
        "--family",
        "genome",
        "--ntasks",
        "30",
        "--processors",
        "3",
        "--pfail",
        "0.001",
        "--ccr",
        "0.01",
        "--local",
    ]

    def test_local_submit_computes_then_hits_store(self, tmp_path, capsys):
        store = tmp_path / "store.db"
        assert main(self.ARGS + ["--store", str(store)]) == 0
        first = capsys.readouterr().out
        assert "[computed]" in first and "E[makespan]" in first
        assert main(self.ARGS + ["--store", str(store)]) == 0
        second = capsys.readouterr().out
        assert "[store hit]" in second
        # identical record both times
        strip = lambda s: [l for l in s.splitlines() if "E[makespan]" in l]
        assert strip(first) == strip(second)

    def test_json_output(self, tmp_path, capsys):
        import json

        store = tmp_path / "store.db"
        assert main(self.ARGS + ["--store", str(store), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cached"] is False
        assert payload["record"]["family"] == "genome"
        assert len(payload["fingerprint"]) == 64

    def test_matches_direct_run_cell(self, tmp_path, capsys):
        from repro.experiments.figures import run_cell

        store = tmp_path / "store.db"
        assert main(self.ARGS + ["--store", str(store), "--json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        expected = run_cell("genome", 30, 3, 0.001, 0.01, seed=2017)
        assert payload["record"]["em_some"] == expected.em_some
        assert payload["record"]["em_all"] == expected.em_all
        assert payload["record"]["em_none"] == expected.em_none


class TestSimulate:
    def test_replay(self, capsys):
        rc = main(
            [
                "simulate",
                "--family",
                "montage",
                "--ntasks",
                "50",
                "--processors",
                "4",
                "--pfail",
                "0.01",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan=" in out
