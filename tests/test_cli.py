"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestGenerate:
    def test_json(self, tmp_path, capsys):
        out = tmp_path / "wf.json"
        assert main(
            ["generate", "--family", "genome", "--ntasks", "50", "--out", str(out)]
        ) == 0
        assert out.exists()
        from repro.generators.serialization import load_workflow

        assert load_workflow(out).n_tasks > 0

    def test_dax(self, tmp_path):
        out = tmp_path / "wf.dax"
        assert main(
            ["generate", "--family", "ligo", "--ntasks", "50", "--out", str(out)]
        ) == 0
        from repro.generators.dax import read_dax

        assert read_dax(out).n_tasks > 0

    def test_bad_extension(self, tmp_path, capsys):
        out = tmp_path / "wf.yaml"
        assert main(
            ["generate", "--family", "genome", "--out", str(out)]
        ) == 2


class TestEvaluate:
    def test_prints_summary(self, capsys):
        rc = main(
            [
                "evaluate",
                "--family",
                "genome",
                "--ntasks",
                "50",
                "--processors",
                "5",
                "--pfail",
                "0.001",
                "--ccr",
                "0.01",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "E[makespan]" in out
        assert "all/some=" in out


class TestFigure:
    def test_tiny_grid_with_csv(self, tmp_path, capsys):
        csv = tmp_path / "fig5.csv"
        rc = main(
            [
                "figure",
                "fig5",
                "--sizes",
                "50",
                "--pfails",
                "0.001",
                "--ccr-points",
                "2",
                "--processors-per-size",
                "1",
                "--csv",
                str(csv),
                "--quiet",
            ]
        )
        assert rc == 0
        assert csv.exists()
        out = capsys.readouterr().out
        assert "all/some" in out


class TestAccuracy:
    def test_runs(self, capsys):
        rc = main(
            [
                "accuracy",
                "--families",
                "genome",
                "--ntasks",
                "50",
                "--processors",
                "3",
                "--pfails",
                "0.001",
                "--mc-trials",
                "5000",
            ]
        )
        assert rc == 0
        assert "pathapprox" in capsys.readouterr().out


class TestSimulate:
    def test_replay(self, capsys):
        rc = main(
            [
                "simulate",
                "--family",
                "montage",
                "--ntasks",
                "50",
                "--processors",
                "4",
                "--pfail",
                "0.01",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan=" in out
