"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestGenerate:
    def test_json(self, tmp_path, capsys):
        out = tmp_path / "wf.json"
        assert main(
            ["generate", "--family", "genome", "--ntasks", "50", "--out", str(out)]
        ) == 0
        assert out.exists()
        from repro.generators.serialization import load_workflow

        assert load_workflow(out).n_tasks > 0

    def test_dax(self, tmp_path):
        out = tmp_path / "wf.dax"
        assert main(
            ["generate", "--family", "ligo", "--ntasks", "50", "--out", str(out)]
        ) == 0
        from repro.generators.dax import read_dax

        assert read_dax(out).n_tasks > 0

    def test_bad_extension(self, tmp_path, capsys):
        out = tmp_path / "wf.yaml"
        assert main(
            ["generate", "--family", "genome", "--out", str(out)]
        ) == 2
        err = capsys.readouterr().err
        assert "supported formats" in err
        assert ".dax" in err and ".json" in err
        assert not out.exists()

    def test_unknown_family_exit_2(self, tmp_path, capsys):
        out = tmp_path / "wf.json"
        assert main(
            ["generate", "--family", "nonesuch", "--out", str(out)]
        ) == 2
        err = capsys.readouterr().err
        assert "unknown workflow family 'nonesuch'" in err
        assert "genome" in err and "montage" in err  # lists the registry
        assert "Traceback" not in err


class TestEvaluate:
    def test_prints_summary(self, capsys):
        rc = main(
            [
                "evaluate",
                "--family",
                "genome",
                "--ntasks",
                "50",
                "--processors",
                "5",
                "--pfail",
                "0.001",
                "--ccr",
                "0.01",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "E[makespan]" in out
        assert "all/some=" in out

    def test_unknown_family_exit_2(self, capsys):
        assert main(["evaluate", "--family", "nonesuch"]) == 2
        err = capsys.readouterr().err
        assert "unknown workflow family" in err
        assert "ligo" in err
        assert "Traceback" not in err

    def test_dax_workflow(self, capsys):
        rc = main(
            [
                "evaluate",
                "--dax",
                "examples/diamond.dax",
                "--processors",
                "3",
                "--pfail",
                "0.01",
                "--ccr",
                "0.01",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "diamond" in out and "E[makespan]" in out

    def test_family_and_dax_mutually_exclusive(self, capsys):
        assert main(
            ["evaluate", "--family", "genome", "--dax", "examples/diamond.dax"]
        ) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_neither_family_nor_dax(self, capsys):
        assert main(["evaluate"]) == 2
        assert "--family or --dax" in capsys.readouterr().err

    def test_missing_dax_file(self, tmp_path, capsys):
        assert main(["evaluate", "--dax", str(tmp_path / "no.dax")]) == 2
        err = capsys.readouterr().err
        assert "cannot load" in err and "Traceback" not in err

    def test_bad_dax_suffix(self, tmp_path, capsys):
        path = tmp_path / "wf.yaml"
        path.write_text("x")
        assert main(["evaluate", "--dax", str(path)]) == 2
        assert "supported formats" in capsys.readouterr().err

    def test_ntasks_with_dax_rejected(self, capsys):
        assert main(
            ["evaluate", "--dax", "examples/diamond.dax", "--ntasks", "50"]
        ) == 2
        assert "--ntasks cannot be combined" in capsys.readouterr().err


class TestMethods:
    def test_lists_registered_evaluators(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        for name in ("montecarlo", "dodin", "normal", "pathapprox", "exact"):
            assert name in out
        assert "stochastic" in out and "deterministic" in out
        # declared options surface, replacing the error-path-only
        # discoverability of the old inspect cache
        assert "trials=100000" in out and "k=None" in out

    def test_json_shape(self, capsys):
        import json

        assert main(["methods", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["montecarlo"]["deterministic"] is False
        assert payload["montecarlo"]["supports_batch"] is True
        assert payload["pathapprox"]["supports_batch"] is True
        option_names = [o["name"] for o in payload["pathapprox"]["options"]]
        assert option_names == [
            "k", "max_atoms", "factor_common", "rtol", "truncate_mode",
        ]


class TestSweep:
    BASE = [
        "sweep",
        "--family",
        "genome",
        "--sizes",
        "50",
        "--processors",
        "3",
        "--pfails",
        "0.001",
        "--ccrs",
        "0.001",
        "0.01",
        "--quiet",
    ]

    def test_runs_and_prints_table(self, capsys):
        assert main(self.BASE) == 0
        out = capsys.readouterr().out
        assert "all/some" in out and "genome" in out

    def test_writes_jsonl(self, tmp_path, capsys):
        out_path = tmp_path / "records.jsonl"
        assert main(self.BASE + ["--out", str(out_path)]) == 0
        from repro.engine.records import records_from_jsonl

        records = records_from_jsonl(out_path)
        assert len(records) == 2
        assert {r.ccr for r in records} == {0.001, 0.01}

    def test_writes_csv(self, tmp_path):
        out_path = tmp_path / "records.csv"
        assert main(self.BASE + ["--out", str(out_path)]) == 0
        assert out_path.read_text().startswith("family,")

    def test_bad_records_extension(self, tmp_path):
        assert main(self.BASE + ["--out", str(tmp_path / "r.yaml")]) == 2

    def test_missing_output_directory(self, tmp_path):
        missing = tmp_path / "nope" / "r.jsonl"
        assert main(self.BASE + ["--out", str(missing)]) == 2

    def test_conflicting_ccr_flags(self):
        assert main(self.BASE + ["--ccr-grid", "0.001", "0.1", "3"]) == 2

    def test_invalid_ccr_grid_exits_2(self, capsys):
        args = self.BASE[: self.BASE.index("--ccrs")] + ["--quiet"]
        assert main(args + ["--ccr-grid", "0", "1", "3"]) == 2
        assert "invalid sweep grid" in capsys.readouterr().err

    def test_jobs_flag_identical_records(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert main(self.BASE + ["--out", str(a)]) == 0
        assert main(self.BASE + ["--jobs", "2", "--out", str(b)]) == 0
        assert a.read_text() == b.read_text()

    def test_no_batch_eval_identical_records(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert main(self.BASE + ["--out", str(a)]) == 0
        assert main(self.BASE + ["--no-batch-eval", "--out", str(b)]) == 0
        assert a.read_text() == b.read_text()

    def test_ccr_grid_default(self, capsys):
        args = self.BASE[: self.BASE.index("--ccrs")] + ["--quiet"]
        assert main(args + ["--ccr-grid", "0.001", "0.1", "3"]) == 0
        out = capsys.readouterr().out
        assert "genome" in out

    def test_unknown_family_exit_2(self, capsys):
        assert main(["sweep", "--family", "nonesuch", "--quiet"]) == 2
        err = capsys.readouterr().err
        assert "unknown workflow family" in err and "Traceback" not in err


class TestSweepDax:
    BASE = [
        "sweep",
        "--dax",
        "examples/diamond.dax",
        "--processors",
        "2",
        "3",
        "--pfails",
        "0.01",
        "--ccrs",
        "0.01",
        "0.1",
        "--quiet",
    ]

    def test_sweeps_external_workflow(self, tmp_path, capsys):
        out_path = tmp_path / "dax.jsonl"
        assert main(self.BASE + ["--out", str(out_path)]) == 0
        from repro.engine.records import records_from_jsonl
        from repro.workloads import load_source

        records = records_from_jsonl(out_path)
        assert len(records) == 4
        family = load_source("examples/diamond.dax").spec_family
        assert all(r.family == family for r in records)
        assert all(r.ntasks == 8 for r in records)

    def test_jobs_and_batch_eval_bit_identical(self, tmp_path):
        a, b, c = (tmp_path / n for n in ("a.jsonl", "b.jsonl", "c.jsonl"))
        assert main(self.BASE + ["--out", str(a)]) == 0
        assert main(self.BASE + ["--jobs", "2", "--out", str(b)]) == 0
        assert main(self.BASE + ["--no-batch-eval", "--out", str(c)]) == 0
        assert a.read_text() == b.read_text() == c.read_text()

    def test_family_and_dax_mutually_exclusive(self, capsys):
        assert main(self.BASE + ["--family", "genome"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_sizes_with_dax_rejected(self, capsys):
        assert main(self.BASE + ["--sizes", "50"]) == 2
        assert "task count" in capsys.readouterr().err

    def test_neither_family_nor_dax(self, capsys):
        assert main(["sweep", "--quiet"]) == 2
        assert "--family or --dax" in capsys.readouterr().err


class TestFigure:
    def test_tiny_grid_with_csv(self, tmp_path, capsys):
        csv = tmp_path / "fig5.csv"
        rc = main(
            [
                "figure",
                "fig5",
                "--sizes",
                "50",
                "--pfails",
                "0.001",
                "--ccr-points",
                "2",
                "--processors-per-size",
                "1",
                "--csv",
                str(csv),
                "--quiet",
            ]
        )
        assert rc == 0
        assert csv.exists()
        out = capsys.readouterr().out
        assert "all/some" in out


class TestAccuracy:
    def test_runs(self, capsys):
        rc = main(
            [
                "accuracy",
                "--families",
                "genome",
                "--ntasks",
                "50",
                "--processors",
                "3",
                "--pfails",
                "0.001",
                "--mc-trials",
                "5000",
            ]
        )
        assert rc == 0
        assert "pathapprox" in capsys.readouterr().out


class TestArgumentValidation:
    """Bad numeric arguments exit 2 with a one-line parser error, not a
    deep traceback."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["sweep", "--family", "genome", "--jobs", "-2"],
            ["sweep", "--family", "genome", "--pfails", "-0.1"],
            ["sweep", "--family", "genome", "--pfails", "1.5"],
            ["sweep", "--family", "genome", "--ccrs", "-1"],
            ["sweep", "--family", "genome", "--sizes", "0"],
            ["sweep", "--family", "genome", "--processors", "-3"],
            ["figure", "fig5", "--jobs", "-1"],
            ["figure", "fig5", "--ccr-points", "0"],
            ["evaluate", "--family", "genome", "--pfail", "-0.5"],
            ["evaluate", "--family", "genome", "--ccr", "-0.01"],
            ["evaluate", "--family", "genome", "--ntasks", "0"],
            ["evaluate", "--family", "genome", "--pfail", "nope"],
            ["evaluate", "--family", "genome", "--pfail", "nan"],
            ["evaluate", "--family", "genome", "--ccr", "nan"],
            ["evaluate", "--family", "genome", "--ccr", "inf"],
            ["sweep", "--family", "genome", "--seed", "-1"],
            ["submit", "--family", "genome", "--seed", "-1"],
            ["simulate", "--family", "genome", "--pfail", "1.0"],
            ["accuracy", "--mc-trials", "0"],
            ["submit", "--family", "genome", "--processors", "0"],
        ],
    )
    def test_rejected_with_exit_2(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    def test_jobs_one_still_accepted(self, capsys):
        assert main(TestSweep.BASE + ["--jobs", "1"]) == 0

    def test_jobs_zero_means_all_cores(self, capsys):
        # 0 is auto (one worker per core), not a rejected value.
        assert main(TestSweep.BASE + ["--jobs", "0"]) == 0

    def test_workers_without_remote_backend_rejected(self, capsys):
        rc = main(
            TestSweep.BASE
            + ["--backend", "process", "--workers", "http://127.0.0.1:1"]
        )
        assert rc == 2
        assert "--backend remote" in capsys.readouterr().err


class TestSubmitLocal:
    ARGS = [
        "submit",
        "--family",
        "genome",
        "--ntasks",
        "30",
        "--processors",
        "3",
        "--pfail",
        "0.001",
        "--ccr",
        "0.01",
        "--local",
    ]

    def test_local_submit_computes_then_hits_store(self, tmp_path, capsys):
        store = tmp_path / "store.db"
        assert main(self.ARGS + ["--store", str(store)]) == 0
        first = capsys.readouterr().out
        assert "[computed]" in first and "E[makespan]" in first
        assert main(self.ARGS + ["--store", str(store)]) == 0
        second = capsys.readouterr().out
        assert "[store hit]" in second
        # identical record both times
        strip = lambda s: [l for l in s.splitlines() if "E[makespan]" in l]
        assert strip(first) == strip(second)

    def test_json_output(self, tmp_path, capsys):
        import json

        store = tmp_path / "store.db"
        assert main(self.ARGS + ["--store", str(store), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cached"] is False
        assert payload["record"]["family"] == "genome"
        assert len(payload["fingerprint"]) == 64

    def test_matches_direct_run_cell(self, tmp_path, capsys):
        from repro.experiments.figures import run_cell

        store = tmp_path / "store.db"
        assert main(self.ARGS + ["--store", str(store), "--json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        expected = run_cell("genome", 30, 3, 0.001, 0.01, seed=2017)
        assert payload["record"]["em_some"] == expected.em_some
        assert payload["record"]["em_all"] == expected.em_all
        assert payload["record"]["em_none"] == expected.em_none


class TestSubmitDaxLocal:
    ARGS = [
        "submit",
        "--dax",
        "examples/diamond.dax",
        "--processors",
        "3",
        "--pfail",
        "0.001",
        "--ccr",
        "0.01",
        "--local",
    ]

    def test_local_dax_submit_computes_then_hits_store(self, tmp_path, capsys):
        store = tmp_path / "store.db"
        assert main(self.ARGS + ["--store", str(store)]) == 0
        first = capsys.readouterr().out
        assert "[computed]" in first and "file:" in first
        assert main(self.ARGS + ["--store", str(store)]) == 0
        assert "[store hit]" in capsys.readouterr().out

    def test_record_matches_engine_sweep(self, tmp_path, capsys):
        import json

        from repro.engine.sweep import SweepSpec, run_sweep
        from repro.workloads import load_source

        store = tmp_path / "store.db"
        assert main(self.ARGS + ["--store", str(store), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        source = load_source("examples/diamond.dax")
        (expected,) = run_sweep(
            SweepSpec.from_source(
                source,
                processors=(3,),
                pfails=(0.001,),
                ccrs=(0.01,),
                seed_policy="stable",
            )
        )
        assert payload["record"]["em_some"] == expected.em_some
        assert payload["record"]["em_all"] == expected.em_all
        assert payload["record"]["family"] == source.spec_family

    def test_family_and_dax_mutually_exclusive(self, capsys):
        assert main(self.ARGS + ["--family", "genome"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_ntasks_with_dax_rejected(self, capsys):
        assert main(self.ARGS + ["--ntasks", "8"]) == 2
        assert "--ntasks cannot be combined" in capsys.readouterr().err

    def test_unknown_family_exit_2(self, tmp_path, capsys):
        assert main(
            [
                "submit",
                "--family",
                "nonesuch",
                "--local",
                "--store",
                str(tmp_path / "s.db"),
            ]
        ) == 2
        assert "unknown workflow family" in capsys.readouterr().err


class TestSimulate:
    def test_replay(self, capsys):
        rc = main(
            [
                "simulate",
                "--family",
                "montage",
                "--ntasks",
                "50",
                "--processors",
                "4",
                "--pfail",
                "0.01",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan=" in out
