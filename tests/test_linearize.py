"""Tests for superchain linearisation heuristics."""

import pytest

from repro.errors import SchedulingError
from repro.mspg.graph import Workflow
from repro.scheduling.linearize import LINEARIZERS, linearize
from repro.util.toposort import is_topological_order
from tests.conftest import add_data_edge, make_fig2_workflow


def induced_succs(tasks, wf):
    inside = set(tasks)
    return {t: [v for v in wf.succs(t) if v in inside] for t in tasks}


class TestLinearizeBasics:
    def test_unknown_method(self, fig2_workflow):
        with pytest.raises(SchedulingError):
            linearize(fig2_workflow.task_ids, fig2_workflow, method="nope")

    @pytest.mark.parametrize("method", sorted(LINEARIZERS))
    def test_valid_topological(self, method, fig2_workflow):
        tasks = fig2_workflow.task_ids
        order = linearize(tasks, fig2_workflow, method=method, seed=1)
        assert is_topological_order(order, induced_succs(tasks, fig2_workflow))
        assert sorted(order) == sorted(tasks)

    @pytest.mark.parametrize("method", sorted(LINEARIZERS))
    def test_subset_only_constrained_by_internal_edges(self, method, fig2_workflow):
        # T5 and T7 are unrelated: any order is fine; just check validity.
        tasks = ["T5", "T7", "T10"]
        order = linearize(tasks, fig2_workflow, method=method, seed=0)
        assert set(order) == set(tasks)
        assert order.index("T5") < order.index("T10")

    def test_random_seeded(self, fig2_workflow):
        tasks = fig2_workflow.task_ids
        a = linearize(tasks, fig2_workflow, method="random", seed=5)
        b = linearize(tasks, fig2_workflow, method="random", seed=5)
        assert a == b

    def test_random_varies(self, fig2_workflow):
        tasks = fig2_workflow.task_ids
        orders = {
            tuple(linearize(tasks, fig2_workflow, method="random", seed=s))
            for s in range(20)
        }
        assert len(orders) > 1


class TestMinLive:
    def test_prefers_releasing_order(self):
        """minlive should drain a producer's consumers before piling up new
        large files."""
        wf = Workflow("live")
        for t in ("src", "big", "small", "sink"):
            wf.add_task(t, 1.0)
        add_data_edge(wf, "src", "big", size=1e9)
        add_data_edge(wf, "src", "small", size=1e3)
        add_data_edge(wf, "big", "sink", size=1e9)
        add_data_edge(wf, "small", "sink", size=1e3)
        order = linearize(wf.task_ids, wf, method="minlive", seed=0)
        # 'small' (tiny output) is scheduled before 'big' (huge output)
        assert order.index("small") < order.index("big")

    def test_live_volume_not_worse_than_random_on_average(self):
        """Sanity: on a fork-join, minlive's peak live volume is <= the
        worst random order's."""

        def peak_live(order, wf):
            remaining = {
                f: len(wf.consumers(f)) for f in wf.file_names if wf.consumers(f)
            }
            live = 0.0
            peak = 0.0
            for t in order:
                for f in wf.outputs(t):
                    if remaining.get(f, 0) > 0:
                        live += wf.file_size(f)
                for f in wf.inputs(t):
                    if f in remaining:
                        remaining[f] -= 1
                        if remaining[f] == 0:
                            live -= wf.file_size(f)
                peak = max(peak, live)
            return peak

        wf = make_fig2_workflow()
        ml = peak_live(linearize(wf.task_ids, wf, "minlive", seed=0), wf)
        randoms = [
            peak_live(linearize(wf.task_ids, wf, "random", seed=s), wf)
            for s in range(10)
        ]
        assert ml <= max(randoms)
