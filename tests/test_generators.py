"""Structural tests for the Pegasus-style workflow generators."""

import pytest

from repro.errors import WorkflowError
from repro.generators import (
    FAMILIES,
    cybershake,
    generate,
    genome,
    ligo,
    montage,
    sipht,
)
from repro.mspg.analysis import levels
from repro.mspg.recognize import is_mspg
from repro.mspg.transform import mspgify

ALL_SIZES = (50, 300)


def categories(wf):
    out = {}
    for t in wf.tasks():
        out[t.category] = out.get(t.category, 0) + 1
    return out


class TestGenerateDispatch:
    def test_known_families(self):
        for fam in ("montage", "genome", "ligo", "cybershake", "sipht", "random"):
            assert fam in FAMILIES
            wf = generate(fam, 50, seed=0)
            assert wf.n_tasks > 0

    def test_unknown_family(self):
        with pytest.raises(WorkflowError):
            generate("nope", 50)

    def test_case_insensitive(self):
        assert generate("MONTAGE", 50, seed=0).n_tasks > 0


@pytest.mark.parametrize("fam", ["montage", "genome", "ligo", "cybershake", "sipht"])
class TestCommonProperties:
    def test_size_close_to_request(self, fam):
        for n in ALL_SIZES:
            wf = generate(fam, n, seed=1)
            assert abs(wf.n_tasks - n) / n < 0.15

    def test_deterministic_with_seed(self, fam):
        a = generate(fam, 50, seed=9)
        b = generate(fam, 50, seed=9)
        assert a.task_ids == b.task_ids
        assert [t.weight for t in a.tasks()] == [t.weight for t in b.tasks()]
        assert a.edges() == b.edges()

    def test_seeds_differ(self, fam):
        a = generate(fam, 50, seed=1)
        b = generate(fam, 50, seed=2)
        assert [t.weight for t in a.tasks()] != [t.weight for t in b.tasks()]

    def test_positive_weights_and_sizes(self, fam):
        wf = generate(fam, 50, seed=3)
        assert all(t.weight > 0 for t in wf.tasks())
        assert all(wf.file_size(f) >= 0 for f in wf.file_names)

    def test_acyclic_connected_enough(self, fam):
        wf = generate(fam, 50, seed=4)
        wf.validate()
        assert wf.workflow_inputs(), "entry tasks should read workflow inputs"
        assert wf.workflow_outputs(), "final results should exist"

    def test_mspgify_sound(self, fam):
        from repro.mspg.analysis import tree_respects_workflow_order

        wf = generate(fam, 50, seed=5)
        res = mspgify(wf)
        assert tree_respects_workflow_order(res.tree, wf)


class TestMontageStructure:
    def test_task_mix(self):
        wf = montage(50, seed=0)
        cats = categories(wf)
        for single in ("mConcatFit", "mBgModel", "mImgtbl", "mAdd", "mJPEG"):
            assert cats[single] == 1
        assert cats["mProjectPP"] == cats["mBackground"]
        assert cats["mDiffFit"] >= cats["mProjectPP"] - 1

    def test_diff_fit_has_two_projections(self):
        wf = montage(50, seed=0)
        for t in wf.tasks():
            if t.category == "mDiffFit":
                preds = wf.preds(t.id)
                assert len(preds) == 2

    def test_not_raw_mspg_but_transformable(self):
        wf = montage(50, seed=0)
        assert not is_mspg(wf)  # incomplete bipartite + skip edges
        res = mspgify(wf)
        assert len(res.demoted_edges) > 0  # mProjectPP -> mBackground demoted

    def test_bgmodel_file_shared(self):
        wf = montage(50, seed=0)
        (bg,) = [t.id for t in wf.tasks() if t.category == "mBgModel"]
        (corr,) = wf.outputs(bg)
        assert len(wf.consumers(corr)) == len(
            [t for t in wf.tasks() if t.category == "mBackground"]
        )

    def test_too_small_rejected(self):
        with pytest.raises(WorkflowError):
            montage(5)


class TestGenomeStructure:
    def test_exact_mspg(self):
        assert is_mspg(genome(50, seed=0))
        assert mspgify(genome(300, seed=1)).exact

    def test_pipeline_chains(self):
        wf = genome(50, seed=0)
        cats = categories(wf)
        assert (
            cats["filterContams"]
            == cats["sol2sanger"]
            == cats["fastq2bfq"]
            == cats["map"]
        )
        assert cats["maqIndex"] == 1 and cats["pileup"] == 1

    def test_depth(self):
        wf = genome(50, seed=0)
        assert max(levels(wf).values()) == 8  # split + 4 chain + 2 merges + idx + pileup

    def test_too_small_rejected(self):
        with pytest.raises(WorkflowError):
            genome(5)


class TestLigoStructure:
    def test_two_stages(self):
        wf = ligo(300, seed=0)
        cats = categories(wf)
        assert cats["TmpltBank"] == cats["Inspiral1"]
        assert cats["TrigBank"] == cats["Inspiral2"]
        assert cats["Thinca1"] == -(-cats["Inspiral1"] // 5)
        assert cats["Thinca2"] == -(-cats["Inspiral2"] // 4)

    def test_not_mspg_footnote2(self):
        # the paper's footnote 2: generated LIGO is not an M-SPG
        wf = ligo(300, seed=0)
        assert not is_mspg(wf)
        res = mspgify(wf)
        assert len(res.added_edges) > 0  # dummy dependencies added

    def test_too_small_rejected(self):
        with pytest.raises(WorkflowError):
            ligo(4)


class TestCybershakeStructure:
    def test_sgt_fanout(self):
        wf = cybershake(50, seed=0)
        cats = categories(wf)
        assert cats["ExtractSGT"] == 2
        assert cats["SeismogramSynthesis"] == cats["PeakValCalc"]
        synths = [t.id for t in wf.tasks() if t.category == "SeismogramSynthesis"]
        for s in synths:
            assert len(wf.preds(s)) == 2  # both SGT files

    def test_too_small_rejected(self):
        with pytest.raises(WorkflowError):
            cybershake(4)


class TestSiphtStructure:
    def test_exact_mspg(self):
        assert is_mspg(sipht(50, seed=0))

    def test_joins(self):
        wf = sipht(50, seed=0)
        cats = categories(wf)
        assert cats["SRNA"] == 1 and cats["SRNAAnnotate"] == 1
        assert cats["Patser"] == wf.n_tasks - 12

    def test_too_small_rejected(self):
        with pytest.raises(WorkflowError):
            sipht(10)
